#include "core/engine.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "core/analyzer.h"
#include "core/rewriter.h"
#include "types/row_batch.h"
#include "sql/normalize.h"
#include "sql/parameters.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace prefsql {

const char* EvaluationModeToString(EvaluationMode m) {
  switch (m) {
    case EvaluationMode::kRewrite:
      return "rewrite";
    case EvaluationMode::kBlockNestedLoop:
      return "bnl";
    case EvaluationMode::kNaiveNestedLoop:
      return "naive";
    case EvaluationMode::kSortFilterSkyline:
      return "sfs";
  }
  return "?";
}

namespace {

// Restores catalog version bumps when the rewrite path exits (including on
// error) after suppressing them around its transient Aux views.
class ScopedVersionBumpSuppression {
 public:
  explicit ScopedVersionBumpSuppression(Catalog* catalog) : catalog_(catalog) {
    catalog_->set_suppress_version_bumps(true);
  }
  ~ScopedVersionBumpSuppression() {
    catalog_->set_suppress_version_bumps(false);
  }

 private:
  Catalog* catalog_;
};

bool IsCacheableKind(StatementKind kind) {
  return kind == StatementKind::kSelect || kind == StatementKind::kExplain;
}

// Case-insensitive keyword prefix test on normalized (case-preserved) text.
bool StartsWithKeyword(const std::string& text, std::string_view keyword) {
  if (text.size() < keyword.size()) return false;
  for (size_t i = 0; i < keyword.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) != keyword[i]) {
      return false;
    }
  }
  return true;
}

Status UnboundParametersError() {
  return Status::BindError(
      "statement has unbound parameter(s); prepare it and bind values "
      "(Connection::Prepare)");
}

// Retires the statement's QueryContext from its session on scope exit —
// the default for materialized results and every error path. A streaming
// cursor calls Release() instead and retires the context itself on Close
// (the context must stay reachable by Session::CancelCurrent while the
// client is still pulling). ClearCurrentContext is conditional on identity,
// so a double clear (cursor Close then guard) is a harmless no-op.
class SessionContextClearGuard {
 public:
  SessionContextClearGuard(Session* session,
                           std::shared_ptr<const QueryContext> ctx)
      : session_(session), ctx_(std::move(ctx)) {}
  ~SessionContextClearGuard() {
    if (session_ != nullptr) session_->ClearCurrentContext(ctx_.get());
  }
  SessionContextClearGuard(const SessionContextClearGuard&) = delete;
  SessionContextClearGuard& operator=(const SessionContextClearGuard&) =
      delete;

  void Release() { session_ = nullptr; }

 private:
  Session* session_;
  std::shared_ptr<const QueryContext> ctx_;
};

}  // namespace

// ===========================================================================
// Engine lifetime: background MVCC reclaimer
// ===========================================================================

Engine::Engine() {
  gc_thread_ = std::thread([this] { BackgroundGcLoop(); });
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> g(gc_mu_);
    gc_stop_ = true;
  }
  gc_cv_.notify_one();
  if (gc_thread_.joinable()) gc_thread_.join();
}

void Engine::BackgroundGcLoop() {
  // The period bounds dead-version residency under reader-heavy load where
  // the opportunistic post-DML sweep rarely wins its try-lock; short enough
  // that a momentary gap between readers is usually caught, long enough to
  // be invisible in profiles when the engine is idle.
  constexpr auto kPeriod = std::chrono::milliseconds(20);
  std::unique_lock<std::mutex> sleep_lock(gc_mu_);
  while (!gc_stop_) {
    gc_cv_.wait_for(sleep_lock, kPeriod,
                    [this] { return gc_stop_ || gc_kick_; });
    if (gc_stop_) break;
    const bool kicked = gc_kick_;
    gc_kick_ = false;
    // A memory-pressure kick sweeps even while the knob is off — relief
    // explicitly asked for reclaimable bytes; the timer respects the knob.
    if (!kicked && !gc_background_enabled_.load(std::memory_order_relaxed)) {
      continue;
    }
    sleep_lock.unlock();
    {
      // Same safety argument as TryCollectGarbage: pins are only ever taken
      // under the shared DDL lock, so winning it exclusively proves no
      // reader and no pin exists — every version dead at or before the
      // horizon is unreachable forever. Losing the race costs nothing; the
      // timer retries.
      std::unique_lock<std::shared_mutex> lock(mutex_, std::try_to_lock);
      if (lock.owns_lock()) {
        CollectGarbageAllTablesLocked();
        background_gc_passes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    sleep_lock.lock();
  }
}

uint64_t Engine::CollectGarbageAllTablesLocked() {
#if defined(PREFSQL_FAILPOINTS_ENABLED)
  // Injected fault: the horizon computation "fails" — skip this sweep.
  if (!failpoint::Evaluate("gc_horizon").ok()) return 0;
#endif
  EpochManager& epochs = db_.catalog().epochs();
  const uint64_t horizon = epochs.MinPinnedOr(epochs.current());
  uint64_t freed = 0;
  for (const auto& name : db_.catalog().TableNames()) {
    auto table = db_.catalog().GetTable(name);
    if (table.ok()) freed += (*table)->CollectGarbage(horizon);
  }
  if (freed > 0) db_.executor().CountGarbageCollected(freed);
  return freed;
}

void Engine::RelieveMemoryPressure(uint64_t /*requested_bytes*/) {
  // Shed roughly a quarter of each cache's resident entries, cold end
  // first. This frees their heap memory immediately — though not
  // budget-charged bytes, which only return to the budget when their
  // statements finish — and the kicked reclaimer frees superseded version
  // payloads as soon as it wins the DDL lock. Only after both does a
  // retried charge fail the query with kResourceExhausted.
  auto quarter = [](size_t n) { return std::max<size_t>(4, n / 4); };
  plan_cache_.Shed(quarter(plan_cache_.size()));
  key_cache_.Shed(quarter(key_cache_.size()));
  filter_cache_.Shed(quarter(filter_cache_.size()));
  {
    std::lock_guard<std::mutex> g(gc_mu_);
    gc_kick_ = true;
  }
  gc_cv_.notify_one();
}

std::shared_ptr<QueryContext> Engine::ArmStatementContext(Session& session) {
  auto ctx = std::make_shared<QueryContext>();
  const ConnectionOptions& o = session.options();
  ctx->set_deadline_ms(o.statement_timeout_ms);
  ctx->set_vectorized(o.vectorized_execution);
  ctx->ArmStatementBudget(o.statement_memory_bytes);
  ctx->set_engine_budget(&engine_budget_);
  ctx->set_pressure_relief(
      [this](uint64_t bytes) { RelieveMemoryPressure(bytes); });
  session.SetCurrentContext(ctx);
  return ctx;
}

uint64_t Engine::KnobFingerprint(const ConnectionOptions& o) {
  uint64_t h = kFingerprintSeed;
  h = FingerprintMix(h, static_cast<uint64_t>(o.mode));
  h = FingerprintMix(h, static_cast<uint64_t>(o.but_only_mode));
  h = FingerprintMix(
      h, o.bmo_algorithm ? 1 + static_cast<uint64_t>(*o.bmo_algorithm) : 0);
  h = FingerprintMix(h, o.bnl_window);
  h = FingerprintMix(h, o.keep_aux_views ? 1 : 0);
  h = FingerprintMix(h, o.bmo_threads);
  h = FingerprintMix(h, o.parallel_min_rows);
  h = FingerprintMix(h, o.preference_pushdown ? 1 : 0);
  h = FingerprintMix(h, o.key_cache ? 1 : 0);
  h = FingerprintMix(h, o.simd ? 1 : 0);
  h = FingerprintMix(h, o.skyline_cache ? 1 : 0);
  h = FingerprintMix(h, o.mvcc_gc ? 1 : 0);
  h = FingerprintMix(h, o.vectorized_execution ? 1 : 0);
  return h;
}

PlanCacheKey Engine::CacheKey(const Session& session, std::string text) {
  return PlanCacheKey{std::move(text), KnobFingerprint(session.options()),
                      db_.catalog().version()};
}

// ===========================================================================
// Text entry points: Execute / OpenCursor / Prepare / ExecuteScript
// ===========================================================================

Result<ResultTable> Engine::Execute(Session& session, const std::string& sql) {
  PSQL_ASSIGN_OR_RETURN(Cursor cursor, OpenCursor(session, sql));
  return DrainCursor(cursor);
}

Result<Cursor> Engine::OpenCursor(Session& session, const std::string& sql,
                                  std::shared_ptr<Engine> keepalive) {
  if (session.options().plan_cache) {
    // Probe the plan cache before paying for the parse; only SELECT/EXPLAIN
    // are cached (cheap prefix test). With auto-parameterization on, the
    // key text is the canonical form with literals lifted into `?` holes —
    // repetitions differing only in literal values hit the same entry, and
    // the lifted values are re-injected below.
    std::string text = NormalizeSql(sql);
    if (StartsWithKeyword(text, "select") ||
        StartsWithKeyword(text, "explain")) {
      std::string key_text = std::move(text);
      std::vector<Value> lifted;
      std::vector<uint32_t> lifted_widths;
      const std::vector<Value>* params = nullptr;
      const std::vector<uint32_t>* widths = nullptr;
      bool auto_par = false;
      const std::string* parse_text = &sql;
      if (session.options().auto_parameterize) {
        // IN lists collapse to one arity-normalized placeholder here (the
        // text path re-expands at bind time); PREPARE keeps placeholders
        // 1:1 with values, so only this path asks for collapsing.
        ParameterizedSql p = ParameterizeSql(sql, /*collapse_in_lists=*/true);
        if (p.parameterized) {
          key_text = std::move(p.text);
          lifted = std::move(p.values);
          lifted_widths = std::move(p.widths);
          params = &lifted;
          widths = &lifted_widths;
          auto_par = true;
          parse_text = &key_text;
        }
      }
      PlanCacheKey key = CacheKey(session, key_text);
      if (auto cached = plan_cache_.Lookup(key)) {
        return OpenPreparedCursor(session, std::move(cached),
                                  /*plan_cache_hit=*/true, params, auto_par,
                                  std::move(keepalive), widths);
      }
      auto parsed = ParseStatement(*parse_text);
      if (!parsed.ok() && auto_par) {
        // Safety hatch: the canonical parameterized text should re-parse by
        // construction; if it does not, run the original text uncached.
        PSQL_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
        PSQL_ASSIGN_OR_RETURN(ResultTable result,
                              ExecuteStatement(session, stmt));
        return MaterializedCursor(std::move(result), &session,
                                  std::move(keepalive));
      }
      PSQL_RETURN_IF_ERROR(parsed.status());
      Statement stmt = std::move(*parsed);
      if (IsCacheableKind(stmt.kind) && stmt.select != nullptr) {
        PSQL_ASSIGN_OR_RETURN(auto prepared,
                              BuildPreparation(stmt.kind, stmt.select));
        if (!auto_par && prepared->params.count() > 0) {
          return UnboundParametersError();
        }
        plan_cache_.Insert(key, prepared);
        return OpenPreparedCursor(session, std::move(prepared),
                                  /*plan_cache_hit=*/false, params, auto_par,
                                  std::move(keepalive), widths);
      }
      PSQL_ASSIGN_OR_RETURN(ResultTable result,
                            ExecuteStatement(session, stmt));
      return MaterializedCursor(std::move(result), &session,
                                std::move(keepalive));
    }
  }
  PSQL_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  PSQL_ASSIGN_OR_RETURN(ResultTable result, ExecuteStatement(session, stmt));
  return MaterializedCursor(std::move(result), &session, std::move(keepalive));
}

Result<PreparedStatement> Engine::Prepare(Session& session,
                                          const std::string& sql,
                                          std::shared_ptr<Engine> keepalive) {
  std::string normalized = NormalizeSql(sql);
  std::shared_ptr<const Statement> stmt;
  std::string key_text;
  std::vector<Value> lifted;
  bool auto_par = false;
  if (StartsWithKeyword(normalized, "select") ||
      StartsWithKeyword(normalized, "explain")) {
    if (session.options().auto_parameterize) {
      ParameterizedSql p = ParameterizeSql(sql);
      if (p.parameterized) {
        PSQL_ASSIGN_OR_RETURN(Statement parsed, ParseStatement(p.text));
        stmt = std::make_shared<const Statement>(std::move(parsed));
        key_text = std::move(p.text);
        lifted = std::move(p.values);
        auto_par = true;
      }
    }
    if (stmt == nullptr) {
      PSQL_ASSIGN_OR_RETURN(Statement parsed, ParseStatement(sql));
      stmt = std::make_shared<const Statement>(std::move(parsed));
      key_text = std::move(normalized);
    }
    if (IsCacheableKind(stmt->kind) && stmt->select != nullptr) {
      // Publish the preparation now: the very first Execute is warm, and
      // parse/analyze errors surface at Prepare time, as a driver expects.
      bool hit = false;
      auto prepared = LookupOrPrepare(session, key_text, stmt->kind,
                                      stmt->select, &hit);
      PSQL_RETURN_IF_ERROR(prepared.status());
    } else {
      key_text.clear();
    }
  } else {
    PSQL_ASSIGN_OR_RETURN(Statement parsed, ParseStatement(sql));
    stmt = std::make_shared<const Statement>(std::move(parsed));
  }
  ParameterSignature signature = CollectParameters(*stmt);
  PreparedStatement prepared(this, std::move(keepalive), &session,
                             std::move(stmt), std::move(key_text),
                             std::move(signature));
  if (auto_par) {
    if (lifted.size() != prepared.signature_.count()) {
      return Status::Internal("auto-parameterization arity mismatch");
    }
    // Pre-bind the lifted literals: executing without further Bind calls
    // runs the statement exactly as written. Constraint violations report
    // as parse errors — the value came from the statement text itself.
    for (size_t i = 0; i < lifted.size(); ++i) {
      PSQL_RETURN_IF_ERROR(CheckParamConstraint(
          lifted[i], prepared.signature_.constraints[i], i,
          /*parse_errors=*/true));
      prepared.values_[i] = std::move(lifted[i]);
      prepared.bound_[i] = true;
    }
    prepared.auto_parameterized_ = true;
  }
  return prepared;
}

Result<ResultTable> Engine::ExecuteScript(Session& session,
                                          const std::string& sql) {
  ResultTable last;
  PSQL_RETURN_IF_ERROR(ExecuteScript(
      session, sql,
      [&last](size_t, const Statement&, ResultTable result) {
        last = std::move(result);
        return Status::OK();
      }));
  return last;
}

Status Engine::ExecuteScript(Session& session, const std::string& sql,
                             const ScriptResultCallback& on_result) {
  PSQL_ASSIGN_OR_RETURN(auto stmts, ParseScript(sql));
  if (stmts.empty()) return Status::InvalidArgument("empty script");
  for (size_t i = 0; i < stmts.size(); ++i) {
    PSQL_ASSIGN_OR_RETURN(ResultTable result,
                          ExecuteStatement(session, stmts[i]));
    if (on_result) {
      PSQL_RETURN_IF_ERROR(on_result(i, stmts[i], std::move(result)));
    }
  }
  return Status::OK();
}

// ===========================================================================
// Statement execution
// ===========================================================================

Result<ResultTable> Engine::ExecuteStatement(Session& session,
                                             const Statement& stmt) {
  session.ResetStatsForNewStatement();
  // Pre-parsed statements bypass the binding layer; reject holes before
  // one reaches an operator (drivers get a stable kBindError).
  if (StatementHasParameters(stmt)) return UnboundParametersError();
  if (stmt.kind == StatementKind::kSet) {
    return ExecuteSet(session, stmt);
  }

  // Arm the statement's deadline/cancel/budget context. Cacheable
  // SELECT/EXPLAIN statements re-arm a fresh context in OpenPreparedCursor
  // (which replaces this one in the session — the scopes nest and the
  // identity-checked clears compose); the DML, DDL and
  // INSERT..SELECT PREFERRING paths below run under this one, so writes
  // honor the deadline and CancelCurrent too.
  std::shared_ptr<QueryContext> qctx = ArmStatementContext(session);
  ScopedQueryContext qscope(qctx.get());
  SessionContextClearGuard clear_guard(&session, qctx);

  if (IsCacheableKind(stmt.kind) && stmt.select != nullptr) {
    // Pre-parsed statements skip the parse already, so the cache only pays
    // off where preparation still does real work: PDL expansion and
    // preference compilation. Plain SELECT/EXPLAIN skip the print+lookup.
    if (session.options().plan_cache && stmt.select->IsPreferenceQuery()) {
      // The printed text keys identically across repetitions of this AST.
      bool hit = false;
      PSQL_ASSIGN_OR_RETURN(
          auto prepared,
          LookupOrPrepare(session, NormalizeSql(StatementToSql(stmt)),
                          stmt.kind, stmt.select, &hit));
      return ExecutePrepared(session, std::move(prepared), hit,
                             /*params=*/nullptr,
                             /*auto_parameterized=*/false);
    }
    PSQL_ASSIGN_OR_RETURN(auto prepared,
                          BuildPreparation(stmt.kind, stmt.select));
    return ExecutePrepared(session, std::move(prepared),
                           /*plan_cache_hit=*/false, /*params=*/nullptr,
                           /*auto_parameterized=*/false);
  }

  // INSERT ... SELECT with a PREFERRING clause (§2.2.5): evaluate the
  // preference query, then bulk-insert the BMO rows — one exclusive
  // critical section for the whole statement.
  if (stmt.kind == StatementKind::kInsert && stmt.select != nullptr &&
      stmt.select->IsPreferenceQuery()) {
    session.mutable_last_stats().was_preference_query = true;
    std::unique_lock<std::shared_mutex> lock(mutex_);
    PSQL_ASSIGN_OR_RETURN(auto expanded, ExpandSelect(*stmt.select));
    PSQL_ASSIGN_OR_RETURN(auto analyzed, AnalyzePreferenceQuery(*expanded));
    Result<ResultTable> rows = [&]() -> Result<ResultTable> {
      if (session.options().mode == EvaluationMode::kRewrite) {
        auto result = ExecuteViaRewrite(session, *expanded, analyzed.pref);
        if (result.ok() || !result.status().IsNotImplemented()) return result;
        // Rewriter refused (e.g. non-weak-order EXPLICIT): fall back.
        session.mutable_last_stats().rewrite_fallback = true;
      }
      return ExecuteDirect(session, *expanded, analyzed.pref);
    }();
    PSQL_RETURN_IF_ERROR(rows.status());
    FlushBatchExecStats(qctx.get(), session.mutable_last_stats());
    auto result =
        db_.executor().InsertTable(stmt.name, stmt.insert_columns, *rows);
    MaintainSkylineCaches();
    SweepCaches();
    SnapshotCacheCounters(session);
    lock.unlock();
    TryCollectGarbage(session);
    return result;
  }

  // DML appends row versions: it runs under the *shared* DDL lock (readers
  // streaming at pinned snapshots are never blocked) with DML statements
  // serialized against each other — and with the cache maintenance/sweep
  // they trigger — by the writer mutex.
  if (stmt.kind == StatementKind::kInsert ||
      stmt.kind == StatementKind::kUpdate ||
      stmt.kind == StatementKind::kDelete) {
    std::shared_lock<std::shared_mutex> ddl(mutex_);
    Result<ResultTable> result = [&]() -> Result<ResultTable> {
      // Fault-injection site: the handoff to the writer mutex — a delay
      // here widens the window in which readers stream against the
      // pre-statement snapshot while this writer is queued.
      PSQL_FAILPOINT_STATUS("writer_handoff");
      std::lock_guard<std::mutex> writer(writer_mutex_);
      auto r = db_.ExecuteStatement(stmt);
      MaintainSkylineCaches();
      SweepCaches();
      return r;
    }();
    SnapshotCacheCounters(session);
    ddl.unlock();
    TryCollectGarbage(session);
    return result;
  }

  // Everything else passes through to the database system (§3.1: "without
  // causing any noticeable overhead") — DDL, so exclusively, with a cache
  // sweep afterwards to reclaim entries the write made unreachable.
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto result = db_.ExecuteStatement(stmt);
  MaintainSkylineCaches();
  SweepCaches();
  SnapshotCacheCounters(session);
  return result;
}

// ===========================================================================
// Preparation
// ===========================================================================

Result<std::shared_ptr<const CachedPlan>> Engine::BuildPreparation(
    StatementKind kind, std::shared_ptr<const SelectStmt> select) {
  auto prepared = std::make_shared<CachedPlan>();
  prepared->kind = kind;
  prepared->select = select;
  if (select != nullptr) {
    prepared->params = CollectParameters(*select);
    if (select->IsPreferenceQuery()) {
      prepared->pref_has_params = PrefTermHasParameters(*select->preferring);
      // PDL expansion reads the catalog; everything else is pure.
      std::shared_lock<std::shared_mutex> lock(mutex_);
      PSQL_ASSIGN_OR_RETURN(auto expanded, ExpandSelect(*select));
      if (!prepared->pref_has_params) {
        PSQL_ASSIGN_OR_RETURN(auto analyzed,
                              AnalyzePreferenceQuery(*expanded));
        prepared->preference = analyzed.pref;
      }
      prepared->expanded = std::move(expanded);
      prepared->catalog_version = db_.catalog().version();
    }
  }
  return std::shared_ptr<const CachedPlan>(std::move(prepared));
}

Result<std::shared_ptr<const CachedPlan>> Engine::LookupOrPrepare(
    Session& session, const std::string& key_text, StatementKind kind,
    std::shared_ptr<const SelectStmt> select, bool* hit) {
  *hit = false;
  if (!session.options().plan_cache || !IsCacheableKind(kind) ||
      select == nullptr) {
    return BuildPreparation(kind, std::move(select));
  }
  PlanCacheKey key = CacheKey(session, key_text);
  if (auto cached = plan_cache_.Lookup(key)) {
    *hit = true;
    return cached;
  }
  PSQL_ASSIGN_OR_RETURN(auto prepared, BuildPreparation(kind, select));
  plan_cache_.Insert(std::move(key), prepared);
  return prepared;
}

Result<Engine::ExecutionView> Engine::BindForExecutionLocked(
    const CachedPlan& plan, const std::vector<Value>* params,
    const std::vector<uint32_t>* widths) {
  bool wide = false;
  if (widths != nullptr) {
    for (uint32_t w : *widths) wide = wide || w != 1;
  }
  const bool is_pref =
      plan.select != nullptr && plan.select->IsPreferenceQuery();
  std::shared_ptr<const SelectStmt> select = plan.select;
  std::shared_ptr<const CompiledPreference> pref;
  if (is_pref) {
    if (db_.catalog().version() == plan.catalog_version) {
      select = plan.expanded;
      pref = plan.preference;  // nullptr when PREFERRING has parameter holes
    } else {
      // DDL committed between preparation/lookup and this lock acquisition
      // — a stored PREFERENCE may mean something else now. Re-derive under
      // the held lock so the execution is consistent with the catalog it
      // reads (the transparent re-prepare).
      PSQL_ASSIGN_OR_RETURN(auto expanded, ExpandSelect(*plan.select));
      select = std::move(expanded);
      pref = nullptr;
    }
  }
  if (params != nullptr && !params->empty()) {
    auto bound = select->Clone();
    // Collapsed IN-list placeholders re-expand on the private clone first,
    // so binding below consumes the flat value vector 1:1 as always.
    if (wide) PSQL_RETURN_IF_ERROR(ExpandWideParameters(*bound, *widths));
    PSQL_RETURN_IF_ERROR(
        BindSelectParameters(*bound, *params, /*parse_errors=*/true));
    select = std::move(bound);
    if (plan.pref_has_params) pref = nullptr;
  }
  if (is_pref && pref == nullptr) {
    // A parameterized PREFERRING clause compiles per execution — but the
    // compilation is a pure function of (expanded clause, bound values), so
    // the plan memoizes it per bound-value fingerprint. Only sound while
    // the expansion is current (no DDL since preparation).
    const bool memoizable = plan.pref_has_params && params != nullptr &&
                            !params->empty() &&
                            db_.catalog().version() == plan.catalog_version;
    uint64_t fp = kFingerprintSeed;
    if (memoizable) {
      for (const Value& p : *params) fp = FingerprintValue(fp, p);
      // The same flat values can split differently across collapsed
      // placeholders (widths [2,1] vs [1,2] over three values compile
      // different preferences), so the split is part of the identity.
      if (wide) {
        for (uint32_t w : *widths) {
          fp = FingerprintValue(fp, Value::Int(static_cast<int64_t>(w)));
        }
      }
      std::lock_guard<std::mutex> guard(plan.bound_mutex);
      auto it = plan.bound_prefs.find(fp);
      if (it != plan.bound_prefs.end()) pref = it->second;
    }
    if (pref == nullptr) {
      PSQL_ASSIGN_OR_RETURN(auto analyzed, AnalyzePreferenceQuery(*select));
      pref = analyzed.pref;
      if (memoizable) {
        std::lock_guard<std::mutex> guard(plan.bound_mutex);
        if (plan.bound_prefs.size() >= CachedPlan::kBoundPrefCapacity) {
          plan.bound_prefs.clear();
        }
        plan.bound_prefs.emplace(fp, pref);
      }
    }
  }
  return ExecutionView{std::move(select), std::move(pref)};
}

// ===========================================================================
// Prepared execution over cursors
// ===========================================================================

Cursor Engine::MaterializedCursor(ResultTable result, Session* session,
                                  std::shared_ptr<Engine> keepalive) {
  auto impl = std::make_unique<Cursor::Impl>();
  impl->schema = result.schema();
  impl->table = std::move(result);
  impl->session = session;
  impl->engine = this;
  impl->engine_keepalive = std::move(keepalive);
  return Cursor(std::move(impl));
}

Result<ResultTable> Engine::ExecutePrepared(
    Session& session, std::shared_ptr<const CachedPlan> plan,
    bool plan_cache_hit, const std::vector<Value>* params,
    bool auto_parameterized, const std::vector<uint32_t>* widths) {
  PSQL_ASSIGN_OR_RETURN(
      Cursor cursor,
      OpenPreparedCursor(session, std::move(plan), plan_cache_hit, params,
                         auto_parameterized, nullptr, widths));
  return DrainCursor(cursor);
}

Result<Cursor> Engine::OpenPreparedCursor(
    Session& session, std::shared_ptr<const CachedPlan> plan,
    bool plan_cache_hit, const std::vector<Value>* params,
    bool auto_parameterized, std::shared_ptr<Engine> keepalive,
    const std::vector<uint32_t>* widths) {
  const size_t provided = params != nullptr ? params->size() : 0;
  uint64_t expected = plan->params.count();
  if (widths != nullptr && !widths->empty()) {
    // Collapsed placeholders: the plan carries one slot per placeholder
    // and the flat values must cover every slot's width exactly.
    if (widths->size() != plan->params.count()) {
      return Status::BindError(
          "statement expects " + std::to_string(plan->params.count()) +
          " placeholder(s), got " + std::to_string(widths->size()));
    }
    expected = 0;
    for (uint32_t w : *widths) expected += w;
  }
  if (expected != provided) {
    if (provided == 0) return UnboundParametersError();
    return Status::BindError("statement expects " + std::to_string(expected) +
                             " parameter(s), got " + std::to_string(provided));
  }
  PreferenceQueryStats& stats = session.ResetStatsForNewStatement();
  stats.plan_cache_hit = plan_cache_hit;
  stats.auto_parameterized = auto_parameterized;
  stats.bound_parameters = provided;

  // Deadline/cancel/budget governance for this statement. Materialized
  // results and error exits retire the context through the guard; a
  // streaming cursor takes it over (guard released) and retires it on
  // Close, so CancelCurrent keeps reaching in-flight pulls.
  std::shared_ptr<QueryContext> qctx = ArmStatementContext(session);
  ScopedQueryContext qscope(qctx.get());
  SessionContextClearGuard clear_guard(&session, qctx);

  if (plan->kind == StatementKind::kExplain) {
    PSQL_ASSIGN_OR_RETURN(ResultTable result,
                          ExecuteExplain(session, *plan, params, widths));
    FlushBatchExecStats(qctx.get(), stats);
    SnapshotCacheCounters(session);
    return MaterializedCursor(std::move(result), &session,
                              std::move(keepalive));
  }

  if (plan->select->IsPreferenceQuery()) {
    stats.was_preference_query = true;
    if (session.options().mode == EvaluationMode::kRewrite) {
      // The rewrite strategy creates and drops Aux views in the shared
      // catalog, so it is a writer; it materializes inside one exclusive
      // critical section and the cursor replays the rows.
      Result<ResultTable> result = [&]() -> Result<ResultTable> {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        PSQL_ASSIGN_OR_RETURN(ExecutionView view,
                              BindForExecutionLocked(*plan, params, widths));
        return ExecuteViaRewrite(session, *view.select, view.preference);
      }();
      if (result.ok()) {
        FlushBatchExecStats(qctx.get(), stats);
        SnapshotCacheCounters(session);
        return MaterializedCursor(std::move(*result), &session,
                                  std::move(keepalive));
      }
      if (!result.status().IsNotImplemented()) return result.status();
      // Rewriter refused (e.g. non-weak-order EXPLICIT): stream via BNL.
      stats.rewrite_fallback = true;
    }
    std::shared_lock<std::shared_mutex> lock(mutex_);
    // Pin the snapshot under the shared DDL lock (pins are only ever taken
    // while it is held, which is what lets the GC's exclusive acquisition
    // conclude "no pins, no readers"). The ambient scope makes binding,
    // planning, and Open all read at the pinned epoch.
    SnapshotPin pin(&db_.catalog().epochs());
    stats.pinned_epoch = pin.snapshot();
    ScopedSnapshot ambient(pin.snapshot());
    PSQL_ASSIGN_OR_RETURN(ExecutionView view,
                          BindForExecutionLocked(*plan, params, widths));
    Result<Cursor> cursor =
        OpenDirectCursor(session, std::move(view), std::move(lock),
                         std::move(pin), std::move(plan), qctx,
                         std::move(keepalive));
    if (cursor.ok()) clear_guard.Release();
    return cursor;
  }

  // Plain SELECT: stream straight out of the operator pipeline under the
  // shared DDL lock at a pinned snapshot.
  std::shared_lock<std::shared_mutex> lock(mutex_);
  SnapshotPin pin(&db_.catalog().epochs());
  stats.pinned_epoch = pin.snapshot();
  ScopedSnapshot ambient(pin.snapshot());
  PSQL_ASSIGN_OR_RETURN(ExecutionView view,
                        BindForExecutionLocked(*plan, params, widths));
  PSQL_ASSIGN_OR_RETURN(OperatorPtr root,
                        db_.executor().PlanSelectOperator(*view.select));
  auto impl = std::make_unique<Cursor::Impl>();
  impl->plain_root = std::move(root);
  impl->root = impl->plain_root.get();
  impl->lock = std::move(lock);
  impl->snapshot = pin.snapshot();
  impl->pin = std::move(pin);
  impl->ctx = qctx;
  impl->select_keepalive = view.select;
  impl->plan_keepalive = std::move(plan);
  impl->engine_keepalive = std::move(keepalive);
  impl->engine = this;
  impl->session = &session;
  impl->stats = stats;
  impl->stats_epoch = session.stats_epoch();
  impl->schema = impl->root->schema();
  Status open = impl->root->Open();
  Cursor cursor(std::move(impl));
  if (!open.ok()) {
    cursor.Close();
    return open;
  }
  clear_guard.Release();
  return cursor;
}

Result<Cursor> Engine::OpenDirectCursor(Session& session, ExecutionView view,
                                        std::shared_lock<std::shared_mutex>
                                            lock,
                                        SnapshotPin pin,
                                        std::shared_ptr<const CachedPlan>
                                            plan,
                                        std::shared_ptr<QueryContext> qctx,
                                        std::shared_ptr<Engine> keepalive) {
  PreferenceQueryStats& stats = session.mutable_last_stats();
  AnalyzedPreferenceQuery analyzed(view.select.get(), view.preference);
  const DirectEvalOptions options = DirectOptions(session);
  PSQL_ASSIGN_OR_RETURN(PreferencePlan pplan,
                        BuildPreferencePlan(db_, analyzed, options));
  stats.bmo_algorithm = BmoAlgorithmToString(options.bmo.algorithm);
  stats.bmo_kernel =
      DominanceKernelToString(analyzed.preference().program().kernel());
  stats.used_pushdown = pplan.used_pushdown;
  stats.pushdown_detail = pplan.pushdown_detail;
  stats.key_cache_eligible = pplan.key_cache_eligible;
  stats.key_cache_detail = pplan.key_cache_detail;
  stats.skyline_cache_hit = pplan.skyline_cache_hit;
  stats.skyline_cache_detail = pplan.skyline_cache_detail;

  auto impl = std::make_unique<Cursor::Impl>();
  impl->pref_plan = std::move(pplan);
  impl->root = impl->pref_plan.root.get();
  impl->lock = std::move(lock);
  impl->snapshot = pin.snapshot();
  impl->pin = std::move(pin);
  impl->ctx = std::move(qctx);
  impl->select_keepalive = std::move(view.select);
  impl->pref_keepalive = std::move(view.preference);
  impl->plan_keepalive = std::move(plan);
  impl->engine_keepalive = std::move(keepalive);
  impl->engine = this;
  impl->session = &session;
  impl->stats = stats;
  impl->stats_epoch = session.stats_epoch();
  impl->schema = impl->root->schema();
  // Open consumes the candidate stream (the BMO block is a pipeline
  // breaker); afterwards rows stream out on demand.
  Status open = impl->root->Open();
  Cursor cursor(std::move(impl));
  if (!open.ok()) {
    // Close flushes whatever the operators counted before the failure into
    // last_stats and releases the lock.
    cursor.Close();
    return open;
  }
  return cursor;
}

// ===========================================================================
// Preference strategies (materialized halves)
// ===========================================================================

Result<std::shared_ptr<SelectStmt>> Engine::ExpandSelect(
    const SelectStmt& select) {
  auto out = select.Clone();
  if (out->preferring != nullptr &&
      ContainsNamedPreference(*out->preferring)) {
    PSQL_ASSIGN_OR_RETURN(
        out->preferring,
        ExpandNamedPreferences(*out->preferring, db_.catalog()));
  }
  return out;
}

Result<std::vector<std::string>> Engine::ProbeBaseColumns(
    const SelectStmt& select) {
  // Schema probe: run the candidate query with a FALSE predicate; only the
  // output schema matters.
  auto probe = std::make_shared<SelectStmt>();
  probe->items.push_back({Expr::MakeStar(), ""});
  for (const auto& tr : select.from) probe->from.push_back(tr->Clone());
  probe->where = Expr::MakeLiteral(Value::Bool(false));
  PSQL_ASSIGN_OR_RETURN(ResultTable rt, db_.ExecuteSelect(*probe));
  return rt.schema().Names();
}

DirectEvalOptions Engine::DirectOptions(const Session& session) {
  const ConnectionOptions& options = session.options();
  DirectEvalOptions direct;
  direct.but_only_mode = options.but_only_mode;
  direct.bmo.bnl_window = options.bnl_window;
  direct.threads = options.bmo_threads;
  direct.parallel_min_rows = options.parallel_min_rows;
  direct.pushdown = options.preference_pushdown;
  direct.bmo.simd = options.simd;
  direct.key_cache = options.key_cache ? &key_cache_ : nullptr;
  direct.filter_cache = options.key_cache ? &filter_cache_ : nullptr;
  direct.skyline_cache = options.skyline_cache;
  switch (options.mode) {
    case EvaluationMode::kNaiveNestedLoop:
      direct.bmo.algorithm = BmoAlgorithm::kNaiveNestedLoop;
      break;
    case EvaluationMode::kSortFilterSkyline:
      direct.bmo.algorithm = BmoAlgorithm::kSortFilterSkyline;
      break;
    case EvaluationMode::kRewrite:  // fallback
    case EvaluationMode::kBlockNestedLoop:
      direct.bmo.algorithm = BmoAlgorithm::kBlockNestedLoop;
      break;
  }
  // The bmo_algorithm knob overrides the algorithm the mode implies (the
  // only way to select LESS, which has no evaluation mode of its own).
  if (options.bmo_algorithm) direct.bmo.algorithm = *options.bmo_algorithm;
  return direct;
}

Result<ResultTable> Engine::ExecuteViaRewrite(
    Session& session, const SelectStmt& select,
    const std::shared_ptr<const CompiledPreference>& pref) {
  PreferenceQueryStats& stats = session.mutable_last_stats();
  AnalyzedPreferenceQuery analyzed(&select, pref);
  PSQL_ASSIGN_OR_RETURN(auto base_columns, ProbeBaseColumns(select));
  PSQL_RETURN_IF_ERROR(
      ValidatePreferenceColumns(analyzed.preference(), base_columns));
  std::string aux_name =
      "_prefsql_aux_" + std::to_string(aux_counter_.fetch_add(1) + 1);
  PSQL_ASSIGN_OR_RETURN(
      RewriteOutput rewritten,
      RewritePreferenceQuery(analyzed, base_columns,
                             session.options().but_only_mode, aux_name));
  // The transient Aux views must not churn the catalog version — cached
  // preparations do not depend on them.
  ScopedVersionBumpSuppression suppress(&db_.catalog());
  for (const auto& st : rewritten.setup) {
    PSQL_ASSIGN_OR_RETURN(ResultTable ignored, db_.ExecuteStatement(st));
    (void)ignored;
  }
  auto result = db_.ExecuteSelect(*rewritten.query);
  if (!session.options().keep_aux_views) {
    for (const auto& st : rewritten.teardown) {
      auto drop = db_.ExecuteStatement(st);
      if (!drop.ok() && result.ok()) return drop.status();
    }
  }
  PSQL_RETURN_IF_ERROR(result.status());
  stats.used_rewrite = true;
  stats.result_count = result->num_rows();
  return result;
}

Result<ResultTable> Engine::ExecuteDirect(
    Session& session, const SelectStmt& select,
    const std::shared_ptr<const CompiledPreference>& pref) {
  PreferenceQueryStats& stats = session.mutable_last_stats();
  AnalyzedPreferenceQuery analyzed(&select, pref);
  DirectEvalStats direct_stats;
  const DirectEvalOptions direct_options = DirectOptions(session);
  auto result = ExecutePreferenceQueryDirect(db_, analyzed, direct_options,
                                             &direct_stats);
  // The BMO operators flush their counters on Close, so the stats are
  // meaningful even when the drain failed partway.
  stats.candidate_count = direct_stats.candidate_count;
  stats.bmo_comparisons = direct_stats.bmo.comparisons;
  stats.bmo_partitions = direct_stats.partitions;
  stats.bmo_threads_used = direct_stats.threads_used;
  stats.bmo_algorithm = BmoAlgorithmToString(direct_options.bmo.algorithm);
  stats.bmo_kernel = DominanceKernelToString(direct_stats.bmo.kernel);
  stats.bmo_simd = SimdVariantToString(direct_stats.bmo.simd);
  stats.bmo_key_build_ns = direct_stats.bmo.key_build_ns;
  stats.used_pushdown = direct_stats.used_pushdown;
  stats.pushdown_detail = direct_stats.pushdown_detail;
  stats.prefilter_candidate_count = direct_stats.prefilter.candidate_count;
  stats.prefilter_result_count = direct_stats.prefilter.result_count;
  stats.key_cache_eligible = direct_stats.key_cache_eligible;
  stats.key_cache_hit = direct_stats.key_cache_hit;
  stats.key_cache_detail = direct_stats.key_cache_detail;
  stats.skyline_cache_hit = direct_stats.skyline_cache_hit;
  stats.skyline_cache_detail = direct_stats.skyline_cache_detail;
  if (result.ok()) {
    stats.result_count = result->num_rows();
  }
  return result;
}

Result<ResultTable> Engine::ExecuteExplain(
    Session& session, const CachedPlan& plan,
    const std::vector<Value>* params, const std::vector<uint32_t>* widths) {
  Schema schema = Schema::FromNames({"plan"});
  std::vector<Row> lines;
  auto add = [&](const std::string& s) { lines.push_back({Value::Text(s)}); };
  std::shared_lock<std::shared_mutex> lock(mutex_);
  SnapshotPin pin(&db_.catalog().epochs());
  session.mutable_last_stats().pinned_epoch = pin.snapshot();
  ScopedSnapshot ambient(pin.snapshot());
  PSQL_ASSIGN_OR_RETURN(ExecutionView view,
                        BindForExecutionLocked(plan, params, widths));
  const SelectStmt& select = *view.select;
  if (!select.IsPreferenceQuery()) {
    add("-- standard SQL: passed through to the host database unchanged");
    add(SelectToSql(select));
    return ResultTable(std::move(schema), std::move(lines));
  }
  const std::string plan_cache_line =
      std::string("-- plan cache: ") +
      (session.last_stats().plan_cache_hit ? "hit" : "miss") +
      " (catalog version " + std::to_string(db_.catalog().version()) + ")";
  AnalyzedPreferenceQuery analyzed(&select, view.preference);
  if (session.options().mode != EvaluationMode::kRewrite) {
    // Direct path: describe the physical decisions (pushdown placement,
    // skyline algorithm, parallelism, cache keying) by compiling the plan
    // without draining it.
    DirectEvalOptions direct = DirectOptions(session);
    PSQL_ASSIGN_OR_RETURN(
        PreferencePlan pplan,
        BuildPreferencePlan(db_, analyzed, direct, /*count_stats=*/false));
    add("-- direct evaluation (mode=" +
        std::string(EvaluationModeToString(session.options().mode)) +
        ", algorithm=" +
        std::string(BmoAlgorithmToString(direct.bmo.algorithm)) +
        ", kernel=" +
        std::string(DominanceKernelToString(
            analyzed.preference().program().kernel())) +
        ", bmo_threads=" + std::to_string(direct.threads) + ", simd=" +
        std::string(SimdVariantToString(
            direct.bmo.simd &&
                    analyzed.preference().program().kernel() !=
                        DominanceKernel::kGeneric
                ? DispatchedSimdVariant()
                : SimdVariant::kScalar)) +
        ")");
    add("-- " + pplan.pushdown_detail);
    add("-- " + pplan.key_cache_detail);
    add("-- " + pplan.skyline_cache_detail);
    add("-- mvcc: snapshot epoch " + std::to_string(pin.snapshot()) +
        ", pinned readers " +
        std::to_string(db_.catalog().epochs().pinned_count()) +
        ", gc cleared " +
        std::to_string(db_.executor().stats().gc_cleared.load(
            std::memory_order_relaxed)));
    add(std::string("-- vectorized: ") +
        (session.options().vectorized_execution ? "on" : "off") +
        " (batch capacity " + std::to_string(kRowBatchCapacity) + ")");
    add(plan_cache_line);
    add(SelectToSql(select));
    return ResultTable(std::move(schema), std::move(lines));
  }
  PSQL_ASSIGN_OR_RETURN(auto base_columns, ProbeBaseColumns(select));
  auto rewritten =
      RewritePreferenceQuery(analyzed, base_columns,
                             session.options().but_only_mode, "Aux");
  if (!rewritten.ok()) {
    if (rewritten.status().IsNotImplemented()) {
      add("-- preference is not expressible as level columns; evaluated "
          "in-engine (BNL)");
      add(plan_cache_line);
      add(SelectToSql(select));
      return ResultTable(std::move(schema), std::move(lines));
    }
    return rewritten.status();
  }
  add("-- Preference SQL optimizer translation (paper 3.2)");
  add(plan_cache_line);
  for (const auto& st : rewritten->setup) add(StatementToSql(st) + ";");
  add(SelectToSql(*rewritten->query) + ";");
  for (const auto& st : rewritten->teardown) add(StatementToSql(st) + ";");
  return ResultTable(std::move(schema), std::move(lines));
}

Result<std::string> Engine::RewriteToSql(Session& session,
                                         const std::string& sql) {
  PSQL_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != StatementKind::kSelect ||
      !stmt.select->IsPreferenceQuery()) {
    return Status::InvalidArgument(
        "RewriteToSql expects a query with a PREFERRING clause");
  }
  if (StatementHasParameters(stmt)) return UnboundParametersError();
  PSQL_ASSIGN_OR_RETURN(auto analyzed, AnalyzePreferenceQuery(*stmt.select));
  std::shared_lock<std::shared_mutex> lock(mutex_);
  PSQL_ASSIGN_OR_RETURN(auto base_columns, ProbeBaseColumns(*stmt.select));
  std::string aux_name = "Aux";
  PSQL_ASSIGN_OR_RETURN(
      RewriteOutput rewritten,
      RewritePreferenceQuery(analyzed, base_columns,
                             session.options().but_only_mode, aux_name));
  return rewritten.ToScript();
}

void Engine::SnapshotCacheCounters(Session& session) {
  PreferenceQueryStats& stats = session.mutable_last_stats();
  stats.plan_cache_evictions = plan_cache_.counters().evictions;
  stats.key_cache_evictions = key_cache_.counters().evictions;
  stats.skyline_maintenance_events = key_cache_.maintenance_events();
  stats.skyline_invalidations = key_cache_.invalidations();
  const Executor::Stats& xstats = db_.executor().stats();
  stats.mvcc_versions_scanned =
      xstats.mvcc.versions_scanned.load(std::memory_order_relaxed);
  stats.mvcc_versions_skipped =
      xstats.mvcc.versions_skipped.load(std::memory_order_relaxed);
  stats.mvcc_gc_cleared = xstats.gc_cleared.load(std::memory_order_relaxed);
}

// ===========================================================================
// Incremental skyline-cache maintenance
// ===========================================================================

namespace {

// Maintenance reuses the block dominance kernels at full dispatch width
// (it runs under the exclusive statement lock, so there is no per-session
// simd knob to honor).
SimdVariant MaintenanceSimd(const DominanceProgram& prog) {
  return prog.kernel() == DominanceKernel::kGeneric ? SimdVariant::kScalar
                                                    : DispatchedSimdVariant();
}

// True iff the ascending position lists `touched` and `skyline` intersect.
bool TouchesSkyline(const std::vector<uint32_t>& touched,
                    const std::vector<size_t>& skyline) {
  size_t i = 0;
  size_t j = 0;
  while (i < touched.size() && j < skyline.size()) {
    if (touched[i] < skyline[j]) {
      ++i;
    } else if (touched[i] > skyline[j]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

// Dominance-tests row `pos` (already keyed in `keys`) against the evolving
// skyline: a dominated tuple is discarded, a surviving one evicts the
// members it dominates and joins. Exact because a non-maximal tuple is
// always dominated by some *maximal* tuple (follow its dominator chain —
// finite and acyclic by transitivity/irreflexivity), so testing against the
// skyline alone decides maximality.
void AdmitIntoSkyline(const DominanceProgram& prog, const KeyStore& keys,
                      SimdVariant simd, size_t pos,
                      std::vector<size_t>* sky) {
  if (prog.AnyDominates(keys, sky->data(), sky->size(), pos, simd,
                        nullptr)) {
    return;
  }
  std::vector<uint8_t> evict(sky->size());
  prog.DominatesBlock(keys, pos, sky->data(), sky->size(), evict.data(),
                      simd, nullptr);
  size_t kept = 0;
  for (size_t w = 0; w < sky->size(); ++w) {
    if (!evict[w]) (*sky)[kept++] = (*sky)[w];
  }
  sky->resize(kept);
  sky->push_back(pos);
}

// Re-derives one cache entry under the post-DML state of `table`; nullptr
// means the entry cannot be carried over (skyline member end-stamped,
// re-key failure, or recorded effect inconsistent with the observed table)
// and must be invalidated. Under MVCC every DML is appends + end-stamps in
// a position-stable heap, so all three statement kinds share one shape:
// the entry's keys for the surviving slots are still correct verbatim, the
// appended slots [heap_before, heap_size) get fresh keys, and each
// appended tuple is dominance-tested against the cached skyline. Returns
// `entry` itself (no copy) when nothing was appended — a pure DELETE of
// non-members keeps both keys and skyline bit-identical; only the version
// key moves.
std::shared_ptr<const SkylineEntry> MaintainEntry(
    const std::shared_ptr<const SkylineEntry>& entry,
    const Executor::DmlEffect& dml, const Table& table) {
  if (entry->pref == nullptr || entry->keys == nullptr) return nullptr;
  // The entry's keys cover exactly the slot space sealed by the
  // pre-statement version.
  if (entry->keys->size() != dml.heap_before) return nullptr;
  const size_t heap_now = table.heap_size();
  if (heap_now < dml.heap_before) return nullptr;
  // End-stamping a skyline member masks an unknown dominated set — the
  // carried skyline would be missing resurfacing tuples. Invalidate.
  // (End-stamping non-members is free: removing dominated tuples never
  // changes the skyline, and dead slots are never candidates, so their
  // stale keys are never consulted.)
  if (entry->skyline.has_value() &&
      TouchesSkyline(dml.dead, *entry->skyline)) {
    return nullptr;
  }
  if (heap_now == dml.heap_before) return entry;

  const CompiledPreference& pref = *entry->pref;
  const DominanceProgram& prog = pref.program();
  const SimdVariant simd = MaintenanceSimd(prog);
  auto keys = std::make_shared<KeyStore>(*entry->keys);
  keys->Reserve(heap_now);
  for (size_t slot = dml.heap_before; slot < heap_now; ++slot) {
    if (!pref.AppendKey(table.schema(), table.heap().row(slot), keys.get(),
                        nullptr)
             .ok()) {
      return nullptr;
    }
  }
  if (keys->size() != heap_now) return nullptr;
  auto out = std::make_shared<SkylineEntry>();
  out->pref = entry->pref;
  if (entry->skyline.has_value()) {
    // The surviving members still dominate every surviving old non-member,
    // so admitting the appended tuples one by one against the evolving
    // skyline is exact (an appended tuple that evicts a member dominates
    // that member's subjects transitively).
    std::vector<size_t> sky = *entry->skyline;
    for (size_t slot = dml.heap_before; slot < heap_now; ++slot) {
      AdmitIntoSkyline(prog, *keys, simd, slot, &sky);
    }
    std::sort(sky.begin(), sky.end());
    out->skyline = std::move(sky);
  }
  out->keys = std::move(keys);
  return out;
}

}  // namespace

void Engine::MaintainSkylineCaches() {
  // Injected fault: maintenance "fails" — skip the carry entirely. Sound by
  // construction: the un-carried entries stay keyed at the superseded table
  // version, unreachable to any new reader, and the pin-aware sweep
  // reclaims them; repeated queries just rebuild from scratch.
  PSQL_FAILPOINT_VOID("skyline_maintenance");
  using Kind = Executor::DmlEffect::Kind;
  const Executor::DmlEffect& dml = db_.executor().last_dml();
  if (dml.kind == Kind::kNone) return;
  auto table_r = db_.catalog().GetTable(dml.table);
  if (!table_r.ok()) return;
  const Table& table = **table_r;
  if (table.id() != dml.table_id) return;
  // A DML statement that touched no rows seals no version and leaves every
  // entry reachable.
  if (table.version() == dml.version_before) return;
  EpochManager& epochs = db_.catalog().epochs();
  // A reader pinned at a pre-statement snapshot can still serve the
  // superseded entry — keep it resident next to the carried one. With no
  // such pin the carry is an atomic Rekey, so maintenance never doubles
  // the entry's residency (peak footprint stays flat across DML).
  const bool old_version_pinned =
      table.VersionAt(epochs.MinPinnedOr(epochs.current())) <=
      dml.version_before;
  for (auto& [key, entry] : key_cache_.SnapshotForTable(dml.table_id)) {
    if (key.table_version != dml.version_before || entry == nullptr) {
      continue;  // older version; kept or swept by the pin-aware sweep
    }
    auto maintained = MaintainEntry(entry, dml, table);
    if (maintained != nullptr) {
      KeyCacheKey new_key = key;
      new_key.table_version = table.version();
      if (old_version_pinned) {
        key_cache_.Insert(new_key, std::move(maintained));
      } else {
        key_cache_.Rekey(key, new_key, std::move(maintained));
      }
      key_cache_.CountMaintenance();
    } else {
      key_cache_.CountInvalidation();
    }
  }
}

void Engine::SweepCaches() {
  plan_cache_.EvictOtherVersions(db_.catalog().version());
  EpochManager& epochs = db_.catalog().epochs();
  // Liveness is a version *range* per table incarnation: a reader pinned at
  // the oldest snapshot may still serve entries keyed at the version its
  // snapshot sees, so everything from that version up to the current one
  // stays resident; with no pins the range collapses to the current
  // version.
  const uint64_t min_snapshot = epochs.MinPinnedOr(epochs.current());
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> live;
  for (const auto& name : db_.catalog().TableNames()) {
    auto table = db_.catalog().GetTable(name);
    if (table.ok()) {
      live[(*table)->id()] = {(*table)->VersionAt(min_snapshot),
                              (*table)->version()};
    }
  }
  auto is_live = [&](uint64_t table_id, uint64_t version) {
    auto it = live.find(table_id);
    return it != live.end() && version >= it->second.first &&
           version <= it->second.second;
  };
  key_cache_.EvictStale(is_live);
  filter_cache_.EvictStale(is_live);
}

void Engine::TryCollectGarbage(Session& session) {
  if (!session.options().mvcc_gc) return;
  // Exclusive DDL-lock acquisition proves no statement is in flight and no
  // snapshot is pinned (pins are only taken under the shared lock), so
  // last_dml is stable to read and every version dead at or before the
  // horizon is unreachable forever. Readers present? Skip — the next
  // write retries.
  std::unique_lock<std::shared_mutex> lock(mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  // Injected fault: the horizon computation "fails" — skip this sweep (the
  // background reclaimer or a later write retries).
  PSQL_FAILPOINT_VOID("gc_horizon");
  const Executor::DmlEffect& dml = db_.executor().last_dml();
  if (dml.kind == Executor::DmlEffect::Kind::kNone) return;
  auto table = db_.catalog().GetTable(dml.table);
  if (!table.ok() || (*table)->id() != dml.table_id) return;
  EpochManager& epochs = db_.catalog().epochs();
  const uint64_t horizon = epochs.MinPinnedOr(epochs.current());
  const size_t freed = (*table)->CollectGarbage(horizon);
  if (freed > 0) {
    db_.executor().CountGarbageCollected(freed);
  }
}

namespace {

// Interprets a SET value as a non-negative integer.
Result<size_t> SetValueAsSize(const Value& v, const std::string& knob) {
  if (v.type() == ValueType::kInt && v.AsInt() >= 0) {
    return static_cast<size_t>(v.AsInt());
  }
  return Status::InvalidArgument("SET " + knob +
                                 " expects a non-negative integer");
}

// Interprets a SET value as a boolean (on/off/true/false/1/0).
Result<bool> SetValueAsBool(const Value& v, const std::string& knob) {
  if (v.type() == ValueType::kBool) return v.AsBool();
  if (v.type() == ValueType::kInt) return v.AsInt() != 0;
  if (v.type() == ValueType::kText) {
    const std::string t = ToLower(v.AsText());
    if (t == "on" || t == "true" || t == "1") return true;
    if (t == "off" || t == "false" || t == "0") return false;
  }
  return Status::InvalidArgument("SET " + knob + " expects on or off");
}

}  // namespace

Result<ResultTable> Engine::ExecuteSet(Session& session,
                                       const Statement& stmt) {
  ConnectionOptions& options = session.options();
  const std::string knob = ToLower(stmt.name);
  const Value& v = stmt.set_value;
  const ConnectionOptions defaults;
  const bool reset = v.type() == ValueType::kNull ||
                     (v.type() == ValueType::kText &&
                      ToLower(v.AsText()) == "default");
  if (knob == "bmo_threads") {
    if (reset) {
      options.bmo_threads = defaults.bmo_threads;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.bmo_threads, SetValueAsSize(v, knob));
    }
  } else if (knob == "parallel_min_rows") {
    if (reset) {
      options.parallel_min_rows = defaults.parallel_min_rows;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.parallel_min_rows,
                            SetValueAsSize(v, knob));
    }
  } else if (knob == "bnl_window") {
    if (reset) {
      options.bnl_window = defaults.bnl_window;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.bnl_window, SetValueAsSize(v, knob));
    }
  } else if (knob == "preference_pushdown") {
    if (reset) {
      options.preference_pushdown = defaults.preference_pushdown;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.preference_pushdown,
                            SetValueAsBool(v, knob));
    }
  } else if (knob == "keep_aux_views") {
    if (reset) {
      options.keep_aux_views = defaults.keep_aux_views;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.keep_aux_views, SetValueAsBool(v, knob));
    }
  } else if (knob == "plan_cache") {
    if (reset) {
      options.plan_cache = defaults.plan_cache;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.plan_cache, SetValueAsBool(v, knob));
    }
  } else if (knob == "auto_parameterize") {
    if (reset) {
      options.auto_parameterize = defaults.auto_parameterize;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.auto_parameterize,
                            SetValueAsBool(v, knob));
    }
  } else if (knob == "key_cache") {
    if (reset) {
      options.key_cache = defaults.key_cache;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.key_cache, SetValueAsBool(v, knob));
    }
  } else if (knob == "skyline_cache") {
    if (reset) {
      options.skyline_cache = defaults.skyline_cache;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.skyline_cache, SetValueAsBool(v, knob));
    }
  } else if (knob == "simd") {
    if (reset) {
      options.simd = defaults.simd;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.simd, SetValueAsBool(v, knob));
    }
  } else if (knob == "mvcc_gc") {
    if (reset) {
      options.mvcc_gc = defaults.mvcc_gc;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.mvcc_gc, SetValueAsBool(v, knob));
    }
  } else if (knob == "mvcc_gc_background") {
    if (reset) {
      options.mvcc_gc_background = defaults.mvcc_gc_background;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.mvcc_gc_background,
                            SetValueAsBool(v, knob));
    }
    // Engine-wide effect: pauses/resumes the background reclaimer thread
    // for every session sharing this engine.
    gc_background_enabled_.store(options.mvcc_gc_background,
                                 std::memory_order_relaxed);
    gc_cv_.notify_one();
  } else if (knob == "statement_timeout_ms") {
    if (reset) {
      options.statement_timeout_ms = defaults.statement_timeout_ms;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.statement_timeout_ms,
                            SetValueAsSize(v, knob));
    }
  } else if (knob == "vectorized_execution") {
    if (reset) {
      options.vectorized_execution = defaults.vectorized_execution;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.vectorized_execution,
                            SetValueAsBool(v, knob));
    }
  } else if (knob == "statement_memory_bytes") {
    if (reset) {
      options.statement_memory_bytes = defaults.statement_memory_bytes;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.statement_memory_bytes,
                            SetValueAsSize(v, knob));
    }
  } else if (knob == "engine_memory_bytes") {
    if (reset) {
      options.engine_memory_bytes = defaults.engine_memory_bytes;
    } else {
      PSQL_ASSIGN_OR_RETURN(options.engine_memory_bytes,
                            SetValueAsSize(v, knob));
    }
    // Engine-wide effect: the budget is shared by all sessions' statements.
    engine_budget_.set_limit(options.engine_memory_bytes);
  } else if (knob == "evaluation_mode") {
    if (reset) {
      options.mode = defaults.mode;
    } else if (v.type() == ValueType::kText) {
      const std::string m = ToLower(v.AsText());
      if (m == "rewrite") {
        options.mode = EvaluationMode::kRewrite;
      } else if (m == "bnl") {
        options.mode = EvaluationMode::kBlockNestedLoop;
      } else if (m == "naive") {
        options.mode = EvaluationMode::kNaiveNestedLoop;
      } else if (m == "sfs") {
        options.mode = EvaluationMode::kSortFilterSkyline;
      } else {
        return Status::InvalidArgument(
            "SET evaluation_mode expects rewrite, bnl, naive or sfs");
      }
    } else {
      return Status::InvalidArgument(
          "SET evaluation_mode expects rewrite, bnl, naive or sfs");
    }
  } else if (knob == "bmo_algorithm") {
    if (reset) {
      options.bmo_algorithm = defaults.bmo_algorithm;
    } else if (v.type() == ValueType::kText) {
      PSQL_ASSIGN_OR_RETURN(auto algo,
                            BmoAlgorithmFromString(ToLower(v.AsText())));
      options.bmo_algorithm = algo;
    } else {
      return Status::InvalidArgument(
          "SET bmo_algorithm expects naive, bnl, sfs, less or default");
    }
  } else if (knob == "but_only_mode") {
    const std::string m =
        v.type() == ValueType::kText ? ToLower(v.AsText()) : "";
    if (reset) {
      options.but_only_mode = defaults.but_only_mode;
    } else if (m == "prefilter") {
      options.but_only_mode = ButOnlyMode::kPreFilter;
    } else if (m == "postfilter") {
      options.but_only_mode = ButOnlyMode::kPostFilter;
    } else {
      return Status::InvalidArgument(
          "SET but_only_mode expects prefilter or postfilter");
    }
  } else {
    return Status::InvalidArgument(
        "unknown setting '" + stmt.name +
        "' (known: evaluation_mode, bmo_algorithm, bmo_threads, "
        "parallel_min_rows, preference_pushdown, bnl_window, but_only_mode, "
        "keep_aux_views, plan_cache, auto_parameterize, key_cache, "
        "skyline_cache, simd, mvcc_gc, mvcc_gc_background, "
        "statement_timeout_ms, vectorized_execution, "
        "statement_memory_bytes, engine_memory_bytes)");
  }

  // Echo the effective value so scripts/shell users see what stuck.
  std::string effective;
  if (knob == "bmo_threads") {
    effective = std::to_string(options.bmo_threads);
  } else if (knob == "parallel_min_rows") {
    effective = std::to_string(options.parallel_min_rows);
  } else if (knob == "bnl_window") {
    effective = std::to_string(options.bnl_window);
  } else if (knob == "preference_pushdown") {
    effective = options.preference_pushdown ? "on" : "off";
  } else if (knob == "keep_aux_views") {
    effective = options.keep_aux_views ? "on" : "off";
  } else if (knob == "plan_cache") {
    effective = options.plan_cache ? "on" : "off";
  } else if (knob == "auto_parameterize") {
    effective = options.auto_parameterize ? "on" : "off";
  } else if (knob == "key_cache") {
    effective = options.key_cache ? "on" : "off";
  } else if (knob == "skyline_cache") {
    effective = options.skyline_cache ? "on" : "off";
  } else if (knob == "simd") {
    effective = options.simd ? "on" : "off";
  } else if (knob == "mvcc_gc") {
    effective = options.mvcc_gc ? "on" : "off";
  } else if (knob == "mvcc_gc_background") {
    effective = options.mvcc_gc_background ? "on" : "off";
  } else if (knob == "statement_timeout_ms") {
    effective = std::to_string(options.statement_timeout_ms);
  } else if (knob == "vectorized_execution") {
    effective = options.vectorized_execution ? "on" : "off";
  } else if (knob == "statement_memory_bytes") {
    effective = std::to_string(options.statement_memory_bytes);
  } else if (knob == "engine_memory_bytes") {
    effective = std::to_string(options.engine_memory_bytes);
  } else if (knob == "evaluation_mode") {
    effective = EvaluationModeToString(options.mode);
  } else if (knob == "bmo_algorithm") {
    effective = options.bmo_algorithm
                    ? BmoAlgorithmToString(*options.bmo_algorithm)
                    : "default";
  } else if (knob == "but_only_mode") {
    effective = options.but_only_mode == ButOnlyMode::kPreFilter
                    ? "prefilter"
                    : "postfilter";
  }
  Schema schema = Schema::FromNames({"setting", "value"});
  std::vector<Row> rows;
  rows.push_back({Value::Text(knob), Value::Text(effective)});
  return ResultTable(std::move(schema), std::move(rows));
}

}  // namespace prefsql
