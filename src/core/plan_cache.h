// PlanCache: engine-owned reuse of statement preparations across queries
// and sessions.
//
// "Preparing" a statement covers everything up to execution that does not
// depend on table contents: lex + parse, stored-PREFERENCE expansion (PDL),
// and compilation of the PREFERRING clause into a CompiledPreference
// (semantic analysis, EXPLICIT closure, dominance-program compilation). A
// cache entry is keyed by
//
//   (parameterized normalized text, session knob fingerprint, catalog
//    version)
//
// so a repeated statement skips all of it. The text component is the
// auto-parameterized canonical form when literals could be lifted
// (sql/normalize.h ParameterizeSql — statements differing only in literal
// values share one entry) and the plain normalized text otherwise; both
// collapse whitespace but preserve case, so the key never conflates two
// spellings that would display differently. The catalog version component
// makes any DDL (including CREATE/DROP PREFERENCE, which changes what an
// expansion means) leave older preparations unreachable; the knob
// fingerprint isolates sessions whose settings would prepare differently.
// Only SELECT and EXPLAIN statements are cached — they are the serving hot
// path, and they never mutate.
//
// Entries are immutable and shared: concurrent sessions may execute the
// same preparation simultaneously (the ASTs and the compiled preference are
// only ever read during execution).

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "preference/composite.h"
#include "sql/parameters.h"
#include "sql/ast.h"
#include "util/lru_cache.h"

namespace prefsql {

/// One cached preparation. `select` is the parsed query block (kSelect and
/// kExplain are the only cached kinds) and may contain `?` / `$name`
/// parameter holes — both user-written placeholders and literals lifted by
/// auto-parameterization; bound values are injected at execute time. The
/// expanded/preference fields are engaged for preference queries only.
struct CachedPlan {
  StatementKind kind = StatementKind::kSelect;
  std::shared_ptr<const SelectStmt> select;
  /// PREFERRING with stored PREFERENCE references expanded (PDL).
  std::shared_ptr<const SelectStmt> expanded;
  /// The compiled PREFERRING clause of `expanded`; nullptr when the clause
  /// contains parameter holes (it is then compiled per execution, after the
  /// bound values are injected).
  std::shared_ptr<const CompiledPreference> preference;
  /// Catalog version the expansion was prepared against. The engine
  /// re-validates it under the statement lock and re-expands when DDL
  /// committed in between (the cache key alone cannot close that window —
  /// it is computed before the lock is taken).
  uint64_t catalog_version = 0;
  /// Parameter signature of `select` (arity, names, type constraints).
  ParameterSignature params;
  /// The PREFERRING clause contains parameter holes (see `preference`).
  bool pref_has_params = false;

  /// Per-bound-value memo of compiled PREFERRING clauses, engaged when
  /// `pref_has_params`: fingerprint of the bound values -> compilation.
  /// Re-executing a prepared statement with values seen before then skips
  /// the semantic analysis + dominance-program compilation entirely.
  /// Entries are immutable and shared like `preference`; the map itself is
  /// the only mutable state of a published plan, guarded by `bound_mutex`
  /// and bounded (cleared wholesale at kBoundPrefCapacity).
  static constexpr size_t kBoundPrefCapacity = 64;
  mutable std::mutex bound_mutex;
  mutable std::unordered_map<uint64_t,
                             std::shared_ptr<const CompiledPreference>>
      bound_prefs;
};

struct PlanCacheKey {
  std::string text;  ///< NormalizeSql of the statement
  uint64_t knob_fingerprint = 0;
  uint64_t catalog_version = 0;

  bool operator==(const PlanCacheKey& other) const = default;
};

class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 256) : cache_(capacity) {}

  /// The cached preparation for `key`, or nullptr. Counts a hit or miss
  /// and refreshes the entry's LRU position.
  std::shared_ptr<const CachedPlan> Lookup(const PlanCacheKey& key) {
    return cache_.Lookup(key);
  }

  /// Publishes a preparation (replacing any entry under `key`). May
  /// LRU-evict the least recently used entry.
  void Insert(const PlanCacheKey& key,
              std::shared_ptr<const CachedPlan> prepared) {
    if (prepared != nullptr) cache_.Insert(key, std::move(prepared));
  }

  /// Memory-pressure shed: drops up to `n` cold entries (LRU order).
  size_t Shed(size_t n) { return cache_.EvictOldest(n); }

  /// Early reclamation after DDL: drops every entry whose catalog version
  /// differs from `current` (they can never be looked up again). Returns
  /// the number of dropped entries.
  size_t EvictOtherVersions(uint64_t current) {
    return cache_.EvictWhere([current](const PlanCacheKey& key) {
      return key.catalog_version != current;
    });
  }

  struct KeyHash {
    size_t operator()(const PlanCacheKey& k) const {
      uint64_t h = FingerprintString(kFingerprintSeed, k.text);
      h = FingerprintMix(h, k.knob_fingerprint);
      h = FingerprintMix(h, k.catalog_version);
      return static_cast<size_t>(h);
    }
  };

  using Counters =
      LruCache<PlanCacheKey, std::shared_ptr<const CachedPlan>,
               KeyHash>::Counters;
  Counters counters() const { return cache_.counters(); }
  size_t size() const { return cache_.size(); }

 private:
  LruCache<PlanCacheKey, std::shared_ptr<const CachedPlan>, KeyHash>
      cache_;
};

}  // namespace prefsql
