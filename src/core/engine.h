// Engine: the shared half of the paper's §3.1 architecture — one Preference
// SQL optimizer plus one standard SQL database serving many client
// sessions.
//
//   auto engine = std::make_shared<Engine>();
//   Connection a, b;
//   a.Attach(engine);
//   b.Attach(engine);         // b sees every table a creates
//
// The engine owns the catalog/executor (Database), the prepared-plan cache
// and the preference-key cache. Concurrency is MVCC: rows carry
// [begin, end) commit-epoch stamps (storage/row_heap.h), every committed
// DML statement gets one epoch (storage/epoch.h), and a reader pins the
// current epoch when its statement or streaming Cursor opens and filters
// scans by visibility at that snapshot. Two locks coordinate the rest:
//
//   * `mutex_` (shared_mutex) — the DDL lock. Readers AND DML writers hold
//     it shared; only structural statements take it exclusively: DDL
//     (CREATE/DROP move the catalog), rewrite-mode preference queries
//     (transient Aux views), INSERT ... SELECT PREFERRING, and the
//     opportunistic version GC (which must observe no active pins).
//   * `writer_mutex_` (mutex) — serializes DML statements and the
//     post-statement cache maintenance/sweep that runs with them.
//
// Readers therefore never block writers and vice versa: a streaming Cursor
// holds only the shared DDL lock plus its snapshot pin while concurrent
// INSERT/UPDATE/DELETE append new row versions. A reader's pinned epoch
// gives it a stable view of every table version, which is what makes the
// version-keyed caches sound (entries are keyed by the version the
// reader's snapshot sees — Table::VersionAt — not by the latest version):
//
//   * plan cache  — (parameterized normalized text, knob fingerprint,
//                   catalog version) -> parsed + expanded + compiled
//                   preparation. Constant literals of SELECT/EXPLAIN texts
//                   are auto-parameterized into `?` holes for keying, so
//                   statements differing only in literal values share one
//                   preparation; the values are re-injected at execute
//                   time (sql/normalize.h, sql/parameters.h);
//   * skyline cache — (preference fingerprint, table id, table version)
//                   -> packed KeyStore + optionally the skyline positions
//                   (see preference/key_cache.h);
//   * filter cache — (WHERE text, table id, table version) -> candidate
//                   row positions of one filtered scan.
//
// Any DDL bumps the catalog version and any DML seals a new table version,
// so stale entries become unreachable by key — except to a reader still
// pinned at an older snapshot, for which the sweep keeps the superseded
// versions alive (liveness is the range [VersionAt(oldest pin), current]).
// After each write statement the engine first *maintains* the skyline
// cache incrementally — carrying each affected entry to the new table
// version by keying the appended version slots and dominance-testing them
// against the cached skyline (MaintainSkylineCaches; exact because a
// non-maximal tuple is always dominated by some maximal one). With no
// older pin the carry is an in-place Rekey (never two residencies of one
// entry); afterwards the sweep reclaims unreachable entries early (feeding
// the eviction counters surfaced in last_stats/EXPLAIN). Finally, when the
// DDL lock is momentarily free of readers, superseded row-version payloads
// older than every pin are garbage-collected (TryCollectGarbage).
//
// The client surface is three-tiered:
//   * Execute(text)      — one-shot; a thin wrapper that drains a Cursor;
//   * Prepare(text)      — returns a PreparedStatement holding the shared
//                          cached plan; Bind values, re-execute at will
//                          (transparently re-prepared when DDL moves the
//                          catalog version);
//   * OpenCursor(text)   — streams rows through the pull pipeline without
//                          materializing a ResultTable (core/cursor.h).
//
// Per-session state (knobs, last_stats) lives in Session objects
// (core/session.h); the Connection facade (core/connection.h) bundles one
// Session with an engine reference for the classic embedded API.

#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cursor.h"
#include "core/plan_cache.h"
#include "core/preference_query.h"
#include "core/prepared_statement.h"
#include "core/session.h"
#include "engine/database.h"
#include "preference/key_cache.h"
#include "storage/epoch.h"
#include "types/result_table.h"
#include "util/memory_budget.h"
#include "util/status.h"

namespace prefsql {

class Engine {
 public:
  /// Starts the background MVCC reclaimer thread (see BackgroundGcLoop).
  Engine();
  /// Stops and joins the reclaimer before any member is torn down.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Parses and executes one statement on behalf of `session`. Repeated
  /// SELECT/EXPLAIN texts skip the parse through the plan cache —
  /// including repetitions that differ only in literal values
  /// (auto-parameterization).
  Result<ResultTable> Execute(Session& session, const std::string& sql);

  /// Opens a streaming cursor over one statement (see core/cursor.h).
  /// Direct-path preference queries and plain SELECTs stream; rewrite-mode
  /// preference queries, EXPLAIN, and write statements replay a
  /// materialized result. `keepalive`, when supplied, is retained by the
  /// cursor so it cannot outlive the engine.
  Result<Cursor> OpenCursor(Session& session, const std::string& sql,
                            std::shared_ptr<Engine> keepalive = nullptr);

  /// Prepares one statement for repeated execution: parse once, bind
  /// per request (PreparedStatement::Bind), execute/stream at will. For
  /// SELECT/EXPLAIN the preparation is published into the plan cache and
  /// re-validated per execution, so DDL between executions triggers a
  /// transparent re-prepare (no re-parse). Statements without placeholders
  /// are auto-parameterized: their literals become pre-bound parameters.
  Result<PreparedStatement> Prepare(Session& session, const std::string& sql,
                                    std::shared_ptr<Engine> keepalive =
                                        nullptr);

  /// Executes a semicolon-separated script; returns the last result.
  Result<ResultTable> ExecuteScript(Session& session, const std::string& sql);

  /// Per-statement result sink of the script overload below; `index` is the
  /// 0-based statement position. A non-OK return aborts the script.
  using ScriptResultCallback =
      std::function<Status(size_t index, const Statement& stmt,
                           ResultTable result)>;

  /// Executes a script, delivering every statement's result to `on_result`
  /// instead of dropping all but the last.
  Status ExecuteScript(Session& session, const std::string& sql,
                       const ScriptResultCallback& on_result);

  /// Executes an already-parsed statement. Beyond plain SELECTs this layer
  /// handles: preference SELECTs (rewrite or in-engine BMO), EXPLAIN
  /// (returns the optimizer's standard-SQL translation as a one-column
  /// table), INSERT whose SELECT has a PREFERRING clause (§2.2.5), SET
  /// (session knobs), and expansion of stored PREFERENCE references (PDL).
  /// Statements containing unbound parameters are rejected with a
  /// kBindError (use Prepare).
  Result<ResultTable> ExecuteStatement(Session& session,
                                       const Statement& stmt);

  /// Translates a preference query into the standard SQL script the
  /// rewriting optimizer would run (§3.2) without executing it.
  Result<std::string> RewriteToSql(Session& session, const std::string& sql);

  /// The underlying standard-SQL database. Unsynchronized — direct access
  /// is for single-threaded setup (tests, generators, benches); concurrent
  /// sessions must go through Execute*.
  Database& database() { return db_; }

  PlanCache& plan_cache() { return plan_cache_; }
  SkylineCache& key_cache() { return key_cache_; }
  FilterCache& filter_cache() { return filter_cache_; }

  /// Engine-wide memory budget shared by all sessions' statement buffers
  /// (`SET engine_memory_bytes` adjusts the limit; 0 = unlimited).
  MemoryBudget& memory_budget() { return engine_budget_; }

  /// Cumulative count of background-reclaimer sweeps that won the exclusive
  /// lock and collected (observability for tests and benches).
  uint64_t background_gc_passes() const {
    return background_gc_passes_.load(std::memory_order_relaxed);
  }

 private:
  friend class Cursor;
  friend class PreparedStatement;

  /// Builds the preparation of one SELECT/EXPLAIN statement: collects the
  /// parameter signature and, for preference queries, expands stored
  /// PREFERENCE references and compiles the PREFERRING clause (under a
  /// shared lock — the expansion reads the catalog). A PREFERRING clause
  /// containing parameter holes is left uncompiled (compiled per execution
  /// after binding).
  Result<std::shared_ptr<const CachedPlan>> BuildPreparation(
      StatementKind kind, std::shared_ptr<const SelectStmt> select);

  /// Key under which `session` would cache a preparation of `text`.
  PlanCacheKey CacheKey(const Session& session, std::string text);

  /// Wraps an eagerly computed result into a (replay) cursor.
  Cursor MaterializedCursor(ResultTable result, Session* session,
                            std::shared_ptr<Engine> keepalive);

  /// Looks up / builds-and-publishes the preparation for (`key_text`,
  /// session knobs, current catalog version); `select` is the parsed form
  /// used on a miss (no re-parse). Honors the session's plan_cache knob.
  Result<std::shared_ptr<const CachedPlan>> LookupOrPrepare(
      Session& session, const std::string& key_text, StatementKind kind,
      std::shared_ptr<const SelectStmt> select, bool* hit);

  /// Executes a prepared SELECT/EXPLAIN by draining a cursor over it.
  /// `params` are the values for the plan's parameter holes (nullptr when
  /// the statement has none); `auto_parameterized` tags the stats.
  /// `widths`, when non-null, maps IN-list-collapsed placeholders to the
  /// number of flat values each consumes (see ParameterizeSql).
  Result<ResultTable> ExecutePrepared(Session& session,
                                      std::shared_ptr<const CachedPlan> plan,
                                      bool plan_cache_hit,
                                      const std::vector<Value>* params,
                                      bool auto_parameterized,
                                      const std::vector<uint32_t>* widths =
                                          nullptr);

  /// Opens a cursor over a prepared SELECT/EXPLAIN: streaming for the
  /// direct path and plain SELECTs, materialized for EXPLAIN and the
  /// rewrite strategy.
  Result<Cursor> OpenPreparedCursor(Session& session,
                                    std::shared_ptr<const CachedPlan> plan,
                                    bool plan_cache_hit,
                                    const std::vector<Value>* params,
                                    bool auto_parameterized,
                                    std::shared_ptr<Engine> keepalive,
                                    const std::vector<uint32_t>* widths =
                                        nullptr);

  /// The artifacts one execution of a prepared statement runs against:
  /// the (re-)expanded query block with bound values injected, and the
  /// compiled preference (nullptr for plain SELECTs).
  struct ExecutionView {
    std::shared_ptr<const SelectStmt> select;
    std::shared_ptr<const CompiledPreference> preference;
  };

  /// Produces the execution artifacts for `plan` under the statement lock:
  /// re-expands when DDL moved the catalog version since preparation
  /// (transparent re-prepare), injects `params`, and (re-)compiles the
  /// PREFERRING clause when it could not be compiled at prepare time.
  /// Caller must hold the statement lock.
  Result<ExecutionView> BindForExecutionLocked(
      const CachedPlan& plan, const std::vector<Value>* params,
      const std::vector<uint32_t>* widths = nullptr);

  /// Preference SELECT via the §3.2 rewrite strategy; caller must hold the
  /// lock exclusively (the Aux views are created in the shared catalog).
  Result<ResultTable> ExecuteViaRewrite(
      Session& session, const SelectStmt& select,
      const std::shared_ptr<const CompiledPreference>& pref);

  /// Materialized direct evaluation for exclusive-lock contexts
  /// (INSERT ... SELECT PREFERRING); the shared-lock path streams through
  /// OpenDirectCursor instead.
  Result<ResultTable> ExecuteDirect(
      Session& session, const SelectStmt& select,
      const std::shared_ptr<const CompiledPreference>& pref);

  /// Builds and opens the streaming operator pipeline of a direct-path
  /// preference query; the returned cursor owns `lock` and `pin` (its
  /// snapshot for the cursor's lifetime).
  Result<Cursor> OpenDirectCursor(Session& session, ExecutionView view,
                                  std::shared_lock<std::shared_mutex> lock,
                                  SnapshotPin pin,
                                  std::shared_ptr<const CachedPlan> plan,
                                  std::shared_ptr<QueryContext> qctx,
                                  std::shared_ptr<Engine> keepalive);

  Result<ResultTable> ExecuteExplain(Session& session, const CachedPlan& plan,
                                     const std::vector<Value>* params,
                                     const std::vector<uint32_t>* widths =
                                         nullptr);

  /// SET <knob> = <value>: run-time access to the session's options.
  Result<ResultTable> ExecuteSet(Session& session, const Statement& stmt);

  /// The direct-path options `session`'s ConnectionOptions imply.
  DirectEvalOptions DirectOptions(const Session& session);

  /// Returns `select` with stored PREFERENCE references expanded (clones
  /// only when needed). Caller must hold the lock (catalog read).
  Result<std::shared_ptr<SelectStmt>> ExpandSelect(const SelectStmt& select);

  /// Column names a `SELECT *` over the query's FROM would produce (schema
  /// probe for the rewriter). Caller must hold the lock.
  Result<std::vector<std::string>> ProbeBaseColumns(const SelectStmt& select);

  /// Copies the caches' cumulative eviction counters into `session`'s
  /// last_stats.
  void SnapshotCacheCounters(Session& session);

  /// Carries skyline-cache entries of the table the last DML statement
  /// touched to its new version (incremental maintenance; see the file
  /// comment). Runs before SweepCaches so the maintained entries are keyed
  /// live when the sweep reclaims their predecessors. Caller must hold the
  /// lock exclusively.
  void MaintainSkylineCaches();

  /// Reclaims cache entries no active or future snapshot can reach: an
  /// entry stays live while its version is within [VersionAt(oldest pinned
  /// snapshot), current version] of a live table incarnation. Caller must
  /// hold writer_mutex_.
  void SweepCaches();

  /// Opportunistic version GC: if the DDL lock is free of readers (no pins
  /// can exist without it), frees row-version payloads of the last DML's
  /// table that are invisible at every snapshot >= the GC horizon. No-op
  /// when `session` has mvcc_gc off or readers are active.
  void TryCollectGarbage(Session& session);

  /// Body of the background MVCC reclaimer thread: a cv-timed loop that
  /// periodically (and whenever memory pressure or a knob change notifies
  /// it) attempts the DDL lock exclusively with try_to_lock — the same
  /// "exclusive acquisition proves no pins, no readers" safety argument as
  /// TryCollectGarbage — and on success sweeps superseded version payloads
  /// of ALL catalog tables. Unlike the opportunistic post-DML sweep it
  /// retries on a timer, so dead-version residency stays bounded even when
  /// readers usually hold the lock at commit time.
  void BackgroundGcLoop();

  /// Frees superseded row-version payloads of every catalog table. Caller
  /// must hold `mutex_` exclusively. Returns payloads reclaimed.
  uint64_t CollectGarbageAllTablesLocked();

  /// Engine-budget pressure relief (installed into each statement's
  /// QueryContext): sheds cold plan/skyline/filter-cache entries — freeing
  /// their heap memory, though not budget-charged bytes, which only return
  /// when statements finish — and kicks the background reclaimer so a full
  /// pin-aware sweep runs before any query is refused.
  void RelieveMemoryPressure(uint64_t requested_bytes);

  /// Builds the statement's resource-governance context from `session`'s
  /// knobs (deadline, statement/engine budgets, pressure relief) and
  /// publishes it as the session's current context so CancelCurrent can
  /// reach it. The caller establishes the thread-local scope and is
  /// responsible for retiring it (SessionContextClearGuard / cursor Close).
  std::shared_ptr<QueryContext> ArmStatementContext(Session& session);

  /// Hash of every knob that affects how a statement prepares or executes;
  /// part of the plan-cache key so differently-tuned sessions never share a
  /// preparation.
  static uint64_t KnobFingerprint(const ConnectionOptions& options);

  Database db_;
  /// The DDL lock: readers and DML writers share it, structural statements
  /// and GC take it exclusively; see file comment.
  std::shared_mutex mutex_;
  /// Serializes DML statements and their cache maintenance/sweep.
  std::mutex writer_mutex_;
  PlanCache plan_cache_;
  SkylineCache key_cache_;
  FilterCache filter_cache_;
  std::atomic<uint64_t> aux_counter_{0};

  /// Engine-wide statement-buffer budget (`SET engine_memory_bytes`).
  MemoryBudget engine_budget_;

  // Background MVCC reclaimer (see BackgroundGcLoop). `gc_mu_`/`gc_cv_`
  // only coordinate the thread's sleep/wake/stop handshake; the sweep
  // itself synchronizes through `mutex_` like every other GC.
  std::mutex gc_mu_;
  std::condition_variable gc_cv_;
  bool gc_stop_ = false;
  bool gc_kick_ = false;  ///< pressure relief requested an immediate pass
  std::atomic<bool> gc_background_enabled_{true};
  std::atomic<uint64_t> background_gc_passes_{0};
  std::thread gc_thread_;  ///< last member: joins before peers tear down
};

}  // namespace prefsql
