// Engine: the shared half of the paper's §3.1 architecture — one Preference
// SQL optimizer plus one standard SQL database serving many client
// sessions.
//
//   auto engine = std::make_shared<Engine>();
//   Connection a, b;
//   a.Attach(engine);
//   b.Attach(engine);         // b sees every table a creates
//
// The engine owns the catalog/executor (Database), the prepared-plan cache
// and the preference-key cache, and a statement-level shared_mutex that
// gives snapshot-consistent reads: read-only statements (SELECT, EXPLAIN,
// direct-path preference queries) run concurrently under a shared lock,
// while writes (DML, DDL, rewrite-mode preference queries — they create
// transient Aux views — and INSERT ... SELECT PREFERRING) take the lock
// exclusively. A statement therefore always sees a stable table version,
// which is what makes the version-keyed caches sound:
//
//   * plan cache  — (normalized text, knob fingerprint, catalog version)
//                   -> parsed + expanded + compiled preparation;
//   * key cache   — (preference fingerprint, table id, table version)
//                   -> packed KeyStore (see preference/key_cache.h).
//
// Any DDL bumps the catalog version and any DML bumps the table version, so
// stale entries become unreachable by key; after each write statement the
// engine additionally sweeps both caches to reclaim the dead entries early
// (the sweep feeds the eviction counters surfaced in last_stats/EXPLAIN).
//
// Per-session state (knobs, last_stats) lives in Session objects
// (core/session.h); the Connection facade (core/connection.h) bundles one
// Session with an engine reference for the classic embedded API.

#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>

#include "core/plan_cache.h"
#include "core/preference_query.h"
#include "core/session.h"
#include "engine/database.h"
#include "preference/key_cache.h"
#include "types/result_table.h"
#include "util/status.h"

namespace prefsql {

class Engine {
 public:
  Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Parses and executes one statement on behalf of `session`. Repeated
  /// SELECT/EXPLAIN texts skip the parse through the plan cache.
  Result<ResultTable> Execute(Session& session, const std::string& sql);

  /// Executes a semicolon-separated script; returns the last result.
  Result<ResultTable> ExecuteScript(Session& session, const std::string& sql);

  /// Executes an already-parsed statement. Beyond plain SELECTs this layer
  /// handles: preference SELECTs (rewrite or in-engine BMO), EXPLAIN
  /// (returns the optimizer's standard-SQL translation as a one-column
  /// table), INSERT whose SELECT has a PREFERRING clause (§2.2.5), SET
  /// (session knobs), and expansion of stored PREFERENCE references (PDL).
  Result<ResultTable> ExecuteStatement(Session& session,
                                       const Statement& stmt);

  /// Translates a preference query into the standard SQL script the
  /// rewriting optimizer would run (§3.2) without executing it.
  Result<std::string> RewriteToSql(Session& session, const std::string& sql);

  /// The underlying standard-SQL database. Unsynchronized — direct access
  /// is for single-threaded setup (tests, generators, benches); concurrent
  /// sessions must go through Execute*.
  Database& database() { return db_; }

  PlanCache& plan_cache() { return plan_cache_; }
  KeyCache& key_cache() { return key_cache_; }

 private:
  /// Builds the preparation of one SELECT/EXPLAIN statement: for preference
  /// queries, expands stored PREFERENCE references and compiles the
  /// PREFERRING clause (under a shared lock — the expansion reads the
  /// catalog).
  Result<std::shared_ptr<const PreparedStatement>> BuildPreparation(
      StatementKind kind, std::shared_ptr<const SelectStmt> select);

  /// Executes a prepared SELECT/EXPLAIN.
  Result<ResultTable> ExecutePrepared(Session& session,
                                      const PreparedStatement& prepared,
                                      bool plan_cache_hit);

  /// The expanded/compiled artifacts a statement should execute with.
  struct PreparationView {
    std::shared_ptr<const SelectStmt> expanded;
    std::shared_ptr<const CompiledPreference> preference;
  };

  /// Returns `prepared`'s artifacts — re-expanded and re-compiled when DDL
  /// moved the catalog version since preparation (a stored PREFERENCE may
  /// have been redefined in the gap between cache lookup and lock
  /// acquisition). Caller must hold the statement lock.
  Result<PreparationView> RefreshPreparationLocked(
      const PreparedStatement& prepared);

  /// Preference SELECT with the PREFERRING clause already expanded and
  /// compiled. Takes the statement lock itself (exclusive for the rewrite
  /// strategy, shared for direct evaluation) unless `locked_exclusive`.
  Result<ResultTable> ExecutePreferenceSelect(
      Session& session, const PreparedStatement& prepared,
      bool locked_exclusive);

  /// §3.2 rewrite strategy; caller must hold the lock exclusively (the Aux
  /// views are created in the shared catalog).
  Result<ResultTable> ExecuteViaRewrite(
      Session& session, const SelectStmt& select,
      const std::shared_ptr<const CompiledPreference>& pref);

  /// Direct (in-engine BMO) strategy; caller must hold the lock.
  Result<ResultTable> ExecuteDirect(
      Session& session, const SelectStmt& select,
      const std::shared_ptr<const CompiledPreference>& pref);

  Result<ResultTable> ExecuteExplain(Session& session,
                                     const PreparedStatement& prepared);

  /// SET <knob> = <value>: run-time access to the session's options.
  Result<ResultTable> ExecuteSet(Session& session, const Statement& stmt);

  /// The direct-path options `session`'s ConnectionOptions imply.
  DirectEvalOptions DirectOptions(const Session& session);

  /// Returns `select` with stored PREFERENCE references expanded (clones
  /// only when needed). Caller must hold the lock (catalog read).
  Result<std::shared_ptr<SelectStmt>> ExpandSelect(const SelectStmt& select);

  /// Column names a `SELECT *` over the query's FROM would produce (schema
  /// probe for the rewriter). Caller must hold the lock.
  Result<std::vector<std::string>> ProbeBaseColumns(const SelectStmt& select);

  /// Copies the caches' cumulative eviction counters into `session`'s
  /// last_stats.
  void SnapshotCacheCounters(Session& session);

  /// Reclaims cache entries made unreachable by a write statement; caller
  /// must hold the lock exclusively.
  void SweepCaches();

  /// Hash of every knob that affects how a statement prepares or executes;
  /// part of the plan-cache key so differently-tuned sessions never share a
  /// preparation.
  static uint64_t KnobFingerprint(const ConnectionOptions& options);

  Database db_;
  /// Statement-level reader/writer lock; see file comment.
  std::shared_mutex mutex_;
  PlanCache plan_cache_;
  KeyCache key_cache_;
  std::atomic<uint64_t> aux_counter_{0};
};

}  // namespace prefsql
