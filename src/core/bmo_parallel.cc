#include "core/bmo_parallel.h"

#include <algorithm>
#include <span>

#include "util/thread_pool.h"

namespace prefsql {
namespace {

/// One leaf skyline task: a slice of one partition's index vector (viewed,
/// not copied — the partition vectors outlive the pool).
struct ChunkTask {
  size_t partition = 0;
  std::span<const size_t> candidates;
  std::vector<size_t> survivors;  // filled by the worker
  BmoStats stats;                 // filled by the worker
};

void MergeStats(ParallelBmoStats* stats, const BmoStats& task_stats) {
  stats->bmo.comparisons += task_stats.comparisons;
  stats->bmo.passes = std::max(stats->bmo.passes, task_stats.passes);
  stats->bmo.kernel = task_stats.kernel;
  stats->bmo.simd = task_stats.simd;
}

std::vector<size_t> SerialPerPartition(
    const CompiledPreference& pref, const KeyStore& keys,
    const std::vector<std::vector<size_t>>& partitions,
    const BmoOptions& options, ParallelBmoStats* stats) {
  std::vector<size_t> out;
  for (const auto& part : partitions) {
    BmoStats part_stats;
    std::vector<size_t> bmo = ComputeBmo(pref, keys, part, options,
                                         &part_stats);
    out.insert(out.end(), bmo.begin(), bmo.end());
    if (stats != nullptr) {
      MergeStats(stats, part_stats);
      ++stats->chunk_tasks;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<size_t> ComputeBmoPartitionedParallel(
    const CompiledPreference& pref, const KeyStore& keys,
    const std::vector<std::vector<size_t>>& partitions,
    const BmoOptions& options, const ParallelBmoOptions& par,
    ParallelBmoStats* stats) {
  if (stats != nullptr) *stats = ParallelBmoStats{};
  if (par.threads <= 1) {
    return SerialPerPartition(pref, keys, partitions, options, stats);
  }

  // Slice every partition into at most `threads` chunks of at least
  // `min_chunk` rows (one chunk = the serial case for that partition).
  const size_t min_chunk = std::max<size_t>(1, par.min_chunk);
  std::vector<ChunkTask> tasks;
  std::vector<size_t> chunks_of(partitions.size(), 0);
  for (size_t p = 0; p < partitions.size(); ++p) {
    const auto& part = partitions[p];
    size_t n_chunks = std::min(par.threads,
                               std::max<size_t>(1, part.size() / min_chunk));
    chunks_of[p] = n_chunks;
    size_t base = part.size() / n_chunks;
    size_t extra = part.size() % n_chunks;
    size_t offset = 0;
    for (size_t c = 0; c < n_chunks; ++c) {
      size_t len = base + (c < extra ? 1 : 0);
      ChunkTask task;
      task.partition = p;
      task.candidates = std::span<const size_t>(part.data() + offset, len);
      offset += len;
      tasks.push_back(std::move(task));
    }
  }

  ThreadPool pool(std::min(par.threads, std::max<size_t>(1, tasks.size())));
  for (ChunkTask& task : tasks) {
    pool.Submit([&pref, &keys, &options, &task] {
      task.survivors =
          ComputeBmo(pref, keys, task.candidates, options, &task.stats);
    });
  }
  pool.Wait();

  // Merge: per partition, the union of local skylines goes through one
  // final dominance pass (a no-op concatenation for single-chunk
  // partitions). Merge passes for different partitions run concurrently.
  std::vector<std::vector<size_t>> merged(partitions.size());
  std::vector<BmoStats> merge_stats(partitions.size());
  std::vector<std::vector<size_t>> merge_input(partitions.size());
  for (ChunkTask& task : tasks) {
    auto& in = merge_input[task.partition];
    in.insert(in.end(), task.survivors.begin(), task.survivors.end());
  }
  for (size_t p = 0; p < partitions.size(); ++p) {
    if (chunks_of[p] <= 1) {
      merged[p] = std::move(merge_input[p]);
      continue;
    }
    pool.Submit([&pref, &keys, &options, &merged, &merge_stats, &merge_input,
                 p] {
      merged[p] = ComputeBmo(pref, keys, merge_input[p], options,
                             &merge_stats[p]);
    });
  }
  pool.Wait();

  std::vector<size_t> out;
  for (size_t p = 0; p < partitions.size(); ++p) {
    out.insert(out.end(), merged[p].begin(), merged[p].end());
  }
  std::sort(out.begin(), out.end());

  if (stats != nullptr) {
    stats->threads_used = pool.thread_count();
    stats->chunk_tasks = tasks.size();
    for (const ChunkTask& task : tasks) MergeStats(stats, task.stats);
    for (size_t p = 0; p < partitions.size(); ++p) {
      if (chunks_of[p] <= 1) continue;
      stats->merge_candidates += merge_input[p].size();
      MergeStats(stats, merge_stats[p]);
    }
  }
  return out;
}

}  // namespace prefsql
