#include "core/cursor.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/engine.h"

namespace prefsql {

namespace {
const Schema& EmptySchema() {
  static const Schema kEmpty;
  return kEmpty;
}
}  // namespace

Cursor::~Cursor() { Close(); }

const Schema& Cursor::columns() const {
  return impl_ != nullptr ? impl_->schema : EmptySchema();
}

bool Cursor::is_open() const { return impl_ != nullptr && impl_->open; }

size_t Cursor::rows_streamed() const {
  return impl_ != nullptr ? impl_->streamed : 0;
}

Result<std::optional<RowRef>> Cursor::Next() {
  if (!is_open()) {
    return Status::ExecutionError("cursor is closed");
  }
  Impl& impl = *impl_;
  if (impl.table.has_value()) {
    if (impl.next_row >= impl.table->num_rows()) {
      Close();
      return std::optional<RowRef>();
    }
    RowRef row = RowRef::Borrowed(&impl.table->rows()[impl.next_row]);
    ++impl.next_row;
    ++impl.streamed;
    return std::optional<RowRef>(std::move(row));
  }
  RowRef row;
  // A cancel or an expired deadline surfaces at the next pull even when the
  // operator tree would not poll soon (e.g. a client paused mid-stream).
  if (impl.ctx != nullptr) {
    Status interrupt = impl.ctx->CheckInterrupt();
    if (!interrupt.ok()) {
      Close();
      return interrupt;
    }
  }
  if (impl.ctx != nullptr && impl.ctx->vectorized()) {
    // Batch mode: refill from the operator tree ~1k rows at a time and
    // replay the batch row by row — the client API stays row-at-a-time.
    if (impl.batch_pos >= impl.batch.sel.size()) {
      ScopedSnapshot ambient(impl.snapshot);
      ScopedQueryContext qscope(impl.ctx.get());
      auto more = impl.root->NextBatch(&impl.batch);
      if (!more.ok()) {
        Close();
        return more.status();
      }
      if (!*more) {
        Close();
        return std::optional<RowRef>();
      }
      impl.ctx->batch_stats().Record(impl.batch.sel.size());
      impl.batch_pos = 0;
    }
    RowRef out = std::move(impl.batch.rows[impl.batch.sel[impl.batch_pos]]);
    ++impl.batch_pos;
    ++impl.streamed;
    return std::optional<RowRef>(std::move(out));
  }
  // Pull under the cursor's pinned snapshot so any subplan materialized
  // mid-stream reads the same point-in-time view the cursor opened with;
  // the query context rides along so the operators keep polling it.
  ScopedSnapshot ambient(impl.snapshot);
  ScopedQueryContext qscope(impl.ctx.get());
  auto more = impl.root->Next(&row);
  if (!more.ok()) {
    Close();
    return more.status();
  }
  if (!*more) {
    // End of stream: release the statement lock promptly instead of making
    // the client call Close() before the engine accepts writers again.
    Close();
    return std::optional<RowRef>();
  }
  ++impl.streamed;
  return std::optional<RowRef>(std::move(row));
}

void Cursor::Close() {
  if (impl_ == nullptr || !impl_->open) return;
  Impl& impl = *impl_;
  impl.open = false;
  if (impl.root != nullptr) {
    // Closing the tree flushes the BMO operators' counters into the plan's
    // stats sinks — correct even when the client stopped pulling early.
    impl.root->Close();
    if (impl.session != nullptr &&
        impl.session->stats_epoch() == impl.stats_epoch) {
      PreferenceQueryStats& stats = impl.stats;
      if (stats.was_preference_query && impl.pref_plan.bmo_stats != nullptr) {
        const BmoRunStats& bmo = *impl.pref_plan.bmo_stats;
        const BmoRunStats& pre = *impl.pref_plan.prefilter_stats;
        stats.candidate_count = bmo.candidate_count;
        stats.bmo_comparisons = bmo.bmo.comparisons + pre.bmo.comparisons;
        stats.bmo_partitions = bmo.partitions;
        stats.bmo_threads_used = std::max(bmo.threads_used, pre.threads_used);
        stats.bmo_key_build_ns = bmo.bmo.key_build_ns;
        stats.bmo_kernel = DominanceKernelToString(bmo.bmo.kernel);
        stats.bmo_simd = SimdVariantToString(bmo.bmo.simd);
        stats.key_cache_hit = bmo.key_cache_hit;
        stats.prefilter_candidate_count = pre.candidate_count;
        stats.prefilter_result_count = pre.result_count;
      }
      stats.result_count = impl.streamed;
      FlushBatchExecStats(impl.ctx.get(), stats);
      impl.session->mutable_last_stats() = stats;
      if (impl.engine != nullptr) {
        impl.engine->SnapshotCacheCounters(*impl.session);
      }
    }
    // Destroy the operator tree before releasing the lock: scans borrow
    // from catalog storage that writers may mutate once the lock is free.
    // The root must go before the rest of the plan — the BMO operators
    // flush into the plan's stats sinks from their destructors too.
    impl.root = nullptr;
    impl.pref_plan.root.reset();
    impl.pref_plan = PreferencePlan{};
    impl.plain_root.reset();
  }
  // Drop any batched rows before releasing the pin: borrowed refs point
  // into pinned storage.
  impl.batch.Clear();
  impl.batch_pos = 0;
  // Release the snapshot pin after the operator tree is gone (nothing can
  // read at the snapshot anymore) and before the DDL lock, so GC triggered
  // by the lock release never races an active pin.
  impl.pin.Release();
  impl.lock = std::shared_lock<std::shared_mutex>();
  impl.table.reset();
  // Retire the statement's context from the session last: a cancel arriving
  // after this point targets a newer statement, never this closed cursor.
  if (impl.session != nullptr && impl.ctx != nullptr) {
    impl.session->ClearCurrentContext(impl.ctx.get());
  }
  impl.ctx.reset();
}

Result<ResultTable> DrainCursor(Cursor& cursor) {
  if (cursor.impl_ != nullptr && cursor.impl_->table.has_value() &&
      cursor.impl_->next_row == 0) {
    // Materialized result not yet consumed: hand the table over wholesale.
    ResultTable table = std::move(*cursor.impl_->table);
    cursor.Close();
    return table;
  }
  Schema schema = cursor.columns();
  std::vector<Row> rows;
  for (;;) {
    PSQL_ASSIGN_OR_RETURN(std::optional<RowRef> row, cursor.Next());
    if (!row.has_value()) break;
    rows.push_back(std::move(*row).IntoRow());
  }
  return ResultTable(std::move(schema), std::move(rows));
}

}  // namespace prefsql
