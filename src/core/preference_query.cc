#include "core/preference_query.h"

#include <memory>
#include <utility>
#include <vector>

#include "core/bmo_operator.h"
#include "engine/planner.h"
#include "sql/printer.h"
#include "util/string_util.h"

namespace prefsql {

Result<ResultTable> ExecutePreferenceQueryDirect(
    Database& db, const AnalyzedPreferenceQuery& analyzed,
    const DirectEvalOptions& options, DirectEvalStats* stats) {
  const SelectStmt& q = *analyzed.query;
  const CompiledPreference& pref = analyzed.preference;
  Executor& executor = db.executor();
  Planner planner(&executor);

  // 1. Candidate pipeline: FROM ... WHERE ... with qualifiers preserved,
  //    streamed (index scan when the WHERE has a usable access path).
  PSQL_ASSIGN_OR_RETURN(OperatorPtr candidates, planner.PlanCandidates(q, nullptr));
  const Schema cand_schema = candidates->schema();
  PSQL_RETURN_IF_ERROR(
      ValidatePreferenceColumns(pref, cand_schema.Names()));

  // 2. GROUPING attributes (§2.2.5) resolve against the candidate schema.
  std::vector<size_t> grouping_cols;
  for (const auto& g : q.grouping) {
    PSQL_ASSIGN_OR_RETURN(size_t idx, cand_schema.Resolve("", g));
    grouping_cols.push_back(idx);
  }

  // 3. Quality calls (TOP/LEVEL/DISTANCE) rewrite to the BmoOperator's
  //    synthetic columns.
  auto quality_factory = [&](QualityFn fn,
                             const std::string& column) -> Result<ExprPtr> {
    PSQL_ASSIGN_OR_RETURN(size_t slot, pref.LeafForColumn(column));
    return Expr::MakeColumn("", BmoQualityColumnName(fn, slot));
  };

  ExprPtr but_only;
  if (q.but_only != nullptr) {
    PSQL_ASSIGN_OR_RETURN(but_only,
                          RewriteQualityCalls(*q.but_only, quality_factory));
  }

  // 4. Final projection items with quality functions rewritten. '*' must
  //    expand to the *candidate* columns only (never the quality columns).
  bool quality_projected = false;
  std::vector<SelectItem> items;
  for (const auto& item : q.items) {
    if (item.expr->kind == ExprKind::kStar) {
      for (size_t c = 0; c < cand_schema.num_columns(); ++c) {
        const ColumnInfo& ci = cand_schema.column(c);
        if (!item.expr->qualifier.empty() &&
            !EqualsIgnoreCase(item.expr->qualifier, ci.qualifier)) {
          continue;
        }
        items.push_back({Expr::MakeColumn(ci.qualifier, ci.name), ci.name});
      }
      continue;
    }
    quality_projected |= ContainsQualityCall(*item.expr);
    PSQL_ASSIGN_OR_RETURN(ExprPtr e,
                          RewriteQualityCalls(*item.expr, quality_factory));
    std::string alias = item.alias;
    if (alias.empty() && ContainsQualityCall(*item.expr)) {
      alias = ExprToSql(*item.expr);
    }
    items.push_back({std::move(e), std::move(alias)});
  }
  std::vector<OrderItem> order_by;
  for (const auto& oi : q.order_by) {
    quality_projected |= ContainsQualityCall(*oi.expr);
    PSQL_ASSIGN_OR_RETURN(ExprPtr e,
                          RewriteQualityCalls(*oi.expr, quality_factory));
    order_by.push_back({std::move(e), oi.ascending});
  }

  // 5. BMO operator. LIMIT pushdown: a bare LIMIT (no ORDER BY / BUT ONLY /
  //    GROUPING / DISTINCT) in sort-filter mode runs the progressive top-k
  //    variant and stops the filter pass at the k-th maximal tuple.
  BmoOperatorConfig config;
  config.bmo = options.bmo;
  config.grouping_cols = std::move(grouping_cols);
  config.but_only = but_only.get();
  config.but_only_mode = options.but_only_mode;
  config.emit_quality_columns = quality_projected;
  bool progressive_topk =
      q.limit.has_value() && *q.limit >= 0 && !q.offset && q.order_by.empty() &&
      q.grouping.empty() && q.but_only == nullptr && !q.distinct &&
      options.bmo.algorithm == BmoAlgorithm::kSortFilterSkyline;
  if (progressive_topk) config.top_k = static_cast<size_t>(*q.limit);

  auto bmo = std::make_unique<BmoOperator>(std::move(candidates), &pref,
                                           std::move(config), &executor);
  BmoOperator* bmo_observer = bmo.get();

  // 6. Projection tail over the streamed maximal tuples.
  PSQL_ASSIGN_OR_RETURN(
      OperatorPtr root,
      planner.PlanTail(std::move(items), q.distinct, std::move(order_by),
                       q.limit, q.offset, std::move(bmo), nullptr));
  auto result = DrainToTable(*root);
  if (stats != nullptr) {
    stats->bmo = bmo_observer->stats();
    stats->candidate_count = bmo_observer->candidate_count();
  }
  return result;
}

}  // namespace prefsql
