#include "core/preference_query.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "engine/operators/scan.h"
#include "engine/planner.h"
#include "storage/epoch.h"
#include "sql/printer.h"
#include "util/string_util.h"

namespace prefsql {

namespace {

/// True iff the expression tree contains a subquery (scalar, EXISTS, or
/// IN (SELECT ...)): its value can then depend on other tables, which breaks
/// (table id, table version)-keyed caching of the filtered positions.
bool ContainsSubquery(const Expr& e) {
  if (e.subquery != nullptr) return true;
  for (const ExprPtr* c : {&e.left, &e.right, &e.lo, &e.hi, &e.case_else}) {
    if (*c != nullptr && ContainsSubquery(**c)) return true;
  }
  for (const auto& a : e.in_list) {
    if (a != nullptr && ContainsSubquery(*a)) return true;
  }
  for (const auto& w : e.case_whens) {
    if (w.when != nullptr && ContainsSubquery(*w.when)) return true;
    if (w.then != nullptr && ContainsSubquery(*w.then)) return true;
  }
  for (const auto& a : e.args) {
    if (a != nullptr && ContainsSubquery(*a)) return true;
  }
  return false;
}

bool IsComparisonOp(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kNe || op == BinaryOp::kLt ||
         op == BinaryOp::kLe || op == BinaryOp::kGt || op == BinaryOp::kGe;
}

/// Mirror of a comparison under operand swap (`4 > a` ≡ `a < 4`).
BinaryOp MirrorComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // kEq / kNe are symmetric
  }
}

/// Swaps literal-left comparisons to literal-right throughout `e`, in
/// place. Subquery pointers are shared between clones and never descended
/// into — moot here anyway, since subquery-bearing predicates are already
/// filter-cache-ineligible.
void CanonicalizeComparisons(Expr& e) {
  if (e.kind == ExprKind::kBinary && IsComparisonOp(e.binary_op) &&
      e.left != nullptr && e.right != nullptr &&
      e.left->kind == ExprKind::kLiteral &&
      e.right->kind != ExprKind::kLiteral) {
    std::swap(e.left, e.right);
    e.binary_op = MirrorComparisonOp(e.binary_op);
  }
  for (const ExprPtr* c : {&e.left, &e.right, &e.lo, &e.hi, &e.case_else}) {
    if (*c != nullptr) CanonicalizeComparisons(**c);
  }
  for (const auto& a : e.in_list) {
    if (a != nullptr) CanonicalizeComparisons(*a);
  }
  for (const auto& w : e.case_whens) {
    if (w.when != nullptr) CanonicalizeComparisons(*w.when);
    if (w.then != nullptr) CanonicalizeComparisons(*w.then);
  }
  for (const auto& a : e.args) {
    if (a != nullptr) CanonicalizeComparisons(*a);
  }
}

/// Filter-cache key text of a WHERE predicate: the printed SQL of a
/// comparison-canonicalized clone, so commuted spellings of one predicate
/// (`a < 4` vs `4 > a`) share a single cache entry.
std::string CanonicalPredicateSql(const Expr& where) {
  ExprPtr clone = where.Clone();
  CanonicalizeComparisons(*clone);
  return ExprToSql(*clone);
}

}  // namespace

Result<PreferencePlan> BuildPreferencePlan(
    Database& db, const AnalyzedPreferenceQuery& analyzed,
    const DirectEvalOptions& options, bool count_stats) {
  const SelectStmt& q = *analyzed.query;
  const CompiledPreference& pref = analyzed.preference();
  Executor& executor = db.executor();
  Planner planner(&executor);

  PreferencePlan plan;
  plan.bmo_stats = std::make_unique<BmoRunStats>();
  plan.prefilter_stats = std::make_unique<BmoRunStats>();

  // Quality-function usage decides both the augmented output schema and the
  // pushdown eligibility: LEVEL/DISTANCE offsets are relative to the
  // *observed* per-partition minima, which a pre-filter below the join
  // would change.
  bool quality_projected = false;
  for (const auto& item : q.items) {
    quality_projected |= item.expr->kind != ExprKind::kStar &&
                         ContainsQualityCall(*item.expr);
  }
  for (const auto& oi : q.order_by) {
    quality_projected |= ContainsQualityCall(*oi.expr);
  }

  // 1. Candidate pipeline: FROM ... WHERE ... with qualifiers preserved,
  //    streamed (index scan when the WHERE has a usable access path). When
  //    sound, the algebraic pushdown places a semi-skyline pre-filter below
  //    the join (partitioned by join keys + pref-side GROUPING columns);
  //    the full BMO block on top keeps the semantics exact.
  PushdownReport report;
  report.detail = "no pushdown: not attempted";
  OperatorPtr candidates;
  std::optional<PreferencePushdown> pd;
  if (options.pushdown && q.but_only == nullptr && !quality_projected) {
    auto pref_columns = PreferenceColumnRefs(pref);
    if (pref_columns.has_value()) {
      pd.emplace();
      pd->pref_columns = std::move(*pref_columns);
      pd->grouping = q.grouping;
      pd->make_prefilter = [&](OperatorPtr input,
                               std::vector<size_t> partition_cols) {
        BmoOperatorConfig c;
        c.bmo = options.bmo;
        c.grouping_cols = std::move(partition_cols);
        c.threads = options.threads;
        c.parallel_min_rows = options.parallel_min_rows;
        c.stats_sink = plan.prefilter_stats.get();
        return OperatorPtr(std::make_unique<BmoOperator>(
            std::move(input), &pref, std::move(c), &executor));
      };
    } else {
      report.detail = "no pushdown: preference attribute uses a subquery";
    }
  } else if (options.pushdown) {
    report.detail =
        "no pushdown: BUT ONLY / quality functions depend on the full "
        "candidate set";
  } else {
    report.detail = "no pushdown: disabled";
  }
  PSQL_ASSIGN_OR_RETURN(
      candidates,
      planner.PlanCandidates(q, nullptr, count_stats,
                             pd ? &*pd : nullptr, &report));
  plan.used_pushdown = report.pushed;
  plan.pushdown_detail = std::move(report.detail);
  const Schema cand_schema = candidates->schema();
  PSQL_RETURN_IF_ERROR(
      ValidatePreferenceColumns(pref, cand_schema.Names()));

  // 2. GROUPING attributes (§2.2.5) resolve against the candidate schema.
  std::vector<size_t> grouping_cols;
  for (const auto& g : q.grouping) {
    PSQL_ASSIGN_OR_RETURN(size_t idx, cand_schema.Resolve("", g));
    grouping_cols.push_back(idx);
  }

  // 3. Quality calls (TOP/LEVEL/DISTANCE) rewrite to the BmoOperator's
  //    synthetic columns.
  auto quality_factory = [&](QualityFn fn,
                             const std::string& column) -> Result<ExprPtr> {
    PSQL_ASSIGN_OR_RETURN(size_t slot, pref.LeafForColumn(column));
    return Expr::MakeColumn("", BmoQualityColumnName(fn, slot));
  };

  if (q.but_only != nullptr) {
    PSQL_ASSIGN_OR_RETURN(
        plan.owned_but_only,
        RewriteQualityCalls(*q.but_only, quality_factory));
  }

  // 4. Final projection items with quality functions rewritten. '*' must
  //    expand to the *candidate* columns only (never the quality columns).
  std::vector<SelectItem> items;
  for (const auto& item : q.items) {
    if (item.expr->kind == ExprKind::kStar) {
      for (size_t c = 0; c < cand_schema.num_columns(); ++c) {
        const ColumnInfo& ci = cand_schema.column(c);
        if (!item.expr->qualifier.empty() &&
            !EqualsIgnoreCase(item.expr->qualifier, ci.qualifier)) {
          continue;
        }
        items.push_back({Expr::MakeColumn(ci.qualifier, ci.name), ci.name});
      }
      continue;
    }
    PSQL_ASSIGN_OR_RETURN(ExprPtr e,
                          RewriteQualityCalls(*item.expr, quality_factory));
    std::string alias = item.alias;
    if (alias.empty() && ContainsQualityCall(*item.expr)) {
      alias = ExprToSql(*item.expr);
    }
    items.push_back({std::move(e), std::move(alias)});
  }
  std::vector<OrderItem> order_by;
  for (const auto& oi : q.order_by) {
    PSQL_ASSIGN_OR_RETURN(ExprPtr e,
                          RewriteQualityCalls(*oi.expr, quality_factory));
    order_by.push_back({std::move(e), oi.ascending});
  }

  // 5. BMO operator. LIMIT pushdown: a bare LIMIT (no ORDER BY / BUT ONLY /
  //    GROUPING / DISTINCT) in sort-filter mode runs the progressive top-k
  //    variant and stops the filter pass at the k-th maximal tuple.
  BmoOperatorConfig config;
  config.bmo = options.bmo;
  config.grouping_cols = std::move(grouping_cols);
  config.but_only = plan.owned_but_only.get();
  config.but_only_mode = options.but_only_mode;
  config.emit_quality_columns = quality_projected;
  config.threads = options.threads;
  config.parallel_min_rows = options.parallel_min_rows;
  config.stats_sink = plan.bmo_stats.get();

  // Key-cache eligibility: the packed keys are a pure function of
  // (preference, table contents) only when the candidate stream comes from
  // one base table (not a view or join), with no pushed-down pre-filter,
  // and no subquery anywhere a key could depend on other tables. The cache
  // key embeds the preference tree hash, the table's process-unique id and
  // its mutation version, so a match is provably the same keys. A
  // subquery-free WHERE is eligible too (position mode): the whole-table
  // key store is shared and the WHERE only narrows the candidate ids.
  const Table* cache_table = nullptr;
  if (options.key_cache == nullptr) {
    plan.key_cache_detail = "key cache: disabled";
  } else if (plan.used_pushdown || q.from.size() != 1 ||
             q.from[0]->kind != TableRef::Kind::kTable) {
    plan.key_cache_detail =
        "key cache: not eligible (candidates are not a base-table scan)";
  } else if (!db.catalog().HasTable(q.from[0]->table_name)) {
    plan.key_cache_detail = "key cache: not eligible (view or missing table)";
  } else if (!PreferenceColumnRefs(pref).has_value()) {
    plan.key_cache_detail =
        "key cache: not eligible (preference attribute uses a subquery)";
  } else if (q.where != nullptr && ContainsSubquery(*q.where)) {
    plan.key_cache_detail =
        "key cache: not eligible (WHERE contains a subquery)";
  } else {
    PSQL_ASSIGN_OR_RETURN(Table * table,
                          db.catalog().GetTable(q.from[0]->table_name));
    cache_table = table;
    // Cache identity is the table version *this reader's snapshot* sees —
    // not the latest — so a pinned reader still keys (and can serve) the
    // superseded entry its epoch corresponds to while writers race ahead.
    const uint64_t snap =
        AmbientSnapshotOr(db.catalog().epochs().current());
    const uint64_t snap_version = table->VersionAt(snap);
    config.key_cache = options.key_cache;
    config.key_cache_key =
        KeyCacheKey{pref.Fingerprint(), PrefTermToSql(pref.term()),
                    table->id(), snap_version};
    config.cache_pref = analyzed.pref;
    // Position mode for every cache-eligible run: heap slots are the
    // stable id space shared between the published KeyStore and later
    // snapshot readers.
    config.base_heap = &table->heap();
    config.snapshot = snap;
    config.key_rows = table->HeapSizeAt(snap);
    plan.key_cache_eligible = true;
    plan.key_cache_detail = q.where == nullptr
                                ? "key cache: eligible (table " +
                                      q.from[0]->table_name + ", version " +
                                      std::to_string(snap_version) + ")"
                                : "key cache: eligible, filtered (table " +
                                      q.from[0]->table_name + ", version " +
                                      std::to_string(snap_version) + ")";
  }

  // Filter-position cache (filtered position mode only): replay the
  // candidate slots of a repeated identical WHERE over the same table
  // version, or arrange for the BMO run to publish them.
  if (plan.key_cache_eligible && q.where != nullptr &&
      options.filter_cache != nullptr) {
    FilterCacheKey fkey{CanonicalPredicateSql(*q.where), cache_table->id(),
                        cache_table->VersionAt(config.snapshot)};
    auto positions = options.filter_cache->Lookup(fkey);
    if (positions != nullptr) {
      // Cached slots were computed at this same table version, so they are
      // visible at this snapshot by construction — no re-check.
      candidates = std::make_unique<HeapPositionScanOperator>(
          cand_schema, config.base_heap, *positions, config.snapshot,
          /*check_visibility=*/false);
    } else {
      config.filter_cache = options.filter_cache;
      config.filter_cache_key = std::move(fkey);
    }
  }

  bool progressive_topk =
      q.limit.has_value() && *q.limit >= 0 && !q.offset && q.order_by.empty() &&
      q.grouping.empty() && q.but_only == nullptr && !q.distinct &&
      options.bmo.algorithm == BmoAlgorithm::kSortFilterSkyline;
  if (progressive_topk) config.top_k = static_cast<size_t>(*q.limit);

  // Skyline-cache serving and publication: a cached position list IS the
  // result of a bare whole-table skyline (no WHERE / GROUPING / BUT ONLY,
  // no progressive top-k truncation — the full maximal set, emitted in
  // storage order exactly like the BMO path), so an eligible repeat query
  // skips the dominance pass entirely. Quality-projected queries still
  // publish (the survivor set is the skyline) but cannot be served — their
  // output rows carry per-run quality columns.
  const bool bare_skyline = plan.key_cache_eligible && q.where == nullptr &&
                            config.grouping_cols.empty() &&
                            config.but_only == nullptr &&
                            !config.top_k.has_value();
  config.publish_skyline = bare_skyline && options.skyline_cache;
  if (!options.skyline_cache) {
    plan.skyline_cache_detail = "skyline cache: disabled";
  } else if (!bare_skyline) {
    plan.skyline_cache_detail =
        "skyline cache: not eligible (not a bare whole-table skyline)";
  } else if (quality_projected) {
    plan.skyline_cache_detail =
        "skyline cache: publish only (quality columns are computed per run)";
  } else {
    auto cached = options.key_cache->Lookup(config.key_cache_key);
    if (cached != nullptr && cached->skyline.has_value() &&
        cached->keys != nullptr && cached->keys->size() == config.key_rows) {
      plan.skyline_cache_hit = true;
      plan.skyline_cache_detail =
          "skyline cache: hit (" + std::to_string(cached->skyline->size()) +
          " positions)";
      // The cached keys are reused by proxy — no key build, no BMO pass
      // (bmo.simd stays kScalar: no dominance code executed).
      plan.bmo_stats->key_cache_hit = true;
      plan.bmo_stats->result_count = cached->skyline->size();
      plan.bmo_stats->bmo.kernel = pref.program().kernel();
      auto scan = std::make_unique<HeapPositionScanOperator>(
          cand_schema, config.base_heap, *cached->skyline, config.snapshot,
          /*check_visibility=*/false);
      PSQL_ASSIGN_OR_RETURN(
          plan.root,
          planner.PlanTail(std::move(items), q.distinct, std::move(order_by),
                           q.limit, q.offset, std::move(scan), nullptr));
      return plan;
    }
    plan.skyline_cache_detail = "skyline cache: miss";
  }

  auto bmo = std::make_unique<BmoOperator>(std::move(candidates), &pref,
                                           std::move(config), &executor);

  // 6. Projection tail over the streamed maximal tuples.
  PSQL_ASSIGN_OR_RETURN(
      plan.root,
      planner.PlanTail(std::move(items), q.distinct, std::move(order_by),
                       q.limit, q.offset, std::move(bmo), nullptr));
  return plan;
}

Result<ResultTable> ExecutePreferenceQueryDirect(
    Database& db, const AnalyzedPreferenceQuery& analyzed,
    const DirectEvalOptions& options, DirectEvalStats* stats) {
  PSQL_ASSIGN_OR_RETURN(PreferencePlan plan,
                        BuildPreferencePlan(db, analyzed, options));
  auto result = DrainToTable(*plan.root);
  if (stats != nullptr) {
    // The sinks were flushed by Close (DrainToTable closes even on error),
    // so the counters are valid for partial runs too.
    stats->bmo = plan.bmo_stats->bmo;
    stats->bmo.comparisons += plan.prefilter_stats->bmo.comparisons;
    stats->candidate_count = plan.bmo_stats->candidate_count;
    stats->partitions = plan.bmo_stats->partitions;
    stats->threads_used = std::max(plan.bmo_stats->threads_used,
                                   plan.prefilter_stats->threads_used);
    stats->used_pushdown = plan.used_pushdown;
    stats->pushdown_detail = plan.pushdown_detail;
    stats->prefilter = *plan.prefilter_stats;
    stats->key_cache_eligible = plan.key_cache_eligible;
    stats->key_cache_hit = plan.bmo_stats->key_cache_hit;
    stats->key_cache_detail = plan.key_cache_detail;
    stats->skyline_cache_hit = plan.skyline_cache_hit;
    stats->skyline_cache_detail = plan.skyline_cache_detail;
  }
  return result;
}

}  // namespace prefsql
