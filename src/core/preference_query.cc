#include "core/preference_query.h"

#include <algorithm>
#include <unordered_map>

#include "sql/printer.h"
#include "util/string_util.h"

namespace prefsql {
namespace {

// Synthetic column names for quality values of leaf `i`.
std::string QualityColName(QualityFn fn, size_t leaf) {
  const char* tag = fn == QualityFn::kTop     ? "top"
                    : fn == QualityFn::kLevel ? "level"
                                              : "dist";
  return "$" + std::string(tag) + "_" + std::to_string(leaf);
}

}  // namespace

Result<ResultTable> ExecutePreferenceQueryDirect(
    Database& db, const AnalyzedPreferenceQuery& analyzed,
    const DirectEvalOptions& options) {
  const SelectStmt& q = *analyzed.query;
  const CompiledPreference& pref = analyzed.preference;
  Executor& executor = db.executor();

  // 1. Candidates: FROM ... WHERE ... with qualifiers preserved.
  PSQL_ASSIGN_OR_RETURN(ResultTable cands,
                        executor.MaterializeCandidates(q));
  const Schema& cand_schema = cands.schema();
  const std::vector<Row>& cand_rows = cands.rows();
  const size_t n = cand_rows.size();
  PSQL_RETURN_IF_ERROR(
      ValidatePreferenceColumns(pref, cand_schema.Names()));

  // 2. Preference keys.
  std::vector<PrefKey> keys;
  keys.reserve(n);
  for (const Row& row : cand_rows) {
    PSQL_ASSIGN_OR_RETURN(PrefKey key,
                          pref.MakeKey(cand_schema, row, &executor));
    keys.push_back(std::move(key));
  }

  // 3. GROUPING partitions (§2.2.5): BMO within each partition.
  std::vector<std::vector<size_t>> partitions;
  if (q.grouping.empty()) {
    partitions.emplace_back();
    partitions[0].reserve(n);
    for (size_t i = 0; i < n; ++i) partitions[0].push_back(i);
  } else {
    std::vector<size_t> group_cols;
    for (const auto& g : q.grouping) {
      PSQL_ASSIGN_OR_RETURN(size_t idx, cand_schema.Resolve("", g));
      group_cols.push_back(idx);
    }
    std::unordered_map<size_t, std::vector<size_t>> by_hash;  // hash->part ids
    std::vector<Row> part_keys;
    for (size_t i = 0; i < n; ++i) {
      Row gkey;
      gkey.reserve(group_cols.size());
      for (size_t c : group_cols) gkey.push_back(cand_rows[i][c]);
      size_t h = HashRow(gkey);
      size_t part = SIZE_MAX;
      for (size_t cand_part : by_hash[h]) {
        if (RowsIdentityEqual(part_keys[cand_part], gkey)) {
          part = cand_part;
          break;
        }
      }
      if (part == SIZE_MAX) {
        part = partitions.size();
        partitions.emplace_back();
        part_keys.push_back(std::move(gkey));
        by_hash[h].push_back(part);
      }
      partitions[part].push_back(i);
    }
  }

  // 4. Observed minimum score per leaf per partition (quality offsets for
  //    HIGHEST/LOWEST distances, computed over the unfiltered candidates).
  std::vector<std::vector<double>> min_scores(partitions.size());
  std::vector<size_t> partition_of(n, 0);
  for (size_t p = 0; p < partitions.size(); ++p) {
    min_scores[p].assign(pref.num_leaves(), kWorstScore);
    for (size_t i : partitions[p]) {
      partition_of[i] = p;
      for (size_t l = 0; l < pref.num_leaves(); ++l) {
        min_scores[p][l] = std::min(min_scores[p][l], keys[i][l].score);
      }
    }
  }

  // 5. Augmented relation: candidate columns + quality columns. Select
  //    items, BUT ONLY and ORDER BY are rewritten to reference them.
  std::vector<ColumnInfo> aug_cols = cand_schema.columns();
  std::vector<std::pair<QualityFn, size_t>> quality_slots;
  for (size_t l = 0; l < pref.num_leaves(); ++l) {
    for (QualityFn fn :
         {QualityFn::kTop, QualityFn::kLevel, QualityFn::kDistance}) {
      quality_slots.emplace_back(fn, l);
      aug_cols.push_back({"", QualityColName(fn, l)});
    }
  }
  Schema aug_schema(std::move(aug_cols));

  auto quality_factory = [&](QualityFn fn,
                             const std::string& column) -> Result<ExprPtr> {
    PSQL_ASSIGN_OR_RETURN(size_t slot, pref.LeafForColumn(column));
    return Expr::MakeColumn("", QualityColName(fn, slot));
  };

  std::vector<Row> aug_rows;
  aug_rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row row = cand_rows[i];
    const auto& mins = min_scores[partition_of[i]];
    for (auto [fn, leaf] : quality_slots) {
      const BasePreference& base = *pref.leaf(leaf).pref;
      switch (fn) {
        case QualityFn::kTop:
          row.push_back(Value::Bool(ComputeTop(base, keys[i][leaf],
                                               mins[leaf])));
          break;
        case QualityFn::kLevel:
          row.push_back(Value::Int(ComputeLevel(base, keys[i][leaf],
                                                mins[leaf])));
          break;
        case QualityFn::kDistance:
          row.push_back(Value::Double(ComputeDistance(base, keys[i][leaf],
                                                      mins[leaf])));
          break;
      }
    }
    aug_rows.push_back(std::move(row));
  }

  // 6. Optional BUT ONLY pre-filtering of the candidates (§2.2.4 variant).
  ExprPtr but_only;
  if (q.but_only != nullptr) {
    PSQL_ASSIGN_OR_RETURN(but_only,
                          RewriteQualityCalls(*q.but_only, quality_factory));
  }
  auto passes_but_only = [&](size_t i) -> Result<bool> {
    EvalContext ctx{&aug_schema, &aug_rows[i], nullptr, &executor};
    return EvaluatePredicate(*but_only, ctx);
  };

  // 7. BMO per partition. LIMIT pushdown: a bare LIMIT (no ORDER BY /
  //    BUT ONLY / GROUPING / DISTINCT) in sort-filter mode runs the
  //    progressive top-k variant and stops at the k-th maximal tuple.
  bool progressive_topk =
      q.limit.has_value() && !q.offset && q.order_by.empty() &&
      q.grouping.empty() && q.but_only == nullptr && !q.distinct &&
      options.bmo.algorithm == BmoAlgorithm::kSortFilterSkyline;
  std::vector<uint32_t> survivors;
  for (const auto& part : partitions) {
    std::vector<size_t> candidates = part;
    if (but_only != nullptr &&
        options.but_only_mode == ButOnlyMode::kPreFilter) {
      std::vector<size_t> filtered;
      for (size_t i : candidates) {
        PSQL_ASSIGN_OR_RETURN(bool pass, passes_but_only(i));
        if (pass) filtered.push_back(i);
      }
      candidates = std::move(filtered);
    }
    std::vector<size_t> bmo =
        progressive_topk
            ? ComputeBmoTopK(pref, keys, candidates,
                             static_cast<size_t>(*q.limit))
            : ComputeBmo(pref, keys, candidates, options.bmo);
    if (but_only != nullptr &&
        options.but_only_mode == ButOnlyMode::kPostFilter) {
      for (size_t i : bmo) {
        PSQL_ASSIGN_OR_RETURN(bool pass, passes_but_only(i));
        if (pass) survivors.push_back(static_cast<uint32_t>(i));
      }
    } else {
      for (size_t i : bmo) survivors.push_back(static_cast<uint32_t>(i));
    }
  }
  std::sort(survivors.begin(), survivors.end());

  // 8. Final projection with quality functions rewritten to the synthetic
  //    columns. '*' must expand to the *candidate* columns only.
  std::vector<SelectItem> items;
  for (const auto& item : q.items) {
    if (item.expr->kind == ExprKind::kStar) {
      for (size_t c = 0; c < cand_schema.num_columns(); ++c) {
        const ColumnInfo& ci = cand_schema.column(c);
        if (!item.expr->qualifier.empty() &&
            !EqualsIgnoreCase(item.expr->qualifier, ci.qualifier)) {
          continue;
        }
        items.push_back({Expr::MakeColumn(ci.qualifier, ci.name), ci.name});
      }
      continue;
    }
    PSQL_ASSIGN_OR_RETURN(ExprPtr e,
                          RewriteQualityCalls(*item.expr, quality_factory));
    std::string alias = item.alias;
    if (alias.empty() && ContainsQualityCall(*item.expr)) {
      alias = ExprToSql(*item.expr);
    }
    items.push_back({std::move(e), std::move(alias)});
  }
  std::vector<OrderItem> order_by;
  for (const auto& oi : q.order_by) {
    PSQL_ASSIGN_OR_RETURN(ExprPtr e,
                          RewriteQualityCalls(*oi.expr, quality_factory));
    order_by.push_back({std::move(e), oi.ascending});
  }

  return executor.ProjectRows(items, q.distinct, order_by, q.limit, q.offset,
                              aug_schema, aug_rows, survivors);
}

}  // namespace prefsql
