#include "core/prepared_statement.h"

#include <utility>

#include "core/engine.h"

namespace prefsql {

PreparedStatement::PreparedStatement(Engine* engine,
                                     std::shared_ptr<Engine> keepalive,
                                     Session* session,
                                     std::shared_ptr<const Statement> stmt,
                                     std::string key_text,
                                     ParameterSignature signature)
    : engine_(engine),
      keepalive_(std::move(keepalive)),
      session_(session),
      stmt_(std::move(stmt)),
      key_text_(std::move(key_text)),
      signature_(std::move(signature)),
      values_(signature_.count()),
      bound_(signature_.count(), false) {}

Status PreparedStatement::Bind(size_t index, Value value) {
  if (index >= signature_.count()) {
    return Status::BindError(
        "parameter index " + std::to_string(index) + " out of range (" +
        std::to_string(signature_.count()) + " parameter(s))");
  }
  PSQL_RETURN_IF_ERROR(CheckParamConstraint(
      value, signature_.constraints[index], index, /*parse_errors=*/false));
  values_[index] = std::move(value);
  bound_[index] = true;
  return Status::OK();
}

Status PreparedStatement::Bind(const std::string& name, Value value) {
  if (name.empty()) {
    // Positional slots carry the empty name internally; an empty lookup
    // must not silently bind them.
    return Status::BindError(
        "parameter name must not be empty (bind positional '?' slots by "
        "index)");
  }
  bool found = false;
  for (size_t i = 0; i < signature_.count(); ++i) {
    if (signature_.names[i] == name) {
      PSQL_RETURN_IF_ERROR(Bind(i, value));
      found = true;
    }
  }
  if (!found) {
    return Status::BindError("statement has no parameter named '$" + name +
                             "'");
  }
  return Status::OK();
}

void PreparedStatement::ClearBindings() {
  for (size_t i = 0; i < bound_.size(); ++i) {
    values_[i] = Value();
    bound_[i] = false;
  }
}

Status PreparedStatement::CheckFullyBound() const {
  std::string missing;
  for (size_t i = 0; i < bound_.size(); ++i) {
    if (bound_[i]) continue;
    if (!missing.empty()) missing += ", ";
    missing += signature_.names[i].empty() ? "?" + std::to_string(i + 1)
                                           : "$" + signature_.names[i];
  }
  if (missing.empty()) return Status::OK();
  return Status::BindError("unbound parameter(s): " + missing);
}

Result<ResultTable> PreparedStatement::Execute() {
  Cursor cursor;
  PSQL_ASSIGN_OR_RETURN(cursor, Open());
  return DrainCursor(cursor);
}

Result<Cursor> PreparedStatement::Open() {
  if (engine_ == nullptr || stmt_ == nullptr) {
    return Status::ExecutionError("prepared statement is empty");
  }
  PSQL_RETURN_IF_ERROR(CheckFullyBound());
  if (!key_text_.empty() && stmt_->select != nullptr) {
    // Plan-cached SELECT/EXPLAIN: re-validate the key against the current
    // catalog version and knobs. A miss (DDL in between, knob change)
    // rebuilds the preparation from the retained AST — the transparent
    // re-prepare — and re-publishes it.
    bool hit = false;
    PSQL_ASSIGN_OR_RETURN(
        auto plan, engine_->LookupOrPrepare(*session_, key_text_,
                                            stmt_->kind, stmt_->select, &hit));
    return engine_->OpenPreparedCursor(*session_, std::move(plan), hit,
                                       BoundValues(), auto_parameterized_,
                                       keepalive_);
  }
  // Not plan-cached (DML / DDL / SET): instantiate the AST with the bound
  // values and run it through the statement path (exclusive lock).
  Statement bound = stmt_->Clone();
  if (const std::vector<Value>* values = BoundValues()) {
    PSQL_RETURN_IF_ERROR(
        BindStatementParameters(bound, *values, /*parse_errors=*/false));
  }
  PSQL_ASSIGN_OR_RETURN(ResultTable result,
                        engine_->ExecuteStatement(*session_, bound));
  return engine_->MaterializedCursor(std::move(result), session_, keepalive_);
}

}  // namespace prefsql
