// PreparedStatement: parse once, bind per request, execute or stream at
// will — the prepared half of the client surface (the paper's Preference
// ODBC/JDBC driver, §3.1).
//
//   auto stmt = conn.Prepare(
//       "SELECT * FROM car PREFERRING price AROUND $target");
//   stmt->Bind("target", prefsql::Value::Int(40000));
//   auto rows = stmt->Execute();          // plan-cache hit from then on
//   stmt->Bind("target", prefsql::Value::Int(55000));
//   auto cursor = stmt->Open();           // same plan, streamed
//
// Placeholders are positional (`?`, bound by 0-based index) or named
// (`$name`, one ordinal per distinct name, bound by name or index). A
// statement without placeholders is auto-parameterized at Prepare: its
// literals become pre-bound parameters, so `Prepare("... AROUND 40")`,
// `Prepare("... AROUND 55")` and the same spelling with an explicit `?`
// all share one plan-cache entry (named `$t` templates are their own
// canonical text and key separately).
//
// The statement holds the parsed AST and the plan-cache key text. Every
// Execute/Open re-validates the key against the current catalog version and
// session knobs: DDL (or a SET that changes how the statement would
// prepare) triggers a transparent re-prepare from the retained AST — never
// a re-parse. Binding errors (index/name out of range, values violating a
// slot's grammar constraint, executing with unbound parameters) report
// StatusCode::kBindError.
//
// A PreparedStatement borrows its Session (and, unless a keepalive was
// supplied by Connection::Prepare, its Engine): it must not outlive the
// Connection that prepared it.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cursor.h"
#include "core/session.h"
#include "sql/ast.h"
#include "sql/parameters.h"
#include "types/result_table.h"
#include "types/value.h"
#include "util/status.h"

namespace prefsql {

class Engine;

/// A parsed, re-executable statement with typed parameter binding.
class PreparedStatement {
 public:
  PreparedStatement(PreparedStatement&&) = default;
  PreparedStatement& operator=(PreparedStatement&&) = default;
  PreparedStatement(const PreparedStatement&) = delete;
  PreparedStatement& operator=(const PreparedStatement&) = delete;

  /// Number of parameter slots (explicit placeholders, or auto-lifted
  /// literals — the latter arrive pre-bound to their original values).
  size_t parameter_count() const { return signature_.count(); }

  /// Slot names, index-ordered ("" = positional `?`).
  const std::vector<std::string>& parameter_names() const {
    return signature_.names;
  }

  /// Binds slot `index` (0-based). Checks the slot's grammar constraint
  /// (e.g. an AROUND target must be numeric or a date); kBindError on a
  /// bad index or value.
  Status Bind(size_t index, Value value);

  /// Binds every slot named `$name`; kBindError when the statement has no
  /// such parameter.
  Status Bind(const std::string& name, Value value);

  /// Clears all bindings (auto-parameterized statements lose their
  /// pre-bound literal values too).
  void ClearBindings();

  /// Executes with the current bindings, materializing the result.
  /// kBindError when any slot is unbound.
  Result<ResultTable> Execute();

  /// Executes with the current bindings, streaming the result through a
  /// Cursor (see core/cursor.h for the lock discipline).
  Result<Cursor> Open();

  /// The plan-cache key text (parameterized normalized form) for
  /// SELECT/EXPLAIN statements; empty for statements that are not
  /// plan-cached (DML/DDL).
  const std::string& text() const { return key_text_; }

 private:
  friend class Engine;

  PreparedStatement(Engine* engine, std::shared_ptr<Engine> keepalive,
                    Session* session, std::shared_ptr<const Statement> stmt,
                    std::string key_text, ParameterSignature signature);

  /// kBindError naming every unbound slot, or OK.
  Status CheckFullyBound() const;

  /// The bound values, or nullptr when the statement has no parameters.
  const std::vector<Value>* BoundValues() const {
    return signature_.count() == 0 ? nullptr : &values_;
  }

  Engine* engine_ = nullptr;
  std::shared_ptr<Engine> keepalive_;
  Session* session_ = nullptr;
  std::shared_ptr<const Statement> stmt_;
  std::string key_text_;  ///< empty = not plan-cached
  ParameterSignature signature_;
  std::vector<Value> values_;
  std::vector<bool> bound_;
  bool auto_parameterized_ = false;
};

}  // namespace prefsql
