// Best-Matches-Only (BMO) evaluation algorithms (§2.2.5, §3.2).
//
// Four in-engine algorithms compute the maximal elements of a set of tuples
// under a compiled preference:
//   * kNaiveNestedLoop — the paper's abstract selection method (§3.2):
//     a tuple is maximal iff no other tuple is better. O(n²) always.
//   * kBlockNestedLoop — BNL of [BKS01] with a bounded self-organizing
//     window and multi-pass overflow handling.
//   * kSortFilterSkyline — SFS: presort by a linear extension of the
//     preference order, then a single filter pass against the growing
//     result (no eviction needed because a later tuple can never dominate
//     an earlier one).
//   * kLess — LESS [GSG05]: SFS with an elimination-filter window folded
//     into the presort. A small window of high-dominance tuples (lowest
//     score volume) drops most dominated tuples in the initial scan, so the
//     sort and the filter pass run over a fraction of the input.
//
// All algorithms read keys from the packed KeyStore and test dominance
// through the preference's compiled DominanceProgram (flat opcodes,
// specialized kernels) — see preference/dominance_program.h. The recursive
// CompiledPreference::Compare remains the parity oracle.
//
// The fifth strategy — the rewrite to standard SQL with a NOT EXISTS
// anti-join, which the commercial product used — lives in rewriter.h.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "preference/composite.h"
#include "util/status.h"

namespace prefsql {

class QueryContext;

/// In-engine BMO algorithm selector.
enum class BmoAlgorithm {
  kNaiveNestedLoop,
  kBlockNestedLoop,
  kSortFilterSkyline,
  kLess,
};

const char* BmoAlgorithmToString(BmoAlgorithm a);

/// Parses "naive"/"bnl"/"sfs"/"less" (lower case); error otherwise.
Result<BmoAlgorithm> BmoAlgorithmFromString(const std::string& name);

/// Tuning for the BMO computation.
struct BmoOptions {
  BmoAlgorithm algorithm = BmoAlgorithm::kBlockNestedLoop;
  /// BNL window capacity in tuples; 0 = unbounded (single pass).
  size_t bnl_window = 0;
  /// LESS elimination-filter window capacity in tuples.
  size_t less_window = 32;
  /// Run the packed kernels through the block SIMD/unrolled path
  /// (DispatchedSimdVariant decides which); off forces row-at-a-time.
  bool simd = true;
  /// Cooperative-interrupt context, polled every kInterruptStride tuples.
  /// On an interrupt the algorithms bail out returning a partial (garbage)
  /// result; the caller must check ctx->interrupted() and discard it. Passed
  /// explicitly (not through the thread-local) so bmo_parallel workers see
  /// the statement's context across pool threads.
  QueryContext* ctx = nullptr;
};

/// Statistics of one BMO computation (benchmarks, tests).
struct BmoStats {
  size_t comparisons = 0;  ///< dominance tests performed
  size_t passes = 1;       ///< BNL passes over the input
  /// Wall time spent building the packed keys, filled by the key-building
  /// layer (BmoOperator); the algorithms themselves never build keys.
  uint64_t key_build_ns = 0;
  /// Dominance kernel the preference's compiled program dispatched to.
  DominanceKernel kernel = DominanceKernel::kGeneric;
  /// Block-walk variant the inner loops ran with (scalar for the generic
  /// kernel or when BmoOptions::simd is off).
  SimdVariant simd = SimdVariant::kScalar;
};

/// Returns the indices (into `keys`, ascending) of all maximal tuples.
/// `candidates` restricts the input (e.g. one GROUPING partition); pass all
/// indices for a plain query.
std::vector<size_t> ComputeBmo(const CompiledPreference& pref,
                               const KeyStore& keys,
                               std::span<const size_t> candidates,
                               const BmoOptions& options = {},
                               BmoStats* stats = nullptr);

/// Progressive top-k BMO (cf. [TEO01]): returns up to `k` maximal tuples
/// without computing the full BMO set. The LESS elimination-filter prepass
/// drops most dominated tuples in one linear scan first (dropped tuples are
/// dominated, hence never maximal, so the result is unaffected), and only
/// the survivors are sorted; the filter pass then stops at the k-th
/// confirmed maximal tuple (a tuple surviving the SFS filter is definitely
/// maximal). Which k maximal tuples are returned is unspecified (like LIMIT
/// without ORDER BY). The query layer uses this for LIMIT pushdown in
/// sort-filter mode; `options.less_window` sizes the prepass window.
std::vector<size_t> ComputeBmoTopK(const CompiledPreference& pref,
                                   const KeyStore& keys,
                                   std::span<const size_t> candidates,
                                   size_t k, const BmoOptions& options = {},
                                   BmoStats* stats = nullptr);

}  // namespace prefsql
