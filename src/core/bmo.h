// Best-Matches-Only (BMO) evaluation algorithms (§2.2.5, §3.2).
//
// Three in-engine algorithms compute the maximal elements of a set of tuples
// under a compiled preference:
//   * kNaiveNestedLoop — the paper's abstract selection method (§3.2):
//     a tuple is maximal iff no other tuple is better. O(n²) always.
//   * kBlockNestedLoop — BNL of [BKS01] with a bounded self-organizing
//     window and multi-pass overflow handling.
//   * kSortFilterSkyline — SFS: presort by a linear extension of the
//     preference order, then a single filter pass against the growing
//     result (no eviction needed because a later tuple can never dominate
//     an earlier one).
//
// The fourth strategy — the rewrite to standard SQL with a NOT EXISTS
// anti-join, which the commercial product used — lives in rewriter.h.

#pragma once

#include <cstddef>
#include <vector>

#include "preference/composite.h"
#include "util/status.h"

namespace prefsql {

/// In-engine BMO algorithm selector.
enum class BmoAlgorithm {
  kNaiveNestedLoop,
  kBlockNestedLoop,
  kSortFilterSkyline,
};

const char* BmoAlgorithmToString(BmoAlgorithm a);

/// Tuning for the BMO computation.
struct BmoOptions {
  BmoAlgorithm algorithm = BmoAlgorithm::kBlockNestedLoop;
  /// BNL window capacity in tuples; 0 = unbounded (single pass).
  size_t bnl_window = 0;
};

/// Statistics of one BMO computation (benchmarks, tests).
struct BmoStats {
  size_t comparisons = 0;  ///< dominance tests performed
  size_t passes = 1;       ///< BNL passes over the input
};

/// Returns the indices (into `keys`, ascending) of all maximal tuples.
/// `candidates` restricts the input (e.g. one GROUPING partition); pass all
/// indices for a plain query.
std::vector<size_t> ComputeBmo(const CompiledPreference& pref,
                               const std::vector<PrefKey>& keys,
                               const std::vector<size_t>& candidates,
                               const BmoOptions& options = {},
                               BmoStats* stats = nullptr);

/// Progressive top-k BMO (cf. [TEO01]): returns up to `k` maximal tuples
/// without computing the full BMO set. Uses the SFS property that a tuple
/// surviving the filter pass is definitely maximal, so the scan can stop at
/// the k-th survivor. Which k maximal tuples are returned is unspecified
/// (like LIMIT without ORDER BY). The query layer uses this for LIMIT
/// pushdown in sort-filter mode.
std::vector<size_t> ComputeBmoTopK(const CompiledPreference& pref,
                                   const std::vector<PrefKey>& keys,
                                   const std::vector<size_t>& candidates,
                                   size_t k, BmoStats* stats = nullptr);

}  // namespace prefsql
