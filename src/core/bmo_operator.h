// BmoOperator: the paper's plug-in preference selection operator (§3.2) as
// a physical pipeline operator. It pulls the candidate stream (scan/filter
// tree planned by engine/planner.h), obtains the packed preference keys —
// from the engine key cache when the run is cache-keyed and the table is
// unchanged, freshly built otherwise — partitions by the GROUPING
// attributes (§2.2.5), runs one of the BMO algorithms (core/bmo.h) per
// partition, and streams the maximal tuples to the projection tail.
//
// LIMIT pushdown: with `top_k` set (bare LIMIT, sort-filter mode) the
// operator runs the progressive ComputeBmoTopK and stops the filter pass at
// the k-th confirmed maximal tuple — measurably fewer dominance comparisons
// than the full BMO (see stats()).
//
// BUT ONLY (§2.2.4) evaluates against an augmented row (candidate columns +
// quality columns); the augmented schema is only emitted downstream when
// the query projects quality functions.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/bmo.h"
#include "core/quality.h"
#include "util/memory_budget.h"
#include "engine/evaluator.h"
#include "engine/operators/operator.h"
#include "preference/composite.h"
#include "preference/key_cache.h"
#include "storage/row_heap.h"

namespace prefsql {

/// Name of the synthetic quality column for `leaf` ("$top_0", "$level_2",
/// ...); TOP/LEVEL/DISTANCE calls are rewritten to reference these.
std::string BmoQualityColumnName(QualityFn fn, size_t leaf);

/// Observability of one BmoOperator run, flushed into the configured sink on
/// Close() (and from the destructor) so the numbers are correct even when a
/// consumer stops pulling early or the drain aborts with an error.
struct BmoRunStats {
  BmoStats bmo;                ///< dominance-test counters
  size_t candidate_count = 0;  ///< rows consumed from the child
  size_t result_count = 0;     ///< maximal tuples after BUT ONLY
  size_t partitions = 0;       ///< GROUPING partitions evaluated
  size_t threads_used = 1;     ///< parallel pool width (1 = serial)
  /// The packed keys came from the engine key cache (key build skipped;
  /// bmo.key_build_ns stays 0).
  bool key_cache_hit = false;
};

/// Configuration of one BmoOperator instance.
struct BmoOperatorConfig {
  BmoOptions bmo;
  /// Progressive top-k pushdown (bare LIMIT in sort-filter mode).
  std::optional<size_t> top_k;
  /// GROUPING partition columns (positions in the candidate schema).
  std::vector<size_t> grouping_cols;
  /// BUT ONLY condition, rewritten against the augmented schema (not
  /// owned; must outlive the plan). nullptr = none.
  const Expr* but_only = nullptr;
  ButOnlyMode but_only_mode = ButOnlyMode::kPostFilter;
  /// Emit candidate columns + quality columns (queries projecting or
  /// ordering by TOP/LEVEL/DISTANCE); otherwise candidate columns pass
  /// through as row views.
  bool emit_quality_columns = false;
  /// Parallel partitioned execution (core/bmo_parallel.h); 0/1 = serial.
  /// Ignored while the progressive top-k pushdown is active.
  size_t threads = 0;
  /// Minimum candidate rows before worker threads spin up.
  size_t parallel_min_rows = 4096;
  /// Stats flushed on Close()/destruction (not owned; may be nullptr).
  BmoRunStats* stats_sink = nullptr;
  /// Engine skyline/key cache to consult/fill for this run (not owned;
  /// nullptr = off). The planner sets it only when the candidate child is a
  /// bare (optionally WHERE-filtered, see `base_rows`) scan of one base
  /// table; `key_cache_key` carries the (preference fingerprint, table id,
  /// table version) identity of the whole-table key store.
  SkylineCache* key_cache = nullptr;
  KeyCacheKey key_cache_key;
  /// Shared ownership of the compiled preference, stored into published
  /// cache entries so incremental maintenance can re-key rows after the
  /// plan is gone. Set iff `key_cache` is.
  std::shared_ptr<const CompiledPreference> cache_pref;
  /// Publish the computed maximal set as the table's skyline position list
  /// (planner sets this only when the result equals the bare skyline: full
  /// scan, no GROUPING / BUT ONLY / top-k truncation).
  bool publish_skyline = false;
  /// Position mode (cache-eligible candidates over one base table): the
  /// table's version heap, used to recover each pulled row's heap slot via
  /// pointer identity and to build whole-table keys on a cache miss. The
  /// dominance pass then runs over slot positions into the shared
  /// whole-table KeyStore. Under MVCC every cache-eligible run is position
  /// mode — slot positions, not pulled indices, are the stable id space a
  /// published entry shares with later readers. nullptr = candidates are
  /// not a base-table scan (keys are pulled-index local).
  const RowHeap* base_heap = nullptr;
  /// Snapshot epoch of this run (position mode).
  uint64_t snapshot = 0;
  /// Slot count sealed by the snapshot's table version: the key space of
  /// the shared KeyStore (position mode). Slots holding versions invisible
  /// at the snapshot still occupy a key row — GC-cleared payloads get
  /// neutral keys, sound because dominance only runs over candidate ids.
  size_t key_rows = 0;
  /// Filter-position cache to fill with the pulled positions (position
  /// mode only; not owned; may be nullptr).
  FilterCache* filter_cache = nullptr;
  FilterCacheKey filter_cache_key;
};

class BmoOperator : public PhysicalOperator {
 public:
  BmoOperator(OperatorPtr child, const CompiledPreference* pref,
              BmoOperatorConfig config, SubqueryRunner* runner);
  ~BmoOperator() override;

  const Schema& schema() const override {
    return config_.emit_quality_columns ? aug_schema_ : child_->schema();
  }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  Result<bool> NextBatch(RowBatch* out) override;
  void Close() override;
  const char* label() const override { return "bmo"; }

  /// Dominance-test counters of the last Open (accumulated over
  /// partitions; survives Close for benches).
  const BmoStats& stats() const { return run_stats_.bmo; }
  /// Candidate rows consumed from the child by the last Open.
  size_t candidate_count() const { return run_stats_.candidate_count; }
  /// Full run counters of the last Open (survive Close).
  const BmoRunStats& run_stats() const { return run_stats_; }

 private:
  /// Local (pulled) index of candidate id `id`. Ids are storage positions
  /// in position mode and pulled indices otherwise.
  size_t LocalOf(size_t id) const {
    return use_positions_ ? local_of_.at(id) : id;
  }
  Row BuildAugmentedRow(size_t id) const;
  Result<bool> PassesButOnly(size_t id);
  /// Copies the run counters into the configured sink (if any).
  void FlushStats();

  OperatorPtr child_;
  const CompiledPreference* pref_;
  BmoOperatorConfig config_;
  SubqueryRunner* runner_;
  Schema aug_schema_;
  std::vector<std::pair<QualityFn, size_t>> quality_slots_;

  std::vector<RowRef> rows_;
  /// Packed SoA keys shared by every partition / chunk: freshly built, or
  /// borrowed wholesale from the engine key cache (immutable either way).
  /// Indexed by candidate id (storage positions in position mode).
  std::shared_ptr<const KeyStore> keys_;
  /// Position mode engaged at runtime: config_.base_rows is set and every
  /// pulled row's storage position was recovered.
  bool use_positions_ = false;
  std::vector<size_t> positions_;  // pulled index -> storage position
  std::unordered_map<size_t, size_t> local_of_;  // storage pos -> pulled
  std::vector<size_t> partition_of_;  // by pulled index
  std::vector<std::vector<double>> min_scores_;  // per partition per leaf
  std::vector<size_t> survivors_;  // candidate ids, in emission order
  size_t pos_ = 0;
  BmoRunStats run_stats_;
  /// Budget reservations for this run's buffers (pulled rows + key store),
  /// held until Close so streamed results stay accounted. One holder per
  /// budget level.
  ScopedMemoryCharge stmt_charge_;
  ScopedMemoryCharge engine_charge_;
};

}  // namespace prefsql
