// BmoOperator: the paper's plug-in preference selection operator (§3.2) as
// a physical pipeline operator. It pulls the candidate stream (scan/filter
// tree planned by engine/planner.h), computes preference keys per tuple as
// they arrive, partitions by the GROUPING attributes (§2.2.5), runs one of
// the three BMO algorithms (core/bmo.h) per partition, and streams the
// maximal tuples to the projection tail.
//
// LIMIT pushdown: with `top_k` set (bare LIMIT, sort-filter mode) the
// operator runs the progressive ComputeBmoTopK and stops the filter pass at
// the k-th confirmed maximal tuple — measurably fewer dominance comparisons
// than the full BMO (see stats()).
//
// BUT ONLY (§2.2.4) evaluates against an augmented row (candidate columns +
// quality columns); the augmented schema is only emitted downstream when
// the query projects quality functions.

#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/bmo.h"
#include "core/quality.h"
#include "engine/evaluator.h"
#include "engine/operators/operator.h"
#include "preference/composite.h"

namespace prefsql {

/// Name of the synthetic quality column for `leaf` ("$top_0", "$level_2",
/// ...); TOP/LEVEL/DISTANCE calls are rewritten to reference these.
std::string BmoQualityColumnName(QualityFn fn, size_t leaf);

/// Configuration of one BmoOperator instance.
struct BmoOperatorConfig {
  BmoOptions bmo;
  /// Progressive top-k pushdown (bare LIMIT in sort-filter mode).
  std::optional<size_t> top_k;
  /// GROUPING partition columns (positions in the candidate schema).
  std::vector<size_t> grouping_cols;
  /// BUT ONLY condition, rewritten against the augmented schema (not
  /// owned; must outlive the plan). nullptr = none.
  const Expr* but_only = nullptr;
  ButOnlyMode but_only_mode = ButOnlyMode::kPostFilter;
  /// Emit candidate columns + quality columns (queries projecting or
  /// ordering by TOP/LEVEL/DISTANCE); otherwise candidate columns pass
  /// through as row views.
  bool emit_quality_columns = false;
};

class BmoOperator : public PhysicalOperator {
 public:
  BmoOperator(OperatorPtr child, const CompiledPreference* pref,
              BmoOperatorConfig config, SubqueryRunner* runner);

  const Schema& schema() const override {
    return config_.emit_quality_columns ? aug_schema_ : child_->schema();
  }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  void Close() override;

  /// Dominance-test counters of the last Open (accumulated over
  /// partitions; survives Close for benches).
  const BmoStats& stats() const { return stats_; }
  /// Candidate rows consumed from the child by the last Open.
  size_t candidate_count() const { return candidate_count_; }

 private:
  Row BuildAugmentedRow(size_t i) const;
  Result<bool> PassesButOnly(size_t i);

  OperatorPtr child_;
  const CompiledPreference* pref_;
  BmoOperatorConfig config_;
  SubqueryRunner* runner_;
  Schema aug_schema_;
  std::vector<std::pair<QualityFn, size_t>> quality_slots_;

  std::vector<RowRef> rows_;
  std::vector<PrefKey> keys_;
  std::vector<size_t> partition_of_;
  std::vector<std::vector<double>> min_scores_;  // per partition per leaf
  std::vector<size_t> survivors_;
  size_t pos_ = 0;
  size_t candidate_count_ = 0;
  BmoStats stats_;
};

}  // namespace prefsql
