// Parallel partitioned BMO: runs the skyline of core/bmo.h concurrently on
// a small thread pool.
//
// Partitioning happens at two levels:
//   1. GROUPING partitions are independent by definition (§2.2.5) — each is
//      a separate skyline task.
//   2. A large partition is block-partitioned into chunks; every chunk's
//      local skyline runs in parallel, then the per-partition survivors are
//      merged with one final dominance pass. The merge is exact because
//      dominance is a strict partial order: any tuple dominated in the full
//      partition is dominated by some *locally maximal* tuple (follow the
//      dominance chain inside the dominator's chunk), so it cannot survive
//      the final pass over the union of local skylines.
//
// Key extraction and dominance tests are pure functions of the prebuilt
// PrefKeys — no evaluator or catalog state crosses a thread boundary. The
// progressive top-k variant stays serial (truncated local skylines do not
// merge exactly); the query layer bypasses parallelism when LIMIT pushdown
// is active.

#pragma once

#include <cstddef>
#include <vector>

#include "core/bmo.h"

namespace prefsql {

/// Tuning of the parallel partitioned BMO.
struct ParallelBmoOptions {
  /// Worker threads; <= 1 falls back to the serial per-partition loop.
  size_t threads = 0;
  /// Target rows per block-partition chunk; chunks never exceed `threads`
  /// per partition.
  size_t min_chunk = 2048;
};

/// Observability of one parallel run.
struct ParallelBmoStats {
  BmoStats bmo;                ///< summed over all chunk and merge tasks
  size_t chunk_tasks = 0;      ///< leaf skyline tasks executed
  size_t merge_candidates = 0; ///< rows entering final dominance passes
  size_t threads_used = 1;     ///< pool width actually spun up
};

/// Computes the per-partition maximal tuples of `partitions` (indices into
/// `keys`) and returns their union, ascending. Equivalent to running
/// ComputeBmo per partition and concatenating; with `par.threads > 1` the
/// work is spread over a thread pool as described above. Chunk tasks view
/// the partition index vectors as spans — no candidate list is copied.
std::vector<size_t> ComputeBmoPartitionedParallel(
    const CompiledPreference& pref, const KeyStore& keys,
    const std::vector<std::vector<size_t>>& partitions,
    const BmoOptions& options, const ParallelBmoOptions& par,
    ParallelBmoStats* stats = nullptr);

}  // namespace prefsql
