// The Preference SQL Optimizer's rewriting method (§3.2): translate a
// preference query into SQL92-entry-level standard SQL.
//
// Shape of the output (exactly the paper's Cars example):
//
//   CREATE VIEW <aux> AS
//     SELECT *, <score-expr-1> AS _lvl0, ... FROM <from> WHERE <where>;
//   SELECT <items> FROM <aux> A1
//   WHERE NOT EXISTS (SELECT 1 FROM <aux> A2
//                     WHERE <A2 dominates A1> [AND same GROUPING values])
//     [AND <BUT ONLY over A1 level columns>]
//   [ORDER BY ...];
//   DROP VIEW <aux>;
//
// Every generated construct (views, CASE, correlated NOT EXISTS, scalar
// MIN/MAX subqueries) is SQL92 entry level, so the output runs on any
// compliant host database — here, on src/engine.

#pragma once

#include <string>
#include <vector>

#include "core/analyzer.h"
#include "core/quality.h"
#include "sql/ast.h"
#include "util/status.h"

namespace prefsql {

/// The standard-SQL translation of one preference query.
struct RewriteOutput {
  /// CREATE VIEW statements to run before the query.
  std::vector<Statement> setup;
  /// The rewritten standard SQL query.
  std::shared_ptr<SelectStmt> query;
  /// DROP VIEW statements to run afterwards.
  std::vector<Statement> teardown;
  /// Name of the generated Aux view.
  std::string aux_view_name;

  /// The full script as SQL text (setup; query; teardown) — what the paper
  /// §3.2 prints.
  std::string ToScript() const;
};

/// Rewrites an analyzed preference query. `base_columns` are the column
/// names produced by `SELECT * FROM <from>` (the rewriter needs them to
/// project the Aux view's synthetic level columns away); obtain them with a
/// schema probe. Fails with NotImplemented when the preference contains a
/// non-weak-order EXPLICIT leaf (callers fall back to in-engine BMO).
Result<RewriteOutput> RewritePreferenceQuery(
    const AnalyzedPreferenceQuery& analyzed,
    const std::vector<std::string>& base_columns, ButOnlyMode but_only_mode,
    const std::string& aux_view_name);

}  // namespace prefsql
