// Connection: the public entry point of the library — the analogue of the
// paper's "Preference ODBC/JDBC driver" sitting in front of the Preference
// SQL Optimizer and the standard SQL database (§3.1).
//
//   prefsql::Connection conn;
//   conn.Execute("CREATE TABLE trips (dest TEXT, duration INTEGER)");
//   conn.Execute("INSERT INTO trips VALUES ('Rome', 10), ('Oslo', 15)");
//   auto result = conn.Execute(
//       "SELECT * FROM trips PREFERRING duration AROUND 14");
//   std::cout << result->ToString();
//
// A Connection is a thin facade bundling one Session (per-client knobs and
// stats, core/session.h) with an Engine (shared catalog + executor +
// caches, core/engine.h). By default each Connection owns a private engine
// — the classic embedded behaviour; Attach() switches it onto a shared
// engine so many connections serve one database, as in the paper's
// deployment:
//
//   auto engine = std::make_shared<prefsql::Engine>();
//   prefsql::Connection a, b;
//   a.Attach(engine);
//   b.Attach(engine);   // b sees every table a creates
//
// Standard SQL passes straight through to the engine ("without causing any
// noticeable overhead"); queries with a PREFERRING clause are rewritten
// into standard SQL (the product's strategy) or evaluated with an in-engine
// skyline algorithm, selectable per session.
//
// The driver surface is three-tiered, like the ODBC/JDBC API it mirrors:
//   Execute(text)   one-shot: parse (or plan-cache hit), run, materialize;
//   Prepare(text)   parse once, Bind('?'/'$name') per request, re-execute —
//                   statements differing only in literals share one cached
//                   plan (auto-parameterization);
//   OpenCursor(text) stream rows out of the pull pipeline without
//                   materializing a ResultTable (core/cursor.h).

#pragma once

#include <memory>
#include <string>
#include <utility>

#include "core/cursor.h"
#include "core/engine.h"
#include "core/prepared_statement.h"
#include "core/session.h"
#include "types/result_table.h"
#include "util/status.h"

namespace prefsql {

/// A Preference SQL connection: one session over a private or shared engine.
class Connection {
 public:
  Connection() : engine_(std::make_shared<Engine>()) {}
  explicit Connection(ConnectionOptions options)
      : engine_(std::make_shared<Engine>()), session_(options) {}

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Attaches this connection to `engine`, releasing the private one. The
  /// session's knobs and stats are kept. Statements of connections sharing
  /// an engine are isolated by the engine's statement lock (reads run
  /// concurrently, writes exclusively).
  void Attach(std::shared_ptr<Engine> engine) { engine_ = std::move(engine); }

  /// The engine this connection runs on (pass it to another connection's
  /// Attach to share the database).
  const std::shared_ptr<Engine>& engine() const { return engine_; }

  /// Parses and executes one statement (standard SQL or Preference SQL).
  Result<ResultTable> Execute(const std::string& sql) {
    return engine_->Execute(session_, sql);
  }

  /// Prepares a statement for repeated execution: parse once, bind values
  /// per request, execute or stream at will (core/prepared_statement.h).
  /// The returned statement borrows this connection's session — it must
  /// not outlive the Connection.
  Result<PreparedStatement> Prepare(const std::string& sql) {
    return engine_->Prepare(session_, sql, engine_);
  }

  /// Opens a streaming cursor over one statement: rows are pulled from the
  /// operator pipeline on demand instead of materializing a ResultTable.
  /// A streaming cursor holds the engine's shared statement lock — close
  /// it before issuing DML/DDL from the same thread (core/cursor.h).
  Result<Cursor> OpenCursor(const std::string& sql) {
    return engine_->OpenCursor(session_, sql, engine_);
  }

  /// Executes a semicolon-separated script; returns the last result.
  Result<ResultTable> ExecuteScript(const std::string& sql) {
    return engine_->ExecuteScript(session_, sql);
  }

  /// Executes a script, delivering every statement's result to `on_result`
  /// (0-based statement index, parsed statement, result) instead of
  /// dropping all but the last. A non-OK callback return aborts the script.
  Status ExecuteScript(const std::string& sql,
                       const Engine::ScriptResultCallback& on_result) {
    return engine_->ExecuteScript(session_, sql, on_result);
  }

  /// Executes an already-parsed statement (see Engine::ExecuteStatement).
  Result<ResultTable> ExecuteStatement(const Statement& stmt) {
    return engine_->ExecuteStatement(session_, stmt);
  }

  /// Translates a preference query into the standard SQL script the
  /// rewriting optimizer would run (§3.2) without executing it.
  Result<std::string> RewriteToSql(const std::string& sql) {
    return engine_->RewriteToSql(session_, sql);
  }

  /// The underlying standard-SQL database (catalog access, direct SQL).
  Database& database() { return engine_->database(); }

  ConnectionOptions& options() { return session_.options(); }
  const ConnectionOptions& options() const { return session_.options(); }

  /// Stats struct of the last executed preference query (kept as a nested
  /// alias for source compatibility; the type lives in core/session.h).
  using PreferenceQueryStats = prefsql::PreferenceQueryStats;
  const PreferenceQueryStats& last_stats() const {
    return session_.last_stats();
  }

  Session& session() { return session_; }

 private:
  std::shared_ptr<Engine> engine_;
  Session session_;
};

}  // namespace prefsql
