// Connection: the public entry point of the library — the analogue of the
// paper's "Preference ODBC/JDBC driver" sitting in front of the Preference
// SQL Optimizer and the standard SQL database (§3.1).
//
//   prefsql::Connection conn;
//   conn.Execute("CREATE TABLE trips (dest TEXT, duration INTEGER)");
//   conn.Execute("INSERT INTO trips VALUES ('Rome', 10), ('Oslo', 15)");
//   auto result = conn.Execute(
//       "SELECT * FROM trips PREFERRING duration AROUND 14");
//   std::cout << result->ToString();
//
// Standard SQL passes straight through to the engine ("without causing any
// noticeable overhead"); queries with a PREFERRING clause are rewritten into
// standard SQL (the product's strategy) or evaluated with an in-engine
// skyline algorithm, selectable per connection.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/bmo.h"
#include "core/preference_query.h"
#include "core/quality.h"
#include "engine/database.h"
#include "types/result_table.h"
#include "util/status.h"

namespace prefsql {

/// How preference queries are evaluated.
enum class EvaluationMode {
  /// Rewrite to standard SQL (Aux view + NOT EXISTS anti-join, §3.2) and run
  /// it on the engine — the commercial product's strategy. Falls back to
  /// kBlockNestedLoop when the preference is not rewritable.
  kRewrite,
  /// In-engine BNL skyline algorithm [BKS01].
  kBlockNestedLoop,
  /// In-engine naive nested loop (the §3.2 abstract selection method).
  kNaiveNestedLoop,
  /// In-engine sort-filter skyline.
  kSortFilterSkyline,
};

const char* EvaluationModeToString(EvaluationMode m);

/// Per-connection behaviour switches. All of these are also reachable from
/// SQL via `SET <knob> = <value>` (e.g. `SET bmo_threads = 4`,
/// `SET preference_pushdown = off`, `SET evaluation_mode = sfs`).
struct ConnectionOptions {
  EvaluationMode mode = EvaluationMode::kRewrite;
  ButOnlyMode but_only_mode = ButOnlyMode::kPostFilter;
  /// Overrides the in-engine skyline algorithm the evaluation mode implies
  /// (`SET bmo_algorithm = naive|bnl|sfs|less`); nullopt = follow the mode.
  std::optional<BmoAlgorithm> bmo_algorithm;
  /// BNL window capacity (tuples); 0 = unbounded.
  size_t bnl_window = 0;
  /// Keep the generated Aux views after a rewritten query (debugging).
  bool keep_aux_views = false;
  /// Worker threads of the parallel partitioned BMO (direct path);
  /// 0/1 = serial.
  size_t bmo_threads = 0;
  /// Minimum candidate rows before BMO worker threads spin up.
  size_t parallel_min_rows = 4096;
  /// Algebraic preference pushdown below joins (direct path).
  bool preference_pushdown = true;
};

/// A Preference SQL connection over an embedded in-memory database.
class Connection {
 public:
  Connection() = default;
  explicit Connection(ConnectionOptions options) : options_(options) {}

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Parses and executes one statement (standard SQL or Preference SQL).
  Result<ResultTable> Execute(const std::string& sql);

  /// Executes a semicolon-separated script; returns the last result.
  Result<ResultTable> ExecuteScript(const std::string& sql);

  /// Executes an already-parsed statement. Beyond plain SELECTs this layer
  /// handles: preference SELECTs (rewrite or in-engine BMO), EXPLAIN
  /// (returns the optimizer's standard-SQL translation as a one-column
  /// table), INSERT whose SELECT has a PREFERRING clause (§2.2.5), and
  /// expansion of stored PREFERENCE references (PDL).
  Result<ResultTable> ExecuteStatement(const Statement& stmt);

  /// Translates a preference query into the standard SQL script the
  /// rewriting optimizer would run (§3.2) without executing it.
  Result<std::string> RewriteToSql(const std::string& sql);

  /// The underlying standard-SQL database (catalog access, direct SQL).
  Database& database() { return db_; }

  ConnectionOptions& options() { return options_; }
  const ConnectionOptions& options() const { return options_; }

  /// Statistics of the last executed preference query. The direct-path
  /// counters are valid even when the query failed partway (the BMO
  /// operators flush their stats on Close).
  struct PreferenceQueryStats {
    bool was_preference_query = false;
    bool used_rewrite = false;
    bool rewrite_fallback = false;  // rewriter refused; BNL used instead
    size_t candidate_count = 0;     // rows after WHERE (direct path only)
    size_t result_count = 0;
    size_t bmo_comparisons = 0;     // dominance tests (direct path only)
    size_t bmo_partitions = 0;      // GROUPING partitions (direct path)
    size_t bmo_threads_used = 1;    // parallel pool width (1 = serial)
    std::string bmo_algorithm;      // skyline algorithm run (direct path)
    std::string bmo_kernel;         // dominance kernel (packed vs generic)
    uint64_t bmo_key_build_ns = 0;  // packed key construction time
    bool used_pushdown = false;     // BMO prefilter pushed below the join
    std::string pushdown_detail;    // placement / rejection reason
    size_t prefilter_candidate_count = 0;  // rows into the pushed prefilter
    size_t prefilter_result_count = 0;     // rows surviving the prefilter
  };
  const PreferenceQueryStats& last_stats() const { return last_stats_; }

 private:
  Result<ResultTable> ExecutePreferenceSelect(const SelectStmt& select);
  Result<ResultTable> ExecuteViaRewrite(const SelectStmt& select);
  Result<ResultTable> ExecuteExplain(const Statement& stmt);
  /// SET <knob> = <value>: run-time access to ConnectionOptions.
  Result<ResultTable> ExecuteSet(const Statement& stmt);
  /// The direct-path options the current ConnectionOptions imply.
  DirectEvalOptions DirectOptions() const;

  /// Returns `select` with stored PREFERENCE references expanded (clones
  /// only when needed).
  Result<std::shared_ptr<SelectStmt>> ExpandSelect(const SelectStmt& select);

  /// Column names a `SELECT *` over the query's FROM would produce (schema
  /// probe for the rewriter).
  Result<std::vector<std::string>> ProbeBaseColumns(const SelectStmt& select);

  Database db_;
  ConnectionOptions options_;
  PreferenceQueryStats last_stats_;
  uint64_t aux_counter_ = 0;
};

}  // namespace prefsql
