#include "core/rewriter.h"

#include "sql/printer.h"
#include "util/string_util.h"

namespace prefsql {
namespace {

constexpr char kOuterAlias[] = "A1";
constexpr char kInnerAlias[] = "A2";

// Builds "<alias>.<column>".
ExprPtr AliasedCol(const char* alias, const std::string& column) {
  return Expr::MakeColumn(alias, column);
}

// Dominance-condition builder: for every preference node produces SQL
// predicates over the level columns stating "A2 is better than A1" and
// "A2 is level-equal to A1" (§3.2).
class DominanceBuilder {
 public:
  DominanceBuilder(const CompiledPreference& pref,
                   const std::vector<std::string>& level_columns)
      : pref_(pref), level_columns_(level_columns) {}

  ExprPtr Better(const PrefNode& node) const {
    switch (node.kind) {
      case PrefNode::Kind::kLeaf:
        return Cmp(node.leaf_slot, BinaryOp::kLt);
      case PrefNode::Kind::kPareto: {
        // all better-or-equal AND at least one strictly better — the
        // paper's "<= ... <= ... AND (< OR <)" shape.
        std::vector<ExprPtr> conjuncts;
        for (const auto& c : node.children) {
          conjuncts.push_back(BetterOrEqual(*c));
        }
        std::vector<ExprPtr> disjuncts;
        for (const auto& c : node.children) {
          disjuncts.push_back(Better(*c));
        }
        conjuncts.push_back(MakeDisjunction(std::move(disjuncts)));
        return Expr::MakeConjunction(std::move(conjuncts));
      }
      case PrefNode::Kind::kPrioritized: {
        // B1 OR (E1 AND B2) OR (E1 AND E2 AND B3) ...
        std::vector<ExprPtr> disjuncts;
        for (size_t i = 0; i < node.children.size(); ++i) {
          std::vector<ExprPtr> conjuncts;
          for (size_t j = 0; j < i; ++j) {
            conjuncts.push_back(Equal(*node.children[j]));
          }
          conjuncts.push_back(Better(*node.children[i]));
          disjuncts.push_back(Expr::MakeConjunction(std::move(conjuncts)));
        }
        return MakeDisjunction(std::move(disjuncts));
      }
      case PrefNode::Kind::kIntersect: {
        // strictly better in every constituent.
        std::vector<ExprPtr> conjuncts;
        for (const auto& c : node.children) {
          conjuncts.push_back(Better(*c));
        }
        return Expr::MakeConjunction(std::move(conjuncts));
      }
    }
    return nullptr;
  }

  ExprPtr Equal(const PrefNode& node) const {
    if (node.kind == PrefNode::Kind::kLeaf) {
      return Cmp(node.leaf_slot, BinaryOp::kEq);
    }
    std::vector<ExprPtr> conjuncts;
    for (const auto& c : node.children) conjuncts.push_back(Equal(*c));
    return Expr::MakeConjunction(std::move(conjuncts));
  }

  ExprPtr BetterOrEqual(const PrefNode& node) const {
    if (node.kind == PrefNode::Kind::kLeaf) {
      return Cmp(node.leaf_slot, BinaryOp::kLe);  // the paper's "<="
    }
    std::vector<ExprPtr> disjuncts;
    disjuncts.push_back(Better(node));
    disjuncts.push_back(Equal(node));
    return MakeDisjunction(std::move(disjuncts));
  }

 private:
  ExprPtr Cmp(size_t slot, BinaryOp op) const {
    return Expr::MakeBinary(op, AliasedCol(kInnerAlias, level_columns_[slot]),
                            AliasedCol(kOuterAlias, level_columns_[slot]));
  }

  static ExprPtr MakeDisjunction(std::vector<ExprPtr> disjuncts) {
    ExprPtr out;
    for (auto& d : disjuncts) {
      if (!d) continue;
      if (!out) {
        out = std::move(d);
      } else {
        out = Expr::MakeBinary(BinaryOp::kOr, std::move(out), std::move(d));
      }
    }
    return out;
  }

  const CompiledPreference& pref_;
  const std::vector<std::string>& level_columns_;
};

// Quality expressions over the outer alias A1 (select list, BUT ONLY,
// ORDER BY of the rewritten query).
class QualityExprBuilder {
 public:
  QualityExprBuilder(const CompiledPreference& pref,
                     const std::vector<std::string>& level_columns,
                     std::string aux_view_name)
      : pref_(pref),
        level_columns_(level_columns),
        aux_view_name_(std::move(aux_view_name)) {}

  Result<ExprPtr> Make(QualityFn fn, const std::string& column) const {
    PSQL_ASSIGN_OR_RETURN(size_t slot, pref_.LeafForColumn(column));
    const BasePreference& base = *pref_.leaf(slot).pref;
    switch (fn) {
      case QualityFn::kDistance:
        return Distance(slot, base);
      case QualityFn::kTop: {
        PSQL_ASSIGN_OR_RETURN(ExprPtr dist, Distance(slot, base));
        return Expr::MakeBinary(BinaryOp::kEq, std::move(dist),
                                Expr::MakeLiteral(Value::Double(0.0)));
      }
      case QualityFn::kLevel: {
        if (base.IsCategorical()) {
          return AliasedCol(kOuterAlias, level_columns_[slot]);
        }
        // Numeric preferences: 1 when perfect, 2 otherwise.
        PSQL_ASSIGN_OR_RETURN(ExprPtr dist, Distance(slot, base));
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kCase;
        CaseWhen cw;
        cw.when = Expr::MakeBinary(BinaryOp::kEq, std::move(dist),
                                   Expr::MakeLiteral(Value::Double(0.0)));
        cw.then = Expr::MakeLiteral(Value::Int(1));
        e->case_whens.push_back(std::move(cw));
        e->case_else = Expr::MakeLiteral(Value::Int(2));
        return e;
      }
    }
    return Status::Internal("unreachable quality function");
  }

 private:
  Result<ExprPtr> Distance(size_t slot, const BasePreference& base) const {
    ExprPtr lvl = AliasedCol(kOuterAlias, level_columns_[slot]);
    auto offset = base.QualityOffset();
    ExprPtr offset_expr;
    if (offset) {
      if (*offset == 0.0) return lvl;  // score IS the distance
      offset_expr = Expr::MakeLiteral(Value::Double(*offset));
    } else {
      // Distance from the observed optimum: scalar subquery
      // (SELECT MIN(_lvl_i) FROM <aux>), §2.2.3.
      auto sub = std::make_shared<SelectStmt>();
      std::vector<ExprPtr> args;
      args.push_back(Expr::MakeColumn("", level_columns_[slot]));
      sub->items.push_back(
          {Expr::MakeFunction("min", std::move(args)), ""});
      auto tr = std::make_unique<TableRef>();
      tr->kind = TableRef::Kind::kTable;
      tr->table_name = aux_view_name_;
      sub->from.push_back(std::move(tr));
      offset_expr = std::make_unique<Expr>();
      offset_expr->kind = ExprKind::kSubquery;
      offset_expr->subquery = std::move(sub);
    }
    return Expr::MakeBinary(BinaryOp::kSub, std::move(lvl),
                            std::move(offset_expr));
  }

  const CompiledPreference& pref_;
  const std::vector<std::string>& level_columns_;
  std::string aux_view_name_;
};

// Unique level-column names that do not collide with base columns.
std::vector<std::string> MakeLevelColumnNames(
    size_t count, const std::vector<std::string>& base_columns) {
  std::vector<std::string> out;
  for (size_t i = 0; i < count; ++i) {
    std::string name = "_lvl" + std::to_string(i);
    while (FindNameIgnoreCase(base_columns, name)) name += "_x";
    out.push_back(std::move(name));
  }
  return out;
}

Statement MakeDropView(const std::string& name) {
  Statement drop;
  drop.kind = StatementKind::kDrop;
  drop.drop_kind = Statement::DropKind::kView;
  drop.name = name;
  return drop;
}

}  // namespace

std::string RewriteOutput::ToScript() const {
  std::vector<std::string> parts;
  for (const auto& st : setup) parts.push_back(StatementToSql(st));
  parts.push_back(SelectToSql(*query));
  for (const auto& st : teardown) parts.push_back(StatementToSql(st));
  return Join(parts, ";\n") + ";";
}

Result<RewriteOutput> RewritePreferenceQuery(
    const AnalyzedPreferenceQuery& analyzed,
    const std::vector<std::string>& base_columns, ButOnlyMode but_only_mode,
    const std::string& aux_view_name) {
  const SelectStmt& q = *analyzed.query;
  const CompiledPreference& pref = analyzed.preference();

  // Qualified stars cannot be re-expanded over the Aux view.
  for (const auto& item : q.items) {
    if (item.expr->kind == ExprKind::kStar && !item.expr->qualifier.empty()) {
      return Status::NotImplemented(
          "qualified '*' in a preference query is not supported by the "
          "rewriter");
    }
  }

  std::vector<std::string> level_cols =
      MakeLevelColumnNames(pref.num_leaves(), base_columns);

  RewriteOutput out;
  out.aux_view_name = aux_view_name;

  // --- Aux view: SELECT *, <score exprs> FROM <from> WHERE <where> --------
  auto aux_select = std::make_shared<SelectStmt>();
  aux_select->items.push_back({Expr::MakeStar(), ""});
  for (size_t i = 0; i < pref.num_leaves(); ++i) {
    const PrefLeaf& leaf = pref.leaf(i);
    PSQL_ASSIGN_OR_RETURN(ExprPtr score, leaf.pref->ScoreExpr(*leaf.attr));
    aux_select->items.push_back({std::move(score), level_cols[i]});
  }
  for (const auto& tr : q.from) aux_select->from.push_back(tr->Clone());
  if (q.where) aux_select->where = q.where->Clone();

  Statement create_aux;
  create_aux.kind = StatementKind::kCreateView;
  create_aux.name = aux_view_name;
  create_aux.select = aux_select;
  out.setup.push_back(std::move(create_aux));

  QualityExprBuilder quality(pref, level_cols, aux_view_name);
  auto quality_factory = [&](QualityFn fn,
                             const std::string& column) -> Result<ExprPtr> {
    return quality.Make(fn, column);
  };

  // --- BUT ONLY: pre-filter mode wraps Aux in a second, filtered view -----
  std::string candidate_view = aux_view_name;
  if (q.but_only != nullptr && but_only_mode == ButOnlyMode::kPreFilter) {
    // Quality expressions in the filtered view reference its own columns
    // (the level columns are passed through by SELECT *).
    candidate_view = aux_view_name + "_f";
    auto filtered = std::make_shared<SelectStmt>();
    filtered->items.push_back({Expr::MakeStar(), ""});
    auto tr = std::make_unique<TableRef>();
    tr->kind = TableRef::Kind::kTable;
    tr->table_name = aux_view_name;
    tr->alias = kOuterAlias;  // quality exprs are built against A1
    filtered->from.push_back(std::move(tr));
    PSQL_ASSIGN_OR_RETURN(filtered->where,
                          RewriteQualityCalls(*q.but_only, quality_factory));
    Statement create_filtered;
    create_filtered.kind = StatementKind::kCreateView;
    create_filtered.name = candidate_view;
    create_filtered.select = filtered;
    out.setup.push_back(std::move(create_filtered));
    out.teardown.push_back(MakeDropView(candidate_view));
  }
  out.teardown.push_back(MakeDropView(aux_view_name));

  // --- Main query ----------------------------------------------------------
  auto main = std::make_shared<SelectStmt>();
  main->distinct = q.distinct;

  for (const auto& item : q.items) {
    if (item.expr->kind == ExprKind::kStar) {
      // Project the base columns; the synthetic level columns stay hidden.
      for (const auto& col : base_columns) {
        main->items.push_back({Expr::MakeColumn("", col), ""});
      }
      continue;
    }
    PSQL_ASSIGN_OR_RETURN(ExprPtr e,
                          RewriteQualityCalls(*item.expr, quality_factory));
    std::string alias = item.alias;
    if (alias.empty() && ContainsQualityCall(*item.expr)) {
      // Preserve the pretty "LEVEL(color)" header of the original call.
      alias = ExprToSql(*item.expr);
    }
    main->items.push_back({std::move(e), std::move(alias)});
  }

  auto outer_ref = std::make_unique<TableRef>();
  outer_ref->kind = TableRef::Kind::kTable;
  outer_ref->table_name = candidate_view;
  outer_ref->alias = kOuterAlias;
  main->from.push_back(std::move(outer_ref));

  // NOT EXISTS (SELECT 1 FROM <aux> A2 WHERE A2-dominates-A1 [AND grouping]).
  DominanceBuilder dom(pref, level_cols);
  auto inner = std::make_shared<SelectStmt>();
  inner->items.push_back({Expr::MakeLiteral(Value::Int(1)), ""});
  auto inner_ref = std::make_unique<TableRef>();
  inner_ref->kind = TableRef::Kind::kTable;
  inner_ref->table_name = candidate_view;
  inner_ref->alias = kInnerAlias;
  inner->from.push_back(std::move(inner_ref));
  std::vector<ExprPtr> inner_conjuncts;
  inner_conjuncts.push_back(dom.Better(pref.root()));
  for (const auto& g : q.grouping) {
    // Same partition: equal values, with NULLs grouping together.
    ExprPtr eq = Expr::MakeBinary(BinaryOp::kEq, AliasedCol(kInnerAlias, g),
                                  AliasedCol(kOuterAlias, g));
    auto null_a = std::make_unique<Expr>();
    null_a->kind = ExprKind::kIsNull;
    null_a->left = AliasedCol(kInnerAlias, g);
    auto null_b = std::make_unique<Expr>();
    null_b->kind = ExprKind::kIsNull;
    null_b->left = AliasedCol(kOuterAlias, g);
    ExprPtr both_null = Expr::MakeBinary(BinaryOp::kAnd, std::move(null_a),
                                         std::move(null_b));
    inner_conjuncts.push_back(Expr::MakeBinary(
        BinaryOp::kOr, std::move(eq), std::move(both_null)));
  }
  inner->where = Expr::MakeConjunction(std::move(inner_conjuncts));

  auto not_exists = std::make_unique<Expr>();
  not_exists->kind = ExprKind::kExists;
  not_exists->negated = true;
  not_exists->subquery = std::move(inner);

  std::vector<ExprPtr> outer_conjuncts;
  outer_conjuncts.push_back(std::move(not_exists));
  if (q.but_only != nullptr && but_only_mode == ButOnlyMode::kPostFilter) {
    PSQL_ASSIGN_OR_RETURN(ExprPtr bo,
                          RewriteQualityCalls(*q.but_only, quality_factory));
    outer_conjuncts.push_back(std::move(bo));
  }
  main->where = Expr::MakeConjunction(std::move(outer_conjuncts));

  for (const auto& oi : q.order_by) {
    PSQL_ASSIGN_OR_RETURN(ExprPtr e,
                          RewriteQualityCalls(*oi.expr, quality_factory));
    main->order_by.push_back({std::move(e), oi.ascending});
  }
  main->limit = q.limit;
  main->offset = q.offset;

  out.query = std::move(main);
  return out;
}

}  // namespace prefsql
