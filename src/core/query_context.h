// QueryContext: per-statement resource-governance state — deadline,
// cooperative cancellation flag, and memory budgets — threaded through the
// executor, the operator tree, and all BMO algorithms.
//
// The engine arms one context per statement (deadline from
// `SET statement_timeout_ms`, cancel flag reachable cross-thread through
// Session::CancelCurrent). Hot loops call CheckInterrupt() every
// kInterruptStride iterations; the first trip latches a sticky status
// (kTimeout or kCancelled) so every layer that asks afterwards sees the
// same verdict, and the operator tree unwinds through the existing
// early-Close cleanup path (stats flushed, snapshot pin released, cursor
// lock dropped).
//
// Like the ambient snapshot scope in storage/epoch.h, the context rides a
// thread-local so operator signatures stay unchanged: the engine (and
// Cursor::Next, per pull) establishes a ScopedQueryContext around
// execution; code that wants to cooperate asks CurrentQueryContext().
// Worker threads in bmo_parallel receive the context explicitly through
// BmoOptions instead (the thread-local does not cross pool threads).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "util/memory_budget.h"
#include "util/status.h"

namespace prefsql {

/// Counters of the batch-at-a-time (vectorized) pipeline, owned by the
/// statement's QueryContext. Drain sites (DrainToTable, Cursor refills, the
/// BMO/sort feeds) count each root-level batch exactly once; operators that
/// serve NextBatch through the row-loop fallback record their label so
/// last_stats()/EXPLAIN can show which part of a tree ran unvectorized.
/// Unsynchronized by design: the operator tree of one statement is pulled
/// from a single thread (BMO workers receive rows, not the context).
struct BatchExecStats {
  uint64_t batches = 0;
  uint64_t batch_rows = 0;
  std::vector<std::string> fallback_ops;  ///< distinct labels, first-seen order

  void Record(size_t rows) {
    ++batches;
    batch_rows += rows;
  }

  void RecordFallback(const char* label) {
    for (const auto& seen : fallback_ops) {
      if (seen == label) return;
    }
    fallback_ops.emplace_back(label);
  }
};

/// Hot loops poll the context once per this many iterations. The stride
/// keeps the steady_clock read off the per-row path; with dominance tests
/// in the tens-of-nanoseconds range this bounds overshoot well under a
/// millisecond.
inline constexpr size_t kInterruptStride = 256;

class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  QueryContext() = default;

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Arms a deadline `timeout_ms` from now. 0 disarms.
  void set_deadline_ms(uint64_t timeout_ms) {
    has_deadline_ = timeout_ms != 0;
    if (has_deadline_) {
      deadline_ = Clock::now() + std::chrono::milliseconds(timeout_ms);
    }
  }

  /// Requests cooperative cancellation; safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Per-statement budget, charged by this statement's buffers. May be null.
  void set_statement_budget(MemoryBudget* b) { statement_budget_ = b; }
  MemoryBudget* statement_budget() const { return statement_budget_; }
  /// Arms the context's own per-statement budget with `limit_bytes` and
  /// installs it as statement_budget(). 0 keeps usage tracked but unlimited.
  void ArmStatementBudget(uint64_t limit_bytes) {
    owned_statement_budget_.set_limit(limit_bytes);
    statement_budget_ = &owned_statement_budget_;
  }
  /// Engine-wide budget shared across sessions. May be null.
  void set_engine_budget(MemoryBudget* b) { engine_budget_ = b; }
  MemoryBudget* engine_budget() const { return engine_budget_; }

  /// Called (with the refused byte count) when an engine-budget charge
  /// fails, before the charge is retried once. The engine installs a relief
  /// that sheds cold cache entries and runs a pin-aware GC sweep, so queries
  /// only see kResourceExhausted after reclaimable memory is exhausted too.
  void set_pressure_relief(std::function<void(uint64_t)> relief) {
    pressure_relief_ = std::move(relief);
  }

  /// Charges `bytes` against the statement budget then the engine budget,
  /// accumulating into the caller's RAII holders (one per budget — a holder
  /// refuses to mix budgets). A refused statement charge fails immediately;
  /// a refused engine charge triggers the pressure relief and one retry.
  /// Failure latches kResourceExhausted so the operator tree unwinds with
  /// the statement's final status.
  Status ChargeMemory(uint64_t bytes, ScopedMemoryCharge* statement_charge,
                      ScopedMemoryCharge* engine_charge) {
    if (statement_budget_ != nullptr &&
        !statement_charge->Charge(statement_budget_, bytes)) {
      return Latch(Status::ResourceExhausted(
          "statement memory limit exceeded (" +
          std::to_string(statement_budget_->limit()) + " bytes)"));
    }
    if (engine_budget_ != nullptr &&
        !engine_charge->Charge(engine_budget_, bytes)) {
      if (pressure_relief_) pressure_relief_(bytes);
      if (!engine_charge->Charge(engine_budget_, bytes)) {
        return Latch(Status::ResourceExhausted(
            "engine memory limit exceeded (" +
            std::to_string(engine_budget_->limit()) + " bytes)"));
      }
    }
    return Status::OK();
  }

  /// Polls cancellation and the deadline. The first failure latches: every
  /// later call (from any operator, any thread) returns the same status, so
  /// a timeout observed deep in a BMO worker is the status the client sees.
  Status CheckInterrupt() {
    if (interrupted_.load(std::memory_order_acquire)) return LatchedStatus();
    if (cancelled_.load(std::memory_order_acquire)) {
      return Latch(Status::Cancelled("statement cancelled by client"));
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      return Latch(Status::Timeout("statement deadline exceeded"));
    }
    return Status::OK();
  }

  /// Latches an externally-detected failure (e.g. a refused memory charge)
  /// so the rest of the tree unwinds with one consistent status. First
  /// failure wins.
  Status Latch(Status status) {
    {
      std::lock_guard<std::mutex> g(mu_);
      if (!interrupted_.load(std::memory_order_relaxed)) {
        latched_ = std::move(status);
        interrupted_.store(true, std::memory_order_release);
      }
    }
    return LatchedStatus();
  }

  bool interrupted() const {
    return interrupted_.load(std::memory_order_acquire);
  }

  /// The latched failure; OK when never interrupted.
  Status LatchedStatus() const {
    if (!interrupted_.load(std::memory_order_acquire)) return Status::OK();
    std::lock_guard<std::mutex> g(mu_);
    return latched_;
  }

  /// Whether this statement drains its operator tree batch-at-a-time
  /// (`SET vectorized_execution`). Read by drain sites and pipeline
  /// breakers; the tree itself is protocol-agnostic.
  void set_vectorized(bool on) { vectorized_ = on; }
  bool vectorized() const { return vectorized_; }

  BatchExecStats& batch_stats() { return batch_stats_; }
  const BatchExecStats& batch_stats() const { return batch_stats_; }

 private:
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> interrupted_{false};
  mutable std::mutex mu_;
  Status latched_;  // guarded by mu_ until interrupted_ is set
  MemoryBudget owned_statement_budget_;
  MemoryBudget* statement_budget_ = nullptr;
  MemoryBudget* engine_budget_ = nullptr;
  std::function<void(uint64_t)> pressure_relief_;
  bool vectorized_ = true;
  BatchExecStats batch_stats_;
};

namespace query_context_internal {
inline QueryContext*& TlsCurrent() {
  thread_local QueryContext* ctx = nullptr;
  return ctx;
}
}  // namespace query_context_internal

/// Establishes `ctx` (may be null) as this thread's current query context
/// for the scope's lifetime (save/restore, so scopes nest).
class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(QueryContext* ctx)
      : saved_(query_context_internal::TlsCurrent()) {
    query_context_internal::TlsCurrent() = ctx;
  }
  ~ScopedQueryContext() { query_context_internal::TlsCurrent() = saved_; }
  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

 private:
  QueryContext* saved_;
};

/// The current statement's context, or null outside any scope (direct
/// Database/Executor use, tests).
inline QueryContext* CurrentQueryContext() {
  return query_context_internal::TlsCurrent();
}

/// Whether the current statement should drain operator trees
/// batch-at-a-time. Defaults to on outside any statement scope (direct
/// Database/Executor use, tests); `SET vectorized_execution = off` pins the
/// row-at-a-time path for the session.
inline bool BatchModeEnabled() {
  QueryContext* ctx = CurrentQueryContext();
  return ctx == nullptr ? true : ctx->vectorized();
}

/// Stride-counted interrupt helper for hot loops:
///   size_t tick = 0;
///   for (...) { PSQL_RETURN_IF_ERROR(PollInterrupt(&tick)); ... }
/// Cheap when no context is active (one thread-local read + counter).
inline Status PollInterrupt(size_t* tick) {
  if (++*tick % kInterruptStride != 0) return Status::OK();
  QueryContext* ctx = CurrentQueryContext();
  if (ctx == nullptr) return Status::OK();
  return ctx->CheckInterrupt();
}

}  // namespace prefsql
