#include "core/bmo.h"

#include <algorithm>

namespace prefsql {
namespace {

std::vector<size_t> NaiveNestedLoop(const CompiledPreference& pref,
                                    const std::vector<PrefKey>& keys,
                                    const std::vector<size_t>& candidates,
                                    BmoStats* stats) {
  // Paper §3.2: "Insert t1 into Max if there is no tuple t2 in R that is
  // better than t1" — repeated for every t1.
  std::vector<size_t> out;
  for (size_t i : candidates) {
    bool dominated = false;
    for (size_t j : candidates) {
      if (i == j) continue;
      if (stats != nullptr) ++stats->comparisons;
      if (pref.Dominates(keys[j], keys[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

std::vector<size_t> BlockNestedLoop(const CompiledPreference& pref,
                                    const std::vector<PrefKey>& keys,
                                    const std::vector<size_t>& candidates,
                                    size_t window_capacity, BmoStats* stats) {
  struct Entry {
    size_t index;
    size_t insert_pass;
  };
  std::vector<size_t> result;          // confirmed skyline members
  std::vector<Entry> window;
  std::vector<size_t> input = candidates;
  std::vector<size_t> overflow;
  size_t pass = 0;

  while (!input.empty()) {
    overflow.clear();
    for (size_t t : input) {
      bool dominated = false;
      // Compare against the window; evict dominated window entries.
      size_t kept = 0;
      for (size_t w = 0; w < window.size(); ++w) {
        if (stats != nullptr) ++stats->comparisons;
        Rel rel = pref.Compare(keys[t], keys[window[w].index]);
        if (rel == Rel::kWorse) {
          dominated = true;
          // Tuples after w are untouched; keep the remainder as is.
          for (size_t r = w; r < window.size(); ++r) {
            window[kept++] = window[r];
          }
          break;
        }
        if (rel == Rel::kBetter) {
          continue;  // evict window entry (do not keep)
        }
        window[kept++] = window[w];
      }
      window.resize(kept);
      if (dominated) continue;
      if (window_capacity == 0 || window.size() < window_capacity) {
        window.push_back({t, pass});
      } else {
        overflow.push_back(t);
      }
    }
    // End of pass: entries inserted in an *earlier* pass have now been
    // compared against every live tuple (anything they dominate was dropped
    // before reaching the overflow), so they are confirmed skyline members.
    // Emitting them frees window space, which guarantees progress when the
    // window is smaller than the skyline.
    std::vector<Entry> remaining;
    for (const Entry& e : window) {
      if (e.insert_pass < pass) {
        result.push_back(e.index);
      } else {
        remaining.push_back(e);
      }
    }
    window = std::move(remaining);
    input = overflow;
    ++pass;
    if (stats != nullptr) stats->passes = pass;
  }
  for (const Entry& e : window) result.push_back(e.index);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<size_t> SortFilterSkyline(const CompiledPreference& pref,
                                      const std::vector<PrefKey>& keys,
                                      const std::vector<size_t>& candidates,
                                      BmoStats* stats) {
  // Presort by a linear extension of the order: afterwards no tuple can be
  // dominated by a later one, so a single forward pass with an append-only
  // result window is exact.
  std::vector<size_t> sorted = candidates;
  std::stable_sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
    return pref.LexLess(keys[a], keys[b]);
  });
  std::vector<size_t> result;
  for (size_t t : sorted) {
    bool dominated = false;
    for (size_t r : result) {
      if (stats != nullptr) ++stats->comparisons;
      if (pref.Dominates(keys[r], keys[t])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(t);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace

std::vector<size_t> ComputeBmoTopK(const CompiledPreference& pref,
                                   const std::vector<PrefKey>& keys,
                                   const std::vector<size_t>& candidates,
                                   size_t k, BmoStats* stats) {
  if (k == 0) return {};
  std::vector<size_t> sorted = candidates;
  std::stable_sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
    return pref.LexLess(keys[a], keys[b]);
  });
  std::vector<size_t> result;
  for (size_t t : sorted) {
    bool dominated = false;
    for (size_t r : result) {
      if (stats != nullptr) ++stats->comparisons;
      if (pref.Dominates(keys[r], keys[t])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      result.push_back(t);
      if (result.size() >= k) break;  // progressive early exit
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

const char* BmoAlgorithmToString(BmoAlgorithm a) {
  switch (a) {
    case BmoAlgorithm::kNaiveNestedLoop:
      return "naive-nested-loop";
    case BmoAlgorithm::kBlockNestedLoop:
      return "block-nested-loop";
    case BmoAlgorithm::kSortFilterSkyline:
      return "sort-filter-skyline";
  }
  return "?";
}

std::vector<size_t> ComputeBmo(const CompiledPreference& pref,
                               const std::vector<PrefKey>& keys,
                               const std::vector<size_t>& candidates,
                               const BmoOptions& options, BmoStats* stats) {
  switch (options.algorithm) {
    case BmoAlgorithm::kNaiveNestedLoop:
      return NaiveNestedLoop(pref, keys, candidates, stats);
    case BmoAlgorithm::kBlockNestedLoop:
      return BlockNestedLoop(pref, keys, candidates, options.bnl_window,
                             stats);
    case BmoAlgorithm::kSortFilterSkyline:
      return SortFilterSkyline(pref, keys, candidates, stats);
  }
  return {};
}

}  // namespace prefsql
