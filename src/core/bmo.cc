#include "core/bmo.h"

#include <algorithm>

namespace prefsql {
namespace {

// Result vectors grow toward the skyline size, which is unknown upfront;
// reserving a modest floor removes the early reallocation churn without
// over-committing memory for small partitions.
size_t ResultReserve(size_t n) { return std::min<size_t>(n, 256); }

std::vector<size_t> NaiveNestedLoop(const DominanceProgram& prog,
                                    const KeyStore& keys,
                                    std::span<const size_t> candidates,
                                    BmoStats* stats) {
  // Paper §3.2: "Insert t1 into Max if there is no tuple t2 in R that is
  // better than t1" — repeated for every t1.
  std::vector<size_t> out;
  out.reserve(ResultReserve(candidates.size()));
  for (size_t i : candidates) {
    bool dominated = false;
    for (size_t j : candidates) {
      if (i == j) continue;
      if (stats != nullptr) ++stats->comparisons;
      if (prog.Dominates(keys, j, i)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

std::vector<size_t> BlockNestedLoop(const DominanceProgram& prog,
                                    const KeyStore& keys,
                                    std::span<const size_t> candidates,
                                    size_t window_capacity, BmoStats* stats) {
  struct Entry {
    size_t index;
    size_t insert_pass;
  };
  std::vector<size_t> result;          // confirmed skyline members
  result.reserve(ResultReserve(candidates.size()));
  std::vector<Entry> window;
  window.reserve(window_capacity != 0
                     ? std::min(window_capacity, candidates.size())
                     : ResultReserve(candidates.size()));
  std::vector<size_t> input(candidates.begin(), candidates.end());
  std::vector<size_t> overflow;
  size_t pass = 0;

  while (!input.empty()) {
    overflow.clear();
    for (size_t t : input) {
      bool dominated = false;
      // Compare against the window; evict dominated window entries.
      size_t kept = 0;
      for (size_t w = 0; w < window.size(); ++w) {
        if (stats != nullptr) ++stats->comparisons;
        Rel rel = prog.Compare(keys, t, window[w].index);
        if (rel == Rel::kWorse) {
          dominated = true;
          // Tuples after w are untouched; keep the remainder as is.
          for (size_t r = w; r < window.size(); ++r) {
            window[kept++] = window[r];
          }
          break;
        }
        if (rel == Rel::kBetter) {
          continue;  // evict window entry (do not keep)
        }
        window[kept++] = window[w];
      }
      window.resize(kept);
      if (dominated) continue;
      if (window_capacity == 0 || window.size() < window_capacity) {
        window.push_back({t, pass});
      } else {
        overflow.push_back(t);
      }
    }
    // End of pass: entries inserted in an *earlier* pass have now been
    // compared against every live tuple (anything they dominate was dropped
    // before reaching the overflow), so they are confirmed skyline members.
    // Emitting them frees window space, which guarantees progress when the
    // window is smaller than the skyline.
    std::vector<Entry> remaining;
    for (const Entry& e : window) {
      if (e.insert_pass < pass) {
        result.push_back(e.index);
      } else {
        remaining.push_back(e);
      }
    }
    window = std::move(remaining);
    input = overflow;
    ++pass;
    if (stats != nullptr) stats->passes = pass;
  }
  for (const Entry& e : window) result.push_back(e.index);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<size_t> SortFilterSkyline(const DominanceProgram& prog,
                                      const KeyStore& keys,
                                      std::span<const size_t> candidates,
                                      BmoStats* stats) {
  // Presort by a linear extension of the order: afterwards no tuple can be
  // dominated by a later one, so a single forward pass with an append-only
  // result window is exact.
  std::vector<size_t> sorted(candidates.begin(), candidates.end());
  std::stable_sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
    return keys.LexLess(a, b);
  });
  std::vector<size_t> result;
  result.reserve(ResultReserve(candidates.size()));
  for (size_t t : sorted) {
    bool dominated = false;
    for (size_t r : result) {
      if (stats != nullptr) ++stats->comparisons;
      if (prog.Dominates(keys, r, t)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(t);
  }
  std::sort(result.begin(), result.end());
  return result;
}

// The LESS elimination-filter (EF) prepass: a window of a few
// high-dominance tuples drops most dominated tuples in one linear scan —
// the work the external-sort pass 0 does in the original algorithm. The EF
// holds seen tuples with the lowest score volume (sum of leaf scores, a
// cheap proxy for dominance power); dropping anything an EF member
// dominates is sound because EF members are input tuples themselves, so
// every dropped tuple is dominated and can appear in no BMO result.
std::vector<size_t> EliminationFilterScan(const DominanceProgram& prog,
                                          const KeyStore& keys,
                                          std::span<const size_t> candidates,
                                          size_t ef_capacity,
                                          BmoStats* stats) {
  const size_t L = keys.num_leaves();
  auto volume = [&](size_t t) {
    const double* s = keys.scores(t);
    double sum = 0;
    for (size_t i = 0; i < L; ++i) sum += s[i];
    return sum;
  };

  struct EfEntry {
    size_t index;
    double volume;
  };
  std::vector<EfEntry> ef;
  ef.reserve(std::max<size_t>(1, ef_capacity));

  std::vector<size_t> survivors;
  survivors.reserve(candidates.size());
  for (size_t t : candidates) {
    bool dominated = false;
    for (const EfEntry& e : ef) {
      if (stats != nullptr) ++stats->comparisons;
      if (prog.Dominates(keys, e.index, t)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    survivors.push_back(t);
    // Admit t when it beats the weakest EF entry by volume (or there is
    // room); the window self-organizes toward the most dominant tuples.
    double v = volume(t);
    if (ef.size() < ef_capacity) {
      ef.push_back({t, v});
    } else if (!ef.empty()) {
      size_t weakest = 0;
      for (size_t e = 1; e < ef.size(); ++e) {
        if (ef[e].volume > ef[weakest].volume) weakest = e;
      }
      if (v < ef[weakest].volume) ef[weakest] = {t, v};
    }
  }
  return survivors;
}

// LESS [GSG05]: the EF prepass above, then the SFS sort + filter over the
// survivors, which restores exactness regardless of what the EF window
// dropped.
std::vector<size_t> LessSkyline(const DominanceProgram& prog,
                                const KeyStore& keys,
                                std::span<const size_t> candidates,
                                size_t ef_capacity, BmoStats* stats) {
  std::vector<size_t> survivors =
      EliminationFilterScan(prog, keys, candidates, ef_capacity, stats);
  return SortFilterSkyline(prog, keys, survivors, stats);
}

}  // namespace

std::vector<size_t> ComputeBmoTopK(const CompiledPreference& pref,
                                   const KeyStore& keys,
                                   std::span<const size_t> candidates,
                                   size_t k, const BmoOptions& options,
                                   BmoStats* stats) {
  const DominanceProgram& prog = pref.program();
  if (stats != nullptr) stats->kernel = prog.kernel();
  if (k == 0) return {};
  // LESS EF prepass: the presort then runs over the (usually much smaller)
  // survivor set instead of the full input. Dropped tuples are dominated,
  // so the set of maximal tuples — and, because the EF scan preserves
  // relative order, the exact k returned below — is unchanged. The prepass
  // trades O(n * ef_window) extra dominance tests for shrinking the
  // O(n log n) presort to the survivors, so it only runs on inputs large
  // enough for the sort to dominate; below the threshold the progressive
  // filter alone already does fewer dominance tests than a full BMO.
  constexpr size_t kEfMinRows = 4096;
  std::vector<size_t> sorted;
  if (candidates.size() >= kEfMinRows) {
    sorted = EliminationFilterScan(
        prog, keys, candidates, std::max<size_t>(1, options.less_window),
        stats);
  } else {
    sorted.assign(candidates.begin(), candidates.end());
  }
  std::stable_sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
    return keys.LexLess(a, b);
  });
  std::vector<size_t> result;
  result.reserve(std::min(k, candidates.size()));
  for (size_t t : sorted) {
    bool dominated = false;
    for (size_t r : result) {
      if (stats != nullptr) ++stats->comparisons;
      if (prog.Dominates(keys, r, t)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      result.push_back(t);
      if (result.size() >= k) break;  // progressive early exit
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

const char* BmoAlgorithmToString(BmoAlgorithm a) {
  switch (a) {
    case BmoAlgorithm::kNaiveNestedLoop:
      return "naive-nested-loop";
    case BmoAlgorithm::kBlockNestedLoop:
      return "block-nested-loop";
    case BmoAlgorithm::kSortFilterSkyline:
      return "sort-filter-skyline";
    case BmoAlgorithm::kLess:
      return "less";
  }
  return "?";
}

Result<BmoAlgorithm> BmoAlgorithmFromString(const std::string& name) {
  if (name == "naive") return BmoAlgorithm::kNaiveNestedLoop;
  if (name == "bnl") return BmoAlgorithm::kBlockNestedLoop;
  if (name == "sfs") return BmoAlgorithm::kSortFilterSkyline;
  if (name == "less") return BmoAlgorithm::kLess;
  return Status::InvalidArgument("unknown BMO algorithm '" + name +
                                 "' (expected naive, bnl, sfs or less)");
}

std::vector<size_t> ComputeBmo(const CompiledPreference& pref,
                               const KeyStore& keys,
                               std::span<const size_t> candidates,
                               const BmoOptions& options, BmoStats* stats) {
  const DominanceProgram& prog = pref.program();
  if (stats != nullptr) stats->kernel = prog.kernel();
  switch (options.algorithm) {
    case BmoAlgorithm::kNaiveNestedLoop:
      return NaiveNestedLoop(prog, keys, candidates, stats);
    case BmoAlgorithm::kBlockNestedLoop:
      return BlockNestedLoop(prog, keys, candidates, options.bnl_window,
                             stats);
    case BmoAlgorithm::kSortFilterSkyline:
      return SortFilterSkyline(prog, keys, candidates, stats);
    case BmoAlgorithm::kLess:
      return LessSkyline(prog, keys, candidates,
                         std::max<size_t>(1, options.less_window), stats);
  }
  return {};
}

}  // namespace prefsql
