#include "core/bmo.h"

#include <algorithm>

#include "core/query_context.h"

namespace prefsql {
namespace {

// Result vectors grow toward the skyline size, which is unknown upfront;
// reserving a modest floor removes the early reallocation churn without
// over-committing memory for small partitions.
size_t ResultReserve(size_t n) { return std::min<size_t>(n, 256); }

// Stride-counted interrupt poll for the per-tuple loops. True means the
// statement was cancelled or timed out; the algorithm must bail out (its
// partial result is discarded by the caller, which re-checks the context).
bool InterruptedTick(QueryContext* ctx, size_t* tick) {
  if (ctx == nullptr) return false;
  if (++*tick % kInterruptStride != 0) return false;
  return !ctx->CheckInterrupt().ok();
}

// stable_sort by the lex-extension key order, interruptible: the input is
// sorted in fixed-size chunks with a deadline check between each, then
// merged pairwise with checks between merges. A monolithic stable_sort over
// 500k+ rows can run for tens of milliseconds with an expensive comparator,
// which would blow the promptness bound on its own; chunking keeps the gap
// between polls proportional to one chunk. On interrupt the vector is left
// partially sorted — callers must discard it.
void LexSortInterruptible(std::vector<size_t>& v, const KeyStore& keys,
                          QueryContext* ctx) {
  auto less = [&](size_t a, size_t b) { return keys.LexLess(a, b); };
  constexpr size_t kChunk = size_t{1} << 15;
  if (ctx == nullptr || v.size() <= kChunk) {
    std::stable_sort(v.begin(), v.end(), less);
    return;
  }
  for (size_t begin = 0; begin < v.size(); begin += kChunk) {
    if (!ctx->CheckInterrupt().ok()) return;
    std::stable_sort(v.begin() + begin,
                     v.begin() + std::min(begin + kChunk, v.size()), less);
  }
  for (size_t width = kChunk; width < v.size(); width *= 2) {
    for (size_t begin = 0; begin + width < v.size(); begin += 2 * width) {
      if (!ctx->CheckInterrupt().ok()) return;
      std::inplace_merge(
          v.begin() + begin, v.begin() + begin + width,
          v.begin() + std::min(begin + 2 * width, v.size()), less);
    }
  }
}

std::vector<size_t> NaiveNestedLoop(const DominanceProgram& prog,
                                    const KeyStore& keys,
                                    std::span<const size_t> candidates,
                                    SimdVariant simd, QueryContext* ctx,
                                    BmoStats* stats) {
  // Paper §3.2: "Insert t1 into Max if there is no tuple t2 in R that is
  // better than t1" — repeated for every t1. The whole candidate array is
  // the block (a tuple never strictly dominates itself, so t1's own entry
  // is harmless).
  std::vector<size_t> out;
  out.reserve(ResultReserve(candidates.size()));
  size_t* cmp = stats != nullptr ? &stats->comparisons : nullptr;
  size_t tick = 0;
  for (size_t i : candidates) {
    if (InterruptedTick(ctx, &tick)) return out;
    if (!prog.AnyDominates(keys, candidates.data(), candidates.size(), i,
                           simd, cmp)) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<size_t> BlockNestedLoop(const DominanceProgram& prog,
                                    const KeyStore& keys,
                                    std::span<const size_t> candidates,
                                    size_t window_capacity, SimdVariant simd,
                                    QueryContext* ctx, BmoStats* stats) {
  struct Entry {
    size_t index;
    size_t insert_pass;
  };
  std::vector<size_t> result;          // confirmed skyline members
  result.reserve(ResultReserve(candidates.size()));
  std::vector<Entry> window;
  // window_idx mirrors window's indices contiguously for the block calls.
  std::vector<size_t> window_idx;
  std::vector<uint8_t> evict;
  window.reserve(window_capacity != 0
                     ? std::min(window_capacity, candidates.size())
                     : ResultReserve(candidates.size()));
  window_idx.reserve(window.capacity());
  std::vector<size_t> input(candidates.begin(), candidates.end());
  std::vector<size_t> overflow;
  size_t pass = 0;
  size_t* cmp = stats != nullptr ? &stats->comparisons : nullptr;
  size_t tick = 0;

  while (!input.empty()) {
    overflow.clear();
    for (size_t t : input) {
      if (InterruptedTick(ctx, &tick)) return result;
      // Two phases over the window. They match the classic interleaved
      // compare/evict loop exactly because window entries are mutually
      // non-dominated: if some entry dominates t, then t dominates no
      // entry (transitivity would make that entry dominated inside the
      // window), so the dominated case evicts nothing — and otherwise
      // only the eviction phase runs.
      if (prog.AnyDominates(keys, window_idx.data(), window_idx.size(), t,
                            simd, cmp)) {
        continue;
      }
      evict.resize(window.size());
      prog.DominatesBlock(keys, t, window_idx.data(), window.size(),
                          evict.data(), simd, cmp);
      size_t kept = 0;
      for (size_t w = 0; w < window.size(); ++w) {
        if (evict[w]) continue;
        window[kept] = window[w];
        window_idx[kept] = window_idx[w];
        ++kept;
      }
      window.resize(kept);
      window_idx.resize(kept);
      if (window_capacity == 0 || window.size() < window_capacity) {
        window.push_back({t, pass});
        window_idx.push_back(t);
      } else {
        overflow.push_back(t);
      }
    }
    // End of pass: entries inserted in an *earlier* pass have now been
    // compared against every live tuple (anything they dominate was dropped
    // before reaching the overflow), so they are confirmed skyline members.
    // Emitting them frees window space, which guarantees progress when the
    // window is smaller than the skyline.
    std::vector<Entry> remaining;
    for (const Entry& e : window) {
      if (e.insert_pass < pass) {
        result.push_back(e.index);
      } else {
        remaining.push_back(e);
      }
    }
    window = std::move(remaining);
    window_idx.clear();
    for (const Entry& e : window) window_idx.push_back(e.index);
    input = overflow;
    ++pass;
    if (stats != nullptr) stats->passes = pass;
  }
  for (const Entry& e : window) result.push_back(e.index);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<size_t> SortFilterSkyline(const DominanceProgram& prog,
                                      const KeyStore& keys,
                                      std::span<const size_t> candidates,
                                      SimdVariant simd, QueryContext* ctx,
                                      BmoStats* stats) {
  // Presort by a linear extension of the order: afterwards no tuple can be
  // dominated by a later one, so a single forward pass with an append-only
  // result window is exact.
  std::vector<size_t> sorted(candidates.begin(), candidates.end());
  LexSortInterruptible(sorted, keys, ctx);
  std::vector<size_t> result;
  result.reserve(ResultReserve(candidates.size()));
  size_t* cmp = stats != nullptr ? &stats->comparisons : nullptr;
  size_t tick = 0;
  for (size_t t : sorted) {
    if (InterruptedTick(ctx, &tick)) return result;
    if (!prog.AnyDominates(keys, result.data(), result.size(), t, simd,
                           cmp)) {
      result.push_back(t);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

// The LESS elimination-filter (EF) prepass: a window of a few
// high-dominance tuples drops most dominated tuples in one linear scan —
// the work the external-sort pass 0 does in the original algorithm. The EF
// holds seen tuples with the lowest score volume (sum of leaf scores, a
// cheap proxy for dominance power); dropping anything an EF member
// dominates is sound because EF members are input tuples themselves, so
// every dropped tuple is dominated and can appear in no BMO result.
std::vector<size_t> EliminationFilterScan(const DominanceProgram& prog,
                                          const KeyStore& keys,
                                          std::span<const size_t> candidates,
                                          size_t ef_capacity, SimdVariant simd,
                                          QueryContext* ctx, BmoStats* stats) {
  const size_t L = keys.num_leaves();
  auto volume = [&](size_t t) {
    const double* s = keys.scores(t);
    double sum = 0;
    for (size_t i = 0; i < L; ++i) sum += s[i];
    return sum;
  };

  struct EfEntry {
    size_t index;
    double volume;
  };
  std::vector<EfEntry> ef;
  std::vector<size_t> ef_idx;  // mirrors ef's indices for the block calls
  ef.reserve(std::max<size_t>(1, ef_capacity));
  ef_idx.reserve(ef.capacity());
  size_t* cmp = stats != nullptr ? &stats->comparisons : nullptr;

  std::vector<size_t> survivors;
  survivors.reserve(candidates.size());
  size_t tick = 0;
  for (size_t t : candidates) {
    if (InterruptedTick(ctx, &tick)) return survivors;
    if (prog.AnyDominates(keys, ef_idx.data(), ef_idx.size(), t, simd, cmp)) {
      continue;
    }
    survivors.push_back(t);
    // Admit t when it beats the weakest EF entry by volume (or there is
    // room); the window self-organizes toward the most dominant tuples.
    double v = volume(t);
    if (ef.size() < ef_capacity) {
      ef.push_back({t, v});
      ef_idx.push_back(t);
    } else if (!ef.empty()) {
      size_t weakest = 0;
      for (size_t e = 1; e < ef.size(); ++e) {
        if (ef[e].volume > ef[weakest].volume) weakest = e;
      }
      if (v < ef[weakest].volume) {
        ef[weakest] = {t, v};
        ef_idx[weakest] = t;
      }
    }
  }
  return survivors;
}

// LESS [GSG05]: the EF prepass above, then the SFS sort + filter over the
// survivors, which restores exactness regardless of what the EF window
// dropped.
std::vector<size_t> LessSkyline(const DominanceProgram& prog,
                                const KeyStore& keys,
                                std::span<const size_t> candidates,
                                size_t ef_capacity, SimdVariant simd,
                                QueryContext* ctx, BmoStats* stats) {
  std::vector<size_t> survivors = EliminationFilterScan(
      prog, keys, candidates, ef_capacity, simd, ctx, stats);
  if (ctx != nullptr && ctx->interrupted()) return survivors;
  return SortFilterSkyline(prog, keys, survivors, simd, ctx, stats);
}

// The variant the inner loops run with: the block path only exists for the
// packed kernels, and the session knob can force row-at-a-time.
SimdVariant EffectiveSimd(const DominanceProgram& prog,
                          const BmoOptions& options) {
  if (!options.simd || prog.kernel() == DominanceKernel::kGeneric) {
    return SimdVariant::kScalar;
  }
  return DispatchedSimdVariant();
}

}  // namespace

std::vector<size_t> ComputeBmoTopK(const CompiledPreference& pref,
                                   const KeyStore& keys,
                                   std::span<const size_t> candidates,
                                   size_t k, const BmoOptions& options,
                                   BmoStats* stats) {
  const DominanceProgram& prog = pref.program();
  SimdVariant simd = EffectiveSimd(prog, options);
  if (stats != nullptr) {
    stats->kernel = prog.kernel();
    stats->simd = simd;
  }
  if (k == 0) return {};
  // LESS EF prepass: the presort then runs over the (usually much smaller)
  // survivor set instead of the full input. Dropped tuples are dominated,
  // so the set of maximal tuples — and, because the EF scan preserves
  // relative order, the exact k returned below — is unchanged. The prepass
  // trades O(n * ef_window) extra dominance tests for shrinking the
  // O(n log n) presort to the survivors, so it only runs on inputs large
  // enough for the sort to dominate; below the threshold the progressive
  // filter alone already does fewer dominance tests than a full BMO.
  constexpr size_t kEfMinRows = 4096;
  std::vector<size_t> sorted;
  if (candidates.size() >= kEfMinRows) {
    sorted = EliminationFilterScan(prog, keys, candidates,
                                   std::max<size_t>(1, options.less_window),
                                   simd, options.ctx, stats);
    if (options.ctx != nullptr && options.ctx->interrupted()) return sorted;
  } else {
    sorted.assign(candidates.begin(), candidates.end());
  }
  LexSortInterruptible(sorted, keys, options.ctx);
  std::vector<size_t> result;
  result.reserve(std::min(k, candidates.size()));
  size_t* cmp = stats != nullptr ? &stats->comparisons : nullptr;
  size_t tick = 0;
  for (size_t t : sorted) {
    if (InterruptedTick(options.ctx, &tick)) return result;
    if (!prog.AnyDominates(keys, result.data(), result.size(), t, simd,
                           cmp)) {
      result.push_back(t);
      if (result.size() >= k) break;  // progressive early exit
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

const char* BmoAlgorithmToString(BmoAlgorithm a) {
  switch (a) {
    case BmoAlgorithm::kNaiveNestedLoop:
      return "naive-nested-loop";
    case BmoAlgorithm::kBlockNestedLoop:
      return "block-nested-loop";
    case BmoAlgorithm::kSortFilterSkyline:
      return "sort-filter-skyline";
    case BmoAlgorithm::kLess:
      return "less";
  }
  return "?";
}

Result<BmoAlgorithm> BmoAlgorithmFromString(const std::string& name) {
  if (name == "naive") return BmoAlgorithm::kNaiveNestedLoop;
  if (name == "bnl") return BmoAlgorithm::kBlockNestedLoop;
  if (name == "sfs") return BmoAlgorithm::kSortFilterSkyline;
  if (name == "less") return BmoAlgorithm::kLess;
  return Status::InvalidArgument("unknown BMO algorithm '" + name +
                                 "' (expected naive, bnl, sfs or less)");
}

std::vector<size_t> ComputeBmo(const CompiledPreference& pref,
                               const KeyStore& keys,
                               std::span<const size_t> candidates,
                               const BmoOptions& options, BmoStats* stats) {
  const DominanceProgram& prog = pref.program();
  SimdVariant simd = EffectiveSimd(prog, options);
  if (stats != nullptr) {
    stats->kernel = prog.kernel();
    stats->simd = simd;
  }
  switch (options.algorithm) {
    case BmoAlgorithm::kNaiveNestedLoop:
      return NaiveNestedLoop(prog, keys, candidates, simd, options.ctx,
                             stats);
    case BmoAlgorithm::kBlockNestedLoop:
      return BlockNestedLoop(prog, keys, candidates, options.bnl_window,
                             simd, options.ctx, stats);
    case BmoAlgorithm::kSortFilterSkyline:
      return SortFilterSkyline(prog, keys, candidates, simd, options.ctx,
                               stats);
    case BmoAlgorithm::kLess:
      return LessSkyline(prog, keys, candidates,
                         std::max<size_t>(1, options.less_window), simd,
                         options.ctx, stats);
  }
  return {};
}

}  // namespace prefsql
