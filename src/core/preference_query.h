// Direct (in-engine) evaluation of a preference query: materialize the
// candidates, compute the BMO set with a skyline algorithm, apply GROUPING
// and BUT ONLY, evaluate quality functions, and project.
//
// This path implements the same BMO semantics as the §3.2 rewrite but keeps
// everything inside the engine — it is both the fallback for preferences the
// rewriter cannot express (non-weak-order EXPLICIT) and the baseline the
// algorithm benchmarks compare against.

#pragma once

#include "core/analyzer.h"
#include "core/bmo.h"
#include "core/quality.h"
#include "engine/database.h"
#include "types/result_table.h"
#include "util/status.h"

namespace prefsql {

/// Options of the direct evaluation path.
struct DirectEvalOptions {
  BmoOptions bmo;
  ButOnlyMode but_only_mode = ButOnlyMode::kPostFilter;
};

/// Executes `analyzed` against `db` and returns the BMO result.
Result<ResultTable> ExecutePreferenceQueryDirect(
    Database& db, const AnalyzedPreferenceQuery& analyzed,
    const DirectEvalOptions& options = {});

}  // namespace prefsql
