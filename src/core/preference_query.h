// Direct (in-engine) evaluation of a preference query through the operator
// pipeline: the planner streams `FROM ... WHERE` candidates into a
// BmoOperator (skyline algorithm + GROUPING + BUT ONLY + quality columns),
// and the projection tail streams the maximal tuples out — no whole-relation
// materialization between scan and BMO.
//
// Two optimizations ride on this path:
//   * Algebraic preference pushdown (Planner::PlanCandidates): when the
//     preference's quality columns bind to one side of an equi-join, a
//     semi-skyline pre-filter (per join-key-group maxima) runs below the
//     join and the full BMO on top guarantees correctness.
//   * Parallel partitioned BMO (core/bmo_parallel.h): GROUPING partitions
//     and block-partitioned chunks evaluated on a thread pool.
//
// This path implements the same BMO semantics as the §3.2 rewrite but keeps
// everything inside the engine — it is both the fallback for preferences the
// rewriter cannot express (non-weak-order EXPLICIT) and the baseline the
// algorithm benchmarks compare against.

#pragma once

#include <memory>
#include <string>

#include "core/analyzer.h"
#include "core/bmo.h"
#include "core/bmo_operator.h"
#include "core/quality.h"
#include "engine/database.h"
#include "types/result_table.h"
#include "util/status.h"

namespace prefsql {

/// Options of the direct evaluation path.
struct DirectEvalOptions {
  BmoOptions bmo;
  ButOnlyMode but_only_mode = ButOnlyMode::kPostFilter;
  /// Worker threads for the parallel partitioned BMO; 0/1 = serial.
  size_t threads = 0;
  /// Minimum candidate rows before worker threads spin up.
  size_t parallel_min_rows = 4096;
  /// Attempt the algebraic preference pushdown below joins.
  bool pushdown = true;
  /// Engine skyline/key cache (not owned; nullptr = off). Consulted when
  /// the candidate stream is a bare (optionally WHERE-filtered) scan of one
  /// base table — the packed keys are then a pure function of (preference,
  /// table contents) and are reused across queries and sessions.
  SkylineCache* key_cache = nullptr;
  /// Engine filter-position cache (not owned; nullptr = off): replays the
  /// candidate positions of a repeated subquery-free WHERE over an
  /// unchanged table instead of re-evaluating the predicate.
  FilterCache* filter_cache = nullptr;
  /// Serve eligible bare-table queries straight from a cached skyline
  /// position list, and publish computed skylines into the cache.
  bool skyline_cache = true;
};

/// Observability of one direct evaluation (benches, Connection stats).
struct DirectEvalStats {
  BmoStats bmo;                ///< dominance tests, BMO block + pre-filter
  size_t candidate_count = 0;  ///< rows after WHERE, before the BMO block
  size_t partitions = 0;       ///< GROUPING partitions of the BMO block
  size_t threads_used = 1;     ///< parallel pool width (1 = serial)
  bool used_pushdown = false;  ///< semi-skyline pre-filter below the join
  std::string pushdown_detail; ///< placement / rejection reason
  BmoRunStats prefilter;       ///< counters of the pushed-down pre-filter
  bool key_cache_eligible = false;  ///< run was keyed against the key cache
  bool key_cache_hit = false;  ///< packed keys reused from the key cache
  std::string key_cache_detail;  ///< eligibility / rejection reason
  bool skyline_cache_hit = false;  ///< served from cached skyline positions
  std::string skyline_cache_detail;  ///< serve eligibility / rejection
};

/// A compiled direct-evaluation plan: the operator tree plus the stats
/// sinks its BMO operators flush on Close (valid even when the drain stops
/// early or fails).
struct PreferencePlan {
  std::unique_ptr<BmoRunStats> bmo_stats;        ///< BMO block counters
  std::unique_ptr<BmoRunStats> prefilter_stats;  ///< pushdown pre-filter
  bool used_pushdown = false;
  std::string pushdown_detail;
  bool key_cache_eligible = false;
  std::string key_cache_detail;
  /// The plan replays a cached skyline position list instead of running
  /// the BMO (bmo_stats then stays zeroed).
  bool skyline_cache_hit = false;
  std::string skyline_cache_detail;
  /// BUT ONLY rewritten against the augmented schema (referenced by the
  /// operators in `root`).
  ExprPtr owned_but_only;
  /// Declared after the sinks it flushes into: destroyed first.
  OperatorPtr root;
};

/// Compiles `analyzed` into an executable plan without draining it
/// (EXPLAIN uses this to describe the pushdown decision, with
/// `count_stats` false so describing a plan leaves the executor's scan
/// counters untouched).
Result<PreferencePlan> BuildPreferencePlan(
    Database& db, const AnalyzedPreferenceQuery& analyzed,
    const DirectEvalOptions& options = {}, bool count_stats = true);

/// Executes `analyzed` against `db` and returns the BMO result. `stats` is
/// populated even when execution fails partway.
Result<ResultTable> ExecutePreferenceQueryDirect(
    Database& db, const AnalyzedPreferenceQuery& analyzed,
    const DirectEvalOptions& options = {}, DirectEvalStats* stats = nullptr);

}  // namespace prefsql
