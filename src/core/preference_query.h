// Direct (in-engine) evaluation of a preference query through the operator
// pipeline: the planner streams `FROM ... WHERE` candidates into a
// BmoOperator (skyline algorithm + GROUPING + BUT ONLY + quality columns),
// and the projection tail streams the maximal tuples out — no whole-relation
// materialization between scan and BMO.
//
// This path implements the same BMO semantics as the §3.2 rewrite but keeps
// everything inside the engine — it is both the fallback for preferences the
// rewriter cannot express (non-weak-order EXPLICIT) and the baseline the
// algorithm benchmarks compare against.

#pragma once

#include "core/analyzer.h"
#include "core/bmo.h"
#include "core/quality.h"
#include "engine/database.h"
#include "types/result_table.h"
#include "util/status.h"

namespace prefsql {

/// Options of the direct evaluation path.
struct DirectEvalOptions {
  BmoOptions bmo;
  ButOnlyMode but_only_mode = ButOnlyMode::kPostFilter;
};

/// Observability of one direct evaluation (benches, Connection stats).
struct DirectEvalStats {
  BmoStats bmo;
  size_t candidate_count = 0;  ///< rows after WHERE, before BMO
};

/// Executes `analyzed` against `db` and returns the BMO result.
Result<ResultTable> ExecutePreferenceQueryDirect(
    Database& db, const AnalyzedPreferenceQuery& analyzed,
    const DirectEvalOptions& options = {}, DirectEvalStats* stats = nullptr);

}  // namespace prefsql
