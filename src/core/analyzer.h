// Semantic analysis of a Preference SQL query block: compiles the PREFERRING
// clause and enforces the restrictions of §2.2.5.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "preference/composite.h"
#include "storage/catalog.h"
#include "sql/ast.h"
#include "util/status.h"

namespace prefsql {

/// Result of analyzing a query with a PREFERRING clause. The compiled
/// preference is held by shared_ptr so the engine's plan cache can reuse
/// one compilation across queries and sessions (it is immutable after
/// Compile and safe to share).
struct AnalyzedPreferenceQuery {
  /// The original statement (not owned).
  const SelectStmt* query = nullptr;
  /// The compiled preference of the PREFERRING clause (shared, immutable).
  std::shared_ptr<const CompiledPreference> pref;

  AnalyzedPreferenceQuery(const SelectStmt* q,
                          std::shared_ptr<const CompiledPreference> p)
      : query(q), pref(std::move(p)) {}

  const CompiledPreference& preference() const { return *pref; }
};

/// Validates and compiles `select`. Errors on: missing PREFERRING clause,
/// GROUP BY / aggregates combined with PREFERRING (unsupported, like the
/// product's 1.3 restrictions), quality functions outside a preference
/// query, malformed EXPLICIT edge sets, and BUT ONLY without effect.
Result<AnalyzedPreferenceQuery> AnalyzePreferenceQuery(
    const SelectStmt& select);

/// Checks that every column referenced by a preference attribute expression
/// exists in the candidate relation (`columns` = bare column names of
/// SELECT * over the query's FROM). Catches typos before any view is
/// created — even when the candidate set is empty.
Status ValidatePreferenceColumns(const CompiledPreference& pref,
                                 const std::vector<std::string>& columns);

/// Replaces every `PREFERENCE <name>` reference in `term` by the stored
/// definition from `catalog` (Preference Definition Language, §2.2). Stored
/// definitions are expanded at CREATE PREFERENCE time, so one level of
/// substitution suffices. Returns nullptr-free deep copy.
Result<PrefTermPtr> ExpandNamedPreferences(const PrefTerm& term,
                                           const Catalog& catalog);

/// True iff the term tree contains a PREFERENCE reference.
bool ContainsNamedPreference(const PrefTerm& term);

/// Partition-compatibility metadata for the planner's pushdown pass: the
/// deduplicated (qualifier, column) references of all leaf attribute
/// expressions. Returns nullopt when a leaf contains a subquery — the
/// preference is then unbindable to a join side and the BMO block must stay
/// above the join.
std::optional<std::vector<std::pair<std::string, std::string>>>
PreferenceColumnRefs(const CompiledPreference& pref);

}  // namespace prefsql
