#include "core/bmo_operator.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "core/bmo_parallel.h"
#include "core/query_context.h"

namespace prefsql {

std::string BmoQualityColumnName(QualityFn fn, size_t leaf) {
  const char* tag = fn == QualityFn::kTop     ? "top"
                    : fn == QualityFn::kLevel ? "level"
                                              : "dist";
  return "$" + std::string(tag) + "_" + std::to_string(leaf);
}

BmoOperator::BmoOperator(OperatorPtr child, const CompiledPreference* pref,
                         BmoOperatorConfig config, SubqueryRunner* runner)
    : child_(std::move(child)),
      pref_(pref),
      config_(std::move(config)),
      runner_(runner) {
  std::vector<ColumnInfo> aug_cols = child_->schema().columns();
  for (size_t l = 0; l < pref_->num_leaves(); ++l) {
    for (QualityFn fn :
         {QualityFn::kTop, QualityFn::kLevel, QualityFn::kDistance}) {
      quality_slots_.emplace_back(fn, l);
      aug_cols.push_back({"", BmoQualityColumnName(fn, l)});
    }
  }
  aug_schema_ = Schema(std::move(aug_cols));
}

BmoOperator::~BmoOperator() { FlushStats(); }

Status BmoOperator::Open() {
  PSQL_RETURN_IF_ERROR(child_->Open());
  rows_.clear();
  keys_.reset();
  survivors_.clear();
  use_positions_ = false;
  positions_.clear();
  local_of_.clear();
  pos_ = 0;
  run_stats_ = BmoRunStats{};
  stmt_charge_.Reset();
  engine_charge_.Reset();
  // The ambient statement context: polled in the pull and key-build loops,
  // handed to the BMO algorithms through BmoOptions (explicitly, so
  // bmo_parallel workers see it across pool threads), and consulted before
  // every cache publication — an interrupted run must not publish partial
  // entries.
  QueryContext* qctx = CurrentQueryContext();
  config_.bmo.ctx = qctx;

  // 1. Pull the candidate stream. Base-table rows stay borrowed (no tuple
  //    copies between scan and BMO). In batch mode the scan/filter subtree
  //    hands over ~1k rows per virtual call — one MVCC visibility sweep and
  //    one interrupt check per batch — so the key build and the SIMD
  //    dominance kernels below see the candidates at feed, not pull, speed.
  if (BatchModeEnabled()) {
    RowBatch batch;
    while (true) {
      if (qctx != nullptr) PSQL_RETURN_IF_ERROR(qctx->CheckInterrupt());
      PSQL_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
      if (!more) break;
      if (qctx != nullptr) qctx->batch_stats().Record(batch.sel.size());
      run_stats_.candidate_count += batch.sel.size();
      for (uint32_t idx : batch.sel) {
        rows_.push_back(std::move(batch.rows[idx]));
      }
    }
  } else {
    RowRef ref;
    size_t tick = 0;
    while (true) {
      PSQL_RETURN_IF_ERROR(PollInterrupt(&tick));
      PSQL_ASSIGN_OR_RETURN(bool more, child_->Next(&ref));
      if (!more) break;
      ++run_stats_.candidate_count;
      rows_.push_back(std::move(ref));
    }
  }
  const size_t n = rows_.size();

  // 1b. Position mode: recover each pulled row's heap slot by pointer
  //     identity against the table's version heap, so the dominance pass
  //     can run over the shared whole-table KeyStore. Any row that is not
  //     a borrowed slot of the heap (or a duplicate) falls the whole run
  //     back to the local un-cached path.
  if (config_.base_heap != nullptr) {
    bool ok = true;
    positions_.reserve(n);
    for (const RowRef& r : rows_) {
      if (!r.is_borrowed()) {
        ok = false;
        break;
      }
      auto slot = config_.base_heap->PositionOf(&r.row());
      if (!slot.has_value() || *slot >= config_.key_rows) {
        ok = false;
        break;
      }
      positions_.push_back(*slot);
    }
    if (ok) {
      local_of_.reserve(n);
      for (size_t i = 0; i < n && ok; ++i) {
        ok = local_of_.emplace(positions_[i], i).second;
      }
    }
    if (!ok) {
      positions_.clear();
      local_of_.clear();
    }
    use_positions_ = ok;
    if (use_positions_ && config_.filter_cache != nullptr) {
      if (qctx != nullptr) PSQL_RETURN_IF_ERROR(qctx->CheckInterrupt());
      config_.filter_cache->Insert(
          config_.filter_cache_key,
          std::make_shared<const std::vector<size_t>>(positions_));
    }
  }
  // Candidate id of pulled row i: its heap slot in position mode (an index
  // into the whole-table KeyStore), the pulled index otherwise.
  auto id_of = [&](size_t i) { return use_positions_ ? positions_[i] : i; };
  const size_t key_rows = use_positions_ ? config_.key_rows : n;

  // 2. Packed keys: an engine cache hit reuses the whole store (the cached
  //    row count matching the expected count re-checks the planner's row
  //    correspondence); otherwise build into a fresh store — appended
  //    straight into the packed KeyStore, no per-tuple key allocation —
  //    and publish it when this run is cache-keyed. In position mode the
  //    store covers the whole table (one build amortizes across every
  //    filtered query over this snapshot).
  const bool cache_keyed = config_.key_cache != nullptr &&
                           (config_.base_heap == nullptr || use_positions_);
  if (cache_keyed) {
    auto cached = config_.key_cache->Lookup(config_.key_cache_key);
    if (cached != nullptr && cached->keys != nullptr &&
        cached->keys->size() == key_rows &&
        cached->keys->num_leaves() == pref_->num_leaves()) {
      keys_ = cached->keys;
      run_stats_.key_cache_hit = true;  // key_build_ns stays 0
    }
  }
  if (keys_ == nullptr) {
    using Clock = std::chrono::steady_clock;
    size_t tick = 0;
    // Charge the key store up front (scores: 8 bytes, explicit ids: 4 bytes
    // per leaf per row) — the single largest allocation of the run. A
    // refused charge surfaces kResourceExhausted before the memory exists.
    if (qctx != nullptr) {
      PSQL_RETURN_IF_ERROR(qctx->ChargeMemory(
          key_rows * pref_->num_leaves() * (sizeof(double) + sizeof(int32_t)),
          &stmt_charge_, &engine_charge_));
    }
    auto built = std::make_shared<KeyStore>(pref_->num_leaves());
    built->Reserve(key_rows);
    const auto t0 = Clock::now();
    if (use_positions_) {
      // Key every slot of the snapshot's key space, dead versions included
      // (slot = key row). GC-cleared payloads can no longer be evaluated;
      // they get neutral worst-score keys, which is sound because cleared
      // slots are invisible at every servable snapshot and dominance only
      // ever runs over candidate (visible) ids.
      for (size_t slot = 0; slot < config_.key_rows; ++slot) {
        PSQL_RETURN_IF_ERROR(PollInterrupt(&tick));
        if (config_.base_heap->payload_cleared(slot)) {
          for (size_t l = 0; l < pref_->num_leaves(); ++l) {
            built->PushLeaf(kWorstScore, -1);
          }
          built->CommitRow();
          continue;
        }
        PSQL_RETURN_IF_ERROR(pref_->AppendKey(child_->schema(),
                                              config_.base_heap->row(slot),
                                              built.get(), runner_));
      }
    } else {
      for (const RowRef& r : rows_) {
        PSQL_RETURN_IF_ERROR(PollInterrupt(&tick));
        PSQL_RETURN_IF_ERROR(
            pref_->AppendKey(child_->schema(), r.row(), built.get(),
                             runner_));
      }
    }
    run_stats_.bmo.key_build_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             t0)
            .count());
    keys_ = std::move(built);
    if (cache_keyed) {
      if (qctx != nullptr) PSQL_RETURN_IF_ERROR(qctx->CheckInterrupt());
      auto entry = std::make_shared<SkylineEntry>();
      entry->keys = keys_;
      entry->pref = config_.cache_pref;
      config_.key_cache->Insert(config_.key_cache_key, std::move(entry));
    }
  }
  const KeyStore& keys = *keys_;

  // 3. GROUPING partitions (§2.2.5): BMO within each partition. Partitions
  //    hold candidate ids; partition_of_ stays pulled-indexed.
  std::vector<std::vector<size_t>> partitions;
  partition_of_.assign(n, 0);
  if (config_.grouping_cols.empty()) {
    partitions.emplace_back();
    partitions[0].reserve(n);
    for (size_t i = 0; i < n; ++i) partitions[0].push_back(id_of(i));
  } else {
    std::unordered_map<size_t, std::vector<size_t>> by_hash;  // hash->part ids
    std::vector<Row> part_keys;
    for (size_t i = 0; i < n; ++i) {
      Row gkey;
      gkey.reserve(config_.grouping_cols.size());
      for (size_t c : config_.grouping_cols) gkey.push_back(rows_[i].row()[c]);
      size_t h = HashRow(gkey);
      size_t part = SIZE_MAX;
      for (size_t cand_part : by_hash[h]) {
        if (RowsIdentityEqual(part_keys[cand_part], gkey)) {
          part = cand_part;
          break;
        }
      }
      if (part == SIZE_MAX) {
        part = partitions.size();
        partitions.emplace_back();
        part_keys.push_back(std::move(gkey));
        by_hash[h].push_back(part);
      }
      partition_of_[i] = part;
      partitions[part].push_back(id_of(i));
    }
  }

  // 4. Observed minimum score per leaf per partition (quality offsets for
  //    HIGHEST/LOWEST distances, computed over the unfiltered candidates).
  min_scores_.assign(partitions.size(), {});
  for (size_t p = 0; p < partitions.size(); ++p) {
    min_scores_[p].assign(pref_->num_leaves(), kWorstScore);
    for (size_t id : partitions[p]) {
      for (size_t l = 0; l < pref_->num_leaves(); ++l) {
        min_scores_[p][l] = std::min(min_scores_[p][l], keys.score(id, l));
      }
    }
  }

  // 5. BUT ONLY pre-filtering runs serially first — it goes through the
  //    expression evaluator (subqueries, catalog), which must stay on this
  //    thread.
  run_stats_.partitions = partitions.size();
  if (config_.but_only != nullptr &&
      config_.but_only_mode == ButOnlyMode::kPreFilter) {
    for (auto& part : partitions) {
      std::vector<size_t> filtered;
      for (size_t i : part) {
        PSQL_ASSIGN_OR_RETURN(bool pass, PassesButOnly(i));
        if (pass) filtered.push_back(i);
      }
      part = std::move(filtered);
    }
  }

  // 6. BMO per partition — parallel over a thread pool when configured and
  //    worthwhile; dominance tests only touch the prebuilt keys. The
  //    progressive top-k pushdown stays serial (truncated local skylines do
  //    not merge exactly).
  std::vector<size_t> maximal;
  bool parallel = config_.threads > 1 && !config_.top_k &&
                  n >= config_.parallel_min_rows;
  if (parallel) {
    ParallelBmoOptions par;
    par.threads = config_.threads;
    // Chunk at the same granularity that justified spinning up threads, so
    // a partition just past the threshold still splits across the pool.
    par.min_chunk = std::max<size_t>(1, config_.parallel_min_rows);
    ParallelBmoStats par_stats;
    maximal = ComputeBmoPartitionedParallel(*pref_, keys, partitions,
                                            config_.bmo, par, &par_stats);
    // Keep the operator-side key-build estimate across the wholesale copy.
    const uint64_t built_ns = run_stats_.bmo.key_build_ns;
    run_stats_.bmo = par_stats.bmo;
    run_stats_.bmo.key_build_ns = built_ns;
    run_stats_.threads_used = par_stats.threads_used;
    // Workers bail with partial survivor sets on an interrupt; discard.
    if (qctx != nullptr && qctx->interrupted()) return qctx->LatchedStatus();
  } else {
    for (const auto& part : partitions) {
      BmoStats part_stats;
      std::vector<size_t> bmo =
          config_.top_k ? ComputeBmoTopK(*pref_, keys, part, *config_.top_k,
                                         config_.bmo, &part_stats)
                        : ComputeBmo(*pref_, keys, part, config_.bmo,
                                     &part_stats);
      run_stats_.bmo.comparisons += part_stats.comparisons;
      run_stats_.bmo.passes =
          std::max(run_stats_.bmo.passes, part_stats.passes);
      run_stats_.bmo.kernel = part_stats.kernel;
      run_stats_.bmo.simd = part_stats.simd;
      maximal.insert(maximal.end(), bmo.begin(), bmo.end());
      if (qctx != nullptr && qctx->interrupted()) {
        return qctx->LatchedStatus();
      }
    }
    std::sort(maximal.begin(), maximal.end());
  }

  // 7. BUT ONLY post-filtering (serial, evaluator-bound like the pre pass).
  if (config_.but_only != nullptr &&
      config_.but_only_mode == ButOnlyMode::kPostFilter) {
    for (size_t id : maximal) {
      PSQL_ASSIGN_OR_RETURN(bool pass, PassesButOnly(id));
      if (pass) survivors_.push_back(id);
    }
  } else {
    survivors_ = std::move(maximal);
  }
  // 8. Publish the skyline position list when this run computed the bare
  //    whole-table skyline (survivors_ is then heap slots of the maximal
  //    visible versions), upgrading the keys-only entry published above.
  if (cache_keyed && use_positions_ && config_.publish_skyline &&
      keys_->size() == key_rows) {
    if (qctx != nullptr) PSQL_RETURN_IF_ERROR(qctx->CheckInterrupt());
    auto entry = std::make_shared<SkylineEntry>();
    entry->keys = keys_;
    entry->pref = config_.cache_pref;
    std::vector<size_t> ascending = survivors_;
    std::sort(ascending.begin(), ascending.end());
    entry->skyline = std::move(ascending);
    config_.key_cache->Insert(config_.key_cache_key, std::move(entry));
  }
  // Emitted in candidate order (like LIMIT without ORDER BY, the particular
  // maximal tuples of a top-k run are unspecified, but the order is stable).
  // In position mode ids are heap slots — map back to pulled order.
  if (use_positions_) {
    std::sort(survivors_.begin(), survivors_.end(),
              [this](size_t a, size_t b) {
                return local_of_.at(a) < local_of_.at(b);
              });
  }
  run_stats_.result_count = survivors_.size();
  return Status::OK();
}

Row BmoOperator::BuildAugmentedRow(size_t id) const {
  const size_t local = LocalOf(id);
  Row row = rows_[local].row();
  const auto& mins = min_scores_[partition_of_[local]];
  for (auto [fn, leaf] : quality_slots_) {
    const BasePreference& base = *pref_->leaf(leaf).pref;
    const LeafKey key = keys_->key(id, leaf);
    switch (fn) {
      case QualityFn::kTop:
        row.push_back(Value::Bool(ComputeTop(base, key, mins[leaf])));
        break;
      case QualityFn::kLevel:
        row.push_back(Value::Int(ComputeLevel(base, key, mins[leaf])));
        break;
      case QualityFn::kDistance:
        row.push_back(Value::Double(ComputeDistance(base, key, mins[leaf])));
        break;
    }
  }
  return row;
}

Result<bool> BmoOperator::PassesButOnly(size_t id) {
  Row aug = BuildAugmentedRow(id);
  EvalContext ctx{&aug_schema_, &aug, nullptr, runner_};
  return EvaluatePredicate(*config_.but_only, ctx);
}

Result<bool> BmoOperator::Next(RowRef* out) {
  if (pos_ >= survivors_.size()) return false;
  size_t id = survivors_[pos_++];
  if (config_.emit_quality_columns) {
    *out = RowRef::Owned(BuildAugmentedRow(id));
  } else {
    // Each survivor is emitted exactly once.
    *out = std::move(rows_[LocalOf(id)]);
  }
  return true;
}

Result<bool> BmoOperator::NextBatch(RowBatch* out) {
  out->Clear();
  if (pos_ >= survivors_.size()) return false;
  const size_t take = std::min(kRowBatchCapacity, survivors_.size() - pos_);
  out->rows.reserve(take);
  out->sel.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    size_t id = survivors_[pos_ + i];
    if (config_.emit_quality_columns) {
      out->PushRow(RowRef::Owned(BuildAugmentedRow(id)));
    } else {
      out->PushRow(std::move(rows_[LocalOf(id)]));
    }
  }
  pos_ += take;
  return true;
}

void BmoOperator::Close() {
  child_->Close();
  rows_.clear();
  keys_.reset();
  stmt_charge_.Reset();
  engine_charge_.Reset();
  positions_.clear();
  local_of_.clear();
  partition_of_.clear();
  min_scores_.clear();
  survivors_.clear();
  // run_stats_ survives Close (benches, Connection::last_stats) — flush it
  // now so early-stopping consumers still observe correct counters.
  FlushStats();
}

void BmoOperator::FlushStats() {
  if (config_.stats_sink != nullptr) *config_.stats_sink = run_stats_;
}

}  // namespace prefsql
