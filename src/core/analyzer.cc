#include "core/analyzer.h"

#include "core/quality.h"
#include "engine/evaluator.h"
#include "util/string_util.h"

namespace prefsql {

Result<AnalyzedPreferenceQuery> AnalyzePreferenceQuery(
    const SelectStmt& select) {
  if (!select.IsPreferenceQuery()) {
    return Status::InvalidArgument("query has no PREFERRING clause");
  }
  if (select.from.empty()) {
    return Status::InvalidArgument("preference query requires a FROM clause");
  }
  if (!select.group_by.empty() || select.having != nullptr) {
    // The paper's GROUPING clause performs "with soft constraints what
    // GROUP BY does with hard constraints"; mixing both in one block is not
    // part of Preference SQL 1.3.
    return Status::NotImplemented(
        "GROUP BY/HAVING cannot be combined with PREFERRING; "
        "use the GROUPING clause for preference partitioning");
  }
  for (const auto& item : select.items) {
    if (item.expr->kind != ExprKind::kStar && ContainsAggregate(*item.expr)) {
      return Status::NotImplemented(
          "aggregates cannot be combined with PREFERRING");
    }
  }
  if (select.but_only != nullptr && !ContainsQualityCall(*select.but_only)) {
    return Status::InvalidArgument(
        "BUT ONLY condition must use at least one quality function "
        "(TOP/LEVEL/DISTANCE)");
  }
  PSQL_ASSIGN_OR_RETURN(CompiledPreference pref,
                        CompiledPreference::Compile(*select.preferring));
  return AnalyzedPreferenceQuery(
      &select, std::make_shared<const CompiledPreference>(std::move(pref)));
}

namespace {

void CollectColumnRefs(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kColumnRef) {
    out->push_back(&e);
    return;
  }
  auto walk = [&](const ExprPtr& p) {
    if (p) CollectColumnRefs(*p, out);
  };
  walk(e.left);
  walk(e.right);
  walk(e.lo);
  walk(e.hi);
  walk(e.case_else);
  for (const auto& a : e.args) CollectColumnRefs(*a, out);
  for (const auto& item : e.in_list) CollectColumnRefs(*item, out);
  for (const auto& cw : e.case_whens) {
    CollectColumnRefs(*cw.when, out);
    CollectColumnRefs(*cw.then, out);
  }
}

bool ContainsSubquery(const Expr& e) {
  if (e.subquery != nullptr) return true;
  auto walk = [&](const ExprPtr& p) { return p && ContainsSubquery(*p); };
  if (walk(e.left) || walk(e.right) || walk(e.lo) || walk(e.hi) ||
      walk(e.case_else)) {
    return true;
  }
  for (const auto& a : e.args) {
    if (ContainsSubquery(*a)) return true;
  }
  for (const auto& item : e.in_list) {
    if (ContainsSubquery(*item)) return true;
  }
  for (const auto& cw : e.case_whens) {
    if (ContainsSubquery(*cw.when) || ContainsSubquery(*cw.then)) return true;
  }
  return false;
}

}  // namespace

Result<PrefTermPtr> ExpandNamedPreferences(const PrefTerm& term,
                                           const Catalog& catalog) {
  if (term.kind == PrefKind::kNamedRef) {
    PSQL_ASSIGN_OR_RETURN(const PrefTerm* stored,
                          catalog.GetPreference(term.pref_name));
    // Stored bodies were expanded when created; a defensive re-expansion
    // keeps this correct even if that invariant is ever relaxed.
    return ExpandNamedPreferences(*stored, catalog);
  }
  PrefTermPtr out = term.Clone();
  for (auto& child : out->children) {
    PSQL_ASSIGN_OR_RETURN(child, ExpandNamedPreferences(*child, catalog));
  }
  return out;
}

bool ContainsNamedPreference(const PrefTerm& term) {
  if (term.kind == PrefKind::kNamedRef) return true;
  for (const auto& child : term.children) {
    if (ContainsNamedPreference(*child)) return true;
  }
  return false;
}

Status ValidatePreferenceColumns(const CompiledPreference& pref,
                                 const std::vector<std::string>& columns) {
  for (size_t i = 0; i < pref.num_leaves(); ++i) {
    std::vector<const Expr*> refs;
    CollectColumnRefs(*pref.leaf(i).attr, &refs);
    for (const Expr* ref : refs) {
      if (!FindNameIgnoreCase(columns, ref->column)) {
        return Status::InvalidArgument(
            "preference attribute refers to unknown column '" + ref->column +
            "'");
      }
    }
  }
  return Status::OK();
}

std::optional<std::vector<std::pair<std::string, std::string>>>
PreferenceColumnRefs(const CompiledPreference& pref) {
  std::vector<std::pair<std::string, std::string>> out;
  for (size_t i = 0; i < pref.num_leaves(); ++i) {
    const Expr& attr = *pref.leaf(i).attr;
    if (ContainsSubquery(attr)) return std::nullopt;
    std::vector<const Expr*> refs;
    CollectColumnRefs(attr, &refs);
    for (const Expr* ref : refs) {
      bool seen = false;
      for (const auto& [q, c] : out) {
        if (EqualsIgnoreCase(q, ref->qualifier) &&
            EqualsIgnoreCase(c, ref->column)) {
          seen = true;
          break;
        }
      }
      if (!seen) out.emplace_back(ref->qualifier, ref->column);
    }
  }
  return out;
}

}  // namespace prefsql
