#include "core/quality.h"

namespace prefsql {

Result<QualityFn> QualityFnFromName(const std::string& lower_name) {
  if (lower_name == "top") return QualityFn::kTop;
  if (lower_name == "level") return QualityFn::kLevel;
  if (lower_name == "distance") return QualityFn::kDistance;
  return Status::InvalidArgument("not a quality function: " + lower_name);
}

bool IsQualityFunction(const std::string& lower_name) {
  return lower_name == "top" || lower_name == "level" ||
         lower_name == "distance";
}

Result<ExprPtr> RewriteQualityCalls(const Expr& expr,
                                    const QualityExprFactory& make) {
  if (expr.kind == ExprKind::kFunction &&
      IsQualityFunction(expr.function_name)) {
    if (expr.args.size() != 1 ||
        expr.args[0]->kind != ExprKind::kColumnRef) {
      return Status::InvalidArgument(
          "quality function " + expr.function_name +
          "() expects a single attribute argument");
    }
    PSQL_ASSIGN_OR_RETURN(QualityFn fn, QualityFnFromName(expr.function_name));
    return make(fn, expr.args[0]->column);
  }
  ExprPtr out = expr.Clone();
  auto rewrite = [&](ExprPtr& p) -> Status {
    if (p) {
      PSQL_ASSIGN_OR_RETURN(p, RewriteQualityCalls(*p, make));
    }
    return Status::OK();
  };
  PSQL_RETURN_IF_ERROR(rewrite(out->left));
  PSQL_RETURN_IF_ERROR(rewrite(out->right));
  PSQL_RETURN_IF_ERROR(rewrite(out->lo));
  PSQL_RETURN_IF_ERROR(rewrite(out->hi));
  PSQL_RETURN_IF_ERROR(rewrite(out->case_else));
  for (auto& a : out->args) {
    PSQL_ASSIGN_OR_RETURN(a, RewriteQualityCalls(*a, make));
  }
  for (auto& item : out->in_list) {
    PSQL_ASSIGN_OR_RETURN(item, RewriteQualityCalls(*item, make));
  }
  for (auto& cw : out->case_whens) {
    PSQL_ASSIGN_OR_RETURN(cw.when, RewriteQualityCalls(*cw.when, make));
    PSQL_ASSIGN_OR_RETURN(cw.then, RewriteQualityCalls(*cw.then, make));
  }
  return out;
}

bool ContainsQualityCall(const Expr& e) {
  if (e.kind == ExprKind::kFunction && IsQualityFunction(e.function_name)) {
    return true;
  }
  auto check = [](const ExprPtr& p) { return p && ContainsQualityCall(*p); };
  if (check(e.left) || check(e.right) || check(e.lo) || check(e.hi) ||
      check(e.case_else)) {
    return true;
  }
  for (const auto& a : e.args) {
    if (ContainsQualityCall(*a)) return true;
  }
  for (const auto& item : e.in_list) {
    if (ContainsQualityCall(*item)) return true;
  }
  for (const auto& cw : e.case_whens) {
    if (ContainsQualityCall(*cw.when) || ContainsQualityCall(*cw.then)) {
      return true;
    }
  }
  return false;
}

double EffectiveOffset(const BasePreference& pref, double observed_min_score) {
  auto offset = pref.QualityOffset();
  return offset ? *offset : observed_min_score;
}

double ComputeDistance(const BasePreference& pref, const LeafKey& key,
                       double observed_min_score) {
  return key.score - EffectiveOffset(pref, observed_min_score);
}

int64_t ComputeLevel(const BasePreference& pref, const LeafKey& key,
                     double observed_min_score) {
  if (pref.IsCategorical()) return static_cast<int64_t>(key.score);
  return ComputeDistance(pref, key, observed_min_score) == 0.0 ? 1 : 2;
}

bool ComputeTop(const BasePreference& pref, const LeafKey& key,
                double observed_min_score) {
  return ComputeDistance(pref, key, observed_min_score) == 0.0;
}

}  // namespace prefsql
