// Quality functions TOP / LEVEL / DISTANCE (answer explanation, §2.2.3) and
// the BUT ONLY quality-control clause (§2.2.4).

#pragma once

#include <functional>
#include <string>

#include "preference/composite.h"
#include "sql/ast.h"
#include "util/status.h"

namespace prefsql {

/// The three quality functions of §2.2.3.
enum class QualityFn { kTop, kLevel, kDistance };

/// Placement of the BUT ONLY threshold relative to the dominance test. The
/// paper states both that the condition "is logically tested after applying
/// the preferences" (§2.2.5, the default here) and that the BMO process
/// "consider[s] all other values within the BUT ONLY quality threshold"
/// (pre-filtering). See DESIGN.md; both are implemented.
enum class ButOnlyMode {
  kPostFilter,  ///< compute BMO over all candidates, then apply BUT ONLY
  kPreFilter,   ///< restrict candidates by BUT ONLY, then compute BMO
};

/// Maps "top"/"level"/"distance" to the enum; error otherwise.
Result<QualityFn> QualityFnFromName(const std::string& lower_name);

/// True iff `lower_name` is a quality function name.
bool IsQualityFunction(const std::string& lower_name);

/// Callback producing the replacement expression for one quality call.
using QualityExprFactory =
    std::function<Result<ExprPtr>(QualityFn fn, const std::string& column)>;

/// Deep-rewrites `expr`, replacing every quality call TOP(a)/LEVEL(a)/
/// DISTANCE(a) — whose argument must be a single column reference — by the
/// expression `make` returns. Other nodes are cloned unchanged.
Result<ExprPtr> RewriteQualityCalls(const Expr& expr,
                                    const QualityExprFactory& make);

/// True iff the tree contains a quality function call.
bool ContainsQualityCall(const Expr& expr);

// -- Direct (in-engine) quality computation --------------------------------
//
// DISTANCE(A) = score - offset where offset is the leaf's QualityOffset(),
// or the minimum observed score for HIGHEST/LOWEST (distance from the
// observed optimum). LEVEL(A) is the integer level for categorical
// preferences and 1/2 (perfect / not perfect) for numeric ones. TOP(A) is
// DISTANCE(A) = 0.

double ComputeDistance(const BasePreference& pref, const LeafKey& key,
                       double observed_min_score);
int64_t ComputeLevel(const BasePreference& pref, const LeafKey& key,
                     double observed_min_score);
bool ComputeTop(const BasePreference& pref, const LeafKey& key,
                double observed_min_score);

/// The offset actually used for a leaf: QualityOffset() when fixed, else
/// `observed_min_score`.
double EffectiveOffset(const BasePreference& pref, double observed_min_score);

}  // namespace prefsql
