#include "core/connection.h"

#include "core/rewriter.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "util/string_util.h"

namespace prefsql {

const char* EvaluationModeToString(EvaluationMode m) {
  switch (m) {
    case EvaluationMode::kRewrite:
      return "rewrite";
    case EvaluationMode::kBlockNestedLoop:
      return "bnl";
    case EvaluationMode::kNaiveNestedLoop:
      return "naive";
    case EvaluationMode::kSortFilterSkyline:
      return "sfs";
  }
  return "?";
}

Result<ResultTable> Connection::Execute(const std::string& sql) {
  PSQL_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return ExecuteStatement(stmt);
}

Result<ResultTable> Connection::ExecuteScript(const std::string& sql) {
  PSQL_ASSIGN_OR_RETURN(auto stmts, ParseScript(sql));
  if (stmts.empty()) return Status::InvalidArgument("empty script");
  ResultTable last;
  for (const auto& stmt : stmts) {
    PSQL_ASSIGN_OR_RETURN(last, ExecuteStatement(stmt));
  }
  return last;
}

Result<ResultTable> Connection::ExecuteStatement(const Statement& stmt) {
  last_stats_ = PreferenceQueryStats{};
  if (stmt.kind == StatementKind::kSet) {
    return ExecuteSet(stmt);
  }
  if (stmt.kind == StatementKind::kSelect &&
      stmt.select->IsPreferenceQuery()) {
    last_stats_.was_preference_query = true;
    PSQL_ASSIGN_OR_RETURN(auto expanded, ExpandSelect(*stmt.select));
    return ExecutePreferenceSelect(*expanded);
  }
  if (stmt.kind == StatementKind::kExplain) {
    return ExecuteExplain(stmt);
  }
  // INSERT ... SELECT with a PREFERRING clause (§2.2.5): evaluate the
  // preference query here, then bulk-insert the BMO rows.
  if (stmt.kind == StatementKind::kInsert && stmt.select != nullptr &&
      stmt.select->IsPreferenceQuery()) {
    last_stats_.was_preference_query = true;
    PSQL_ASSIGN_OR_RETURN(auto expanded, ExpandSelect(*stmt.select));
    PSQL_ASSIGN_OR_RETURN(ResultTable rows,
                          ExecutePreferenceSelect(*expanded));
    return db_.executor().InsertTable(stmt.name, stmt.insert_columns, rows);
  }
  // Everything else passes through to the database system (§3.1: "without
  // causing any noticeable overhead").
  return db_.ExecuteStatement(stmt);
}

namespace {

// Interprets a SET value as a non-negative integer.
Result<size_t> SetValueAsSize(const Value& v, const std::string& knob) {
  if (v.type() == ValueType::kInt && v.AsInt() >= 0) {
    return static_cast<size_t>(v.AsInt());
  }
  return Status::InvalidArgument("SET " + knob +
                                 " expects a non-negative integer");
}

// Interprets a SET value as a boolean (on/off/true/false/1/0).
Result<bool> SetValueAsBool(const Value& v, const std::string& knob) {
  if (v.type() == ValueType::kBool) return v.AsBool();
  if (v.type() == ValueType::kInt) return v.AsInt() != 0;
  if (v.type() == ValueType::kText) {
    const std::string t = ToLower(v.AsText());
    if (t == "on" || t == "true" || t == "1") return true;
    if (t == "off" || t == "false" || t == "0") return false;
  }
  return Status::InvalidArgument("SET " + knob + " expects on or off");
}

}  // namespace

Result<ResultTable> Connection::ExecuteSet(const Statement& stmt) {
  const std::string knob = ToLower(stmt.name);
  const Value& v = stmt.set_value;
  const ConnectionOptions defaults;
  const bool reset = v.type() == ValueType::kNull ||
                     (v.type() == ValueType::kText &&
                      ToLower(v.AsText()) == "default");
  if (knob == "bmo_threads") {
    if (reset) {
      options_.bmo_threads = defaults.bmo_threads;
    } else {
      PSQL_ASSIGN_OR_RETURN(options_.bmo_threads, SetValueAsSize(v, knob));
    }
  } else if (knob == "parallel_min_rows") {
    if (reset) {
      options_.parallel_min_rows = defaults.parallel_min_rows;
    } else {
      PSQL_ASSIGN_OR_RETURN(options_.parallel_min_rows,
                            SetValueAsSize(v, knob));
    }
  } else if (knob == "bnl_window") {
    if (reset) {
      options_.bnl_window = defaults.bnl_window;
    } else {
      PSQL_ASSIGN_OR_RETURN(options_.bnl_window, SetValueAsSize(v, knob));
    }
  } else if (knob == "preference_pushdown") {
    if (reset) {
      options_.preference_pushdown = defaults.preference_pushdown;
    } else {
      PSQL_ASSIGN_OR_RETURN(options_.preference_pushdown,
                            SetValueAsBool(v, knob));
    }
  } else if (knob == "keep_aux_views") {
    if (reset) {
      options_.keep_aux_views = defaults.keep_aux_views;
    } else {
      PSQL_ASSIGN_OR_RETURN(options_.keep_aux_views, SetValueAsBool(v, knob));
    }
  } else if (knob == "evaluation_mode") {
    if (reset) {
      options_.mode = defaults.mode;
    } else if (v.type() == ValueType::kText) {
      const std::string m = ToLower(v.AsText());
      if (m == "rewrite") {
        options_.mode = EvaluationMode::kRewrite;
      } else if (m == "bnl") {
        options_.mode = EvaluationMode::kBlockNestedLoop;
      } else if (m == "naive") {
        options_.mode = EvaluationMode::kNaiveNestedLoop;
      } else if (m == "sfs") {
        options_.mode = EvaluationMode::kSortFilterSkyline;
      } else {
        return Status::InvalidArgument(
            "SET evaluation_mode expects rewrite, bnl, naive or sfs");
      }
    } else {
      return Status::InvalidArgument(
          "SET evaluation_mode expects rewrite, bnl, naive or sfs");
    }
  } else if (knob == "bmo_algorithm") {
    if (reset) {
      options_.bmo_algorithm = defaults.bmo_algorithm;
    } else if (v.type() == ValueType::kText) {
      PSQL_ASSIGN_OR_RETURN(auto algo,
                            BmoAlgorithmFromString(ToLower(v.AsText())));
      options_.bmo_algorithm = algo;
    } else {
      return Status::InvalidArgument(
          "SET bmo_algorithm expects naive, bnl, sfs, less or default");
    }
  } else if (knob == "but_only_mode") {
    const std::string m =
        v.type() == ValueType::kText ? ToLower(v.AsText()) : "";
    if (reset) {
      options_.but_only_mode = defaults.but_only_mode;
    } else if (m == "prefilter") {
      options_.but_only_mode = ButOnlyMode::kPreFilter;
    } else if (m == "postfilter") {
      options_.but_only_mode = ButOnlyMode::kPostFilter;
    } else {
      return Status::InvalidArgument(
          "SET but_only_mode expects prefilter or postfilter");
    }
  } else {
    return Status::InvalidArgument(
        "unknown setting '" + stmt.name +
        "' (known: evaluation_mode, bmo_algorithm, bmo_threads, "
        "parallel_min_rows, preference_pushdown, bnl_window, but_only_mode, "
        "keep_aux_views)");
  }

  // Echo the effective value so scripts/shell users see what stuck.
  std::string effective;
  if (knob == "bmo_threads") {
    effective = std::to_string(options_.bmo_threads);
  } else if (knob == "parallel_min_rows") {
    effective = std::to_string(options_.parallel_min_rows);
  } else if (knob == "bnl_window") {
    effective = std::to_string(options_.bnl_window);
  } else if (knob == "preference_pushdown") {
    effective = options_.preference_pushdown ? "on" : "off";
  } else if (knob == "keep_aux_views") {
    effective = options_.keep_aux_views ? "on" : "off";
  } else if (knob == "evaluation_mode") {
    effective = EvaluationModeToString(options_.mode);
  } else if (knob == "bmo_algorithm") {
    effective = options_.bmo_algorithm
                    ? BmoAlgorithmToString(*options_.bmo_algorithm)
                    : "default";
  } else if (knob == "but_only_mode") {
    effective = options_.but_only_mode == ButOnlyMode::kPreFilter
                    ? "prefilter"
                    : "postfilter";
  }
  Schema schema = Schema::FromNames({"setting", "value"});
  std::vector<Row> rows;
  rows.push_back({Value::Text(knob), Value::Text(effective)});
  return ResultTable(std::move(schema), std::move(rows));
}

Result<std::shared_ptr<SelectStmt>> Connection::ExpandSelect(
    const SelectStmt& select) {
  auto out = select.Clone();
  if (out->preferring != nullptr &&
      ContainsNamedPreference(*out->preferring)) {
    PSQL_ASSIGN_OR_RETURN(
        out->preferring,
        ExpandNamedPreferences(*out->preferring, db_.catalog()));
  }
  return out;
}

Result<ResultTable> Connection::ExecuteExplain(const Statement& stmt) {
  Schema schema = Schema::FromNames({"plan"});
  std::vector<Row> lines;
  auto add = [&](const std::string& s) { lines.push_back({Value::Text(s)}); };
  if (!stmt.select->IsPreferenceQuery()) {
    add("-- standard SQL: passed through to the host database unchanged");
    add(SelectToSql(*stmt.select));
    return ResultTable(std::move(schema), std::move(lines));
  }
  PSQL_ASSIGN_OR_RETURN(auto expanded, ExpandSelect(*stmt.select));
  PSQL_ASSIGN_OR_RETURN(auto analyzed, AnalyzePreferenceQuery(*expanded));
  if (options_.mode != EvaluationMode::kRewrite) {
    // Direct path: describe the physical decisions (pushdown placement,
    // skyline algorithm, parallelism) by compiling the plan without
    // draining it.
    DirectEvalOptions direct = DirectOptions();
    PSQL_ASSIGN_OR_RETURN(
        PreferencePlan plan,
        BuildPreferencePlan(db_, analyzed, direct, /*count_stats=*/false));
    add("-- direct evaluation (mode=" +
        std::string(EvaluationModeToString(options_.mode)) +
        ", algorithm=" +
        std::string(BmoAlgorithmToString(direct.bmo.algorithm)) +
        ", kernel=" +
        std::string(DominanceKernelToString(
            analyzed.preference.program().kernel())) +
        ", bmo_threads=" + std::to_string(direct.threads) + ")");
    add("-- " + plan.pushdown_detail);
    add(SelectToSql(*expanded));
    return ResultTable(std::move(schema), std::move(lines));
  }
  PSQL_ASSIGN_OR_RETURN(auto base_columns, ProbeBaseColumns(*expanded));
  auto rewritten = RewritePreferenceQuery(
      analyzed, base_columns, options_.but_only_mode, "Aux");
  if (!rewritten.ok()) {
    if (rewritten.status().IsNotImplemented()) {
      add("-- preference is not expressible as level columns; evaluated "
          "in-engine (BNL)");
      add(SelectToSql(*expanded));
      return ResultTable(std::move(schema), std::move(lines));
    }
    return rewritten.status();
  }
  add("-- Preference SQL optimizer translation (paper 3.2)");
  for (const auto& st : rewritten->setup) add(StatementToSql(st) + ";");
  add(SelectToSql(*rewritten->query) + ";");
  for (const auto& st : rewritten->teardown) add(StatementToSql(st) + ";");
  return ResultTable(std::move(schema), std::move(lines));
}

Result<std::vector<std::string>> Connection::ProbeBaseColumns(
    const SelectStmt& select) {
  // Schema probe: run the candidate query with a FALSE predicate; only the
  // output schema matters.
  auto probe = std::make_shared<SelectStmt>();
  probe->items.push_back({Expr::MakeStar(), ""});
  for (const auto& tr : select.from) probe->from.push_back(tr->Clone());
  probe->where = Expr::MakeLiteral(Value::Bool(false));
  PSQL_ASSIGN_OR_RETURN(ResultTable rt, db_.ExecuteSelect(*probe));
  return rt.schema().Names();
}

Result<ResultTable> Connection::ExecuteViaRewrite(const SelectStmt& select) {
  PSQL_ASSIGN_OR_RETURN(auto analyzed, AnalyzePreferenceQuery(select));
  PSQL_ASSIGN_OR_RETURN(auto base_columns, ProbeBaseColumns(select));
  PSQL_RETURN_IF_ERROR(
      ValidatePreferenceColumns(analyzed.preference, base_columns));
  std::string aux_name =
      "_prefsql_aux_" + std::to_string(++aux_counter_);
  PSQL_ASSIGN_OR_RETURN(
      RewriteOutput rewritten,
      RewritePreferenceQuery(analyzed, base_columns, options_.but_only_mode,
                             aux_name));
  for (const auto& st : rewritten.setup) {
    PSQL_ASSIGN_OR_RETURN(ResultTable ignored, db_.ExecuteStatement(st));
    (void)ignored;
  }
  auto result = db_.ExecuteSelect(*rewritten.query);
  if (!options_.keep_aux_views) {
    for (const auto& st : rewritten.teardown) {
      auto drop = db_.ExecuteStatement(st);
      if (!drop.ok() && result.ok()) return drop.status();
    }
  }
  PSQL_RETURN_IF_ERROR(result.status());
  last_stats_.used_rewrite = true;
  last_stats_.result_count = result->num_rows();
  return result;
}

DirectEvalOptions Connection::DirectOptions() const {
  DirectEvalOptions direct;
  direct.but_only_mode = options_.but_only_mode;
  direct.bmo.bnl_window = options_.bnl_window;
  direct.threads = options_.bmo_threads;
  direct.parallel_min_rows = options_.parallel_min_rows;
  direct.pushdown = options_.preference_pushdown;
  switch (options_.mode) {
    case EvaluationMode::kNaiveNestedLoop:
      direct.bmo.algorithm = BmoAlgorithm::kNaiveNestedLoop;
      break;
    case EvaluationMode::kSortFilterSkyline:
      direct.bmo.algorithm = BmoAlgorithm::kSortFilterSkyline;
      break;
    case EvaluationMode::kRewrite:  // fallback
    case EvaluationMode::kBlockNestedLoop:
      direct.bmo.algorithm = BmoAlgorithm::kBlockNestedLoop;
      break;
  }
  // The bmo_algorithm knob overrides the algorithm the mode implies (the
  // only way to select LESS, which has no evaluation mode of its own).
  if (options_.bmo_algorithm) direct.bmo.algorithm = *options_.bmo_algorithm;
  return direct;
}

Result<ResultTable> Connection::ExecutePreferenceSelect(
    const SelectStmt& select) {
  if (options_.mode == EvaluationMode::kRewrite) {
    auto result = ExecuteViaRewrite(select);
    if (result.ok() || !result.status().IsNotImplemented()) return result;
    // Rewriter refused (e.g. non-weak-order EXPLICIT): fall back to BNL.
    last_stats_.rewrite_fallback = true;
  }
  PSQL_ASSIGN_OR_RETURN(auto analyzed, AnalyzePreferenceQuery(select));
  DirectEvalStats direct_stats;
  const DirectEvalOptions direct_options = DirectOptions();
  auto result = ExecutePreferenceQueryDirect(db_, analyzed, direct_options,
                                             &direct_stats);
  // The BMO operators flush their counters on Close, so the stats are
  // meaningful even when the drain failed partway.
  last_stats_.candidate_count = direct_stats.candidate_count;
  last_stats_.bmo_comparisons = direct_stats.bmo.comparisons;
  last_stats_.bmo_partitions = direct_stats.partitions;
  last_stats_.bmo_threads_used = direct_stats.threads_used;
  last_stats_.bmo_algorithm =
      BmoAlgorithmToString(direct_options.bmo.algorithm);
  last_stats_.bmo_kernel = DominanceKernelToString(direct_stats.bmo.kernel);
  last_stats_.bmo_key_build_ns = direct_stats.bmo.key_build_ns;
  last_stats_.used_pushdown = direct_stats.used_pushdown;
  last_stats_.pushdown_detail = direct_stats.pushdown_detail;
  last_stats_.prefilter_candidate_count =
      direct_stats.prefilter.candidate_count;
  last_stats_.prefilter_result_count = direct_stats.prefilter.result_count;
  if (result.ok()) {
    last_stats_.result_count = result->num_rows();
  }
  return result;
}

Result<std::string> Connection::RewriteToSql(const std::string& sql) {
  PSQL_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != StatementKind::kSelect ||
      !stmt.select->IsPreferenceQuery()) {
    return Status::InvalidArgument(
        "RewriteToSql expects a query with a PREFERRING clause");
  }
  PSQL_ASSIGN_OR_RETURN(auto analyzed, AnalyzePreferenceQuery(*stmt.select));
  PSQL_ASSIGN_OR_RETURN(auto base_columns, ProbeBaseColumns(*stmt.select));
  std::string aux_name = "Aux";
  PSQL_ASSIGN_OR_RETURN(
      RewriteOutput rewritten,
      RewritePreferenceQuery(analyzed, base_columns, options_.but_only_mode,
                             aux_name));
  return rewritten.ToScript();
}

}  // namespace prefsql
