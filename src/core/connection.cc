#include "core/connection.h"

#include "core/preference_query.h"
#include "core/rewriter.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace prefsql {

const char* EvaluationModeToString(EvaluationMode m) {
  switch (m) {
    case EvaluationMode::kRewrite:
      return "rewrite";
    case EvaluationMode::kBlockNestedLoop:
      return "bnl";
    case EvaluationMode::kNaiveNestedLoop:
      return "naive";
    case EvaluationMode::kSortFilterSkyline:
      return "sfs";
  }
  return "?";
}

Result<ResultTable> Connection::Execute(const std::string& sql) {
  PSQL_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return ExecuteStatement(stmt);
}

Result<ResultTable> Connection::ExecuteScript(const std::string& sql) {
  PSQL_ASSIGN_OR_RETURN(auto stmts, ParseScript(sql));
  if (stmts.empty()) return Status::InvalidArgument("empty script");
  ResultTable last;
  for (const auto& stmt : stmts) {
    PSQL_ASSIGN_OR_RETURN(last, ExecuteStatement(stmt));
  }
  return last;
}

Result<ResultTable> Connection::ExecuteStatement(const Statement& stmt) {
  last_stats_ = PreferenceQueryStats{};
  if (stmt.kind == StatementKind::kSelect &&
      stmt.select->IsPreferenceQuery()) {
    last_stats_.was_preference_query = true;
    PSQL_ASSIGN_OR_RETURN(auto expanded, ExpandSelect(*stmt.select));
    return ExecutePreferenceSelect(*expanded);
  }
  if (stmt.kind == StatementKind::kExplain) {
    return ExecuteExplain(stmt);
  }
  // INSERT ... SELECT with a PREFERRING clause (§2.2.5): evaluate the
  // preference query here, then bulk-insert the BMO rows.
  if (stmt.kind == StatementKind::kInsert && stmt.select != nullptr &&
      stmt.select->IsPreferenceQuery()) {
    last_stats_.was_preference_query = true;
    PSQL_ASSIGN_OR_RETURN(auto expanded, ExpandSelect(*stmt.select));
    PSQL_ASSIGN_OR_RETURN(ResultTable rows,
                          ExecutePreferenceSelect(*expanded));
    return db_.executor().InsertTable(stmt.name, stmt.insert_columns, rows);
  }
  // Everything else passes through to the database system (§3.1: "without
  // causing any noticeable overhead").
  return db_.ExecuteStatement(stmt);
}

Result<std::shared_ptr<SelectStmt>> Connection::ExpandSelect(
    const SelectStmt& select) {
  auto out = select.Clone();
  if (out->preferring != nullptr &&
      ContainsNamedPreference(*out->preferring)) {
    PSQL_ASSIGN_OR_RETURN(
        out->preferring,
        ExpandNamedPreferences(*out->preferring, db_.catalog()));
  }
  return out;
}

Result<ResultTable> Connection::ExecuteExplain(const Statement& stmt) {
  Schema schema = Schema::FromNames({"plan"});
  std::vector<Row> lines;
  auto add = [&](const std::string& s) { lines.push_back({Value::Text(s)}); };
  if (!stmt.select->IsPreferenceQuery()) {
    add("-- standard SQL: passed through to the host database unchanged");
    add(SelectToSql(*stmt.select));
    return ResultTable(std::move(schema), std::move(lines));
  }
  PSQL_ASSIGN_OR_RETURN(auto expanded, ExpandSelect(*stmt.select));
  PSQL_ASSIGN_OR_RETURN(auto analyzed, AnalyzePreferenceQuery(*expanded));
  PSQL_ASSIGN_OR_RETURN(auto base_columns, ProbeBaseColumns(*expanded));
  auto rewritten = RewritePreferenceQuery(
      analyzed, base_columns, options_.but_only_mode, "Aux");
  if (!rewritten.ok()) {
    if (rewritten.status().IsNotImplemented()) {
      add("-- preference is not expressible as level columns; evaluated "
          "in-engine (BNL)");
      add(SelectToSql(*expanded));
      return ResultTable(std::move(schema), std::move(lines));
    }
    return rewritten.status();
  }
  add("-- Preference SQL optimizer translation (paper 3.2)");
  for (const auto& st : rewritten->setup) add(StatementToSql(st) + ";");
  add(SelectToSql(*rewritten->query) + ";");
  for (const auto& st : rewritten->teardown) add(StatementToSql(st) + ";");
  return ResultTable(std::move(schema), std::move(lines));
}

Result<std::vector<std::string>> Connection::ProbeBaseColumns(
    const SelectStmt& select) {
  // Schema probe: run the candidate query with a FALSE predicate; only the
  // output schema matters.
  auto probe = std::make_shared<SelectStmt>();
  probe->items.push_back({Expr::MakeStar(), ""});
  for (const auto& tr : select.from) probe->from.push_back(tr->Clone());
  probe->where = Expr::MakeLiteral(Value::Bool(false));
  PSQL_ASSIGN_OR_RETURN(ResultTable rt, db_.ExecuteSelect(*probe));
  return rt.schema().Names();
}

Result<ResultTable> Connection::ExecuteViaRewrite(const SelectStmt& select) {
  PSQL_ASSIGN_OR_RETURN(auto analyzed, AnalyzePreferenceQuery(select));
  PSQL_ASSIGN_OR_RETURN(auto base_columns, ProbeBaseColumns(select));
  PSQL_RETURN_IF_ERROR(
      ValidatePreferenceColumns(analyzed.preference, base_columns));
  std::string aux_name =
      "_prefsql_aux_" + std::to_string(++aux_counter_);
  PSQL_ASSIGN_OR_RETURN(
      RewriteOutput rewritten,
      RewritePreferenceQuery(analyzed, base_columns, options_.but_only_mode,
                             aux_name));
  for (const auto& st : rewritten.setup) {
    PSQL_ASSIGN_OR_RETURN(ResultTable ignored, db_.ExecuteStatement(st));
    (void)ignored;
  }
  auto result = db_.ExecuteSelect(*rewritten.query);
  if (!options_.keep_aux_views) {
    for (const auto& st : rewritten.teardown) {
      auto drop = db_.ExecuteStatement(st);
      if (!drop.ok() && result.ok()) return drop.status();
    }
  }
  PSQL_RETURN_IF_ERROR(result.status());
  last_stats_.used_rewrite = true;
  last_stats_.result_count = result->num_rows();
  return result;
}

Result<ResultTable> Connection::ExecutePreferenceSelect(
    const SelectStmt& select) {
  if (options_.mode == EvaluationMode::kRewrite) {
    auto result = ExecuteViaRewrite(select);
    if (result.ok() || !result.status().IsNotImplemented()) return result;
    // Rewriter refused (e.g. non-weak-order EXPLICIT): fall back to BNL.
    last_stats_.rewrite_fallback = true;
  }
  DirectEvalOptions direct;
  direct.but_only_mode = options_.but_only_mode;
  direct.bmo.bnl_window = options_.bnl_window;
  switch (options_.mode) {
    case EvaluationMode::kNaiveNestedLoop:
      direct.bmo.algorithm = BmoAlgorithm::kNaiveNestedLoop;
      break;
    case EvaluationMode::kSortFilterSkyline:
      direct.bmo.algorithm = BmoAlgorithm::kSortFilterSkyline;
      break;
    case EvaluationMode::kRewrite:  // fallback
    case EvaluationMode::kBlockNestedLoop:
      direct.bmo.algorithm = BmoAlgorithm::kBlockNestedLoop;
      break;
  }
  PSQL_ASSIGN_OR_RETURN(auto analyzed, AnalyzePreferenceQuery(select));
  DirectEvalStats direct_stats;
  auto result =
      ExecutePreferenceQueryDirect(db_, analyzed, direct, &direct_stats);
  if (result.ok()) {
    last_stats_.result_count = result->num_rows();
    last_stats_.candidate_count = direct_stats.candidate_count;
    last_stats_.bmo_comparisons = direct_stats.bmo.comparisons;
  }
  return result;
}

Result<std::string> Connection::RewriteToSql(const std::string& sql) {
  PSQL_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != StatementKind::kSelect ||
      !stmt.select->IsPreferenceQuery()) {
    return Status::InvalidArgument(
        "RewriteToSql expects a query with a PREFERRING clause");
  }
  PSQL_ASSIGN_OR_RETURN(auto analyzed, AnalyzePreferenceQuery(*stmt.select));
  PSQL_ASSIGN_OR_RETURN(auto base_columns, ProbeBaseColumns(*stmt.select));
  std::string aux_name = "Aux";
  PSQL_ASSIGN_OR_RETURN(
      RewriteOutput rewritten,
      RewritePreferenceQuery(analyzed, base_columns, options_.but_only_mode,
                             aux_name));
  return rewritten.ToScript();
}

}  // namespace prefsql
