// Session: the per-client half of the shared-engine architecture.
//
// The paper's deployment (§3.1) puts one Preference SQL optimizer in front
// of one standard SQL database serving many clients. Mirroring that split,
// an Engine (core/engine.h) owns everything clients share — catalog,
// executor, plan cache, key cache — while a Session holds only what is
// private to one client: its knobs (ConnectionOptions, reachable from SQL
// via SET) and the statistics of its last preference query. Sessions are
// cheap; creating one per request is fine.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/bmo.h"
#include "core/quality.h"
#include "core/query_context.h"

namespace prefsql {

/// How preference queries are evaluated.
enum class EvaluationMode {
  /// Rewrite to standard SQL (Aux view + NOT EXISTS anti-join, §3.2) and run
  /// it on the engine — the commercial product's strategy. Falls back to
  /// kBlockNestedLoop when the preference is not rewritable.
  kRewrite,
  /// In-engine BNL skyline algorithm [BKS01].
  kBlockNestedLoop,
  /// In-engine naive nested loop (the §3.2 abstract selection method).
  kNaiveNestedLoop,
  /// In-engine sort-filter skyline.
  kSortFilterSkyline,
};

const char* EvaluationModeToString(EvaluationMode m);

/// Per-session behaviour switches. All of these are also reachable from
/// SQL via `SET <knob> = <value>` (e.g. `SET bmo_threads = 4`,
/// `SET preference_pushdown = off`, `SET evaluation_mode = sfs`).
struct ConnectionOptions {
  EvaluationMode mode = EvaluationMode::kRewrite;
  ButOnlyMode but_only_mode = ButOnlyMode::kPostFilter;
  /// Overrides the in-engine skyline algorithm the evaluation mode implies
  /// (`SET bmo_algorithm = naive|bnl|sfs|less`); nullopt = follow the mode.
  std::optional<BmoAlgorithm> bmo_algorithm;
  /// BNL window capacity (tuples); 0 = unbounded.
  size_t bnl_window = 0;
  /// Keep the generated Aux views after a rewritten query (debugging).
  bool keep_aux_views = false;
  /// Worker threads of the parallel partitioned BMO (direct path);
  /// 0/1 = serial.
  size_t bmo_threads = 0;
  /// Minimum candidate rows before BMO worker threads spin up.
  size_t parallel_min_rows = 4096;
  /// Algebraic preference pushdown below joins (direct path).
  bool preference_pushdown = true;
  /// Consult the engine's prepared-plan cache (skips lex/parse/analyze on
  /// repeated SELECT/EXPLAIN statements).
  bool plan_cache = true;
  /// Auto-parameterize constant literals of SELECT/EXPLAIN texts for
  /// plan-cache keying, so statements differing only in literal values
  /// share one prepared plan (values are re-injected at execute time).
  bool auto_parameterize = true;
  /// Consult the engine's preference-key cache (reuses packed KeyStores for
  /// repeated PREFERRING queries over unchanged tables; direct path).
  bool key_cache = true;
  /// Run the packed dominance kernels through the block SIMD/unrolled path
  /// (AVX2 where the build and CPU support it); off forces the scalar
  /// row-at-a-time loops.
  bool simd = true;
  /// Serve eligible repeated PREFERRING queries straight from the cached
  /// skyline position list, and publish skylines into the cache (direct
  /// path; requires key_cache on).
  bool skyline_cache = true;
  /// Opportunistically reclaim superseded row-version payloads after DML
  /// (runs only when no reader holds the statement lock or a pinned
  /// snapshot; off keeps every version around, e.g. for debugging).
  bool mvcc_gc = true;
  /// Run the engine's background MVCC reclaimer (a low-priority engine
  /// thread walking all tables with a pin-aware horizon, bounding
  /// dead-version residency when the opportunistic post-DML sweep rarely
  /// wins its try-lock). Engine-wide: any session switching it off pauses
  /// the thread.
  bool mvcc_gc_background = true;
  /// Per-statement deadline in milliseconds; statements that exceed it
  /// return kTimeout promptly (cooperative checks every few hundred rows /
  /// dominance tests). 0 = no deadline.
  uint64_t statement_timeout_ms = 0;
  /// Batch-at-a-time (vectorized) execution: drain operator trees ~1k rows
  /// per NextBatch pull, with interrupt polls, memory charges, and MVCC
  /// visibility sweeps amortized per batch. Off pins the row-at-a-time
  /// Volcano pulls (parity debugging, `SET vectorized_execution = off`).
  bool vectorized_execution = true;
  /// Per-statement memory budget in bytes for materializing buffers (packed
  /// key stores, sort/join/BMO staging). Exceeding it returns
  /// kResourceExhausted instead of OOM-ing. 0 = unlimited.
  uint64_t statement_memory_bytes = 0;
  /// Engine-wide memory budget in bytes shared by all sessions' statement
  /// buffers. Under pressure the engine sheds cold cache entries and runs a
  /// pin-aware GC sweep before refusing a query. 0 = unlimited.
  uint64_t engine_memory_bytes = 0;
};

/// Statistics of the last executed preference query (plus, for any cached
/// statement, the cache outcome). The direct-path counters are valid even
/// when the query failed partway (the BMO operators flush their stats on
/// Close).
struct PreferenceQueryStats {
  bool was_preference_query = false;
  bool used_rewrite = false;
  bool rewrite_fallback = false;  // rewriter refused; BNL used instead
  size_t candidate_count = 0;     // rows after WHERE (direct path only)
  size_t result_count = 0;
  size_t bmo_comparisons = 0;     // dominance tests (direct path only)
  size_t bmo_partitions = 0;      // GROUPING partitions (direct path)
  size_t bmo_threads_used = 1;    // parallel pool width (1 = serial)
  std::string bmo_algorithm;      // skyline algorithm run (direct path)
  std::string bmo_kernel;         // dominance kernel (packed vs generic)
  std::string bmo_simd;           // block-walk variant (scalar/unrolled4/avx2)
  uint64_t bmo_key_build_ns = 0;  // packed key construction time
  bool used_pushdown = false;     // BMO prefilter pushed below the join
  std::string pushdown_detail;    // placement / rejection reason
  size_t prefilter_candidate_count = 0;  // rows into the pushed prefilter
  size_t prefilter_result_count = 0;     // rows surviving the prefilter
  // Cache observability (tentpole satellites). The hit flags describe this
  // statement; the eviction counters are cumulative engine-wide totals
  // snapshotted after it.
  bool plan_cache_hit = false;     // preparation reused (parse/analyze skipped)
  bool auto_parameterized = false; // literals lifted into plan-cache key holes
  size_t bound_parameters = 0;     // values injected into this execution
  bool key_cache_eligible = false; // run was keyed against the key cache
  bool key_cache_hit = false;      // packed keys reused (key build skipped)
  std::string key_cache_detail;    // eligibility / rejection reason
  bool skyline_cache_hit = false;  // served from the cached skyline positions
  std::string skyline_cache_detail;  // serve eligibility / rejection reason
  uint64_t plan_cache_evictions = 0;
  uint64_t key_cache_evictions = 0;
  // Cumulative engine-wide incremental-maintenance totals (snapshotted like
  // the eviction counters above).
  uint64_t skyline_maintenance_events = 0;
  uint64_t skyline_invalidations = 0;
  // MVCC observability. `pinned_epoch` is the snapshot this statement
  // pinned (0 = the statement did not pin — DML, DDL, rewrite mode); the
  // version/GC counters are cumulative engine-wide totals snapshotted
  // after the statement, like the eviction counters above.
  uint64_t pinned_epoch = 0;
  uint64_t mvcc_versions_scanned = 0;  // row versions visibility-tested
  uint64_t mvcc_versions_skipped = 0;  // versions invisible at the snapshot
  uint64_t mvcc_gc_cleared = 0;        // version payloads reclaimed by GC
  // Batch (vectorized) execution observability.
  bool vectorized = false;          // statement ran in batch mode
  uint64_t batches = 0;             // batches drained at pipeline sinks
  uint64_t batch_rows = 0;          // rows carried by those batches
  std::string batch_fallback;       // operators served by the row-loop
                                    // fallback (comma-joined labels)
};

/// Copies the statement context's batch-execution counters into `stats`
/// (called where a statement's stats are finalized: cursor close, the
/// materialized execution paths).
inline void FlushBatchExecStats(const QueryContext* ctx,
                                PreferenceQueryStats& stats) {
  if (ctx == nullptr) return;
  stats.vectorized = ctx->vectorized();
  stats.batches = ctx->batch_stats().batches;
  stats.batch_rows = ctx->batch_stats().batch_rows;
  stats.batch_fallback.clear();
  for (const auto& label : ctx->batch_stats().fallback_ops) {
    if (!stats.batch_fallback.empty()) stats.batch_fallback += ",";
    stats.batch_fallback += label;
  }
}

/// Per-client state over a (possibly shared) Engine.
class Session {
 public:
  Session() = default;
  explicit Session(ConnectionOptions options) : options_(options) {}

  ConnectionOptions& options() { return options_; }
  const ConnectionOptions& options() const { return options_; }

  const PreferenceQueryStats& last_stats() const { return last_stats_; }
  /// Engine-internal: the stats sink of the statement being executed.
  PreferenceQueryStats& mutable_last_stats() { return last_stats_; }

  /// Engine-internal: starts a new statement — resets last_stats and
  /// advances the epoch. A streaming Cursor records the epoch at open and
  /// flushes its final stats on Close only when no later statement has
  /// begun, so closing an old cursor never clobbers a newer statement's
  /// stats.
  PreferenceQueryStats& ResetStatsForNewStatement() {
    ++stats_epoch_;
    last_stats_ = PreferenceQueryStats{};
    return last_stats_;
  }
  uint64_t stats_epoch() const { return stats_epoch_; }

  /// Requests cooperative cancellation of this session's in-flight
  /// statement (and, for a streaming cursor, its remaining pulls). Safe
  /// from any thread — this is the client-side kill switch (shell Ctrl-C,
  /// server-side admin). A no-op when nothing is executing; the returned
  /// bool says whether a statement was actually signalled.
  bool CancelCurrent() {
    std::lock_guard<std::mutex> g(current_mu_);
    if (current_ == nullptr) return false;
    current_->Cancel();
    return true;
  }

  /// Engine-internal: publishes/retires the context of the statement being
  /// executed so CancelCurrent can reach it cross-thread. The engine keeps
  /// the context installed for the lifetime of a streaming cursor.
  void SetCurrentContext(std::shared_ptr<QueryContext> ctx) {
    std::lock_guard<std::mutex> g(current_mu_);
    current_ = std::move(ctx);
  }
  /// Engine-internal: retires `ctx` only if it is still the installed
  /// context (a newer statement may have replaced it already).
  void ClearCurrentContext(const QueryContext* ctx) {
    std::lock_guard<std::mutex> g(current_mu_);
    if (current_.get() == ctx) current_.reset();
  }

 private:
  ConnectionOptions options_;
  PreferenceQueryStats last_stats_;
  uint64_t stats_epoch_ = 0;
  std::mutex current_mu_;
  std::shared_ptr<QueryContext> current_;
};

}  // namespace prefsql
