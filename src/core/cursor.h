// Cursor: row-at-a-time access to a statement result — the client-facing
// end of the pull-based operator pipeline (the paper's Preference ODBC/JDBC
// driver surface, §3.1).
//
//   auto cursor = conn.OpenCursor(
//       "SELECT * FROM car PREFERRING LOWEST(price)");
//   while (auto row = cursor->Next()) {          // Result<optional<RowRef>>
//     if (!(*row)) break;                        // end of stream
//     use((**row).row());
//   }
//   cursor->Close();                             // optional; ~Cursor closes
//
// Two shapes share the interface:
//   * streaming — direct-path preference queries and plain SELECTs hold the
//     open operator tree, the engine's shared DDL lock, and a pinned MVCC
//     snapshot, and pull rows on demand: skyline/top-k results reach the
//     client without a ResultTable materialization. Close() (or
//     end-of-stream, or an error) closes the operator tree — flushing the
//     BMO statistics into the session's last_stats even when the client
//     stopped early — and releases the snapshot pin and the lock promptly.
//   * materialized — rewrite-mode preference queries (their Aux views need
//     an exclusive critical section), EXPLAIN, and DML results are computed
//     eagerly and replayed row by row; no lock or pin is held.
//
// Snapshot stability: a streaming cursor's rows are exactly the versions
// visible at its open-time epoch. Concurrent DML appends new row versions
// without blocking on the cursor — and without changing what it streams;
// the pin keeps the version GC behind the snapshot. Only DDL still excludes
// open cursors: close a cursor before issuing CREATE/DROP from the same
// thread (the exclusive DDL lock would self-deadlock), and never let a
// cursor outlive its Connection/Engine. RowRefs returned by Next() are
// valid until the next Next()/Close() call.

#pragma once

#include <memory>
#include <optional>
#include <shared_mutex>

#include "core/plan_cache.h"
#include "core/preference_query.h"
#include "core/session.h"
#include "engine/operators/operator.h"
#include "storage/epoch.h"
#include "types/result_table.h"
#include "types/row_view.h"
#include "types/schema.h"
#include "util/status.h"

namespace prefsql {

class Engine;

/// Row-at-a-time result handle; movable, auto-closes on destruction.
class Cursor {
 public:
  /// A closed cursor; Next() on it reports kExecutionError.
  Cursor() = default;
  ~Cursor();

  Cursor(Cursor&&) noexcept = default;
  Cursor& operator=(Cursor&&) noexcept = default;
  Cursor(const Cursor&) = delete;
  Cursor& operator=(const Cursor&) = delete;

  /// Column metadata of the result; valid from construction, also after
  /// Close.
  const Schema& columns() const;

  /// Produces the next row, or nullopt at end of stream (which auto-closes
  /// the cursor, releasing the statement lock). The returned RowRef is
  /// valid until the next Next()/Close() call. After Close, reports
  /// kExecutionError.
  Result<std::optional<RowRef>> Next();

  /// Closes the cursor: shuts the operator tree down (flushing statistics
  /// into the session's last_stats — the counters are correct even when the
  /// client stopped pulling early) and releases the engine's statement
  /// lock. Idempotent.
  void Close();

  /// True until Close / end of stream / a streaming error.
  bool is_open() const;

  /// Rows produced so far.
  size_t rows_streamed() const;

 private:
  friend class Engine;
  friend Result<ResultTable> DrainCursor(Cursor& cursor);

  /// Everything one open statement needs to stay alive while the client
  /// pulls: the operator tree, the statement lock, and the shared artifacts
  /// the operators reference (ASTs, compiled preference, cached plan).
  struct Impl {
    // -- streaming (engaged when root != nullptr) --
    PreferencePlan pref_plan;    ///< owns root for preference queries
    OperatorPtr plain_root;      ///< owns root for plain SELECTs
    PhysicalOperator* root = nullptr;
    std::shared_lock<std::shared_mutex> lock;
    /// Snapshot pinned for the cursor's lifetime: Next() re-establishes it
    /// as the ambient read epoch per pull, so lazily materialized subplans
    /// see the open-time view too, and GC stays behind the pin.
    SnapshotPin pin;
    uint64_t snapshot = 0;
    /// The statement's resource-governance context (deadline, cancel flag,
    /// memory budgets), kept alive for the cursor's lifetime so
    /// Session::CancelCurrent reaches in-flight pulls. Next() re-establishes
    /// it as the ambient context per pull; Close() retires it from the
    /// session.
    std::shared_ptr<QueryContext> ctx;
    std::shared_ptr<const SelectStmt> select_keepalive;
    std::shared_ptr<const CachedPlan> plan_keepalive;
    std::shared_ptr<const CompiledPreference> pref_keepalive;
    std::shared_ptr<Engine> engine_keepalive;
    Engine* engine = nullptr;
    Session* session = nullptr;
    /// Stats template filled at open (cache outcomes, plan decisions);
    /// completed with the operator counters and flushed on Close — but only
    /// while `stats_epoch` still matches the session (a statement executed
    /// after this cursor opened owns last_stats now).
    PreferenceQueryStats stats;
    uint64_t stats_epoch = 0;
    /// Batch-at-a-time pull state (vectorized mode): Next() keeps the
    /// row-at-a-time client API by iterating the current operator batch;
    /// `batch_pos` indexes into `batch.sel`. Borrowed refs in the batch
    /// point into pinned storage, released with the tree on Close.
    RowBatch batch;
    size_t batch_pos = 0;

    // -- materialized --
    std::optional<ResultTable> table;
    size_t next_row = 0;

    Schema schema;
    size_t streamed = 0;
    bool open = true;
  };

  explicit Cursor(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

  std::unique_ptr<Impl> impl_;
};

/// Fully drains (and closes) `cursor` into a ResultTable. Execute() is this
/// over an OpenCursor.
Result<ResultTable> DrainCursor(Cursor& cursor);

}  // namespace prefsql
