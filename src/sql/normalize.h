// Statement-text normalization for plan-cache keying.
//
// The prepared-plan cache must map repetitions of a statement onto one key
// without parsing them first (the whole point is to skip the parse).
// NormalizeSql produces a canonical form that is stable under insignificant
// whitespace while never conflating statements that could display
// differently: identifier case affects result headers, so case is
// preserved everywhere (two case-variant spellings simply occupy two cache
// entries).

#pragma once

#include <string>
#include <string_view>

namespace prefsql {

/// Canonical form of one statement for cache keying: whitespace runs
/// collapse to a single space, `--` line comments are stripped (exactly as
/// the lexer does — otherwise collapsing the newline would glue the rest of
/// the line into the comment), leading/trailing whitespace and a trailing
/// semicolon are dropped. String literals and quoted identifiers are
/// preserved byte for byte, and so is case everywhere.
std::string NormalizeSql(std::string_view sql);

}  // namespace prefsql
