// Statement-text normalization for plan-cache keying.
//
// The prepared-plan cache must map repetitions of a statement onto one key
// without parsing them first (the whole point is to skip the parse).
// NormalizeSql produces a canonical form that is stable under insignificant
// whitespace while never conflating statements that could display
// differently: identifier case affects result headers, so case is
// preserved everywhere (two case-variant spellings simply occupy two cache
// entries).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "types/value.h"

namespace prefsql {

/// Canonical form of one statement for cache keying: whitespace runs
/// collapse to a single space, `--` line comments are stripped (exactly as
/// the lexer does — otherwise collapsing the newline would glue the rest of
/// the line into the comment), leading/trailing whitespace and a trailing
/// semicolon are dropped. String literals and quoted identifiers are
/// preserved byte for byte, and so is case everywhere.
std::string NormalizeSql(std::string_view sql);

/// Outcome of auto-parameterization (see ParameterizeSql).
struct ParameterizedSql {
  /// True iff at least one literal was lifted; `text` and `values` are only
  /// meaningful then.
  bool parameterized = false;
  /// Canonical statement text with each lifted literal replaced by `?`.
  std::string text;
  /// The lifted literal values, in placeholder order.
  std::vector<Value> values;
  /// One entry per `?` in `text`, in placeholder order: how many consecutive
  /// entries of `values` that placeholder consumes. Width 1 everywhere
  /// unless IN-list collapsing ran (then a collapsed `IN (?)` placeholder
  /// carries the original list's arity). sum(widths) == values.size().
  std::vector<uint32_t> widths;
};

/// Auto-parameterization for plan-cache keying: lifts the constant literals
/// of one SELECT/EXPLAIN statement into positional `?` placeholders so that
/// statements differing only in literal values share one prepared plan
/// (`... PREFERRING price AROUND 40` and `... AROUND 55` key identically;
/// the values are re-injected at execute time).
///
/// Literals are lifted only from value positions — WHERE / HAVING / join ON
/// / PREFERRING / BUT ONLY — never from the select list (literal select
/// items derive result headers), GROUP BY / ORDER BY, or LIMIT/OFFSET
/// (structural counts). A unary minus folds into the lifted value
/// (`AROUND -5` lifts -5), and `DATE '...'` literals are kept verbatim.
/// Statements that already contain explicit placeholders, contain no
/// liftable literal, or fail to lex return `parameterized == false`; use
/// NormalizeSql for those. Kept tokens are re-emitted byte-for-byte from
/// the source (case and quoting preserved, like NormalizeSql), so the
/// canonical text re-parses to the same AST with `?` holes.
///
/// With `collapse_in_lists` set, a run of fully lifted IN-list members —
/// `IN (?, ?, ?)` after lifting — additionally collapses to a single `IN
/// (?)` placeholder of width 3 (recorded in `widths`), so IN lists that
/// differ only in arity share one cache key; the executor re-expands the
/// placeholder from `widths` at bind time. Lists containing any unlifted
/// member (identifiers, DATE literals) are left alone. Only the
/// text-execution path should ask for collapsing: PREPARE keeps the 1:1
/// placeholder-to-value mapping its signature arithmetic assumes.
ParameterizedSql ParameterizeSql(const std::string& sql,
                                 bool collapse_in_lists = false);

}  // namespace prefsql
