#include "sql/parser.h"

#include "sql/lexer.h"
#include "types/date.h"
#include "util/string_util.h"

namespace prefsql {
namespace {

/// Token-stream parser. Instantiated per statement; all Parse* methods
/// return Results and leave the cursor on the first unconsumed token.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatementTop();
  Result<ExprPtr> ParseExprTop();
  Result<PrefTermPtr> ParsePreferenceTop();

  bool AtEnd() {
    SkipSemicolons();
    return Peek().type == TokenType::kEnd;
  }

 private:
  // -- Token helpers ------------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool CheckKeyword(const char* kw) const { return Peek().IsKeyword(kw); }
  bool Match(TokenType t) {
    if (Check(t)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchKeyword(const char* kw) {
    if (CheckKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(TokenType t, const char* what) {
    if (Match(t)) return Status::OK();
    return Error(std::string("expected ") + what);
  }
  Status ExpectKeyword(const char* kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Error(std::string("expected ") + kw);
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + ", found " + Peek().Describe() +
                              " at offset " + std::to_string(Peek().offset));
  }
  void SkipSemicolons() {
    while (Check(TokenType::kSemicolon)) Advance();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Check(TokenType::kIdentifier)) return Advance().text;
    return Error(std::string("expected ") + what);
  }

  // -- Statements ---------------------------------------------------------
  Result<Statement> ParseCreate();
  Result<Statement> ParseInsert();
  Result<Statement> ParseUpdate();
  Result<Statement> ParseDelete();
  Result<Statement> ParseDrop();
  Result<Statement> ParseSet();
  Result<std::shared_ptr<SelectStmt>> ParseSelect();
  Result<std::unique_ptr<TableRef>> ParseTableRef();
  Result<std::unique_ptr<TableRef>> ParseTableRefPrimary();

  // -- Expressions (precedence climbing) -----------------------------------
  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseCase();
  Result<std::vector<ExprPtr>> ParseExprList();

  // -- Preferences ---------------------------------------------------------
  Result<PrefTermPtr> ParsePrefPrioritized();
  Result<PrefTermPtr> ParsePrefPareto();
  Result<PrefTermPtr> ParsePrefIntersect();
  Result<PrefTermPtr> ParsePrefBase();
  Result<PrefTermPtr> ParsePrefAtom();
  Result<Value> ParsePrefLiteral();
  Result<std::vector<Value>> ParsePrefLiteralList();

  // -- Parameters ----------------------------------------------------------
  /// Registers a placeholder and returns its parameter value. Positional
  /// `?` placeholders get the next ordinal; `$name` placeholders share one
  /// ordinal per distinct name (first occurrence assigns it).
  Value MakeParam(std::string name) {
    if (!name.empty()) {
      for (size_t i = 0; i < param_names_.size(); ++i) {
        if (param_names_[i] == name) {
          return Value::Param(static_cast<int32_t>(i), std::move(name));
        }
      }
    }
    param_names_.push_back(name);
    return Value::Param(static_cast<int32_t>(param_names_.size() - 1),
                        std::move(name));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  /// Ordinal -> name ("" = positional) of the statement being parsed.
  std::vector<std::string> param_names_;
};

// ===========================================================================
// Statements
// ===========================================================================

Result<Statement> Parser::ParseStatementTop() {
  SkipSemicolons();
  param_names_.clear();  // parameter ordinals are per statement
  if (CheckKeyword("SELECT")) {
    PSQL_ASSIGN_OR_RETURN(auto sel, ParseSelect());
    Statement st;
    st.kind = StatementKind::kSelect;
    st.select = std::move(sel);
    return st;
  }
  if (CheckKeyword("CREATE")) return ParseCreate();
  if (CheckKeyword("INSERT")) return ParseInsert();
  if (CheckKeyword("UPDATE")) return ParseUpdate();
  if (CheckKeyword("DELETE")) return ParseDelete();
  if (CheckKeyword("DROP")) return ParseDrop();
  if (CheckKeyword("SET")) return ParseSet();
  if (MatchKeyword("EXPLAIN")) {
    Statement st;
    st.kind = StatementKind::kExplain;
    PSQL_ASSIGN_OR_RETURN(st.select, ParseSelect());
    return st;
  }
  return Error("expected a statement");
}

Result<Statement> Parser::ParseCreate() {
  PSQL_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  Statement st;
  if (MatchKeyword("TABLE")) {
    st.kind = StatementKind::kCreateTable;
    if (MatchKeyword("IF")) {
      PSQL_RETURN_IF_ERROR(ExpectKeyword("NOT"));
      PSQL_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      st.if_not_exists = true;
    }
    PSQL_ASSIGN_OR_RETURN(st.name, ExpectIdentifier("table name"));
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    do {
      ColumnDef def;
      PSQL_ASSIGN_OR_RETURN(def.name, ExpectIdentifier("column name"));
      std::string type_name;
      if (Check(TokenType::kIdentifier)) {
        type_name = Advance().text;
      } else if (CheckKeyword("DATE")) {
        Advance();
        type_name = "DATE";
      } else {
        return Error("expected column type");
      }
      auto ct = ParseColumnType(type_name);
      if (!ct) {
        return Status::ParseError("unknown column type: " + type_name);
      }
      def.type = *ct;
      // Accept and ignore a length suffix like VARCHAR(40).
      if (Match(TokenType::kLParen)) {
        if (!Check(TokenType::kInteger)) return Error("expected length");
        Advance();
        PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      }
      st.columns.push_back(std::move(def));
    } while (Match(TokenType::kComma));
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return st;
  }
  if (MatchKeyword("VIEW")) {
    st.kind = StatementKind::kCreateView;
    PSQL_ASSIGN_OR_RETURN(st.name, ExpectIdentifier("view name"));
    PSQL_RETURN_IF_ERROR(ExpectKeyword("AS"));
    PSQL_ASSIGN_OR_RETURN(st.select, ParseSelect());
    return st;
  }
  if (MatchKeyword("INDEX")) {
    st.kind = StatementKind::kCreateIndex;
    PSQL_ASSIGN_OR_RETURN(st.name, ExpectIdentifier("index name"));
    PSQL_RETURN_IF_ERROR(ExpectKeyword("ON"));
    PSQL_ASSIGN_OR_RETURN(st.on_table, ExpectIdentifier("table name"));
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    do {
      PSQL_ASSIGN_OR_RETURN(auto col, ExpectIdentifier("column name"));
      st.index_columns.push_back(std::move(col));
    } while (Match(TokenType::kComma));
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return st;
  }
  if (MatchKeyword("PREFERENCE")) {
    // Preference Definition Language: CREATE PREFERENCE <name> AS <pref>.
    st.kind = StatementKind::kCreatePreference;
    PSQL_ASSIGN_OR_RETURN(st.name, ExpectIdentifier("preference name"));
    PSQL_RETURN_IF_ERROR(ExpectKeyword("AS"));
    PSQL_ASSIGN_OR_RETURN(st.preference, ParsePrefPrioritized());
    return st;
  }
  return Error("expected TABLE, VIEW, INDEX or PREFERENCE after CREATE");
}

Result<Statement> Parser::ParseInsert() {
  PSQL_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  PSQL_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  Statement st;
  st.kind = StatementKind::kInsert;
  PSQL_ASSIGN_OR_RETURN(st.name, ExpectIdentifier("table name"));
  if (Check(TokenType::kLParen) &&
      Peek(1).type == TokenType::kIdentifier) {
    Advance();
    do {
      PSQL_ASSIGN_OR_RETURN(auto col, ExpectIdentifier("column name"));
      st.insert_columns.push_back(std::move(col));
    } while (Match(TokenType::kComma));
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
  }
  if (MatchKeyword("VALUES")) {
    do {
      PSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      PSQL_ASSIGN_OR_RETURN(auto row, ParseExprList());
      PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      st.insert_rows.push_back(std::move(row));
    } while (Match(TokenType::kComma));
    return st;
  }
  if (CheckKeyword("SELECT")) {
    PSQL_ASSIGN_OR_RETURN(st.select, ParseSelect());
    return st;
  }
  return Error("expected VALUES or SELECT in INSERT");
}

Result<Statement> Parser::ParseUpdate() {
  PSQL_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
  Statement st;
  st.kind = StatementKind::kUpdate;
  PSQL_ASSIGN_OR_RETURN(st.name, ExpectIdentifier("table name"));
  PSQL_RETURN_IF_ERROR(ExpectKeyword("SET"));
  do {
    PSQL_ASSIGN_OR_RETURN(auto col, ExpectIdentifier("column name"));
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
    PSQL_ASSIGN_OR_RETURN(auto value, ParseExpr());
    st.assignments.emplace_back(std::move(col), std::move(value));
  } while (Match(TokenType::kComma));
  if (MatchKeyword("WHERE")) {
    PSQL_ASSIGN_OR_RETURN(st.where, ParseExpr());
  }
  return st;
}

Result<Statement> Parser::ParseDelete() {
  PSQL_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  PSQL_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  Statement st;
  st.kind = StatementKind::kDelete;
  PSQL_ASSIGN_OR_RETURN(st.name, ExpectIdentifier("table name"));
  if (MatchKeyword("WHERE")) {
    PSQL_ASSIGN_OR_RETURN(st.where, ParseExpr());
  }
  return st;
}

Result<Statement> Parser::ParseDrop() {
  PSQL_RETURN_IF_ERROR(ExpectKeyword("DROP"));
  Statement st;
  st.kind = StatementKind::kDrop;
  if (MatchKeyword("TABLE")) {
    st.drop_kind = Statement::DropKind::kTable;
  } else if (MatchKeyword("VIEW")) {
    st.drop_kind = Statement::DropKind::kView;
  } else if (MatchKeyword("INDEX")) {
    st.drop_kind = Statement::DropKind::kIndex;
  } else if (MatchKeyword("PREFERENCE")) {
    st.drop_kind = Statement::DropKind::kPreference;
  } else {
    return Error("expected TABLE, VIEW, INDEX or PREFERENCE after DROP");
  }
  if (MatchKeyword("IF")) {
    PSQL_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
    st.if_exists = true;
  }
  PSQL_ASSIGN_OR_RETURN(st.name, ExpectIdentifier("object name"));
  return st;
}

Result<Statement> Parser::ParseSet() {
  // SET <knob> = <value>; the value may be a literal or a bare word
  // (on/off/sfs/...), which arrives as text.
  PSQL_RETURN_IF_ERROR(ExpectKeyword("SET"));
  Statement st;
  st.kind = StatementKind::kSet;
  PSQL_ASSIGN_OR_RETURN(st.name, ExpectIdentifier("setting name"));
  PSQL_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kInteger:
      st.set_value = Value::Int(tok.int_value);
      break;
    case TokenType::kFloat:
      st.set_value = Value::Double(tok.double_value);
      break;
    case TokenType::kString:
    case TokenType::kIdentifier:
      st.set_value = Value::Text(tok.text);
      break;
    case TokenType::kKeyword:
      if (tok.IsKeyword("TRUE")) {
        st.set_value = Value::Bool(true);
      } else if (tok.IsKeyword("FALSE")) {
        st.set_value = Value::Bool(false);
      } else if (tok.IsKeyword("DEFAULT")) {
        st.set_value = Value::Null();  // Null = reset to the default
      } else {
        // Reserved words used as bare values (e.g. `SET x = on`) arrive as
        // upper-cased keywords; the knob layer matches case-insensitively.
        st.set_value = Value::Text(tok.text);
      }
      break;
    default:
      return Error("expected a SET value");
  }
  Advance();
  return st;
}

Result<std::shared_ptr<SelectStmt>> Parser::ParseSelect() {
  PSQL_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  auto sel = std::make_shared<SelectStmt>();
  if (MatchKeyword("DISTINCT")) sel->distinct = true;
  // Select list.
  do {
    SelectItem item;
    if (Check(TokenType::kStar)) {
      Advance();
      item.expr = Expr::MakeStar();
    } else if (Check(TokenType::kIdentifier) &&
               Peek(1).type == TokenType::kDot &&
               Peek(2).type == TokenType::kStar) {
      std::string qual = Advance().text;
      Advance();  // '.'
      Advance();  // '*'
      item.expr = Expr::MakeStar(std::move(qual));
    } else {
      PSQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        PSQL_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
      } else if (Check(TokenType::kIdentifier)) {
        item.alias = Advance().text;
      }
    }
    sel->items.push_back(std::move(item));
  } while (Match(TokenType::kComma));

  if (MatchKeyword("FROM")) {
    do {
      PSQL_ASSIGN_OR_RETURN(auto tr, ParseTableRef());
      sel->from.push_back(std::move(tr));
    } while (Match(TokenType::kComma));
  }
  if (MatchKeyword("WHERE")) {
    PSQL_ASSIGN_OR_RETURN(sel->where, ParseExpr());
  }
  if (MatchKeyword("PREFERRING")) {
    PSQL_ASSIGN_OR_RETURN(sel->preferring, ParsePrefPrioritized());
    if (MatchKeyword("GROUPING")) {
      bool paren = Match(TokenType::kLParen);
      do {
        PSQL_ASSIGN_OR_RETURN(auto col, ExpectIdentifier("grouping column"));
        sel->grouping.push_back(std::move(col));
      } while (Match(TokenType::kComma));
      if (paren) PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    }
    if (MatchKeyword("BUT")) {
      PSQL_RETURN_IF_ERROR(ExpectKeyword("ONLY"));
      PSQL_ASSIGN_OR_RETURN(sel->but_only, ParseExpr());
    }
  }
  if (MatchKeyword("GROUP")) {
    PSQL_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      PSQL_ASSIGN_OR_RETURN(auto e, ParseExpr());
      sel->group_by.push_back(std::move(e));
    } while (Match(TokenType::kComma));
    if (MatchKeyword("HAVING")) {
      PSQL_ASSIGN_OR_RETURN(sel->having, ParseExpr());
    }
  }
  if (MatchKeyword("ORDER")) {
    PSQL_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      OrderItem item;
      PSQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.ascending = false;
      } else {
        MatchKeyword("ASC");
      }
      sel->order_by.push_back(std::move(item));
    } while (Match(TokenType::kComma));
  }
  if (MatchKeyword("LIMIT")) {
    if (Check(TokenType::kQuestion)) {
      Advance();
      sel->limit_param = MakeParam("");
    } else if (Check(TokenType::kNamedParam)) {
      sel->limit_param = MakeParam(Advance().text);
    } else if (Check(TokenType::kInteger)) {
      sel->limit = Advance().int_value;
    } else {
      return Error("expected LIMIT count");
    }
    if (MatchKeyword("OFFSET")) {
      if (!Check(TokenType::kInteger)) return Error("expected OFFSET count");
      sel->offset = Advance().int_value;
    }
  }
  return sel;
}

Result<std::unique_ptr<TableRef>> Parser::ParseTableRefPrimary() {
  auto tr = std::make_unique<TableRef>();
  if (Check(TokenType::kLParen)) {
    Advance();
    if (CheckKeyword("SELECT")) {
      tr->kind = TableRef::Kind::kSubquery;
      PSQL_ASSIGN_OR_RETURN(tr->subquery, ParseSelect());
      PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    } else {
      // Parenthesized join tree.
      PSQL_ASSIGN_OR_RETURN(tr, ParseTableRef());
      PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return tr;
    }
  } else {
    tr->kind = TableRef::Kind::kTable;
    PSQL_ASSIGN_OR_RETURN(tr->table_name, ExpectIdentifier("table name"));
  }
  if (MatchKeyword("AS")) {
    PSQL_ASSIGN_OR_RETURN(tr->alias, ExpectIdentifier("alias"));
  } else if (Check(TokenType::kIdentifier)) {
    tr->alias = Advance().text;
  }
  if (tr->kind == TableRef::Kind::kSubquery && tr->alias.empty()) {
    return Status::ParseError("derived table requires an alias");
  }
  return tr;
}

Result<std::unique_ptr<TableRef>> Parser::ParseTableRef() {
  PSQL_ASSIGN_OR_RETURN(auto left, ParseTableRefPrimary());
  for (;;) {
    TableRef::JoinType jt;
    if (MatchKeyword("CROSS")) {
      PSQL_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      jt = TableRef::JoinType::kCross;
    } else if (MatchKeyword("LEFT")) {
      MatchKeyword("OUTER");
      PSQL_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      jt = TableRef::JoinType::kLeft;
    } else if (MatchKeyword("INNER")) {
      PSQL_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      jt = TableRef::JoinType::kInner;
    } else if (MatchKeyword("JOIN")) {
      jt = TableRef::JoinType::kInner;
    } else {
      break;
    }
    PSQL_ASSIGN_OR_RETURN(auto right, ParseTableRefPrimary());
    auto join = std::make_unique<TableRef>();
    join->kind = TableRef::Kind::kJoin;
    join->join_type = jt;
    join->join_left = std::move(left);
    join->join_right = std::move(right);
    if (jt != TableRef::JoinType::kCross) {
      PSQL_RETURN_IF_ERROR(ExpectKeyword("ON"));
      PSQL_ASSIGN_OR_RETURN(join->join_on, ParseExpr());
    }
    left = std::move(join);
  }
  return left;
}

// ===========================================================================
// Expressions
// ===========================================================================

Result<ExprPtr> Parser::ParseExprTop() {
  PSQL_ASSIGN_OR_RETURN(auto e, ParseExpr());
  if (!AtEnd()) return Error("unexpected trailing input");
  return e;
}

Result<ExprPtr> Parser::ParseOr() {
  PSQL_ASSIGN_OR_RETURN(auto left, ParseAnd());
  while (MatchKeyword("OR")) {
    PSQL_ASSIGN_OR_RETURN(auto right, ParseAnd());
    left = Expr::MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  PSQL_ASSIGN_OR_RETURN(auto left, ParseNot());
  while (MatchKeyword("AND")) {
    PSQL_ASSIGN_OR_RETURN(auto right, ParseNot());
    left = Expr::MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (CheckKeyword("NOT") && !Peek(1).IsKeyword("EXISTS")) {
    Advance();
    PSQL_ASSIGN_OR_RETURN(auto operand, ParseNot());
    return Expr::MakeUnary(UnaryOp::kNot, std::move(operand));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  // [NOT] EXISTS (subquery) is prefix-shaped.
  if (CheckKeyword("EXISTS") ||
      (CheckKeyword("NOT") && Peek(1).IsKeyword("EXISTS"))) {
    bool negated = MatchKeyword("NOT");
    PSQL_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kExists;
    e->negated = negated;
    PSQL_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return e;
  }

  PSQL_ASSIGN_OR_RETURN(auto left, ParseAdditive());

  // Postfix predicates.
  for (;;) {
    bool negated = false;
    if (CheckKeyword("NOT") &&
        (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("BETWEEN") ||
         Peek(1).IsKeyword("LIKE"))) {
      Advance();
      negated = true;
    }
    if (MatchKeyword("IS")) {
      bool is_not = MatchKeyword("NOT");
      PSQL_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->negated = is_not;
      e->left = std::move(left);
      left = std::move(e);
      continue;
    }
    if (MatchKeyword("IN")) {
      PSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIn;
      e->negated = negated;
      e->left = std::move(left);
      if (CheckKeyword("SELECT")) {
        PSQL_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
      } else {
        PSQL_ASSIGN_OR_RETURN(e->in_list, ParseExprList());
      }
      PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      left = std::move(e);
      continue;
    }
    if (MatchKeyword("BETWEEN")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      e->left = std::move(left);
      PSQL_ASSIGN_OR_RETURN(e->lo, ParseAdditive());
      PSQL_RETURN_IF_ERROR(ExpectKeyword("AND"));
      PSQL_ASSIGN_OR_RETURN(e->hi, ParseAdditive());
      left = std::move(e);
      continue;
    }
    if (MatchKeyword("LIKE")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLike;
      e->negated = negated;
      e->left = std::move(left);
      PSQL_ASSIGN_OR_RETURN(e->right, ParseAdditive());
      left = std::move(e);
      continue;
    }
    if (negated) return Error("expected IN, BETWEEN or LIKE after NOT");
    break;
  }

  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq: op = BinaryOp::kEq; break;
    case TokenType::kNe: op = BinaryOp::kNe; break;
    case TokenType::kLt: op = BinaryOp::kLt; break;
    case TokenType::kLe: op = BinaryOp::kLe; break;
    case TokenType::kGt: op = BinaryOp::kGt; break;
    case TokenType::kGe: op = BinaryOp::kGe; break;
    default:
      return left;
  }
  Advance();
  PSQL_ASSIGN_OR_RETURN(auto right, ParseAdditive());
  return Expr::MakeBinary(op, std::move(left), std::move(right));
}

Result<ExprPtr> Parser::ParseAdditive() {
  PSQL_ASSIGN_OR_RETURN(auto left, ParseMultiplicative());
  for (;;) {
    BinaryOp op;
    if (Check(TokenType::kPlus)) {
      op = BinaryOp::kAdd;
    } else if (Check(TokenType::kMinus)) {
      op = BinaryOp::kSub;
    } else if (Check(TokenType::kConcat)) {
      op = BinaryOp::kConcat;
    } else {
      break;
    }
    Advance();
    PSQL_ASSIGN_OR_RETURN(auto right, ParseMultiplicative());
    left = Expr::MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  PSQL_ASSIGN_OR_RETURN(auto left, ParseUnary());
  for (;;) {
    BinaryOp op;
    if (Check(TokenType::kStar)) {
      op = BinaryOp::kMul;
    } else if (Check(TokenType::kSlash)) {
      op = BinaryOp::kDiv;
    } else if (Check(TokenType::kPercent)) {
      op = BinaryOp::kMod;
    } else {
      break;
    }
    Advance();
    PSQL_ASSIGN_OR_RETURN(auto right, ParseUnary());
    left = Expr::MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    PSQL_ASSIGN_OR_RETURN(auto operand, ParseUnary());
    if (operand->kind == ExprKind::kLiteral && operand->literal.is_numeric()) {
      // Fold -literal so preference targets stay plain literals.
      if (operand->literal.type() == ValueType::kInt) {
        return Expr::MakeLiteral(Value::Int(-operand->literal.AsInt()));
      }
      return Expr::MakeLiteral(Value::Double(-operand->literal.AsDouble()));
    }
    return Expr::MakeUnary(UnaryOp::kNegate, std::move(operand));
  }
  if (Match(TokenType::kPlus)) return ParseUnary();
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kInteger: {
      Advance();
      return Expr::MakeLiteral(Value::Int(tok.int_value));
    }
    case TokenType::kFloat: {
      Advance();
      return Expr::MakeLiteral(Value::Double(tok.double_value));
    }
    case TokenType::kString: {
      Advance();
      return Expr::MakeLiteral(Value::Text(tok.text));
    }
    case TokenType::kKeyword: {
      if (MatchKeyword("NULL")) return Expr::MakeLiteral(Value::Null());
      if (MatchKeyword("TRUE")) return Expr::MakeLiteral(Value::Bool(true));
      if (MatchKeyword("FALSE")) return Expr::MakeLiteral(Value::Bool(false));
      if (MatchKeyword("DATE")) {
        if (!Check(TokenType::kString)) return Error("expected date string");
        std::string text = Advance().text;
        auto days = ParseDate(text);
        if (!days) return Status::ParseError("invalid date literal: " + text);
        return Expr::MakeLiteral(Value::Date(*days));
      }
      if (CheckKeyword("CASE")) return ParseCase();
      if (CheckKeyword("CONTAINS") && Peek(1).type == TokenType::kLParen) {
        // CONTAINS doubles as the scalar function contains(text, needle)
        // (the rewriter emits it for the CONTAINS base preference).
        Advance();
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kFunction;
        e->function_name = "contains";
        PSQL_ASSIGN_OR_RETURN(e->args, ParseExprList());
        PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return e;
      }
      return Error("unexpected keyword in expression");
    }
    case TokenType::kQuestion: {
      Advance();
      return Expr::MakeLiteral(MakeParam(""));
    }
    case TokenType::kNamedParam: {
      Advance();
      return Expr::MakeLiteral(MakeParam(tok.text));
    }
    case TokenType::kLParen: {
      Advance();
      if (CheckKeyword("SELECT")) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kSubquery;
        PSQL_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
        PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return e;
      }
      PSQL_ASSIGN_OR_RETURN(auto e, ParseExpr());
      PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return e;
    }
    case TokenType::kIdentifier: {
      std::string name = Advance().text;
      if (Match(TokenType::kLParen)) {
        // Function call.
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kFunction;
        e->function_name = ToLower(name);
        if (Check(TokenType::kStar)) {
          // COUNT(*)
          Advance();
          e->args.push_back(Expr::MakeStar());
        } else if (!Check(TokenType::kRParen)) {
          if (MatchKeyword("DISTINCT")) e->distinct_arg = true;
          PSQL_ASSIGN_OR_RETURN(e->args, ParseExprList());
        }
        PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return e;
      }
      if (Match(TokenType::kDot)) {
        PSQL_ASSIGN_OR_RETURN(auto col, ExpectIdentifier("column name"));
        return Expr::MakeColumn(std::move(name), std::move(col));
      }
      return Expr::MakeColumn("", std::move(name));
    }
    default:
      return Error("expected an expression");
  }
}

Result<ExprPtr> Parser::ParseCase() {
  PSQL_RETURN_IF_ERROR(ExpectKeyword("CASE"));
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCase;
  if (!CheckKeyword("WHEN")) {
    // Simple CASE with an operand: CASE x WHEN v THEN r ...
    PSQL_ASSIGN_OR_RETURN(e->left, ParseExpr());
  }
  while (MatchKeyword("WHEN")) {
    CaseWhen cw;
    PSQL_ASSIGN_OR_RETURN(cw.when, ParseExpr());
    PSQL_RETURN_IF_ERROR(ExpectKeyword("THEN"));
    PSQL_ASSIGN_OR_RETURN(cw.then, ParseExpr());
    e->case_whens.push_back(std::move(cw));
  }
  if (e->case_whens.empty()) return Error("CASE requires at least one WHEN");
  if (MatchKeyword("ELSE")) {
    PSQL_ASSIGN_OR_RETURN(e->case_else, ParseExpr());
  }
  PSQL_RETURN_IF_ERROR(ExpectKeyword("END"));
  return e;
}

Result<std::vector<ExprPtr>> Parser::ParseExprList() {
  std::vector<ExprPtr> out;
  do {
    PSQL_ASSIGN_OR_RETURN(auto e, ParseExpr());
    out.push_back(std::move(e));
  } while (Match(TokenType::kComma));
  return out;
}

// ===========================================================================
// Preferences (PREFERRING clause)
// ===========================================================================
//
// Grammar (paper §2.2.2; CASCADE binds weakest, then AND = Pareto):
//   pref      := pareto ((CASCADE | ',') pareto)*
//   pareto    := base (AND base)*
//   base      := '(' pref ')' | LOWEST '(' expr ')' | HIGHEST '(' expr ')'
//              | atom [ELSE atom]
//   atom      := expr AROUND literal
//              | expr BETWEEN literal ',' literal
//              | expr [NOT] IN '(' literals ')'
//              | expr '=' literal | expr '<>' literal
//              | expr CONTAINS literal
//              | expr EXPLICIT '(' lit BETTER THAN lit {',' ...} ')'

Result<PrefTermPtr> Parser::ParsePreferenceTop() {
  PSQL_ASSIGN_OR_RETURN(auto p, ParsePrefPrioritized());
  if (!AtEnd()) return Error("unexpected trailing input after preference");
  return p;
}

Result<PrefTermPtr> Parser::ParsePrefPrioritized() {
  PSQL_ASSIGN_OR_RETURN(auto first, ParsePrefPareto());
  std::vector<PrefTermPtr> children;
  children.push_back(std::move(first));
  while (MatchKeyword("CASCADE") || Match(TokenType::kComma)) {
    PSQL_ASSIGN_OR_RETURN(auto next, ParsePrefPareto());
    children.push_back(std::move(next));
  }
  if (children.size() == 1) return std::move(children[0]);
  auto p = std::make_unique<PrefTerm>();
  p->kind = PrefKind::kPrioritized;
  p->children = std::move(children);
  return p;
}

Result<PrefTermPtr> Parser::ParsePrefPareto() {
  PSQL_ASSIGN_OR_RETURN(auto first, ParsePrefIntersect());
  std::vector<PrefTermPtr> children;
  children.push_back(std::move(first));
  while (MatchKeyword("AND")) {
    PSQL_ASSIGN_OR_RETURN(auto next, ParsePrefIntersect());
    children.push_back(std::move(next));
  }
  if (children.size() == 1) return std::move(children[0]);
  auto p = std::make_unique<PrefTerm>();
  p->kind = PrefKind::kPareto;
  p->children = std::move(children);
  return p;
}

Result<PrefTermPtr> Parser::ParsePrefIntersect() {
  // Preference algebra: INTERSECT binds tighter than Pareto's AND.
  PSQL_ASSIGN_OR_RETURN(auto first, ParsePrefBase());
  std::vector<PrefTermPtr> children;
  children.push_back(std::move(first));
  while (MatchKeyword("INTERSECT")) {
    PSQL_ASSIGN_OR_RETURN(auto next, ParsePrefBase());
    children.push_back(std::move(next));
  }
  if (children.size() == 1) return std::move(children[0]);
  auto p = std::make_unique<PrefTerm>();
  p->kind = PrefKind::kIntersect;
  p->children = std::move(children);
  return p;
}

Result<PrefTermPtr> Parser::ParsePrefBase() {
  if (MatchKeyword("DUAL")) {
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    PSQL_ASSIGN_OR_RETURN(auto inner, ParsePrefPrioritized());
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    auto p = std::make_unique<PrefTerm>();
    p->kind = PrefKind::kDual;
    p->children.push_back(std::move(inner));
    return p;
  }
  if (MatchKeyword("PREFERENCE")) {
    // Reference to a stored preference (PDL).
    auto p = std::make_unique<PrefTerm>();
    p->kind = PrefKind::kNamedRef;
    PSQL_ASSIGN_OR_RETURN(p->pref_name, ExpectIdentifier("preference name"));
    return p;
  }
  if (Check(TokenType::kLParen)) {
    Advance();
    PSQL_ASSIGN_OR_RETURN(auto p, ParsePrefPrioritized());
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return p;
  }
  if (MatchKeyword("LOWEST") || MatchKeyword("HIGHEST")) {
    bool lowest = tokens_[pos_ - 1].text == "LOWEST";
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    auto p = std::make_unique<PrefTerm>();
    p->kind = lowest ? PrefKind::kLowest : PrefKind::kHighest;
    PSQL_ASSIGN_OR_RETURN(p->attr, ParseAdditive());
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return p;
  }
  PSQL_ASSIGN_OR_RETURN(auto first, ParsePrefAtom());
  if (MatchKeyword("ELSE")) {
    PSQL_ASSIGN_OR_RETURN(auto second, ParsePrefAtom());
    if (!ExprStructurallyEqual(*first->attr, *second->attr)) {
      return Status::ParseError(
          "both sides of a preference ELSE must refer to the same attribute");
    }
    auto p = std::make_unique<PrefTerm>();
    p->attr = std::move(first->attr);
    if (first->kind == PrefKind::kPos && second->kind == PrefKind::kPos) {
      p->kind = PrefKind::kPosPos;
    } else if (first->kind == PrefKind::kPos &&
               second->kind == PrefKind::kNeg) {
      p->kind = PrefKind::kPosNeg;
    } else {
      return Status::ParseError(
          "ELSE combines POS ELSE POS or POS ELSE NEG preferences only");
    }
    p->values = std::move(first->values);
    p->values2 = std::move(second->values);
    return p;
  }
  return first;
}

Result<Value> Parser::ParsePrefLiteral() {
  bool negate = Match(TokenType::kMinus);
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kQuestion:
      if (negate) return Error("cannot negate a parameter");
      Advance();
      return MakeParam("");
    case TokenType::kNamedParam: {
      if (negate) return Error("cannot negate a parameter");
      std::string name = Advance().text;
      return MakeParam(std::move(name));
    }
    case TokenType::kInteger:
      Advance();
      return Value::Int(negate ? -tok.int_value : tok.int_value);
    case TokenType::kFloat:
      Advance();
      return Value::Double(negate ? -tok.double_value : tok.double_value);
    case TokenType::kString:
      if (negate) return Error("cannot negate a string literal");
      Advance();
      return Value::Text(tok.text);
    case TokenType::kKeyword:
      if (negate) return Error("cannot negate this literal");
      if (MatchKeyword("NULL")) return Value::Null();
      if (MatchKeyword("TRUE")) return Value::Bool(true);
      if (MatchKeyword("FALSE")) return Value::Bool(false);
      if (MatchKeyword("DATE")) {
        if (!Check(TokenType::kString)) return Error("expected date string");
        std::string text = Advance().text;
        auto days = ParseDate(text);
        if (!days) return Status::ParseError("invalid date literal: " + text);
        return Value::Date(*days);
      }
      return Error("expected a literal");
    default:
      return Error("expected a literal");
  }
}

Result<std::vector<Value>> Parser::ParsePrefLiteralList() {
  std::vector<Value> out;
  do {
    PSQL_ASSIGN_OR_RETURN(auto v, ParsePrefLiteral());
    out.push_back(std::move(v));
  } while (Match(TokenType::kComma));
  return out;
}

Result<PrefTermPtr> Parser::ParsePrefAtom() {
  auto p = std::make_unique<PrefTerm>();
  PSQL_ASSIGN_OR_RETURN(p->attr, ParseAdditive());

  if (MatchKeyword("AROUND")) {
    p->kind = PrefKind::kAround;
    PSQL_ASSIGN_OR_RETURN(p->target, ParsePrefLiteral());
    if (!p->target.is_param() && !p->target.is_numeric() &&
        !p->target.ToNumeric()) {
      return Status::ParseError(
          "AROUND requires a numeric or date target, got " +
          p->target.ToString());
    }
    return p;
  }
  if (MatchKeyword("BETWEEN")) {
    p->kind = PrefKind::kBetween;
    PSQL_ASSIGN_OR_RETURN(p->low, ParsePrefLiteral());
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kComma, "','"));
    PSQL_ASSIGN_OR_RETURN(p->high, ParsePrefLiteral());
    return p;
  }
  if (MatchKeyword("CONTAINS")) {
    p->kind = PrefKind::kContains;
    PSQL_ASSIGN_OR_RETURN(p->target, ParsePrefLiteral());
    if (!p->target.is_param() && p->target.type() != ValueType::kText) {
      return Status::ParseError("CONTAINS requires a string literal");
    }
    return p;
  }
  if (MatchKeyword("EXPLICIT")) {
    p->kind = PrefKind::kExplicit;
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    do {
      PSQL_ASSIGN_OR_RETURN(auto better, ParsePrefLiteral());
      PSQL_RETURN_IF_ERROR(ExpectKeyword("BETTER"));
      PSQL_RETURN_IF_ERROR(ExpectKeyword("THAN"));
      PSQL_ASSIGN_OR_RETURN(auto worse, ParsePrefLiteral());
      p->edges.emplace_back(std::move(better), std::move(worse));
    } while (Match(TokenType::kComma));
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return p;
  }
  bool negated = false;
  if (MatchKeyword("NOT")) {
    PSQL_RETURN_IF_ERROR(ExpectKeyword("IN"));
    negated = true;
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    PSQL_ASSIGN_OR_RETURN(p->values, ParsePrefLiteralList());
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    p->kind = PrefKind::kNeg;
    return p;
  }
  if (MatchKeyword("IN")) {
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    PSQL_ASSIGN_OR_RETURN(p->values, ParsePrefLiteralList());
    PSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    p->kind = PrefKind::kPos;
    return p;
  }
  if (Match(TokenType::kEq)) {
    PSQL_ASSIGN_OR_RETURN(auto v, ParsePrefLiteral());
    p->kind = PrefKind::kPos;
    p->values.push_back(std::move(v));
    return p;
  }
  if (Match(TokenType::kNe)) {
    PSQL_ASSIGN_OR_RETURN(auto v, ParsePrefLiteral());
    p->kind = PrefKind::kNeg;
    p->values.push_back(std::move(v));
    return p;
  }
  (void)negated;
  return Error(
      "expected a preference operator (AROUND, BETWEEN, IN, =, <>, CONTAINS, "
      "EXPLICIT)");
}

}  // namespace

Result<Statement> ParseStatement(const std::string& sql) {
  PSQL_ASSIGN_OR_RETURN(auto tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  PSQL_ASSIGN_OR_RETURN(auto st, parser.ParseStatementTop());
  if (!parser.AtEnd()) {
    return Status::ParseError("unexpected trailing input after statement");
  }
  return st;
}

Result<std::vector<Statement>> ParseScript(const std::string& sql) {
  PSQL_ASSIGN_OR_RETURN(auto tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  std::vector<Statement> out;
  while (!parser.AtEnd()) {
    PSQL_ASSIGN_OR_RETURN(auto st, parser.ParseStatementTop());
    out.push_back(std::move(st));
  }
  return out;
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  PSQL_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseExprTop();
}

Result<PrefTermPtr> ParsePreference(const std::string& text) {
  PSQL_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParsePreferenceTop();
}

}  // namespace prefsql
