// Hand-written lexer for the SQL / Preference SQL dialect.

#pragma once

#include <string>
#include <vector>

#include "sql/token.h"
#include "util/status.h"

namespace prefsql {

/// Tokenizes `input`. The result always ends with a kEnd token. Comments
/// (`-- ...` to end of line) and whitespace are skipped.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace prefsql
