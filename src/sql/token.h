// Token definitions for the SQL / Preference SQL lexer.

#pragma once

#include <cstdint>
#include <string>

namespace prefsql {

/// Lexical token categories. Keywords are folded into kKeyword with the
/// upper-cased text in Token::text; Preference-SQL-specific words (AROUND,
/// CASCADE, LOWEST, ...) are ordinary keywords of the extended dialect.
enum class TokenType {
  kEnd,
  kIdentifier,   ///< bare or "quoted" identifier
  kKeyword,      ///< reserved word, upper-cased in text
  kString,       ///< 'single quoted', unescaped content in text
  kInteger,      ///< integer literal, value in int_value
  kFloat,        ///< floating literal, value in double_value
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kStar,         ///< '*' (multiplication or SELECT *)
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,           ///< '='
  kNe,           ///< '<>' or '!='
  kLt,
  kLe,
  kGt,
  kGe,
  kConcat,       ///< '||'
  kQuestion,     ///< '?' positional statement parameter
  kNamedParam,   ///< '$name' named statement parameter (name in text)
};

/// One lexed token with its source offset (for error messages) and length
/// (so normalization can re-emit a token byte-for-byte from the input).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;       // identifier/keyword/string content
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;      // byte offset in the input
  size_t length = 0;      // byte length of the source spelling

  bool IsKeyword(const char* kw) const;
  std::string Describe() const;
};

/// True iff `word` (upper-cased) is a reserved word of the dialect.
bool IsReservedWord(const std::string& upper);

}  // namespace prefsql
