#include "sql/normalize.h"

#include <cctype>

#include "sql/lexer.h"
#include "util/string_util.h"

namespace prefsql {

std::string NormalizeSql(std::string_view sql) {
  std::string out;
  out.reserve(sql.size());
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    // Quoted regions are preserved byte for byte — whitespace inside a
    // string literal or a quoted identifier is significant. A doubled
    // closing quote ('' / "") re-toggles immediately, which preserves it.
    if (c == '\'' || c == '"') {
      if (pending_space && !out.empty()) out += ' ';
      pending_space = false;
      const char quote = c;
      out += c;
      for (++i; i < sql.size(); ++i) {
        out += sql[i];
        if (sql[i] == quote) break;
      }
      continue;
    }
    // `--` line comments are stripped (the lexer does the same), so a
    // comment can never glue the rest of its line into the statement when
    // the newline collapses.
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;
      pending_space = !out.empty();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

namespace {

/// Whether literals at the current position are value positions (liftable)
/// or structural/display positions (kept verbatim).
enum class Clause { kKeep, kLift };

bool IsValueToken(TokenType t) {
  return t == TokenType::kIdentifier || t == TokenType::kInteger ||
         t == TokenType::kFloat || t == TokenType::kString ||
         t == TokenType::kRParen || t == TokenType::kQuestion ||
         t == TokenType::kNamedParam;
}

/// Keywords that switch into a value clause. LIMIT counts are liftable too
/// (`LIMIT 10` and `LIMIT 20` share one prepared plan; binding re-checks
/// the count), unlike OFFSET which stays structural.
bool OpensLiftClause(const Token& t) {
  return t.IsKeyword("WHERE") || t.IsKeyword("HAVING") || t.IsKeyword("ON") ||
         t.IsKeyword("PREFERRING") || t.IsKeyword("ONLY") ||  // BUT ONLY
         t.IsKeyword("LIMIT");
}

/// Keywords that switch back to a keep clause (select list, FROM,
/// GROUP/ORDER BY, OFFSET, GROUPING attribute lists).
bool OpensKeepClause(const Token& t) {
  return t.IsKeyword("SELECT") || t.IsKeyword("FROM") ||
         t.IsKeyword("GROUP") || t.IsKeyword("ORDER") ||
         t.IsKeyword("OFFSET") || t.IsKeyword("GROUPING");
}

}  // namespace

ParameterizedSql ParameterizeSql(const std::string& sql,
                                 bool collapse_in_lists) {
  ParameterizedSql out;
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return out;  // let the parser report the error

  // One output piece per kept token (its source slice) or "?" placeholder.
  struct Piece {
    TokenType type;
    std::string text;
    uint32_t width = 1;
  };
  std::vector<Piece> pieces;
  std::vector<Value> values;
  Clause clause = Clause::kKeep;
  std::vector<Clause> paren_stack;

  for (const Token& tok : *tokens) {
    if (tok.type == TokenType::kEnd) break;
    // Explicitly parameterized statements are already canonical holes; the
    // two placeholder spaces must not mix.
    if (tok.type == TokenType::kQuestion ||
        tok.type == TokenType::kNamedParam) {
      return ParameterizedSql{};
    }
    if (tok.type == TokenType::kKeyword) {
      if (OpensLiftClause(tok)) {
        clause = Clause::kLift;
      } else if (OpensKeepClause(tok)) {
        clause = Clause::kKeep;
      }
    } else if (tok.type == TokenType::kLParen) {
      paren_stack.push_back(clause);
    } else if (tok.type == TokenType::kRParen) {
      if (!paren_stack.empty()) {
        clause = paren_stack.back();
        paren_stack.pop_back();
      }
    }

    const bool literal = tok.type == TokenType::kInteger ||
                         tok.type == TokenType::kFloat ||
                         tok.type == TokenType::kString;
    const bool after_date_keyword =
        !pieces.empty() && pieces.back().type == TokenType::kKeyword &&
        EqualsIgnoreCase(pieces.back().text, "DATE");
    if (clause == Clause::kLift && literal &&
        !(tok.type == TokenType::kString && after_date_keyword)) {
      Value v;
      switch (tok.type) {
        case TokenType::kInteger:
          v = Value::Int(tok.int_value);
          break;
        case TokenType::kFloat:
          v = Value::Double(tok.double_value);
          break;
        default:
          v = Value::Text(tok.text);
          break;
      }
      // Fold a leading unary minus into the lifted value (`AROUND -5`,
      // `x = -5`): the minus is unary when what precedes it is not a value.
      if (tok.type != TokenType::kString && pieces.size() >= 1 &&
          pieces.back().type == TokenType::kMinus) {
        const bool unary =
            pieces.size() < 2 || !IsValueToken(pieces[pieces.size() - 2].type);
        if (unary) {
          pieces.pop_back();
          v = tok.type == TokenType::kInteger ? Value::Int(-tok.int_value)
                                              : Value::Double(-tok.double_value);
        }
      }
      values.push_back(std::move(v));
      pieces.push_back({TokenType::kQuestion, "?"});
      continue;
    }
    pieces.push_back({tok.type, sql.substr(tok.offset, tok.length)});
  }
  if (values.empty()) return ParameterizedSql{};

  // Arity normalization: a fully lifted IN list — `IN (?, ?, ?)` — becomes
  // one width-3 placeholder, `IN (?)`, so every arity keys identically.
  // Any unlifted member (an identifier, a DATE literal, a subquery) breaks
  // the pattern and the list is left as rendered.
  if (collapse_in_lists) {
    std::vector<Piece> collapsed;
    collapsed.reserve(pieces.size());
    for (size_t i = 0; i < pieces.size();) {
      const bool in_kw = pieces[i].type == TokenType::kKeyword &&
                         EqualsIgnoreCase(pieces[i].text, "IN");
      if (in_kw && i + 2 < pieces.size() &&
          pieces[i + 1].type == TokenType::kLParen &&
          pieces[i + 2].type == TokenType::kQuestion) {
        // Try to match `( ? (, ?)* )` starting at the LParen.
        size_t j = i + 3;
        uint32_t members = 1;
        while (j + 1 < pieces.size() &&
               pieces[j].type == TokenType::kComma &&
               pieces[j + 1].type == TokenType::kQuestion) {
          ++members;
          j += 2;
        }
        if (j < pieces.size() && pieces[j].type == TokenType::kRParen) {
          collapsed.push_back(pieces[i]);
          collapsed.push_back(pieces[i + 1]);
          collapsed.push_back({TokenType::kQuestion, "?", members});
          collapsed.push_back(pieces[j]);
          i = j + 1;
          continue;
        }
      }
      collapsed.push_back(pieces[i]);
      ++i;
    }
    pieces = std::move(collapsed);
  }

  // Drop trailing semicolons, then render with canonical spacing.
  while (!pieces.empty() && pieces.back().type == TokenType::kSemicolon) {
    pieces.pop_back();
  }
  std::string text;
  std::vector<uint32_t> widths;
  TokenType prev = TokenType::kEnd;
  for (const Piece& piece : pieces) {
    if (piece.type == TokenType::kQuestion) widths.push_back(piece.width);
    const bool no_space_before = piece.type == TokenType::kComma ||
                                 piece.type == TokenType::kRParen ||
                                 piece.type == TokenType::kDot ||
                                 piece.type == TokenType::kSemicolon;
    const bool no_space_after =
        prev == TokenType::kLParen || prev == TokenType::kDot;
    if (!text.empty() && !no_space_before && !no_space_after) text += ' ';
    text += piece.text;
    prev = piece.type;
  }
  out.parameterized = true;
  out.text = std::move(text);
  out.values = std::move(values);
  out.widths = std::move(widths);
  return out;
}

}  // namespace prefsql
