#include "sql/normalize.h"

#include <cctype>

namespace prefsql {

std::string NormalizeSql(std::string_view sql) {
  std::string out;
  out.reserve(sql.size());
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    // Quoted regions are preserved byte for byte — whitespace inside a
    // string literal or a quoted identifier is significant. A doubled
    // closing quote ('' / "") re-toggles immediately, which preserves it.
    if (c == '\'' || c == '"') {
      if (pending_space && !out.empty()) out += ' ';
      pending_space = false;
      const char quote = c;
      out += c;
      for (++i; i < sql.size(); ++i) {
        out += sql[i];
        if (sql[i] == quote) break;
      }
      continue;
    }
    // `--` line comments are stripped (the lexer does the same), so a
    // comment can never glue the rest of its line into the statement when
    // the newline collapses.
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;
      pending_space = !out.empty();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

}  // namespace prefsql
