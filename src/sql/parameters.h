// Statement parameters: collection and binding of `?` / `$name`
// placeholders.
//
// Placeholders parse into Value::Param slots inside expressions (WHERE,
// select list, join conditions, INSERT values, ...) and inside the literal
// slots of PREFERRING terms (AROUND targets, BETWEEN bounds, IN sets,
// EXPLICIT edges). Ordinals are assigned by the parser per statement:
// each `?` takes the next ordinal, each distinct `$name` takes one ordinal
// shared by all its occurrences.
//
// CollectParameters walks a parsed statement and recovers the signature
// (arity, names, and per-slot type constraints implied by the grammar
// position, e.g. an AROUND target must be numeric). BindParameters produces
// the executable form: every parameter slot replaced by the bound value.
// Binding never mutates shared subtrees — shared subqueries that contain
// parameters are cloned before substitution, so a cached plan's AST is
// never written through.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "types/value.h"
#include "util/status.h"

namespace prefsql {

/// Type constraint a parameter slot imposes on bound values, derived from
/// its grammar position.
enum class ParamConstraint {
  kAny,      ///< ordinary expression / preference set position
  kNumeric,  ///< AROUND target: numeric, date, or text parsing as a date
  kText,     ///< CONTAINS needle: text
};

/// Signature of a statement's parameters, index-ordered.
struct ParameterSignature {
  std::vector<std::string> names;             ///< "" = positional
  std::vector<ParamConstraint> constraints;   ///< parallel to names

  size_t count() const { return names.size(); }
};

/// Recovers the parameter signature of a parsed statement / query block.
/// Ordinals are read from the Value::Param slots, so the walk order does
/// not matter; holes left by hand-built ASTs surface as unnamed slots.
ParameterSignature CollectParameters(const SelectStmt& select);
ParameterSignature CollectParameters(const Statement& stmt);

/// True iff the preference term tree contains a parameter slot (such a
/// PREFERRING clause cannot be compiled until the values are bound).
bool PrefTermHasParameters(const PrefTerm& term);

/// Cheap early-exit presence tests (no signature allocation): used on the
/// per-statement hot path to reject pre-parsed statements with holes.
bool SelectHasParameters(const SelectStmt& select);
bool StatementHasParameters(const Statement& stmt);

/// Checks `value` against `constraint`; returns a kBindError naming
/// parameter `index` otherwise. `parse_errors` reports violations as parse
/// errors instead — used when re-injecting auto-parameterized literals,
/// where the value came from the statement text itself.
Status CheckParamConstraint(const Value& value, ParamConstraint constraint,
                            size_t index, bool parse_errors);

/// Replaces every parameter slot in `select` by its bound value (in place;
/// shared subqueries containing parameters are cloned first). `values` must
/// cover every ordinal that occurs. `parse_errors` selects the error
/// category for constraint violations (see CheckParamConstraint).
Status BindSelectParameters(SelectStmt& select,
                            const std::vector<Value>& values,
                            bool parse_errors = false);

/// Statement-level BindSelectParameters (prepared DML: INSERT values,
/// UPDATE assignments and WHERE, the SELECT of INSERT ... SELECT, ...).
Status BindStatementParameters(Statement& stmt,
                               const std::vector<Value>& values,
                               bool parse_errors = false);

/// Re-expands IN-list-collapsed placeholders (see ParameterizeSql's
/// `collapse_in_lists`) on a private clone of a cached plan, in place.
/// `widths[i]` says how many consecutive flat values placeholder `i`
/// consumes; a width-m slot inside an IN list (Expr::in_list) or a
/// preference value set (PrefTerm::values / values2) is replaced by m
/// parameter slots with consecutive flat ordinals, and every other slot is
/// renumbered from its placeholder ordinal to its flat base ordinal. After
/// this pass BindSelectParameters consumes the flat value vector 1:1 as
/// usual. A width > 1 slot in a scalar position is a bind error (collapse
/// only ever produces wide slots inside lists). Identity widths (all 1)
/// make this a pure renumbering no-op — callers should skip it then.
Status ExpandWideParameters(SelectStmt& select,
                            const std::vector<uint32_t>& widths);

}  // namespace prefsql
