// Abstract syntax tree for the SQL / Preference SQL dialect.
//
// Expressions and preference terms are tagged structs (one node type with a
// kind enum) rather than a class hierarchy: the rewriter synthesizes and
// restructures nodes heavily, and uniform nodes keep Clone/print/walk simple.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "types/value.h"

namespace prefsql {

struct Expr;
struct SelectStmt;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node kinds.
enum class ExprKind {
  kLiteral,    ///< constant Value
  kColumnRef,  ///< [qualifier.]name
  kStar,       ///< '*' or 'alias.*' (select list / COUNT(*))
  kUnary,      ///< -x, NOT x
  kBinary,     ///< arithmetic / comparison / AND / OR / ||
  kIn,         ///< x [NOT] IN (list) or x [NOT] IN (subquery)
  kBetween,    ///< x [NOT] BETWEEN lo AND hi
  kLike,       ///< x [NOT] LIKE pattern
  kIsNull,     ///< x IS [NOT] NULL
  kCase,       ///< CASE [operand] WHEN .. THEN .. [ELSE ..] END
  kFunction,   ///< name(args) — scalar, aggregate, or quality function
  kExists,     ///< [NOT] EXISTS (subquery)
  kSubquery,   ///< scalar subquery
};

enum class UnaryOp { kNegate, kNot };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr, kConcat,
};

/// SQL text of a binary operator ("=", "AND", ...).
const char* BinaryOpToString(BinaryOp op);

/// One CASE branch.
struct CaseWhen {
  ExprPtr when;
  ExprPtr then;
};

/// Uniform expression node; the populated fields depend on `kind`.
struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef / kStar (qualifier may be empty)
  std::string qualifier;
  std::string column;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNegate;
  BinaryOp binary_op = BinaryOp::kAdd;
  ExprPtr left;   // also: operand of kUnary/kIn/kBetween/kLike/kIsNull/kCase
  ExprPtr right;  // binary rhs; kLike pattern; kBetween low bound in lo/hi

  // kIn
  std::vector<ExprPtr> in_list;
  bool negated = false;  // kIn / kBetween / kLike / kIsNull / kExists

  // kBetween
  ExprPtr lo;
  ExprPtr hi;

  // kCase
  std::vector<CaseWhen> case_whens;
  ExprPtr case_else;

  // kFunction
  std::string function_name;  // lower-cased
  std::vector<ExprPtr> args;
  bool distinct_arg = false;  // COUNT(DISTINCT x)

  // kExists / kSubquery / kIn-with-subquery
  std::shared_ptr<SelectStmt> subquery;  // shared: Clone() shares the subtree

  /// Deep copy (subqueries are shared, not copied).
  ExprPtr Clone() const;

  // -- Construction helpers ---------------------------------------------
  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeColumn(std::string qualifier, std::string name);
  static ExprPtr MakeStar(std::string qualifier = "");
  static ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
  static ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r);
  static ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args);
  /// Left-deep AND of all conjuncts (nullptr when empty).
  static ExprPtr MakeConjunction(std::vector<ExprPtr> conjuncts);
};

/// Structural equality of two expressions (literals by identity, subqueries
/// by pointer). Used to validate that both sides of a preference ELSE refer
/// to the same attribute expression.
bool ExprStructurallyEqual(const Expr& a, const Expr& b);

// ---------------------------------------------------------------------------
// Preference terms (the PREFERRING clause, paper §2.2).
// ---------------------------------------------------------------------------

struct PrefTerm;
using PrefTermPtr = std::unique_ptr<PrefTerm>;

/// Preference node kinds. Base preferences are leaves; kPareto ("AND") and
/// kPrioritized ("CASCADE") are the constructors of §2.2.2.
enum class PrefKind {
  kAround,      ///< expr AROUND v
  kBetween,     ///< expr BETWEEN lo, hi
  kLowest,      ///< LOWEST(expr)
  kHighest,     ///< HIGHEST(expr)
  kPos,         ///< expr IN (v1, ..) or expr = v
  kNeg,         ///< expr NOT IN (v1, ..) or expr <> v
  kPosPos,      ///< POS set1 ELSE POS set2
  kPosNeg,      ///< POS set ELSE NEG set
  kExplicit,    ///< expr EXPLICIT ('a' BETTER THAN 'b', ...)
  kContains,    ///< expr CONTAINS 'text'
  kPareto,      ///< P1 AND P2 (equal importance)
  kPrioritized, ///< P1 CASCADE P2 (ordered importance)
  kIntersect,   ///< P1 INTERSECT P2 (better iff better in every Pi; algebra)
  kDual,        ///< DUAL(P): the inverse order (preference algebra, §5)
  kNamedRef,    ///< PREFERENCE <name> — a stored preference (PDL)
};

/// Uniform preference node; populated fields depend on `kind`.
struct PrefTerm {
  PrefKind kind;

  /// Attribute expression the base preference applies to (leaves only).
  /// Arbitrary expressions are allowed per §2.2.1 ("instead of a single
  /// attribute an arithmetic expression ... [is] admissible, too").
  ExprPtr attr;

  /// kAround: target; kContains: needle.
  Value target;

  /// kBetween bounds.
  Value low, high;

  /// kPos/kNeg value set; kPosPos/kPosNeg first set.
  std::vector<Value> values;
  /// kPosPos second set; kPosNeg negative set.
  std::vector<Value> values2;

  /// kExplicit better-than edges (better, worse).
  std::vector<std::pair<Value, Value>> edges;

  /// kPareto / kPrioritized children, in syntactic order.
  std::vector<PrefTermPtr> children;

  /// kNamedRef: name of the stored preference.
  std::string pref_name;

  /// Deep copy.
  PrefTermPtr Clone() const;

  bool IsBase() const {
    return kind != PrefKind::kPareto && kind != PrefKind::kPrioritized &&
           kind != PrefKind::kIntersect && kind != PrefKind::kDual;
  }
};

// ---------------------------------------------------------------------------
// Statements.
// ---------------------------------------------------------------------------

/// FROM-clause item.
struct TableRef {
  enum class Kind { kTable, kSubquery, kJoin } kind = Kind::kTable;

  // kTable
  std::string table_name;
  // kTable / kSubquery visible alias ("" = table name).
  std::string alias;
  // kSubquery
  std::shared_ptr<SelectStmt> subquery;

  // kJoin
  enum class JoinType { kInner, kLeft, kCross } join_type = JoinType::kInner;
  std::unique_ptr<TableRef> join_left;
  std::unique_ptr<TableRef> join_right;
  ExprPtr join_on;  // nullptr for CROSS JOIN

  std::unique_ptr<TableRef> Clone() const;
};

/// SELECT-list entry.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // "" = derived name
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// A (Preference) SQL query block, §2.2.5:
///   SELECT ... FROM ... [WHERE ...] [PREFERRING ... [GROUPING ...]
///   [BUT ONLY ...]] [GROUP BY ... [HAVING ...]] [ORDER BY ...] [LIMIT ...]
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<std::unique_ptr<TableRef>> from;
  ExprPtr where;

  // Preference SQL extensions; preferring == nullptr means a plain query.
  PrefTermPtr preferring;
  std::vector<std::string> grouping;  // GROUPING attribute names
  ExprPtr but_only;

  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;
  /// Parameter hole for the LIMIT count (`LIMIT ?` / `LIMIT $k`), engaged
  /// when is_param(); binding fills `limit`. Null otherwise.
  Value limit_param;

  std::shared_ptr<SelectStmt> Clone() const;

  /// True iff the block uses any Preference SQL construct.
  bool IsPreferenceQuery() const { return preferring != nullptr; }
};

struct ColumnDef {
  std::string name;
  ColumnType type;
};

enum class StatementKind {
  kSelect,
  kCreateTable,
  kCreateView,
  kCreateIndex,
  kCreatePreference,  ///< CREATE PREFERENCE <name> AS <pref> (PDL, §2.2)
  kInsert,
  kUpdate,
  kDelete,
  kDrop,
  kExplain,           ///< EXPLAIN <select>: show the optimizer's translation
  kSet,               ///< SET <knob> = <value>: connection-level tuning
};

/// Top-level statement (uniform node, like Expr).
struct Statement {
  StatementKind kind;

  // kSelect
  std::shared_ptr<SelectStmt> select;

  // kCreateTable
  std::string name;  // table/view/index name; also target of INSERT etc.
  std::vector<ColumnDef> columns;
  bool if_not_exists = false;
  bool if_exists = false;

  // kCreateView: `select` holds the definition.

  // kCreateIndex
  std::string on_table;
  std::vector<std::string> index_columns;

  // kInsert
  std::vector<std::string> insert_columns;          // empty = all
  std::vector<std::vector<ExprPtr>> insert_rows;    // VALUES rows
  // or INSERT ... SELECT: `select`.

  // kUpdate
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // kUpdate / kDelete

  // kCreatePreference
  PrefTermPtr preference;

  // kSet: `name` holds the knob; bare words (on, sfs, ...) arrive as text.
  Value set_value;

  // kDrop
  enum class DropKind { kTable, kView, kIndex, kPreference } drop_kind =
      DropKind::kTable;

  /// Deep copy (the SELECT block and subqueries are shared, like
  /// Expr::Clone). Used to re-instantiate prepared statements with bound
  /// parameter values without re-parsing.
  Statement Clone() const;
};

}  // namespace prefsql
