#include "sql/printer.h"

#include <cctype>

#include "sql/token.h"
#include "util/string_util.h"

namespace prefsql {
namespace {

std::string TableRefToSql(const TableRef& tr) {
  switch (tr.kind) {
    case TableRef::Kind::kTable: {
      std::string out = tr.table_name;
      if (!tr.alias.empty() && !EqualsIgnoreCase(tr.alias, tr.table_name)) {
        out += " " + tr.alias;
      }
      return out;
    }
    case TableRef::Kind::kSubquery:
      return "(" + SelectToSql(*tr.subquery) + ") " + tr.alias;
    case TableRef::Kind::kJoin: {
      std::string out = TableRefToSql(*tr.join_left);
      switch (tr.join_type) {
        case TableRef::JoinType::kInner:
          out += " JOIN ";
          break;
        case TableRef::JoinType::kLeft:
          out += " LEFT JOIN ";
          break;
        case TableRef::JoinType::kCross:
          out += " CROSS JOIN ";
          break;
      }
      out += TableRefToSql(*tr.join_right);
      if (tr.join_on) out += " ON " + ExprToSql(*tr.join_on);
      return out;
    }
  }
  return "?";
}

std::string ValueListToSql(const std::vector<Value>& values) {
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (const auto& v : values) parts.push_back(v.ToSqlLiteral());
  return Join(parts, ", ");
}

// Quotes an alias that is not a plain identifier (e.g. "LEVEL(color)").
std::string AliasToSql(const std::string& alias) {
  bool plain = !alias.empty() &&
               (std::isalpha(static_cast<unsigned char>(alias[0])) ||
                alias[0] == '_');
  for (char ch : alias) {
    if (!plain) break;
    if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_') {
      plain = false;
    }
  }
  if (plain && !IsReservedWord(ToUpper(alias))) return alias;
  return "\"" + alias + "\"";
}

}  // namespace

std::string ExprToSql(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal.ToSqlLiteral();
    case ExprKind::kColumnRef:
      return e.qualifier.empty() ? e.column : e.qualifier + "." + e.column;
    case ExprKind::kStar:
      return e.qualifier.empty() ? "*" : e.qualifier + ".*";
    case ExprKind::kUnary:
      if (e.unary_op == UnaryOp::kNot) return "NOT (" + ExprToSql(*e.left) + ")";
      return "-(" + ExprToSql(*e.left) + ")";
    case ExprKind::kBinary:
      return "(" + ExprToSql(*e.left) + " " + BinaryOpToString(e.binary_op) +
             " " + ExprToSql(*e.right) + ")";
    case ExprKind::kIn: {
      std::string out = ExprToSql(*e.left);
      out += e.negated ? " NOT IN (" : " IN (";
      if (e.subquery) {
        out += SelectToSql(*e.subquery);
      } else {
        std::vector<std::string> parts;
        for (const auto& item : e.in_list) parts.push_back(ExprToSql(*item));
        out += Join(parts, ", ");
      }
      out += ")";
      return out;
    }
    case ExprKind::kBetween: {
      std::string out = ExprToSql(*e.left);
      out += e.negated ? " NOT BETWEEN " : " BETWEEN ";
      out += ExprToSql(*e.lo) + " AND " + ExprToSql(*e.hi);
      return "(" + out + ")";
    }
    case ExprKind::kLike:
      return "(" + ExprToSql(*e.left) + (e.negated ? " NOT LIKE " : " LIKE ") +
             ExprToSql(*e.right) + ")";
    case ExprKind::kIsNull:
      return "(" + ExprToSql(*e.left) +
             (e.negated ? " IS NOT NULL" : " IS NULL") + ")";
    case ExprKind::kCase: {
      std::string out = "CASE";
      if (e.left) out += " " + ExprToSql(*e.left);
      for (const auto& cw : e.case_whens) {
        out += " WHEN " + ExprToSql(*cw.when) + " THEN " + ExprToSql(*cw.then);
      }
      if (e.case_else) out += " ELSE " + ExprToSql(*e.case_else);
      out += " END";
      return out;
    }
    case ExprKind::kFunction: {
      std::string out = ToUpper(e.function_name) + "(";
      if (e.distinct_arg) out += "DISTINCT ";
      std::vector<std::string> parts;
      for (const auto& a : e.args) parts.push_back(ExprToSql(*a));
      out += Join(parts, ", ") + ")";
      return out;
    }
    case ExprKind::kExists:
      return std::string(e.negated ? "NOT " : "") + "EXISTS (" +
             SelectToSql(*e.subquery) + ")";
    case ExprKind::kSubquery:
      return "(" + SelectToSql(*e.subquery) + ")";
  }
  return "?";
}

std::string PrefTermToSql(const PrefTerm& p) {
  switch (p.kind) {
    case PrefKind::kAround:
      return ExprToSql(*p.attr) + " AROUND " + p.target.ToSqlLiteral();
    case PrefKind::kBetween:
      return ExprToSql(*p.attr) + " BETWEEN " + p.low.ToSqlLiteral() + ", " +
             p.high.ToSqlLiteral();
    case PrefKind::kLowest:
      return "LOWEST(" + ExprToSql(*p.attr) + ")";
    case PrefKind::kHighest:
      return "HIGHEST(" + ExprToSql(*p.attr) + ")";
    case PrefKind::kPos:
      if (p.values.size() == 1) {
        return ExprToSql(*p.attr) + " = " + p.values[0].ToSqlLiteral();
      }
      return ExprToSql(*p.attr) + " IN (" + ValueListToSql(p.values) + ")";
    case PrefKind::kNeg:
      if (p.values.size() == 1) {
        return ExprToSql(*p.attr) + " <> " + p.values[0].ToSqlLiteral();
      }
      return ExprToSql(*p.attr) + " NOT IN (" + ValueListToSql(p.values) + ")";
    case PrefKind::kPosPos: {
      std::string attr = ExprToSql(*p.attr);
      std::string first =
          p.values.size() == 1
              ? attr + " = " + p.values[0].ToSqlLiteral()
              : attr + " IN (" + ValueListToSql(p.values) + ")";
      std::string second =
          p.values2.size() == 1
              ? attr + " = " + p.values2[0].ToSqlLiteral()
              : attr + " IN (" + ValueListToSql(p.values2) + ")";
      return first + " ELSE " + second;
    }
    case PrefKind::kPosNeg: {
      std::string attr = ExprToSql(*p.attr);
      std::string first =
          p.values.size() == 1
              ? attr + " = " + p.values[0].ToSqlLiteral()
              : attr + " IN (" + ValueListToSql(p.values) + ")";
      std::string second =
          p.values2.size() == 1
              ? attr + " <> " + p.values2[0].ToSqlLiteral()
              : attr + " NOT IN (" + ValueListToSql(p.values2) + ")";
      return first + " ELSE " + second;
    }
    case PrefKind::kExplicit: {
      std::vector<std::string> parts;
      for (const auto& [better, worse] : p.edges) {
        parts.push_back(better.ToSqlLiteral() + " BETTER THAN " +
                        worse.ToSqlLiteral());
      }
      return ExprToSql(*p.attr) + " EXPLICIT (" + Join(parts, ", ") + ")";
    }
    case PrefKind::kContains:
      return ExprToSql(*p.attr) + " CONTAINS " + p.target.ToSqlLiteral();
    case PrefKind::kNamedRef:
      return "PREFERENCE " + p.pref_name;
    case PrefKind::kPareto: {
      std::vector<std::string> parts;
      for (const auto& c : p.children) {
        std::string s = PrefTermToSql(*c);
        if (!c->IsBase()) s = "(" + s + ")";
        parts.push_back(std::move(s));
      }
      return Join(parts, " AND ");
    }
    case PrefKind::kPrioritized: {
      std::vector<std::string> parts;
      for (const auto& c : p.children) {
        std::string s = PrefTermToSql(*c);
        if (c->kind == PrefKind::kPrioritized) s = "(" + s + ")";
        parts.push_back(std::move(s));
      }
      return Join(parts, " CASCADE ");
    }
    case PrefKind::kIntersect: {
      std::vector<std::string> parts;
      for (const auto& c : p.children) {
        std::string s = PrefTermToSql(*c);
        if (!c->IsBase()) s = "(" + s + ")";
        parts.push_back(std::move(s));
      }
      return Join(parts, " INTERSECT ");
    }
    case PrefKind::kDual:
      return "DUAL(" + PrefTermToSql(*p.children[0]) + ")";
  }
  return "?";
}

std::string SelectToSql(const SelectStmt& s) {
  std::string out = "SELECT ";
  if (s.distinct) out += "DISTINCT ";
  std::vector<std::string> items;
  for (const auto& item : s.items) {
    std::string t = ExprToSql(*item.expr);
    if (!item.alias.empty()) t += " AS " + AliasToSql(item.alias);
    items.push_back(std::move(t));
  }
  out += Join(items, ", ");
  if (!s.from.empty()) {
    out += " FROM ";
    std::vector<std::string> froms;
    for (const auto& tr : s.from) froms.push_back(TableRefToSql(*tr));
    out += Join(froms, ", ");
  }
  if (s.where) out += " WHERE " + ExprToSql(*s.where);
  if (s.preferring) {
    out += " PREFERRING " + PrefTermToSql(*s.preferring);
    if (!s.grouping.empty()) out += " GROUPING " + Join(s.grouping, ", ");
    if (s.but_only) out += " BUT ONLY " + ExprToSql(*s.but_only);
  }
  if (!s.group_by.empty()) {
    std::vector<std::string> parts;
    for (const auto& g : s.group_by) parts.push_back(ExprToSql(*g));
    out += " GROUP BY " + Join(parts, ", ");
    if (s.having) out += " HAVING " + ExprToSql(*s.having);
  }
  if (!s.order_by.empty()) {
    std::vector<std::string> parts;
    for (const auto& o : s.order_by) {
      parts.push_back(ExprToSql(*o.expr) + (o.ascending ? "" : " DESC"));
    }
    out += " ORDER BY " + Join(parts, ", ");
  }
  if (s.limit_param.is_param()) {
    out += " LIMIT " + (s.limit_param.ParamName().empty()
                            ? "?"
                            : "$" + s.limit_param.ParamName());
  } else if (s.limit) {
    out += " LIMIT " + std::to_string(*s.limit);
  }
  if (s.offset) out += " OFFSET " + std::to_string(*s.offset);
  return out;
}

std::string StatementToSql(const Statement& st) {
  switch (st.kind) {
    case StatementKind::kSelect:
      return SelectToSql(*st.select);
    case StatementKind::kCreateTable: {
      std::string out = "CREATE TABLE ";
      if (st.if_not_exists) out += "IF NOT EXISTS ";
      out += st.name + " (";
      std::vector<std::string> cols;
      for (const auto& c : st.columns) {
        const char* t = "TEXT";
        switch (c.type) {
          case ColumnType::kInt: t = "INTEGER"; break;
          case ColumnType::kDouble: t = "DOUBLE"; break;
          case ColumnType::kText: t = "TEXT"; break;
          case ColumnType::kBool: t = "BOOLEAN"; break;
          case ColumnType::kDate: t = "DATE"; break;
        }
        cols.push_back(c.name + " " + t);
      }
      out += Join(cols, ", ") + ")";
      return out;
    }
    case StatementKind::kCreateView:
      return "CREATE VIEW " + st.name + " AS " + SelectToSql(*st.select);
    case StatementKind::kCreateIndex:
      return "CREATE INDEX " + st.name + " ON " + st.on_table + " (" +
             Join(st.index_columns, ", ") + ")";
    case StatementKind::kCreatePreference:
      return "CREATE PREFERENCE " + st.name + " AS " +
             PrefTermToSql(*st.preference);
    case StatementKind::kExplain:
      return "EXPLAIN " + SelectToSql(*st.select);
    case StatementKind::kSet:
      // A null value is the parsed form of `SET <knob> = DEFAULT`.
      return "SET " + st.name + " = " +
             (st.set_value.is_null() ? "DEFAULT"
                                     : st.set_value.ToSqlLiteral());
    case StatementKind::kInsert: {
      std::string out = "INSERT INTO " + st.name;
      if (!st.insert_columns.empty()) {
        out += " (" + Join(st.insert_columns, ", ") + ")";
      }
      if (st.select) {
        out += " " + SelectToSql(*st.select);
      } else {
        out += " VALUES ";
        std::vector<std::string> rows;
        for (const auto& row : st.insert_rows) {
          std::vector<std::string> vals;
          for (const auto& e : row) vals.push_back(ExprToSql(*e));
          rows.push_back("(" + Join(vals, ", ") + ")");
        }
        out += Join(rows, ", ");
      }
      return out;
    }
    case StatementKind::kUpdate: {
      std::string out = "UPDATE " + st.name + " SET ";
      std::vector<std::string> parts;
      for (const auto& [col, e] : st.assignments) {
        parts.push_back(col + " = " + ExprToSql(*e));
      }
      out += Join(parts, ", ");
      if (st.where) out += " WHERE " + ExprToSql(*st.where);
      return out;
    }
    case StatementKind::kDelete: {
      std::string out = "DELETE FROM " + st.name;
      if (st.where) out += " WHERE " + ExprToSql(*st.where);
      return out;
    }
    case StatementKind::kDrop: {
      std::string out = "DROP ";
      switch (st.drop_kind) {
        case Statement::DropKind::kTable: out += "TABLE "; break;
        case Statement::DropKind::kView: out += "VIEW "; break;
        case Statement::DropKind::kIndex: out += "INDEX "; break;
        case Statement::DropKind::kPreference: out += "PREFERENCE "; break;
      }
      if (st.if_exists) out += "IF EXISTS ";
      out += st.name;
      return out;
    }
  }
  return "?";
}

}  // namespace prefsql
