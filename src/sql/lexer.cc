#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace prefsql {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&](TokenType t, std::string text, size_t off, size_t len) {
    Token tok;
    tok.type = t;
    tok.text = std::move(text);
    tok.offset = off;
    tok.length = len;
    out.push_back(std::move(tok));
  };
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(input[i])) ++i;
      std::string word = input.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsReservedWord(upper)) {
        push(TokenType::kKeyword, upper, start, i - start);
      } else {
        push(TokenType::kIdentifier, word, start, i - start);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          is_float = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i])))
            ++i;
        } else {
          i = save;  // not an exponent, e.g. "12e" -> number then identifier
        }
      }
      std::string num = input.substr(start, i - start);
      Token tok;
      tok.offset = start;
      tok.length = i - start;
      tok.text = num;
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.double_value = std::strtod(num.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      std::string content;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            content += '\'';
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          content += input[i++];
        }
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      Token tok;
      tok.type = TokenType::kString;
      tok.text = std::move(content);
      tok.offset = start;
      tok.length = i - start;
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      // Quoted identifier.
      std::string content;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '"') {
          ++i;
          closed = true;
          break;
        }
        content += input[i++];
      }
      if (!closed) {
        return Status::ParseError("unterminated quoted identifier at offset " +
                                  std::to_string(start));
      }
      push(TokenType::kIdentifier, std::move(content), start, i - start);
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && input[i + 1] == b;
    };
    if (c == '?') {
      push(TokenType::kQuestion, "?", start, 1);
      ++i;
      continue;
    }
    if (c == '$' && i + 1 < n && IsIdentStart(input[i + 1])) {
      ++i;
      size_t name_start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      push(TokenType::kNamedParam, input.substr(name_start, i - name_start),
           start, i - start);
      continue;
    }
    if (two('<', '>') || two('!', '=')) {
      push(TokenType::kNe, input.substr(i, 2), start, 2);
      i += 2;
      continue;
    }
    if (two('<', '=')) {
      push(TokenType::kLe, "<=", start, 2);
      i += 2;
      continue;
    }
    if (two('>', '=')) {
      push(TokenType::kGe, ">=", start, 2);
      i += 2;
      continue;
    }
    if (two('|', '|')) {
      push(TokenType::kConcat, "||", start, 2);
      i += 2;
      continue;
    }
    TokenType t;
    switch (c) {
      case '(': t = TokenType::kLParen; break;
      case ')': t = TokenType::kRParen; break;
      case ',': t = TokenType::kComma; break;
      case '.': t = TokenType::kDot; break;
      case ';': t = TokenType::kSemicolon; break;
      case '*': t = TokenType::kStar; break;
      case '+': t = TokenType::kPlus; break;
      case '-': t = TokenType::kMinus; break;
      case '/': t = TokenType::kSlash; break;
      case '%': t = TokenType::kPercent; break;
      case '=': t = TokenType::kEq; break;
      case '<': t = TokenType::kLt; break;
      case '>': t = TokenType::kGt; break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
    push(t, std::string(1, c), start, 1);
    ++i;
  }
  push(TokenType::kEnd, "", n, 0);
  return out;
}

}  // namespace prefsql
