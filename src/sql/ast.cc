#include "sql/ast.h"

namespace prefsql {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kConcat: return "||";
  }
  return "?";
}

namespace {
ExprPtr CloneOrNull(const ExprPtr& e) { return e ? e->Clone() : nullptr; }
}  // namespace

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->qualifier = qualifier;
  out->column = column;
  out->unary_op = unary_op;
  out->binary_op = binary_op;
  out->left = CloneOrNull(left);
  out->right = CloneOrNull(right);
  for (const auto& e : in_list) out->in_list.push_back(e->Clone());
  out->negated = negated;
  out->lo = CloneOrNull(lo);
  out->hi = CloneOrNull(hi);
  for (const auto& cw : case_whens) {
    out->case_whens.push_back({cw.when->Clone(), cw.then->Clone()});
  }
  out->case_else = CloneOrNull(case_else);
  out->function_name = function_name;
  for (const auto& a : args) out->args.push_back(a->Clone());
  out->distinct_arg = distinct_arg;
  out->subquery = subquery;  // shared
  return out;
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeColumn(std::string qualifier, std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(name);
  return e;
}

ExprPtr Expr::MakeStar(std::string qualifier) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  e->qualifier = std::move(qualifier);
  return e;
}

ExprPtr Expr::MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->left = std::move(operand);
  return e;
}

ExprPtr Expr::MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ExprPtr Expr::MakeFunction(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->function_name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::MakeConjunction(std::vector<ExprPtr> conjuncts) {
  ExprPtr out;
  for (auto& c : conjuncts) {
    if (!c) continue;
    if (!out) {
      out = std::move(c);
    } else {
      out = MakeBinary(BinaryOp::kAnd, std::move(out), std::move(c));
    }
  }
  return out;
}

namespace {
bool PtrEq(const ExprPtr& a, const ExprPtr& b) {
  if (!a || !b) return !a && !b;
  return ExprStructurallyEqual(*a, *b);
}
}  // namespace

bool ExprStructurallyEqual(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kLiteral:
      return a.literal.IdentityEquals(b.literal);
    case ExprKind::kColumnRef:
    case ExprKind::kStar:
      return a.qualifier == b.qualifier && a.column == b.column;
    default:
      break;
  }
  if (a.unary_op != b.unary_op || a.binary_op != b.binary_op ||
      a.negated != b.negated || a.function_name != b.function_name ||
      a.distinct_arg != b.distinct_arg || a.subquery != b.subquery) {
    return false;
  }
  if (!PtrEq(a.left, b.left) || !PtrEq(a.right, b.right) ||
      !PtrEq(a.lo, b.lo) || !PtrEq(a.hi, b.hi) ||
      !PtrEq(a.case_else, b.case_else)) {
    return false;
  }
  if (a.in_list.size() != b.in_list.size() || a.args.size() != b.args.size() ||
      a.case_whens.size() != b.case_whens.size()) {
    return false;
  }
  for (size_t i = 0; i < a.in_list.size(); ++i) {
    if (!PtrEq(a.in_list[i], b.in_list[i])) return false;
  }
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!PtrEq(a.args[i], b.args[i])) return false;
  }
  for (size_t i = 0; i < a.case_whens.size(); ++i) {
    if (!PtrEq(a.case_whens[i].when, b.case_whens[i].when) ||
        !PtrEq(a.case_whens[i].then, b.case_whens[i].then)) {
      return false;
    }
  }
  return true;
}

PrefTermPtr PrefTerm::Clone() const {
  auto out = std::make_unique<PrefTerm>();
  out->kind = kind;
  out->attr = attr ? attr->Clone() : nullptr;
  out->target = target;
  out->low = low;
  out->high = high;
  out->values = values;
  out->values2 = values2;
  out->edges = edges;
  for (const auto& c : children) out->children.push_back(c->Clone());
  out->pref_name = pref_name;
  return out;
}

std::unique_ptr<TableRef> TableRef::Clone() const {
  auto out = std::make_unique<TableRef>();
  out->kind = kind;
  out->table_name = table_name;
  out->alias = alias;
  out->subquery = subquery;  // shared
  out->join_type = join_type;
  out->join_left = join_left ? join_left->Clone() : nullptr;
  out->join_right = join_right ? join_right->Clone() : nullptr;
  out->join_on = join_on ? join_on->Clone() : nullptr;
  return out;
}

std::shared_ptr<SelectStmt> SelectStmt::Clone() const {
  auto out = std::make_shared<SelectStmt>();
  out->distinct = distinct;
  for (const auto& item : items) {
    out->items.push_back({item.expr->Clone(), item.alias});
  }
  for (const auto& t : from) out->from.push_back(t->Clone());
  out->where = where ? where->Clone() : nullptr;
  out->preferring = preferring ? preferring->Clone() : nullptr;
  out->grouping = grouping;
  out->but_only = but_only ? but_only->Clone() : nullptr;
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  out->having = having ? having->Clone() : nullptr;
  for (const auto& o : order_by) {
    out->order_by.push_back({o.expr->Clone(), o.ascending});
  }
  out->limit = limit;
  out->offset = offset;
  out->limit_param = limit_param;
  return out;
}

Statement Statement::Clone() const {
  Statement out;
  out.kind = kind;
  out.select = select;  // shared, like subqueries
  out.name = name;
  out.columns = columns;
  out.if_not_exists = if_not_exists;
  out.if_exists = if_exists;
  out.on_table = on_table;
  out.index_columns = index_columns;
  out.insert_columns = insert_columns;
  for (const auto& row : insert_rows) {
    std::vector<ExprPtr> cloned;
    cloned.reserve(row.size());
    for (const auto& e : row) cloned.push_back(e->Clone());
    out.insert_rows.push_back(std::move(cloned));
  }
  for (const auto& [col, e] : assignments) {
    out.assignments.emplace_back(col, e->Clone());
  }
  out.where = where ? where->Clone() : nullptr;
  out.preference = preference ? preference->Clone() : nullptr;
  out.set_value = set_value;
  out.drop_kind = drop_kind;
  return out;
}

}  // namespace prefsql
