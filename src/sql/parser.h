// Recursive-descent parser for the SQL / Preference SQL dialect.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "util/status.h"

namespace prefsql {

/// Parses a single statement (a trailing semicolon is allowed).
Result<Statement> ParseStatement(const std::string& sql);

/// Parses a semicolon-separated script into statements.
Result<std::vector<Statement>> ParseScript(const std::string& sql);

/// Parses a standalone expression (used by tests).
Result<ExprPtr> ParseExpression(const std::string& text);

/// Parses a standalone PREFERRING term (used by tests and the preference
/// builder API), e.g. "price AROUND 40000 AND HIGHEST(power)".
Result<PrefTermPtr> ParsePreference(const std::string& text);

}  // namespace prefsql
