#include "sql/parameters.h"

#include <algorithm>
#include <utility>

namespace prefsql {
namespace {

// ---------------------------------------------------------------------------
// Collection
// ---------------------------------------------------------------------------

void Record(ParameterSignature* sig, const Value& v,
            ParamConstraint constraint) {
  size_t index = static_cast<size_t>(v.ParamIndex());
  if (sig->names.size() <= index) {
    sig->names.resize(index + 1);
    sig->constraints.resize(index + 1, ParamConstraint::kAny);
  }
  if (sig->names[index].empty()) sig->names[index] = v.ParamName();
  if (sig->constraints[index] == ParamConstraint::kAny) {
    sig->constraints[index] = constraint;
  }
}

void CollectValue(ParameterSignature* sig, const Value& v,
                  ParamConstraint constraint) {
  if (v.is_param()) Record(sig, v, constraint);
}

void CollectSelect(ParameterSignature* sig, const SelectStmt& select);

void CollectExpr(ParameterSignature* sig, const Expr& e) {
  if (e.kind == ExprKind::kLiteral) {
    CollectValue(sig, e.literal, ParamConstraint::kAny);
  }
  if (e.left) CollectExpr(sig, *e.left);
  if (e.right) CollectExpr(sig, *e.right);
  for (const auto& item : e.in_list) CollectExpr(sig, *item);
  if (e.lo) CollectExpr(sig, *e.lo);
  if (e.hi) CollectExpr(sig, *e.hi);
  for (const auto& cw : e.case_whens) {
    CollectExpr(sig, *cw.when);
    CollectExpr(sig, *cw.then);
  }
  if (e.case_else) CollectExpr(sig, *e.case_else);
  for (const auto& a : e.args) CollectExpr(sig, *a);
  if (e.subquery) CollectSelect(sig, *e.subquery);
}

void CollectPref(ParameterSignature* sig, const PrefTerm& p) {
  if (p.attr) CollectExpr(sig, *p.attr);
  CollectValue(sig, p.target,
               p.kind == PrefKind::kContains ? ParamConstraint::kText
                                             : ParamConstraint::kNumeric);
  CollectValue(sig, p.low, ParamConstraint::kAny);
  CollectValue(sig, p.high, ParamConstraint::kAny);
  for (const auto& v : p.values) CollectValue(sig, v, ParamConstraint::kAny);
  for (const auto& v : p.values2) CollectValue(sig, v, ParamConstraint::kAny);
  for (const auto& [better, worse] : p.edges) {
    CollectValue(sig, better, ParamConstraint::kAny);
    CollectValue(sig, worse, ParamConstraint::kAny);
  }
  for (const auto& c : p.children) CollectPref(sig, *c);
}

void CollectTableRef(ParameterSignature* sig, const TableRef& tr) {
  if (tr.subquery) CollectSelect(sig, *tr.subquery);
  if (tr.join_left) CollectTableRef(sig, *tr.join_left);
  if (tr.join_right) CollectTableRef(sig, *tr.join_right);
  if (tr.join_on) CollectExpr(sig, *tr.join_on);
}

void CollectSelect(ParameterSignature* sig, const SelectStmt& select) {
  for (const auto& item : select.items) CollectExpr(sig, *item.expr);
  for (const auto& tr : select.from) CollectTableRef(sig, *tr);
  if (select.where) CollectExpr(sig, *select.where);
  if (select.preferring) CollectPref(sig, *select.preferring);
  if (select.but_only) CollectExpr(sig, *select.but_only);
  for (const auto& g : select.group_by) CollectExpr(sig, *g);
  if (select.having) CollectExpr(sig, *select.having);
  for (const auto& o : select.order_by) CollectExpr(sig, *o.expr);
  CollectValue(sig, select.limit_param, ParamConstraint::kAny);
}

// ---------------------------------------------------------------------------
// Parameter presence predicates
// ---------------------------------------------------------------------------

bool ExprHasParameters(const Expr& e) {
  if (e.kind == ExprKind::kLiteral && e.literal.is_param()) return true;
  if (e.left && ExprHasParameters(*e.left)) return true;
  if (e.right && ExprHasParameters(*e.right)) return true;
  for (const auto& item : e.in_list) {
    if (ExprHasParameters(*item)) return true;
  }
  if (e.lo && ExprHasParameters(*e.lo)) return true;
  if (e.hi && ExprHasParameters(*e.hi)) return true;
  for (const auto& cw : e.case_whens) {
    if (ExprHasParameters(*cw.when) || ExprHasParameters(*cw.then)) {
      return true;
    }
  }
  if (e.case_else && ExprHasParameters(*e.case_else)) return true;
  for (const auto& a : e.args) {
    if (ExprHasParameters(*a)) return true;
  }
  return e.subquery && SelectHasParameters(*e.subquery);
}

bool TableRefHasParameters(const TableRef& tr) {
  if (tr.subquery && SelectHasParameters(*tr.subquery)) return true;
  if (tr.join_left && TableRefHasParameters(*tr.join_left)) return true;
  if (tr.join_right && TableRefHasParameters(*tr.join_right)) return true;
  return tr.join_on && ExprHasParameters(*tr.join_on);
}

}  // namespace

bool SelectHasParameters(const SelectStmt& select) {
  for (const auto& item : select.items) {
    if (ExprHasParameters(*item.expr)) return true;
  }
  for (const auto& tr : select.from) {
    if (TableRefHasParameters(*tr)) return true;
  }
  if (select.where && ExprHasParameters(*select.where)) return true;
  if (select.preferring && PrefTermHasParameters(*select.preferring)) {
    return true;
  }
  if (select.but_only && ExprHasParameters(*select.but_only)) return true;
  for (const auto& g : select.group_by) {
    if (ExprHasParameters(*g)) return true;
  }
  if (select.having && ExprHasParameters(*select.having)) return true;
  for (const auto& o : select.order_by) {
    if (ExprHasParameters(*o.expr)) return true;
  }
  return select.limit_param.is_param();
}

bool StatementHasParameters(const Statement& stmt) {
  if (stmt.select != nullptr && SelectHasParameters(*stmt.select)) {
    return true;
  }
  for (const auto& row : stmt.insert_rows) {
    for (const auto& e : row) {
      if (ExprHasParameters(*e)) return true;
    }
  }
  for (const auto& [col, e] : stmt.assignments) {
    if (ExprHasParameters(*e)) return true;
  }
  if (stmt.where != nullptr && ExprHasParameters(*stmt.where)) return true;
  if (stmt.preference != nullptr &&
      PrefTermHasParameters(*stmt.preference)) {
    return true;
  }
  return stmt.set_value.is_param();
}

namespace {

// ---------------------------------------------------------------------------
// Binding
// ---------------------------------------------------------------------------

std::string ParamDisplay(const Value& slot) {
  return slot.ParamName().empty()
             ? "?" + std::to_string(slot.ParamIndex() + 1)
             : "$" + slot.ParamName();
}

Status BindValue(Value& slot, const std::vector<Value>& values,
                 ParamConstraint constraint, bool parse_errors) {
  if (!slot.is_param()) return Status::OK();
  size_t index = static_cast<size_t>(slot.ParamIndex());
  if (index >= values.size()) {
    return Status::BindError("parameter " + ParamDisplay(slot) +
                             " is not bound");
  }
  PSQL_RETURN_IF_ERROR(
      CheckParamConstraint(values[index], constraint, index, parse_errors));
  slot = values[index];
  return Status::OK();
}

Status BindSelect(SelectStmt& select, const std::vector<Value>& values,
                  bool parse_errors);

Status BindSubquery(std::shared_ptr<SelectStmt>& sub,
                    const std::vector<Value>& values, bool parse_errors) {
  // Subqueries are shared between clones (Expr::Clone / SelectStmt::Clone):
  // never bind through the shared pointer — detach a private copy first.
  if (sub == nullptr || !SelectHasParameters(*sub)) return Status::OK();
  auto copy = sub->Clone();
  PSQL_RETURN_IF_ERROR(BindSelect(*copy, values, parse_errors));
  sub = std::move(copy);
  return Status::OK();
}

Status BindExpr(Expr& e, const std::vector<Value>& values,
                bool parse_errors) {
  if (e.kind == ExprKind::kLiteral) {
    PSQL_RETURN_IF_ERROR(
        BindValue(e.literal, values, ParamConstraint::kAny, parse_errors));
  }
  if (e.left) PSQL_RETURN_IF_ERROR(BindExpr(*e.left, values, parse_errors));
  if (e.right) PSQL_RETURN_IF_ERROR(BindExpr(*e.right, values, parse_errors));
  for (auto& item : e.in_list) {
    PSQL_RETURN_IF_ERROR(BindExpr(*item, values, parse_errors));
  }
  if (e.lo) PSQL_RETURN_IF_ERROR(BindExpr(*e.lo, values, parse_errors));
  if (e.hi) PSQL_RETURN_IF_ERROR(BindExpr(*e.hi, values, parse_errors));
  for (auto& cw : e.case_whens) {
    PSQL_RETURN_IF_ERROR(BindExpr(*cw.when, values, parse_errors));
    PSQL_RETURN_IF_ERROR(BindExpr(*cw.then, values, parse_errors));
  }
  if (e.case_else) {
    PSQL_RETURN_IF_ERROR(BindExpr(*e.case_else, values, parse_errors));
  }
  for (auto& a : e.args) {
    PSQL_RETURN_IF_ERROR(BindExpr(*a, values, parse_errors));
  }
  return BindSubquery(e.subquery, values, parse_errors);
}

Status BindPref(PrefTerm& p, const std::vector<Value>& values,
                bool parse_errors) {
  if (p.attr) PSQL_RETURN_IF_ERROR(BindExpr(*p.attr, values, parse_errors));
  PSQL_RETURN_IF_ERROR(BindValue(
      p.target, values,
      p.kind == PrefKind::kContains ? ParamConstraint::kText
                                    : ParamConstraint::kNumeric,
      parse_errors));
  PSQL_RETURN_IF_ERROR(
      BindValue(p.low, values, ParamConstraint::kAny, parse_errors));
  PSQL_RETURN_IF_ERROR(
      BindValue(p.high, values, ParamConstraint::kAny, parse_errors));
  for (auto& v : p.values) {
    PSQL_RETURN_IF_ERROR(
        BindValue(v, values, ParamConstraint::kAny, parse_errors));
  }
  for (auto& v : p.values2) {
    PSQL_RETURN_IF_ERROR(
        BindValue(v, values, ParamConstraint::kAny, parse_errors));
  }
  for (auto& [better, worse] : p.edges) {
    PSQL_RETURN_IF_ERROR(
        BindValue(better, values, ParamConstraint::kAny, parse_errors));
    PSQL_RETURN_IF_ERROR(
        BindValue(worse, values, ParamConstraint::kAny, parse_errors));
  }
  for (auto& c : p.children) {
    PSQL_RETURN_IF_ERROR(BindPref(*c, values, parse_errors));
  }
  return Status::OK();
}

Status BindTableRef(TableRef& tr, const std::vector<Value>& values,
                    bool parse_errors) {
  PSQL_RETURN_IF_ERROR(BindSubquery(tr.subquery, values, parse_errors));
  if (tr.join_left) {
    PSQL_RETURN_IF_ERROR(BindTableRef(*tr.join_left, values, parse_errors));
  }
  if (tr.join_right) {
    PSQL_RETURN_IF_ERROR(BindTableRef(*tr.join_right, values, parse_errors));
  }
  if (tr.join_on) {
    PSQL_RETURN_IF_ERROR(BindExpr(*tr.join_on, values, parse_errors));
  }
  return Status::OK();
}

Status BindSelect(SelectStmt& select, const std::vector<Value>& values,
                  bool parse_errors) {
  for (auto& item : select.items) {
    PSQL_RETURN_IF_ERROR(BindExpr(*item.expr, values, parse_errors));
  }
  for (auto& tr : select.from) {
    PSQL_RETURN_IF_ERROR(BindTableRef(*tr, values, parse_errors));
  }
  if (select.where) {
    PSQL_RETURN_IF_ERROR(BindExpr(*select.where, values, parse_errors));
  }
  if (select.preferring) {
    PSQL_RETURN_IF_ERROR(BindPref(*select.preferring, values, parse_errors));
  }
  if (select.but_only) {
    PSQL_RETURN_IF_ERROR(BindExpr(*select.but_only, values, parse_errors));
  }
  for (auto& g : select.group_by) {
    PSQL_RETURN_IF_ERROR(BindExpr(*g, values, parse_errors));
  }
  if (select.having) {
    PSQL_RETURN_IF_ERROR(BindExpr(*select.having, values, parse_errors));
  }
  for (auto& o : select.order_by) {
    PSQL_RETURN_IF_ERROR(BindExpr(*o.expr, values, parse_errors));
  }
  if (select.limit_param.is_param()) {
    const size_t index = static_cast<size_t>(select.limit_param.ParamIndex());
    if (index >= values.size()) {
      return Status::BindError("parameter " +
                               ParamDisplay(select.limit_param) +
                               " is not bound");
    }
    const Value& v = values[index];
    // LIMIT is structural: only a non-negative integer makes a valid count,
    // whatever the binding channel. Auto-parameterized texts report the
    // parser's own error so literal and lifted forms fail identically.
    if (v.type() != ValueType::kInt || v.AsInt() < 0) {
      if (parse_errors) return Status::ParseError("expected LIMIT count");
      return Status::BindError(
          "parameter " + std::to_string(index + 1) +
          " requires a non-negative integer (LIMIT count), got " +
          v.ToString());
    }
    select.limit = v.AsInt();
    select.limit_param = v;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// IN-list width expansion (see ExpandWideParameters)
// ---------------------------------------------------------------------------

class WidthExpander {
 public:
  explicit WidthExpander(const std::vector<uint32_t>& widths)
      : widths_(widths) {
    base_.reserve(widths.size());
    uint32_t sum = 0;
    for (uint32_t w : widths) {
      base_.push_back(sum);
      sum += w;
    }
  }

  Status ExpandSelect(SelectStmt& select) {
    for (auto& item : select.items) {
      PSQL_RETURN_IF_ERROR(ExpandExpr(*item.expr));
    }
    for (auto& tr : select.from) PSQL_RETURN_IF_ERROR(ExpandTableRef(*tr));
    if (select.where) PSQL_RETURN_IF_ERROR(ExpandExpr(*select.where));
    if (select.preferring) {
      PSQL_RETURN_IF_ERROR(ExpandPref(*select.preferring));
    }
    if (select.but_only) PSQL_RETURN_IF_ERROR(ExpandExpr(*select.but_only));
    for (auto& g : select.group_by) PSQL_RETURN_IF_ERROR(ExpandExpr(*g));
    if (select.having) PSQL_RETURN_IF_ERROR(ExpandExpr(*select.having));
    for (auto& o : select.order_by) {
      PSQL_RETURN_IF_ERROR(ExpandExpr(*o.expr));
    }
    return Renumber(select.limit_param);
  }

 private:
  Status SlotIndex(const Value& slot, size_t* index) const {
    *index = static_cast<size_t>(slot.ParamIndex());
    if (*index >= widths_.size()) {
      return Status::BindError("parameter " + ParamDisplay(slot) +
                               " has no recorded width");
    }
    return Status::OK();
  }

  /// Scalar positions admit only width-1 slots; the ordinal moves from
  /// placeholder space to flat-value space.
  Status Renumber(Value& slot) {
    if (!slot.is_param()) return Status::OK();
    size_t i = 0;
    PSQL_RETURN_IF_ERROR(SlotIndex(slot, &i));
    if (widths_[i] != 1) {
      return Status::BindError("parameter " + ParamDisplay(slot) +
                               " is an IN-list slot used in a scalar "
                               "position");
    }
    slot = Value::Param(static_cast<int32_t>(base_[i]), slot.ParamName());
    return Status::OK();
  }

  /// Preference value sets: a width-m slot splices into m slots.
  Status ExpandValueList(std::vector<Value>& vs) {
    std::vector<Value> out;
    out.reserve(vs.size());
    for (Value& v : vs) {
      if (!v.is_param()) {
        out.push_back(std::move(v));
        continue;
      }
      size_t i = 0;
      PSQL_RETURN_IF_ERROR(SlotIndex(v, &i));
      for (uint32_t k = 0; k < widths_[i]; ++k) {
        out.push_back(Value::Param(static_cast<int32_t>(base_[i] + k),
                                   v.ParamName()));
      }
    }
    vs = std::move(out);
    return Status::OK();
  }

  Status ExpandExpr(Expr& e) {
    if (e.kind == ExprKind::kLiteral) {
      PSQL_RETURN_IF_ERROR(Renumber(e.literal));
    }
    if (e.left) PSQL_RETURN_IF_ERROR(ExpandExpr(*e.left));
    if (e.right) PSQL_RETURN_IF_ERROR(ExpandExpr(*e.right));
    if (!e.in_list.empty()) {
      std::vector<ExprPtr> out;
      out.reserve(e.in_list.size());
      for (auto& item : e.in_list) {
        if (item->kind == ExprKind::kLiteral && item->literal.is_param()) {
          size_t i = 0;
          PSQL_RETURN_IF_ERROR(SlotIndex(item->literal, &i));
          for (uint32_t k = 0; k < widths_[i]; ++k) {
            out.push_back(Expr::MakeLiteral(
                Value::Param(static_cast<int32_t>(base_[i] + k),
                             item->literal.ParamName())));
          }
        } else {
          PSQL_RETURN_IF_ERROR(ExpandExpr(*item));
          out.push_back(std::move(item));
        }
      }
      e.in_list = std::move(out);
    }
    if (e.lo) PSQL_RETURN_IF_ERROR(ExpandExpr(*e.lo));
    if (e.hi) PSQL_RETURN_IF_ERROR(ExpandExpr(*e.hi));
    for (auto& cw : e.case_whens) {
      PSQL_RETURN_IF_ERROR(ExpandExpr(*cw.when));
      PSQL_RETURN_IF_ERROR(ExpandExpr(*cw.then));
    }
    if (e.case_else) PSQL_RETURN_IF_ERROR(ExpandExpr(*e.case_else));
    for (auto& a : e.args) PSQL_RETURN_IF_ERROR(ExpandExpr(*a));
    return ExpandSubquery(e.subquery);
  }

  Status ExpandPref(PrefTerm& p) {
    if (p.attr) PSQL_RETURN_IF_ERROR(ExpandExpr(*p.attr));
    PSQL_RETURN_IF_ERROR(Renumber(p.target));
    PSQL_RETURN_IF_ERROR(Renumber(p.low));
    PSQL_RETURN_IF_ERROR(Renumber(p.high));
    PSQL_RETURN_IF_ERROR(ExpandValueList(p.values));
    PSQL_RETURN_IF_ERROR(ExpandValueList(p.values2));
    for (auto& [better, worse] : p.edges) {
      PSQL_RETURN_IF_ERROR(Renumber(better));
      PSQL_RETURN_IF_ERROR(Renumber(worse));
    }
    for (auto& c : p.children) PSQL_RETURN_IF_ERROR(ExpandPref(*c));
    return Status::OK();
  }

  Status ExpandTableRef(TableRef& tr) {
    PSQL_RETURN_IF_ERROR(ExpandSubquery(tr.subquery));
    if (tr.join_left) PSQL_RETURN_IF_ERROR(ExpandTableRef(*tr.join_left));
    if (tr.join_right) PSQL_RETURN_IF_ERROR(ExpandTableRef(*tr.join_right));
    if (tr.join_on) PSQL_RETURN_IF_ERROR(ExpandExpr(*tr.join_on));
    return Status::OK();
  }

  /// Same shared-subtree discipline as BindSubquery: never rewrite through
  /// the shared pointer — detach a private copy first.
  Status ExpandSubquery(std::shared_ptr<SelectStmt>& sub) {
    if (sub == nullptr || !SelectHasParameters(*sub)) return Status::OK();
    auto copy = sub->Clone();
    PSQL_RETURN_IF_ERROR(ExpandSelect(*copy));
    sub = std::move(copy);
    return Status::OK();
  }

  const std::vector<uint32_t>& widths_;
  std::vector<uint32_t> base_;
};

}  // namespace

Status ExpandWideParameters(SelectStmt& select,
                            const std::vector<uint32_t>& widths) {
  WidthExpander expander(widths);
  return expander.ExpandSelect(select);
}

ParameterSignature CollectParameters(const SelectStmt& select) {
  ParameterSignature sig;
  CollectSelect(&sig, select);
  return sig;
}

ParameterSignature CollectParameters(const Statement& stmt) {
  ParameterSignature sig;
  if (stmt.select) CollectSelect(&sig, *stmt.select);
  for (const auto& row : stmt.insert_rows) {
    for (const auto& e : row) CollectExpr(&sig, *e);
  }
  for (const auto& [col, e] : stmt.assignments) CollectExpr(&sig, *e);
  if (stmt.where) CollectExpr(&sig, *stmt.where);
  if (stmt.preference) CollectPref(&sig, *stmt.preference);
  CollectValue(&sig, stmt.set_value, ParamConstraint::kAny);
  return sig;
}

bool PrefTermHasParameters(const PrefTerm& p) {
  if (p.target.is_param() || p.low.is_param() || p.high.is_param()) {
    return true;
  }
  auto any_param = [](const std::vector<Value>& vs) {
    return std::any_of(vs.begin(), vs.end(),
                       [](const Value& v) { return v.is_param(); });
  };
  if (any_param(p.values) || any_param(p.values2)) return true;
  for (const auto& [better, worse] : p.edges) {
    if (better.is_param() || worse.is_param()) return true;
  }
  if (p.attr && ExprHasParameters(*p.attr)) return true;
  for (const auto& c : p.children) {
    if (PrefTermHasParameters(*c)) return true;
  }
  return false;
}

Status CheckParamConstraint(const Value& value, ParamConstraint constraint,
                            size_t index, bool parse_errors) {
  switch (constraint) {
    case ParamConstraint::kAny:
      return Status::OK();
    case ParamConstraint::kNumeric:
      if (value.is_numeric() || value.ToNumeric()) return Status::OK();
      if (parse_errors) {
        return Status::ParseError(
            "AROUND requires a numeric or date target, got " +
            value.ToString());
      }
      return Status::BindError(
          "parameter " + std::to_string(index + 1) +
          " requires a numeric or date value (AROUND target), got " +
          value.ToString());
    case ParamConstraint::kText:
      if (value.type() == ValueType::kText) return Status::OK();
      if (parse_errors) {
        return Status::ParseError("CONTAINS requires a string literal");
      }
      return Status::BindError(
          "parameter " + std::to_string(index + 1) +
          " requires a text value (CONTAINS needle), got " +
          value.ToString());
  }
  return Status::OK();
}

Status BindSelectParameters(SelectStmt& select,
                            const std::vector<Value>& values,
                            bool parse_errors) {
  return BindSelect(select, values, parse_errors);
}

Status BindStatementParameters(Statement& stmt,
                               const std::vector<Value>& values,
                               bool parse_errors) {
  PSQL_RETURN_IF_ERROR(BindSubquery(stmt.select, values, parse_errors));
  for (auto& row : stmt.insert_rows) {
    for (auto& e : row) {
      PSQL_RETURN_IF_ERROR(BindExpr(*e, values, parse_errors));
    }
  }
  for (auto& [col, e] : stmt.assignments) {
    PSQL_RETURN_IF_ERROR(BindExpr(*e, values, parse_errors));
  }
  if (stmt.where) {
    PSQL_RETURN_IF_ERROR(BindExpr(*stmt.where, values, parse_errors));
  }
  if (stmt.preference) {
    PSQL_RETURN_IF_ERROR(BindPref(*stmt.preference, values, parse_errors));
  }
  return Status::OK();
}

}  // namespace prefsql
