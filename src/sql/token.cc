#include "sql/token.h"

#include <unordered_set>

#include "util/string_util.h"

namespace prefsql {

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && text == kw;
}

std::string Token::Describe() const {
  switch (type) {
    case TokenType::kEnd:
      return "<end of input>";
    case TokenType::kIdentifier:
      return "identifier '" + text + "'";
    case TokenType::kKeyword:
      return "keyword " + text;
    case TokenType::kString:
      return "string '" + text + "'";
    case TokenType::kInteger:
      return "integer " + std::to_string(int_value);
    case TokenType::kFloat:
      return "number";
    case TokenType::kQuestion:
      return "parameter '?'";
    case TokenType::kNamedParam:
      return "parameter '$" + text + "'";
    default:
      return "'" + text + "'";
  }
}

bool IsReservedWord(const std::string& upper) {
  static const std::unordered_set<std::string> kWords = {
      // Standard SQL subset.
      "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
      "DESC", "LIMIT", "OFFSET", "INSERT", "INTO", "VALUES", "CREATE",
      "TABLE", "VIEW", "INDEX", "DROP", "UPDATE", "SET", "DELETE", "JOIN",
      "INNER", "LEFT", "OUTER", "CROSS", "ON", "AS", "AND", "OR", "NOT",
      "IN", "EXISTS", "BETWEEN", "LIKE", "IS", "NULL", "CASE", "WHEN",
      "THEN", "ELSE", "END", "DISTINCT", "TRUE", "FALSE", "DATE", "IF",
      "UNION", "ALL",
      // Preference SQL extensions (paper §2.2).
      "PREFERRING", "GROUPING", "BUT", "ONLY", "CASCADE", "AROUND",
      "PREFERENCE", "EXPLAIN", "DUAL", "INTERSECT",
      "CONTAINS", "EXPLICIT", "BETTER", "THAN", "LOWEST", "HIGHEST",
  };
  return kWords.count(upper) > 0;
}

}  // namespace prefsql
