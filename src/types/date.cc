#include "types/date.h"

#include <cctype>
#include <cstdio>

namespace prefsql {
namespace {

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DaysInMonth(int y, int m) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

// Howard Hinnant's days_from_civil algorithm.
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = yy + (*m <= 2);
}

}  // namespace

std::optional<int64_t> DateToDayNumber(int year, int month, int day) {
  if (month < 1 || month > 12) return std::nullopt;
  if (day < 1 || day > DaysInMonth(year, month)) return std::nullopt;
  return DaysFromCivil(year, static_cast<unsigned>(month),
                       static_cast<unsigned>(day));
}

std::optional<int64_t> ParseDate(std::string_view text) {
  // Accepted shapes: YYYY/M/D, YYYY-M-D with 1-2 digit month/day.
  int part[3] = {0, 0, 0};
  int idx = 0;
  int digits = 0;
  char sep = 0;
  for (char c : text) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      part[idx] = part[idx] * 10 + (c - '0');
      if (++digits > 4) return std::nullopt;
    } else if (c == '/' || c == '-') {
      if (sep == 0) sep = c;
      if (c != sep || digits == 0 || idx >= 2) return std::nullopt;
      ++idx;
      digits = 0;
    } else {
      return std::nullopt;
    }
  }
  if (idx != 2 || digits == 0) return std::nullopt;
  return DateToDayNumber(part[0], part[1], part[2]);
}

std::string FormatDate(int64_t day_number) {
  int64_t y;
  unsigned m, d;
  CivilFromDays(day_number, &y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04lld-%02u-%02u",
                static_cast<long long>(y), m, d);
  return buf;
}

}  // namespace prefsql
