// Dynamically typed SQL value.
//
// The engine is dynamically typed like SQLite: every cell holds a Value and
// operators coerce between the numeric types. NULL follows SQL three-valued
// logic; comparison helpers therefore return std::optional<bool> where
// nullopt means UNKNOWN.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace prefsql {

/// Runtime type tag of a Value.
enum class ValueType {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kText,
  kDate,   ///< day number (days since 1970-01-01), prints as YYYY-MM-DD
  kParam,  ///< unbound statement parameter ('?' / '$name'); never executed
};

/// Declared column types accepted by CREATE TABLE.
enum class ColumnType { kInt, kDouble, kText, kBool, kDate };

/// Name of a ValueType ("NULL", "INTEGER", ...).
const char* ValueTypeToString(ValueType t);

/// Parses a CREATE TABLE type name (INTEGER/INT, DOUBLE/REAL/FLOAT/NUMERIC,
/// TEXT/VARCHAR/CHAR/STRING, BOOLEAN/BOOL, DATE).
std::optional<ColumnType> ParseColumnType(const std::string& name);

/// One SQL value: NULL, boolean, 64-bit integer, double, text, or date.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Payload(b)); }
  static Value Int(int64_t i) { return Value(Payload(i)); }
  static Value Double(double d) { return Value(Payload(d)); }
  static Value Text(std::string s) { return Value(Payload(std::move(s))); }
  /// A date from its day number (see types/date.h).
  static Value Date(int64_t day_number);
  /// An unbound statement parameter: the hole left by a `?` or `$name`
  /// placeholder (0-based ordinal; name empty for positional parameters).
  /// Parameter values only live inside ASTs — binding replaces them before
  /// execution, and every execution path rejects leftovers with a
  /// kBindError.
  static Value Param(int32_t index, std::string name = std::string());

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_param() const { return type() == ValueType::kParam; }
  bool is_numeric() const {
    ValueType t = type();
    return t == ValueType::kInt || t == ValueType::kDouble ||
           t == ValueType::kDate;
  }

  /// Accessors; each requires the matching type().
  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsText() const { return std::get<std::string>(data_); }
  int64_t AsDateDays() const;
  /// 0-based ordinal of a parameter value; requires is_param().
  int32_t ParamIndex() const;
  /// Name of a named parameter ("" for positional); requires is_param().
  const std::string& ParamName() const;

  /// Numeric view used by arithmetic and distance computations: INT, DOUBLE
  /// and DATE produce their numeric magnitude; TEXT that parses as a date
  /// produces its day number (so `start_day AROUND '1999/7/3'` works on TEXT
  /// columns); everything else is nullopt.
  std::optional<double> ToNumeric() const;

  /// SQL equality under three-valued logic (NULL ⇒ UNKNOWN). Numeric types
  /// compare by value across INT/DOUBLE/DATE; TEXT compares case-sensitively;
  /// BOOL compares with BOOL only; cross-kind comparisons are false.
  std::optional<bool> SqlEquals(const Value& other) const;

  /// SQL `<` under three-valued logic; same coercion rules as SqlEquals.
  /// Cross-kind comparisons yield UNKNOWN.
  std::optional<bool> SqlLess(const Value& other) const;

  /// Total ordering for ORDER BY / GROUP BY / DISTINCT and index keys:
  /// NULL < BOOL < numeric < TEXT; deterministic across kinds (unlike the
  /// SQL comparisons, never "unknown").
  static int Compare(const Value& a, const Value& b);

  /// Exact equality under the total ordering (NULL equals NULL here).
  bool IdentityEquals(const Value& other) const {
    return Compare(*this, other) == 0;
  }

  /// SQL text rendering (NULL prints as "NULL", booleans as TRUE/FALSE,
  /// doubles trimmed, dates as YYYY-MM-DD).
  std::string ToString() const;

  /// Rendering as a SQL literal (TEXT quoted, DATE as DATE 'YYYY-MM-DD').
  std::string ToSqlLiteral() const;

  /// Hash consistent with IdentityEquals (for hash joins / grouping).
  size_t Hash() const;

 private:
  struct DatePayload {
    int64_t days;
    bool operator==(const DatePayload&) const = default;
  };
  struct ParamPayload {
    int32_t index;
    std::string name;
    bool operator==(const ParamPayload&) const = default;
  };
  using Payload = std::variant<std::monostate, bool, int64_t, double,
                               std::string, DatePayload, ParamPayload>;
  explicit Value(Payload p) : data_(std::move(p)) {}

  Payload data_;
};

/// A tuple: one Value per column of the owning schema.
using Row = std::vector<Value>;

/// Hash of a full row (grouping keys, hash join keys).
size_t HashRow(const Row& row);

/// Hash of the first `width` values of a row (DISTINCT over the visible
/// columns while hidden sort keys trail behind).
size_t HashRowPrefix(const Row& row, size_t width);

/// Identity comparison of two rows (same arity assumed).
bool RowsIdentityEqual(const Row& a, const Row& b);

/// Identity comparison of the first `width` values (both rows must have at
/// least `width` columns).
bool RowPrefixIdentityEqual(const Row& a, const Row& b, size_t width);

}  // namespace prefsql
