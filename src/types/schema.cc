#include "types/schema.h"

#include "util/string_util.h"

namespace prefsql {

Schema::Schema(std::vector<ColumnInfo> columns) : columns_(std::move(columns)) {
  BuildIndex();
}

Schema Schema::FromNames(const std::vector<std::string>& names) {
  std::vector<ColumnInfo> cols;
  cols.reserve(names.size());
  for (const auto& n : names) cols.push_back({"", n});
  return Schema(std::move(cols));
}

void Schema::BuildIndex() {
  by_name_.clear();
  for (size_t i = 0; i < columns_.size(); ++i) {
    by_name_[ToLower(columns_[i].name)].push_back(i);
  }
}

Result<size_t> Schema::Resolve(const std::string& qualifier,
                               const std::string& name) const {
  auto it = by_name_.find(ToLower(name));
  if (it == by_name_.end()) {
    return Status::InvalidArgument("unknown column: " +
                                   (qualifier.empty() ? name
                                                      : qualifier + "." + name));
  }
  if (qualifier.empty()) {
    if (it->second.size() > 1) {
      return Status::InvalidArgument("ambiguous column: " + name);
    }
    return it->second[0];
  }
  std::optional<size_t> found;
  for (size_t idx : it->second) {
    if (EqualsIgnoreCase(columns_[idx].qualifier, qualifier)) {
      if (found) {
        return Status::InvalidArgument("ambiguous column: " + qualifier + "." +
                                       name);
      }
      found = idx;
    }
  }
  if (!found) {
    return Status::InvalidArgument("unknown column: " + qualifier + "." + name);
  }
  return *found;
}

std::optional<size_t> Schema::TryResolve(const std::string& qualifier,
                                         const std::string& name) const {
  auto r = Resolve(qualifier, name);
  if (!r.ok()) return std::nullopt;
  return r.value();
}

Schema::ResolveOutcome Schema::ResolveScoped(const std::string& qualifier,
                                             const std::string& name,
                                             size_t* out) const {
  auto it = by_name_.find(ToLower(name));
  if (it == by_name_.end()) return ResolveOutcome::kNotFound;
  if (qualifier.empty()) {
    if (it->second.size() > 1) return ResolveOutcome::kAmbiguous;
    *out = it->second[0];
    return ResolveOutcome::kFound;
  }
  std::optional<size_t> found;
  for (size_t idx : it->second) {
    if (EqualsIgnoreCase(columns_[idx].qualifier, qualifier)) {
      if (found) return ResolveOutcome::kAmbiguous;
      found = idx;
    }
  }
  if (!found) return ResolveOutcome::kNotFound;
  *out = *found;
  return ResolveOutcome::kFound;
}

Schema Schema::Concat(const Schema& right) const {
  std::vector<ColumnInfo> cols = columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::WithQualifier(const std::string& alias) const {
  std::vector<ColumnInfo> cols = columns_;
  for (auto& c : cols) c.qualifier = alias;
  return Schema(std::move(cols));
}

std::vector<std::string> Schema::Names() const {
  std::vector<std::string> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c.name);
  return out;
}

}  // namespace prefsql
