#include "types/result_table.h"

#include <algorithm>

namespace prefsql {

std::string ResultTable::ToString(size_t max_rows) const {
  std::vector<size_t> widths(num_columns());
  std::vector<std::string> headers;
  headers.reserve(num_columns());
  for (size_t c = 0; c < num_columns(); ++c) {
    headers.push_back(schema_.column(c).name);
    widths[c] = headers.back().size();
  }
  size_t shown = std::min(max_rows, rows_.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    cells[r].reserve(num_columns());
    for (size_t c = 0; c < num_columns(); ++c) {
      cells[r].push_back(rows_[r][c].ToString());
      widths[c] = std::max(widths[c], cells[r].back().size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& vals) {
    out += "|";
    for (size_t c = 0; c < vals.size(); ++c) {
      out += " ";
      out += vals[c];
      out.append(widths[c] - vals[c].size(), ' ');
      out += " |";
    }
    out += "\n";
  };
  auto emit_sep = [&] {
    out += "+";
    for (size_t c = 0; c < num_columns(); ++c) {
      out.append(widths[c] + 2, '-');
      out += "+";
    }
    out += "\n";
  };
  emit_sep();
  emit_row(headers);
  emit_sep();
  for (size_t r = 0; r < shown; ++r) emit_row(cells[r]);
  emit_sep();
  if (shown < rows_.size()) {
    out += "(" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

std::string ResultTable::RowToString(size_t row) const {
  std::string out;
  for (size_t c = 0; c < num_columns(); ++c) {
    if (c > 0) out += ",";
    out += rows_[row][c].ToString();
  }
  return out;
}

}  // namespace prefsql
