// RowRef: a tuple either borrowed from stable storage (base-table heap,
// cached view materialization) or owned by the operator that produced it.
//
// The physical operators of the pull pipeline exchange RowRefs instead of
// Rows so that scans, filters and limits never copy tuple payloads; only
// computing operators (projection, join concatenation, aggregation) allocate
// new rows. A borrowed ref must not outlive the storage it points into —
// plans are drained while the whole operator tree (and the catalog objects
// it borrows from) is alive, which makes borrowing safe by construction.

#pragma once

#include <utility>

#include "types/value.h"

namespace prefsql {

/// A reference-or-value row handle passed between physical operators.
class RowRef {
 public:
  RowRef() = default;

  /// Views a row owned by someone else; `row` must outlive the ref.
  static RowRef Borrowed(const Row* row) {
    RowRef r;
    r.borrowed_ = row;
    return r;
  }

  /// Takes ownership of `row`.
  static RowRef Owned(Row row) {
    RowRef r;
    r.owned_ = std::move(row);
    return r;
  }

  const Row& row() const { return borrowed_ != nullptr ? *borrowed_ : owned_; }
  const Row& operator*() const { return row(); }
  const Row* operator->() const { return borrowed_ != nullptr ? borrowed_ : &owned_; }

  bool is_borrowed() const { return borrowed_ != nullptr; }

  /// Materializes the row: moves it out when owned, copies when borrowed.
  Row IntoRow() && {
    if (borrowed_ != nullptr) return *borrowed_;
    return std::move(owned_);
  }

 private:
  Row owned_;
  const Row* borrowed_ = nullptr;
};

}  // namespace prefsql
