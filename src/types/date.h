// Calendar date support.
//
// The paper's trips example uses `start_day AROUND '1999/7/3'` with
// DISTANCE(start_day) measured in days, so dates must participate in numeric
// distance arithmetic. Dates are represented as a day number in the proleptic
// Gregorian calendar (days since 1970-01-01; negative before).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace prefsql {

/// Converts a calendar date to its day number (days since 1970-01-01).
/// Valid for the proleptic Gregorian calendar; no range checking beyond
/// month/day validity.
std::optional<int64_t> DateToDayNumber(int year, int month, int day);

/// Parses 'YYYY/M/D' or 'YYYY-M-D' into a day number. Returns nullopt for
/// anything else (including out-of-range month/day).
std::optional<int64_t> ParseDate(std::string_view text);

/// Formats a day number back to 'YYYY-MM-DD'.
std::string FormatDate(int64_t day_number);

}  // namespace prefsql
