// RowBatch: the unit of exchange of the batch-at-a-time (vectorized)
// operator pipeline. Instead of one virtual Next() call per row, operators
// hand over up to kRowBatchCapacity rows at once:
//
//   * `rows`  — the batch's row references, in pull order. A RowRef either
//     borrows storage-resident rows (scans) or owns computed ones
//     (projections, BMO augmentation), exactly as in row-at-a-time mode.
//   * `sel`   — the selection vector: ascending indices into `rows` naming
//     the live rows. Filters never move row data; they compact `sel` in
//     place, so a predicate pass over 1024 rows costs one column-index
//     resolution and zero row copies.
//
// Per-row bookkeeping amortizes across the batch: one interrupt poll, one
// memory-budget charge, and (for heap scans) one MVCC visibility sweep per
// batch instead of per row — that, plus the virtual-call amortization, is
// what feeds the SIMD dominance kernels at memory speed.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "types/row_view.h"

namespace prefsql {

/// Target rows per NextBatch call. 1024 RowRefs (~40 KiB of refs plus the
/// selection vector) stay L1/L2-resident while amortizing the per-call
/// overhead ~1000x over row-at-a-time pulls.
inline constexpr size_t kRowBatchCapacity = 1024;

struct RowBatch {
  std::vector<RowRef> rows;
  std::vector<uint32_t> sel;

  /// Appends a row as selected (identity selection while filling).
  void PushRow(RowRef ref) {
    sel.push_back(static_cast<uint32_t>(rows.size()));
    rows.push_back(std::move(ref));
  }

  void Clear() {
    rows.clear();
    sel.clear();
  }

  size_t selected() const { return sel.size(); }
  bool empty() const { return sel.empty(); }
};

}  // namespace prefsql
