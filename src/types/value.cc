#include "types/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "types/date.h"
#include "util/string_util.h"

namespace prefsql {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOLEAN";
    case ValueType::kInt:
      return "INTEGER";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kText:
      return "TEXT";
    case ValueType::kDate:
      return "DATE";
    case ValueType::kParam:
      return "PARAMETER";
  }
  return "?";
}

std::optional<ColumnType> ParseColumnType(const std::string& name) {
  std::string n = ToUpper(name);
  if (n == "INT" || n == "INTEGER" || n == "BIGINT" || n == "SMALLINT") {
    return ColumnType::kInt;
  }
  if (n == "DOUBLE" || n == "REAL" || n == "FLOAT" || n == "NUMERIC" ||
      n == "DECIMAL") {
    return ColumnType::kDouble;
  }
  if (n == "TEXT" || n == "VARCHAR" || n == "CHAR" || n == "STRING") {
    return ColumnType::kText;
  }
  if (n == "BOOLEAN" || n == "BOOL") return ColumnType::kBool;
  if (n == "DATE") return ColumnType::kDate;
  return std::nullopt;
}

Value Value::Date(int64_t day_number) {
  return Value(Payload(DatePayload{day_number}));
}

Value Value::Param(int32_t index, std::string name) {
  return Value(Payload(ParamPayload{index, std::move(name)}));
}

int32_t Value::ParamIndex() const {
  return std::get<ParamPayload>(data_).index;
}

const std::string& Value::ParamName() const {
  return std::get<ParamPayload>(data_).name;
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBool;
    case 2:
      return ValueType::kInt;
    case 3:
      return ValueType::kDouble;
    case 4:
      return ValueType::kText;
    case 5:
      return ValueType::kDate;
    case 6:
      return ValueType::kParam;
  }
  return ValueType::kNull;
}

int64_t Value::AsInt() const {
  if (auto* d = std::get_if<double>(&data_)) return static_cast<int64_t>(*d);
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  if (auto* i = std::get_if<int64_t>(&data_)) return static_cast<double>(*i);
  if (auto* dt = std::get_if<DatePayload>(&data_)) {
    return static_cast<double>(dt->days);
  }
  return std::get<double>(data_);
}

int64_t Value::AsDateDays() const { return std::get<DatePayload>(data_).days; }

std::optional<double> Value::ToNumeric() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(std::get<int64_t>(data_));
    case ValueType::kDouble:
      return std::get<double>(data_);
    case ValueType::kDate:
      return static_cast<double>(std::get<DatePayload>(data_).days);
    case ValueType::kText: {
      auto days = ParseDate(std::get<std::string>(data_));
      if (days) return static_cast<double>(*days);
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

namespace {

// Comparison kind buckets: values of the same bucket are comparable.
// Parameter placeholders never execute; they get a bucket of their own so
// the total ordering stays total if one slips into a sort.
enum class Kind { kNull, kBool, kNumeric, kText, kParam };

Kind KindOf(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return Kind::kNull;
    case ValueType::kBool:
      return Kind::kBool;
    case ValueType::kText:
      return Kind::kText;
    case ValueType::kParam:
      return Kind::kParam;
    default:
      return Kind::kNumeric;
  }
}

}  // namespace

std::optional<bool> Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return std::nullopt;
  Kind ka = KindOf(*this), kb = KindOf(other);
  if (ka != kb) {
    // TEXT vs DATE comparisons succeed when the text parses as a date; other
    // cross-kind comparisons are simply false (dynamic typing, SQLite-like).
    if ((type() == ValueType::kDate && other.type() == ValueType::kText) ||
        (type() == ValueType::kText && other.type() == ValueType::kDate)) {
      auto a = ToNumeric(), b = other.ToNumeric();
      if (a && b) return *a == *b;
    }
    return false;
  }
  switch (ka) {
    case Kind::kBool:
      return AsBool() == other.AsBool();
    case Kind::kNumeric:
      return AsDouble() == other.AsDouble();
    case Kind::kText:
      return AsText() == other.AsText();
    default:
      return std::nullopt;
  }
}

std::optional<bool> Value::SqlLess(const Value& other) const {
  if (is_null() || other.is_null()) return std::nullopt;
  Kind ka = KindOf(*this), kb = KindOf(other);
  if (ka != kb) {
    if ((type() == ValueType::kDate || other.type() == ValueType::kDate)) {
      auto a = ToNumeric(), b = other.ToNumeric();
      if (a && b) return *a < *b;
    }
    return std::nullopt;
  }
  switch (ka) {
    case Kind::kBool:
      return AsBool() < other.AsBool();
    case Kind::kNumeric:
      return AsDouble() < other.AsDouble();
    case Kind::kText:
      return AsText() < other.AsText();
    default:
      return std::nullopt;
  }
}

int Value::Compare(const Value& a, const Value& b) {
  Kind ka = KindOf(a), kb = KindOf(b);
  if (ka != kb) return static_cast<int>(ka) < static_cast<int>(kb) ? -1 : 1;
  switch (ka) {
    case Kind::kNull:
      return 0;
    case Kind::kBool:
      return a.AsBool() == b.AsBool() ? 0 : (a.AsBool() < b.AsBool() ? -1 : 1);
    case Kind::kNumeric: {
      double x = a.AsDouble(), y = b.AsDouble();
      if (x < y) return -1;
      if (x > y) return 1;
      return 0;
    }
    case Kind::kText:
      return a.AsText().compare(b.AsText()) < 0
                 ? -1
                 : (a.AsText() == b.AsText() ? 0 : 1);
    case Kind::kParam: {
      int32_t x = a.ParamIndex(), y = b.ParamIndex();
      return x == y ? 0 : (x < y ? -1 : 1);
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble: {
      double d = std::get<double>(data_);
      if (d == static_cast<int64_t>(d) && std::abs(d) < 1e15) {
        // Integral doubles print without trailing zeros (e.g. "40000").
        return std::to_string(static_cast<int64_t>(d));
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", d);
      return buf;
    }
    case ValueType::kText:
      return AsText();
    case ValueType::kDate:
      return FormatDate(AsDateDays());
    case ValueType::kParam:
      // Prints exactly as the placeholder was written, so ASTs containing
      // parameters round-trip through the printer and the parser.
      return ParamName().empty() ? "?" : "$" + ParamName();
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  switch (type()) {
    case ValueType::kText:
      return QuoteSqlString(AsText());
    case ValueType::kDate:
      return "DATE " + QuoteSqlString(FormatDate(AsDateDays()));
    default:
      return ToString();
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kBool:
      return AsBool() ? 2 : 1;
    case ValueType::kText:
      return std::hash<std::string>{}(AsText());
    case ValueType::kParam:
      return 0x517cc1b727220a95ULL ^ static_cast<size_t>(ParamIndex());
    default:
      // All numeric kinds hash through double so INT 3, DOUBLE 3.0 and a date
      // with day number 3 collide consistently with IdentityEquals.
      return std::hash<double>{}(AsDouble());
  }
}

size_t HashRow(const Row& row) { return HashRowPrefix(row, row.size()); }

size_t HashRowPrefix(const Row& row, size_t width) {
  size_t h = 0;
  for (size_t i = 0; i < width && i < row.size(); ++i) {
    h = h * 1099511628211ULL + row[i].Hash();
  }
  return h;
}

bool RowsIdentityEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  return RowPrefixIdentityEqual(a, b, a.size());
}

bool RowPrefixIdentityEqual(const Row& a, const Row& b, size_t width) {
  for (size_t i = 0; i < width; ++i) {
    if (!a[i].IdentityEquals(b[i])) return false;
  }
  return true;
}

}  // namespace prefsql
