// Schema: ordered, possibly qualified column names attached to a row stream.

#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace prefsql {

/// One column of a schema. `qualifier` is the table alias the column is
/// visible under ("" when unqualified, e.g. computed expressions).
struct ColumnInfo {
  std::string qualifier;
  std::string name;

  /// "qualifier.name" or just "name".
  std::string FullName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

/// Ordered list of columns with (case-insensitive) name resolution.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnInfo> columns);

  /// Builds an unqualified schema from bare column names.
  static Schema FromNames(const std::vector<std::string>& names);

  size_t num_columns() const { return columns_.size(); }
  const ColumnInfo& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnInfo>& columns() const { return columns_; }

  /// Resolves a column reference. Empty `qualifier` matches any qualifier
  /// but errors when the bare name is ambiguous.
  Result<size_t> Resolve(const std::string& qualifier,
                         const std::string& name) const;

  /// Resolve without error machinery; nullopt when absent or ambiguous.
  std::optional<size_t> TryResolve(const std::string& qualifier,
                                   const std::string& name) const;

  /// Resolution outcome used by scoped (correlated) lookup: kNotFound lets
  /// the evaluator fall through to the outer scope, kAmbiguous is an error.
  enum class ResolveOutcome { kFound, kNotFound, kAmbiguous };
  ResolveOutcome ResolveScoped(const std::string& qualifier,
                               const std::string& name, size_t* out) const;

  /// Schema of `this` followed by `right` (used by joins).
  Schema Concat(const Schema& right) const;

  /// Same columns re-qualified with `alias` (FROM table AS alias).
  Schema WithQualifier(const std::string& alias) const;

  /// Bare column names in order.
  std::vector<std::string> Names() const;

 private:
  void BuildIndex();

  std::vector<ColumnInfo> columns_;
  // Lower-cased bare name -> column positions (for ambiguity detection).
  std::unordered_map<std::string, std::vector<size_t>> by_name_;
};

}  // namespace prefsql
