// ResultTable: a fully materialized query result (schema + rows) with
// pretty-printing, the unit of data exchanged between engine operators.

#pragma once

#include <string>
#include <vector>

#include "types/schema.h"
#include "types/value.h"

namespace prefsql {

/// Materialized relation: a schema and a vector of rows.
class ResultTable {
 public:
  ResultTable() = default;
  ResultTable(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  Schema& schema() { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& rows() { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_.num_columns(); }

  /// Cell accessor (no bounds checking beyond vector's).
  const Value& at(size_t row, size_t col) const { return rows_[row][col]; }

  /// ASCII-art rendering with a header line, for examples and debugging.
  std::string ToString(size_t max_rows = 100) const;

  /// One-line CSV-ish rendering of a single row (tests).
  std::string RowToString(size_t row) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace prefsql
