#include "preference/validate.h"

#include "util/string_util.h"

namespace prefsql {

Status CheckStrictPartialOrder(const CompiledPreference& pref,
                               const std::vector<PrefKey>& keys) {
  const size_t n = keys.size();
  // Irreflexivity: Compare(k, k) must be equivalent, never better/worse.
  for (size_t i = 0; i < n; ++i) {
    if (pref.Compare(keys[i], keys[i]) != Rel::kEquivalent) {
      return Status::Internal(StringPrintf(
          "irreflexivity violated: key %zu compares non-equivalent to itself",
          i));
    }
  }
  // Asymmetry + consistency of the flipped comparison.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      Rel ij = pref.Compare(keys[i], keys[j]);
      Rel ji = pref.Compare(keys[j], keys[i]);
      if (ji != FlipRel(ij)) {
        return Status::Internal(StringPrintf(
            "asymmetry violated between keys %zu and %zu: %s vs %s", i, j,
            RelToString(ij), RelToString(ji)));
      }
    }
  }
  // Transitivity of dominance and of equivalence.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      Rel ij = pref.Compare(keys[i], keys[j]);
      if (ij != Rel::kBetter && ij != Rel::kEquivalent) continue;
      for (size_t k = 0; k < n; ++k) {
        Rel jk = pref.Compare(keys[j], keys[k]);
        Rel ik = pref.Compare(keys[i], keys[k]);
        if (ij == Rel::kBetter && jk == Rel::kBetter && ik != Rel::kBetter) {
          return Status::Internal(StringPrintf(
              "transitivity violated: %zu>%zu and %zu>%zu but %zu vs %zu is %s",
              i, j, j, k, i, k, RelToString(ik)));
        }
        if (ij == Rel::kEquivalent && jk == Rel::kEquivalent &&
            ik != Rel::kEquivalent) {
          return Status::Internal(StringPrintf(
              "equivalence not transitive across keys %zu, %zu, %zu", i, j, k));
        }
        // Mixed: better . equivalent = better.
        if (ij == Rel::kBetter && jk == Rel::kEquivalent &&
            ik != Rel::kBetter) {
          return Status::Internal(StringPrintf(
              "substitutability violated across keys %zu, %zu, %zu", i, j, k));
        }
      }
    }
  }
  // LexLess must be a linear extension: a dominates b => LexLess(a, b).
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (pref.Compare(keys[i], keys[j]) == Rel::kBetter &&
          !pref.LexLess(keys[i], keys[j])) {
        return Status::Internal(StringPrintf(
            "LexLess is not a linear extension for keys %zu, %zu", i, j));
      }
    }
  }
  return Status::OK();
}

Status CheckBmoIsMaximalSet(const CompiledPreference& pref,
                            const std::vector<PrefKey>& keys,
                            const std::vector<size_t>& bmo) {
  std::vector<bool> in_bmo(keys.size(), false);
  for (size_t idx : bmo) {
    if (idx >= keys.size()) {
      return Status::Internal("BMO index out of range");
    }
    in_bmo[idx] = true;
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < keys.size(); ++j) {
      if (pref.Compare(keys[j], keys[i]) == Rel::kBetter) {
        dominated = true;
        break;
      }
    }
    if (in_bmo[i] && dominated) {
      return Status::Internal(StringPrintf(
          "BMO contains dominated key %zu", i));
    }
    if (!in_bmo[i] && !dominated) {
      return Status::Internal(StringPrintf(
          "BMO is missing maximal key %zu", i));
    }
  }
  return Status::OK();
}

}  // namespace prefsql
