// Composite preferences: compilation of a PrefTerm AST into a runtime
// object combining base preferences with Pareto accumulation ("AND") and
// prioritization ("CASCADE"), §2.2.2.

#pragma once

#include <memory>
#include <vector>

#include "engine/evaluator.h"
#include "preference/dominance_program.h"
#include "preference/key_store.h"
#include "preference/preference.h"
#include "sql/ast.h"
#include "types/schema.h"
#include "util/status.h"

namespace prefsql {

/// One leaf of a compiled preference: the base preference plus the attribute
/// expression it evaluates, in pre-order position `slot`.
struct PrefLeaf {
  std::unique_ptr<BasePreference> pref;
  ExprPtr attr;
};

/// Node of the constructor tree; leaves reference `PrefLeaf` slots.
/// DUAL does not appear here: it distributes over all constructors and is
/// pushed onto the leaves at compile time (DualBasePreference).
struct PrefNode {
  enum class Kind { kLeaf, kPareto, kPrioritized, kIntersect } kind =
      Kind::kLeaf;
  size_t leaf_slot = 0;  // kLeaf
  std::vector<std::unique_ptr<PrefNode>> children;
};

/// The comparison key of one tuple: one LeafKey per preference leaf,
/// in pre-order.
using PrefKey = std::vector<LeafKey>;

/// A fully compiled preference: dominance tests, key extraction, and the
/// linear-extension comparator used by sort-based algorithms.
class CompiledPreference {
 public:
  /// Compiles a parsed PREFERRING term. Fails on malformed EXPLICIT edge
  /// sets (cycles) and non-preference input.
  static Result<CompiledPreference> Compile(const PrefTerm& term);

  size_t num_leaves() const { return leaves_.size(); }
  const PrefLeaf& leaf(size_t i) const { return leaves_[i]; }
  const PrefNode& root() const { return *root_; }
  /// The original AST (cloned at compile time; used by the rewriter).
  const PrefTerm& term() const { return *term_; }

  /// Evaluates all leaf attribute expressions for `row` and builds the key.
  Result<PrefKey> MakeKey(const Schema& schema, const Row& row,
                          SubqueryRunner* runner = nullptr) const;

  /// Evaluates the leaf attribute expressions for `row` and appends the key
  /// to `store` (which must be bound to num_leaves() leaves) — the packed
  /// equivalent of MakeKey, with no per-tuple allocation.
  Status AppendKey(const Schema& schema, const Row& row, KeyStore* store,
                   SubqueryRunner* runner = nullptr) const;

  /// The flat dominance program the BMO kernels evaluate (compiled once).
  const DominanceProgram& program() const { return program_; }

  /// Stable structural hash of the whole preference: constructor tree shape,
  /// per-leaf BasePreference::Fingerprint, and the leaf attribute
  /// expressions (as SQL text). Equal fingerprints mean the compiled
  /// preferences produce identical keys and identical dominance outcomes
  /// over any relation — the preference component of the engine's key-cache
  /// keys. Computed once at Compile time.
  uint64_t Fingerprint() const { return fingerprint_; }

  /// Compares two tuples under the full preference tree — the recursive
  /// reference implementation; program() is the production kernel and is
  /// property-tested against this oracle.
  Rel Compare(const PrefKey& a, const PrefKey& b) const;

  /// True iff `a` strictly dominates `b`.
  bool Dominates(const PrefKey& a, const PrefKey& b) const {
    return Compare(a, b) == Rel::kBetter;
  }

  /// Pre-order lexicographic comparison by leaf scores — a linear extension
  /// of the preference order (Dominates(a, b) implies LexLess(a, b)), used
  /// by the SFS presort. Ties are broken arbitrarily but deterministically.
  bool LexLess(const PrefKey& a, const PrefKey& b) const;

  /// Leaf slot whose attribute expression is exactly the column `name`
  /// (qualifier-insensitive); used to resolve quality functions LEVEL(A)
  /// etc. Error when no or several base preferences mention the column.
  Result<size_t> LeafForColumn(const std::string& name) const;

  /// True iff every leaf supports the single-column SQL encoding (weak
  /// order); when false the rewriter refuses and BMO runs in-engine.
  bool IsRewritable() const;

  CompiledPreference(CompiledPreference&&) = default;
  CompiledPreference& operator=(CompiledPreference&&) = default;

 private:
  CompiledPreference() = default;

  static Result<std::unique_ptr<PrefNode>> Build(
      const PrefTerm& term, std::vector<PrefLeaf>* leaves, bool dualize);

  Rel CompareNode(const PrefNode& node, const PrefKey& a,
                  const PrefKey& b) const;

  uint64_t FingerprintNode(const PrefNode& node, uint64_t h) const;

  std::vector<PrefLeaf> leaves_;
  std::unique_ptr<PrefNode> root_;
  PrefTermPtr term_;
  DominanceProgram program_;
  uint64_t fingerprint_ = 0;
};

}  // namespace prefsql
