// Compiled dominance programs: the PrefNode constructor tree flattened into
// a small array of opcodes evaluated iteratively, so the BMO hot loop
// (O(n²) dominance tests, §3.2) runs without per-leaf virtual dispatch or
// recursion through the tree.
//
// An op is one node of the (same-kind-flattened) tree in pre-order; each op
// records `end`, the index one past its subtree, which lets the combinators
// short-circuit — a Prioritized node jumps past its remaining children on
// the first non-equivalent component, a Pareto node on the first
// incomparable one.
//
// Two packed kernels specialize the common shapes over the KeyStore's
// contiguous score rows:
//   * kPackedPareto — the preference is a Pareto accumulation of weak-order
//     leaves (the classic skyline case): compare two score slices with a
//     branch-light flag loop.
//   * kPackedLex    — a prioritization of weak-order leaves: first differing
//     score decides.
// Everything else (EXPLICIT partial orders, nested mixes, INTERSECT) runs
// the generic iterative evaluator. The recursive
// CompiledPreference::Compare stays untouched as the parity oracle.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "preference/key_store.h"
#include "preference/preference.h"

namespace prefsql {

struct PrefNode;
struct PrefLeaf;

/// Which comparison kernel a compiled program dispatches to.
enum class DominanceKernel : uint8_t {
  kGeneric,       ///< iterative opcode evaluator (any preference shape)
  kPackedPareto,  ///< all-weak-order Pareto: flat score-slice comparison
  kPackedLex,     ///< all-weak-order prioritization: lexicographic scores
};

const char* DominanceKernelToString(DominanceKernel k);

/// One opcode of a compiled dominance program.
struct DomOp {
  enum class Kind : uint8_t {
    kLeafWeak,     ///< weak-order leaf: compare scores directly
    kLeafGeneral,  ///< leaf with an overriding Compare (EXPLICIT DAGs)
    kPareto,
    kPrioritized,
    kIntersect,
  };
  Kind kind = Kind::kLeafWeak;
  uint32_t slot = 0;  ///< leaf slot (leaves only)
  uint32_t end = 0;   ///< one past this op's subtree in the program
  const BasePreference* pref = nullptr;  ///< kLeafGeneral only (not owned)
};

class DominanceProgram {
 public:
  DominanceProgram() = default;

  /// Flattens the constructor tree into opcodes and picks the kernel. The
  /// emitted `pref` pointers alias the BasePreference objects owned by
  /// `leaves`; the program must not outlive its CompiledPreference.
  static DominanceProgram Compile(const PrefNode& root,
                                  const std::vector<PrefLeaf>& leaves);

  DominanceKernel kernel() const { return kernel_; }
  size_t num_ops() const { return ops_.size(); }

  /// Compares tuples `a` and `b` of `keys` under the full preference.
  Rel Compare(const KeyStore& keys, size_t a, size_t b) const {
    return Compare(keys.scores(a), keys.ids(a), keys.scores(b), keys.ids(b));
  }

  /// True iff `a` strictly dominates `b`.
  bool Dominates(const KeyStore& keys, size_t a, size_t b) const {
    const double* sa = keys.scores(a);
    const double* sb = keys.scores(b);
    if (kernel_ == DominanceKernel::kPackedPareto) {
      bool strict = false;
      for (size_t i = 0; i < num_leaves_; ++i) {
        if (sa[i] > sb[i]) return false;
        strict |= sa[i] < sb[i];
      }
      return strict;
    }
    return Compare(sa, keys.ids(a), sb, keys.ids(b)) == Rel::kBetter;
  }

  /// Raw-slice comparison (slices must hold one score/id per leaf).
  Rel Compare(const double* sa, const int32_t* ia, const double* sb,
              const int32_t* ib) const;

 private:
  Rel GenericCompare(const double* sa, const int32_t* ia, const double* sb,
                     const int32_t* ib) const;

  std::vector<DomOp> ops_;
  size_t num_leaves_ = 0;
  size_t max_depth_ = 0;  ///< composite nesting depth (frame stack bound)
  DominanceKernel kernel_ = DominanceKernel::kGeneric;
};

}  // namespace prefsql
