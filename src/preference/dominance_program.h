// Compiled dominance programs: the PrefNode constructor tree flattened into
// a small array of opcodes evaluated iteratively, so the BMO hot loop
// (O(n²) dominance tests, §3.2) runs without per-leaf virtual dispatch or
// recursion through the tree.
//
// An op is one node of the (same-kind-flattened) tree in pre-order; each op
// records `end`, the index one past its subtree, which lets the combinators
// short-circuit — a Prioritized node jumps past its remaining children on
// the first non-equivalent component, a Pareto node on the first
// incomparable one.
//
// Two packed kernels specialize the common shapes over the KeyStore's
// contiguous score rows:
//   * kPackedPareto — the preference is a Pareto accumulation of weak-order
//     leaves (the classic skyline case): compare two score slices with a
//     branch-light flag loop.
//   * kPackedLex    — a prioritization of weak-order leaves: first differing
//     score decides.
// Everything else (EXPLICIT partial orders, nested mixes, INTERSECT) runs
// the generic iterative evaluator. The recursive
// CompiledPreference::Compare stays untouched as the parity oracle.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "preference/key_store.h"
#include "preference/preference.h"

namespace prefsql {

struct PrefNode;
struct PrefLeaf;

/// Which comparison kernel a compiled program dispatches to.
enum class DominanceKernel : uint8_t {
  kGeneric,       ///< iterative opcode evaluator (any preference shape)
  kPackedPareto,  ///< all-weak-order Pareto: flat score-slice comparison
  kPackedLex,     ///< all-weak-order prioritization: lexicographic scores
};

const char* DominanceKernelToString(DominanceKernel k);

/// How the block-oriented dominance API (AnyDominates / DominatesBlock)
/// walks a group of KeyStore rows. The generic opcode kernel always runs
/// row-at-a-time; the packed kernels additionally support a portable 4-wide
/// unrolled form and, on x86-64 hosts with AVX2, a vectorized form
/// comparing four rows per instruction with movemask accumulators.
enum class SimdVariant : uint8_t {
  kScalar,     ///< one row at a time (also the generic kernel's only form)
  kUnrolled4,  ///< portable 4-wide unrolled blocks (any host)
  kAvx2,       ///< AVX2 256-bit blocks (x86-64 only, runtime-detected)
};

const char* SimdVariantToString(SimdVariant v);

/// The widest variant this build/host supports, honoring the
/// `PREFSQL_SIMD` environment override (`scalar`/`off`, `unrolled4`,
/// `avx2`; an unsupported request clamps down). Detected once per process.
SimdVariant DispatchedSimdVariant();

/// EXPLAIN/bench name of a (kernel, variant) pair: the packed kernels get
/// a variant suffix ("packed-pareto-avx2"), the generic kernel does not.
std::string DominanceKernelVariantName(DominanceKernel k, SimdVariant v);

/// One opcode of a compiled dominance program.
struct DomOp {
  enum class Kind : uint8_t {
    kLeafWeak,     ///< weak-order leaf: compare scores directly
    kLeafGeneral,  ///< leaf with an overriding Compare (EXPLICIT DAGs)
    kPareto,
    kPrioritized,
    kIntersect,
  };
  Kind kind = Kind::kLeafWeak;
  uint32_t slot = 0;  ///< leaf slot (leaves only)
  uint32_t end = 0;   ///< one past this op's subtree in the program
  const BasePreference* pref = nullptr;  ///< kLeafGeneral only (not owned)
};

class DominanceProgram {
 public:
  DominanceProgram() = default;

  /// Flattens the constructor tree into opcodes and picks the kernel. The
  /// emitted `pref` pointers alias the BasePreference objects owned by
  /// `leaves`; the program must not outlive its CompiledPreference.
  static DominanceProgram Compile(const PrefNode& root,
                                  const std::vector<PrefLeaf>& leaves);

  DominanceKernel kernel() const { return kernel_; }
  size_t num_ops() const { return ops_.size(); }

  /// Compares tuples `a` and `b` of `keys` under the full preference.
  Rel Compare(const KeyStore& keys, size_t a, size_t b) const {
    return Compare(keys.scores(a), keys.ids(a), keys.scores(b), keys.ids(b));
  }

  /// True iff `a` strictly dominates `b`.
  bool Dominates(const KeyStore& keys, size_t a, size_t b) const {
    const double* sa = keys.scores(a);
    const double* sb = keys.scores(b);
    if (kernel_ == DominanceKernel::kPackedPareto) {
      bool strict = false;
      for (size_t i = 0; i < num_leaves_; ++i) {
        if (sa[i] > sb[i]) return false;
        strict |= sa[i] < sb[i];
      }
      return strict;
    }
    return Compare(sa, keys.ids(a), sb, keys.ids(b)) == Rel::kBetter;
  }

  /// Raw-slice comparison (slices must hold one score/id per leaf).
  Rel Compare(const double* sa, const int32_t* ia, const double* sb,
              const int32_t* ib) const;

  // -- Block-oriented dominance API ---------------------------------------
  // The BMO inner loops test one tuple against a set of rows (a window, a
  // growing result, an elimination filter). These entry points take the
  // whole row set at once so the packed kernels can stream 4 rows per
  // iteration (unrolled or AVX2); the generic kernel falls back to the
  // scalar loop regardless of `variant`. `comparisons`, when non-null, is
  // incremented by the number of row tests actually performed (blocks
  // count every lane of a visited group).

  /// True iff any rows[i] (i < count) strictly dominates `target`. A row
  /// equal to `target` (including target itself) never counts — equal keys
  /// are not strict dominance — so callers may pass unfiltered row sets.
  bool AnyDominates(const KeyStore& keys, const size_t* rows, size_t count,
                    size_t target, SimdVariant variant,
                    size_t* comparisons) const;

  /// Sets out_dominated[i] = 1 iff `candidate` strictly dominates rows[i],
  /// 0 otherwise (i < count).
  void DominatesBlock(const KeyStore& keys, size_t candidate,
                      const size_t* rows, size_t count,
                      uint8_t* out_dominated, SimdVariant variant,
                      size_t* comparisons) const;

 private:
  Rel GenericCompare(const double* sa, const int32_t* ia, const double* sb,
                     const int32_t* ib) const;

  std::vector<DomOp> ops_;
  size_t num_leaves_ = 0;
  size_t max_depth_ = 0;  ///< composite nesting depth (frame stack bound)
  DominanceKernel kernel_ = DominanceKernel::kGeneric;
};

}  // namespace prefsql
