// Runtime preference model: strict partial orders over attribute values
// (paper §2.1). A base preference compares two attribute values; composite
// preferences (Pareto, prioritized) are built in composite.h.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "sql/ast.h"
#include "types/value.h"
#include "util/status.h"

namespace prefsql {

/// Outcome of comparing two values/tuples under a preference. A strict
/// partial order admits all four outcomes.
enum class Rel {
  kBetter,        ///< a <P-dominates b (a is preferred)
  kWorse,         ///< b is preferred over a
  kEquivalent,    ///< same level; substitutable
  kIncomparable,  ///< neither dominates (only with EXPLICIT or Pareto)
};

/// Human-readable name ("better", ...).
const char* RelToString(Rel rel);

/// The inverse relation (better <-> worse).
Rel FlipRel(Rel rel);

// -- Fingerprinting -----------------------------------------------------
// Building blocks for the structural hashes that key the engine's caches
// (FNV-1a, 64-bit). Fingerprints must be stable within a process run and
// must change whenever the hashed object would order values differently.

/// The FNV-1a offset basis; the seed of every fingerprint chain.
inline constexpr uint64_t kFingerprintSeed = 1469598103934665603ULL;

/// Mixes a 64-bit word into a running fingerprint.
uint64_t FingerprintMix(uint64_t h, uint64_t v);

/// Mixes a string into a running fingerprint.
uint64_t FingerprintString(uint64_t h, std::string_view s);

/// Mixes a double into a running fingerprint (by bit pattern; normalizes
/// -0.0 to 0.0 so equal-comparing targets fingerprint equally).
uint64_t FingerprintDouble(uint64_t h, double d);

/// Mixes a Value into a fingerprint: type tag plus rendered form, so
/// Int(1), Double(1.0) and Text('1') stay distinct.
uint64_t FingerprintValue(uint64_t h, const Value& v);

/// Score assigned to NULL / untyped-garbage values: worse than any real
/// value. A large finite number (not infinity) so the SQL rewrite can use the
/// same literal and produce bit-identical orderings.
inline constexpr double kWorstScore = 1.0e308;

/// Per-leaf prepared comparison key: the numeric score (lower is better; a
/// monotone linear extension of the leaf's order) plus, for EXPLICIT
/// preferences, the id of the mentioned value (-1 when unmentioned).
struct LeafKey {
  double score = kWorstScore;
  int32_t explicit_id = -1;
};

/// A base preference: a strict partial order on a single attribute domain.
///
/// All built-in types except EXPLICIT are weak orders: tuples compare by a
/// numeric score (lower is better). EXPLICIT overrides Compare with DAG
/// reachability.
class BasePreference {
 public:
  virtual ~BasePreference() = default;

  /// Preference type name for diagnostics ("AROUND", "POS", ...).
  virtual const char* TypeName() const = 0;

  /// Structural hash of this base preference: type plus every parameter
  /// that affects how values are ordered or scored. Two base preferences
  /// with different behavior must fingerprint differently; the engine's
  /// key cache keys packed KeyStores by the preference tree hash built
  /// from these (CompiledPreference::Fingerprint). The default hashes the
  /// type name only — parameterized subclasses must mix in their state.
  virtual uint64_t Fingerprint() const {
    return FingerprintString(kFingerprintSeed, TypeName());
  }

  /// Numeric score of a value; lower is better; kWorstScore for NULL or
  /// non-applicable values. For every base preference this is a monotone
  /// linear extension of the order: Better(a, b) implies
  /// Score(a) < Score(b). (This is what makes the SFS presort correct.)
  virtual double Score(const Value& v) const = 0;

  /// EXPLICIT only: dictionary id of a mentioned value (-1 otherwise).
  virtual int32_t ExplicitId(const Value& v) const {
    (void)v;
    return -1;
  }

  /// Compares two prepared keys. Default: by score (weak order).
  virtual Rel Compare(const LeafKey& a, const LeafKey& b) const {
    if (a.score < b.score) return Rel::kBetter;
    if (a.score > b.score) return Rel::kWorse;
    return Rel::kEquivalent;
  }

  /// True when Compare is exactly the default score comparison; the packed
  /// dominance kernels (dominance_program.h) may then compare raw scores
  /// without virtual dispatch. Non-weak-order EXPLICIT returns false (its
  /// Compare is DAG reachability, which scores cannot encode).
  virtual bool CompareIsScoreOnly() const { return true; }

  /// Builds the SQL expression computing Score over `attr` (the level column
  /// of the rewriter's Aux view, §3.2). Returns NotImplemented when the
  /// preference cannot be expressed as one numeric column (non-weak-order
  /// EXPLICIT); the query then falls back to in-engine BMO evaluation.
  virtual Result<ExprPtr> ScoreExpr(const Expr& attr) const = 0;

  /// True for discrete-level preferences (POS/NEG/POS-POS/POS-NEG/CONTAINS/
  /// EXPLICIT) where LEVEL() reports the integer level directly.
  virtual bool IsCategorical() const = 0;

  /// Offset subtracted from Score to obtain DISTANCE (0 = perfect match):
  ///   AROUND/BETWEEN -> 0 (score is already the distance),
  ///   categorical    -> 1 (best level is 1),
  ///   HIGHEST/LOWEST -> nullopt: subtract the minimum *observed* score
  ///                     (distance from the observed optimum, §2.2.3).
  virtual std::optional<double> QualityOffset() const = 0;

  /// Builds the key for one attribute value.
  LeafKey MakeKey(const Value& v) const {
    return LeafKey{Score(v), ExplicitId(v)};
  }
};

}  // namespace prefsql
