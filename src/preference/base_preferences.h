// The built-in weak-order base preference types of §2.2.1:
// AROUND, BETWEEN, LOWEST, HIGHEST, POS, NEG, POS/POS, POS/NEG, CONTAINS.
// (EXPLICIT lives in explicit_preference.h — it is a general partial order.)

#pragma once

#include <vector>

#include "preference/preference.h"

namespace prefsql {

/// AROUND z: values closer to the target z are better (score = |v - z|).
class AroundPreference : public BasePreference {
 public:
  explicit AroundPreference(double target) : target_(target) {}
  const char* TypeName() const override { return "AROUND"; }
  uint64_t Fingerprint() const override;
  double Score(const Value& v) const override;
  Result<ExprPtr> ScoreExpr(const Expr& attr) const override;
  bool IsCategorical() const override { return false; }
  std::optional<double> QualityOffset() const override { return 0.0; }
  double target() const { return target_; }

 private:
  double target_;
};

/// BETWEEN [low, up]: values inside the interval are best; outside, closer
/// to the nearer limit is better (score = max(0, low - v, v - up)).
class BetweenPreference : public BasePreference {
 public:
  BetweenPreference(double low, double high) : low_(low), high_(high) {}
  const char* TypeName() const override { return "BETWEEN"; }
  uint64_t Fingerprint() const override;
  double Score(const Value& v) const override;
  Result<ExprPtr> ScoreExpr(const Expr& attr) const override;
  bool IsCategorical() const override { return false; }
  std::optional<double> QualityOffset() const override { return 0.0; }

 private:
  double low_, high_;
};

/// LOWEST: smaller values are better (score = v).
class LowestPreference : public BasePreference {
 public:
  const char* TypeName() const override { return "LOWEST"; }
  double Score(const Value& v) const override;
  Result<ExprPtr> ScoreExpr(const Expr& attr) const override;
  bool IsCategorical() const override { return false; }
  /// DISTANCE is measured from the observed minimum (§2.2.3).
  std::optional<double> QualityOffset() const override { return std::nullopt; }
};

/// HIGHEST: larger values are better (score = -v).
class HighestPreference : public BasePreference {
 public:
  const char* TypeName() const override { return "HIGHEST"; }
  double Score(const Value& v) const override;
  Result<ExprPtr> ScoreExpr(const Expr& attr) const override;
  bool IsCategorical() const override { return false; }
  std::optional<double> QualityOffset() const override { return std::nullopt; }
};

/// Discrete-level preference over value sets; the shared machinery behind
/// POS, NEG, POS/POS and POS/NEG. Levels start at 1 (best).
class LayeredSetPreference : public BasePreference {
 public:
  /// `layers[i]` holds the values at level i+1; values in no layer get level
  /// layers.size() + 1 unless `others_level` overrides it.
  LayeredSetPreference(const char* type_name,
                       std::vector<std::vector<Value>> layers,
                       std::optional<int> others_level = std::nullopt);

  const char* TypeName() const override { return type_name_; }
  uint64_t Fingerprint() const override;
  double Score(const Value& v) const override;
  Result<ExprPtr> ScoreExpr(const Expr& attr) const override;
  bool IsCategorical() const override { return true; }
  std::optional<double> QualityOffset() const override { return 1.0; }

  int num_levels() const { return others_level_; }

 private:
  const char* type_name_;
  std::vector<std::vector<Value>> layers_;
  int others_level_;
};

/// POS set: being in the set (level 1) beats not being in it (level 2).
std::unique_ptr<BasePreference> MakePosPreference(std::vector<Value> values);
/// NEG set: not being in the set (level 1) beats being in it (level 2).
std::unique_ptr<BasePreference> MakeNegPreference(std::vector<Value> values);
/// POS set1 ELSE POS set2: levels 1 / 2 / 3.
std::unique_ptr<BasePreference> MakePosPosPreference(std::vector<Value> set1,
                                                     std::vector<Value> set2);
/// POS set ELSE NEG set: pos -> 1, neutral -> 2, neg -> 3.
std::unique_ptr<BasePreference> MakePosNegPreference(std::vector<Value> pos,
                                                     std::vector<Value> neg);

/// CONTAINS 'text': text attributes containing the needle (case-insensitive)
/// are level 1, others level 2 (simple full-text preference, cf. [LeK99]).
class ContainsPreference : public BasePreference {
 public:
  explicit ContainsPreference(std::string needle)
      : needle_(std::move(needle)) {}
  const char* TypeName() const override { return "CONTAINS"; }
  uint64_t Fingerprint() const override;
  double Score(const Value& v) const override;
  Result<ExprPtr> ScoreExpr(const Expr& attr) const override;
  bool IsCategorical() const override { return true; }
  std::optional<double> QualityOffset() const override { return 1.0; }

 private:
  std::string needle_;
};

}  // namespace prefsql
