// Strict-partial-order validation utilities.
//
// The preference model promises (§2.1) that every preference is an
// irreflexive, transitive, asymmetric relation. These checks verify that
// promise over a concrete key sample; they back the property-test suite and
// can be enabled as a debugging aid on real query keys.

#pragma once

#include <vector>

#include "preference/composite.h"
#include "util/status.h"

namespace prefsql {

/// Verifies irreflexivity, asymmetry and transitivity of `pref` over all
/// pairs/triples of `keys` (O(n^3); intended for tests with small samples).
/// Also checks that LexLess is a linear extension of the order.
Status CheckStrictPartialOrder(const CompiledPreference& pref,
                               const std::vector<PrefKey>& keys);

/// Verifies that `bmo` is exactly the set of maximal elements of `keys`:
/// no result key is dominated by any input key, and every non-result key is
/// dominated by some input key. `bmo` holds indices into `keys`.
Status CheckBmoIsMaximalSet(const CompiledPreference& pref,
                            const std::vector<PrefKey>& keys,
                            const std::vector<size_t>& bmo);

}  // namespace prefsql
