#include "preference/composite.h"

#include "preference/algebra.h"
#include "preference/base_preferences.h"
#include "preference/explicit_preference.h"
#include "sql/printer.h"
#include "util/string_util.h"

namespace prefsql {
namespace {

// Numeric view of a preference literal for AROUND/BETWEEN targets.
Result<double> NumericTarget(const Value& v, const char* what) {
  auto n = v.ToNumeric();
  if (!n) {
    return Status::InvalidArgument(std::string(what) +
                                   " requires a numeric or date literal, got " +
                                   v.ToString());
  }
  return *n;
}

}  // namespace

Result<std::unique_ptr<PrefNode>> CompiledPreference::Build(
    const PrefTerm& term, std::vector<PrefLeaf>* leaves, bool dualize) {
  if (term.kind == PrefKind::kDual) {
    // DUAL distributes over Pareto, prioritization and intersection, so it
    // compiles by toggling the dualize flag on the way to the leaves.
    return Build(*term.children[0], leaves, !dualize);
  }
  if (!term.IsBase()) {
    auto node = std::make_unique<PrefNode>();
    switch (term.kind) {
      case PrefKind::kPareto:
        node->kind = PrefNode::Kind::kPareto;
        break;
      case PrefKind::kPrioritized:
        node->kind = PrefNode::Kind::kPrioritized;
        break;
      case PrefKind::kIntersect:
        node->kind = PrefNode::Kind::kIntersect;
        break;
      default:
        return Status::Internal("unexpected composite kind");
    }
    for (const auto& child : term.children) {
      PSQL_ASSIGN_OR_RETURN(auto c, Build(*child, leaves, dualize));
      node->children.push_back(std::move(c));
    }
    return node;
  }

  std::unique_ptr<BasePreference> base;
  switch (term.kind) {
    case PrefKind::kAround: {
      PSQL_ASSIGN_OR_RETURN(double t, NumericTarget(term.target, "AROUND"));
      base = std::make_unique<AroundPreference>(t);
      break;
    }
    case PrefKind::kBetween: {
      PSQL_ASSIGN_OR_RETURN(double lo, NumericTarget(term.low, "BETWEEN"));
      PSQL_ASSIGN_OR_RETURN(double hi, NumericTarget(term.high, "BETWEEN"));
      if (lo > hi) {
        return Status::InvalidArgument(
            "BETWEEN bounds out of order: low > high");
      }
      base = std::make_unique<BetweenPreference>(lo, hi);
      break;
    }
    case PrefKind::kLowest:
      base = std::make_unique<LowestPreference>();
      break;
    case PrefKind::kHighest:
      base = std::make_unique<HighestPreference>();
      break;
    case PrefKind::kPos:
      base = MakePosPreference(term.values);
      break;
    case PrefKind::kNeg:
      base = MakeNegPreference(term.values);
      break;
    case PrefKind::kPosPos:
      base = MakePosPosPreference(term.values, term.values2);
      break;
    case PrefKind::kPosNeg:
      base = MakePosNegPreference(term.values, term.values2);
      break;
    case PrefKind::kContains:
      base = std::make_unique<ContainsPreference>(term.target.AsText());
      break;
    case PrefKind::kExplicit: {
      PSQL_ASSIGN_OR_RETURN(auto p, ExplicitPreference::Make(term.edges));
      base = std::move(p);
      break;
    }
    case PrefKind::kNamedRef:
      return Status::InvalidArgument(
          "unresolved PREFERENCE reference '" + term.pref_name +
          "' (expand named preferences before compiling)");
    default:
      return Status::Internal("unexpected preference kind");
  }
  if (dualize) {
    base = std::make_unique<DualBasePreference>(std::move(base));
  }
  auto node = std::make_unique<PrefNode>();
  node->kind = PrefNode::Kind::kLeaf;
  node->leaf_slot = leaves->size();
  leaves->push_back(PrefLeaf{std::move(base), term.attr->Clone()});
  return node;
}

Result<CompiledPreference> CompiledPreference::Compile(const PrefTerm& term) {
  CompiledPreference out;
  PSQL_ASSIGN_OR_RETURN(out.root_, Build(term, &out.leaves_,
                                         /*dualize=*/false));
  out.term_ = term.Clone();
  out.program_ = DominanceProgram::Compile(*out.root_, out.leaves_);
  out.fingerprint_ = out.FingerprintNode(*out.root_, kFingerprintSeed);
  return out;
}

uint64_t CompiledPreference::FingerprintNode(const PrefNode& node,
                                             uint64_t h) const {
  h = FingerprintMix(h, static_cast<uint64_t>(node.kind));
  if (node.kind == PrefNode::Kind::kLeaf) {
    const PrefLeaf& leaf = leaves_[node.leaf_slot];
    h = FingerprintMix(h, leaf.pref->Fingerprint());
    return FingerprintString(h, ExprToSql(*leaf.attr));
  }
  h = FingerprintMix(h, node.children.size());
  for (const auto& child : node.children) h = FingerprintNode(*child, h);
  return h;
}

Result<PrefKey> CompiledPreference::MakeKey(const Schema& schema,
                                            const Row& row,
                                            SubqueryRunner* runner) const {
  PrefKey key;
  key.reserve(leaves_.size());
  EvalContext ctx{&schema, &row, nullptr, runner};
  for (const auto& leaf : leaves_) {
    PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(*leaf.attr, ctx));
    key.push_back(leaf.pref->MakeKey(v));
  }
  return key;
}

Status CompiledPreference::AppendKey(const Schema& schema, const Row& row,
                                     KeyStore* store,
                                     SubqueryRunner* runner) const {
  EvalContext ctx{&schema, &row, nullptr, runner};
  for (const auto& leaf : leaves_) {
    auto v = Evaluate(*leaf.attr, ctx);
    if (!v.ok()) {
      store->RollbackRow();
      return v.status();
    }
    LeafKey k = leaf.pref->MakeKey(*v);
    store->PushLeaf(k.score, k.explicit_id);
  }
  store->CommitRow();
  return Status::OK();
}

Rel CompiledPreference::CompareNode(const PrefNode& node, const PrefKey& a,
                                    const PrefKey& b) const {
  switch (node.kind) {
    case PrefNode::Kind::kLeaf:
      return leaves_[node.leaf_slot].pref->Compare(a[node.leaf_slot],
                                                   b[node.leaf_slot]);
    case PrefNode::Kind::kPareto: {
      // a dominates b iff a is better-or-equal in every component and
      // strictly better in at least one (§2.2.2).
      bool some_better = false, some_worse = false;
      for (const auto& child : node.children) {
        switch (CompareNode(*child, a, b)) {
          case Rel::kBetter:
            some_better = true;
            break;
          case Rel::kWorse:
            some_worse = true;
            break;
          case Rel::kIncomparable:
            return Rel::kIncomparable;
          case Rel::kEquivalent:
            break;
        }
        if (some_better && some_worse) return Rel::kIncomparable;
      }
      if (some_better) return Rel::kBetter;
      if (some_worse) return Rel::kWorse;
      return Rel::kEquivalent;
    }
    case PrefNode::Kind::kPrioritized: {
      // Lexicographic: the first non-equivalent component decides.
      for (const auto& child : node.children) {
        Rel rel = CompareNode(*child, a, b);
        if (rel != Rel::kEquivalent) return rel;
      }
      return Rel::kEquivalent;
    }
    case PrefNode::Kind::kIntersect: {
      // a dominates b iff a is strictly better under *every* constituent.
      bool all_better = true, all_worse = true, all_eq = true;
      for (const auto& child : node.children) {
        Rel rel = CompareNode(*child, a, b);
        all_better &= rel == Rel::kBetter;
        all_worse &= rel == Rel::kWorse;
        all_eq &= rel == Rel::kEquivalent;
        if (!all_better && !all_worse && !all_eq) return Rel::kIncomparable;
      }
      if (all_eq) return Rel::kEquivalent;
      if (all_better) return Rel::kBetter;
      if (all_worse) return Rel::kWorse;
      return Rel::kIncomparable;
    }
  }
  return Rel::kIncomparable;
}

Rel CompiledPreference::Compare(const PrefKey& a, const PrefKey& b) const {
  return CompareNode(*root_, a, b);
}

bool CompiledPreference::LexLess(const PrefKey& a, const PrefKey& b) const {
  for (size_t i = 0; i < leaves_.size(); ++i) {
    if (a[i].score < b[i].score) return true;
    if (a[i].score > b[i].score) return false;
  }
  return false;
}

Result<size_t> CompiledPreference::LeafForColumn(
    const std::string& name) const {
  std::optional<size_t> found;
  for (size_t i = 0; i < leaves_.size(); ++i) {
    const Expr& attr = *leaves_[i].attr;
    if (attr.kind == ExprKind::kColumnRef &&
        EqualsIgnoreCase(attr.column, name)) {
      if (found) {
        return Status::InvalidArgument(
            "quality function is ambiguous: several base preferences refer "
            "to column '" + name + "'");
      }
      found = i;
    }
  }
  if (!found) {
    return Status::InvalidArgument(
        "quality function refers to column '" + name +
        "' which no base preference mentions");
  }
  return *found;
}

bool CompiledPreference::IsRewritable() const {
  for (const auto& leaf : leaves_) {
    // Only a non-weak-order EXPLICIT refuses the single-column encoding.
    auto probe = leaf.pref->ScoreExpr(*leaf.attr);
    if (!probe.ok()) return false;
  }
  return true;
}

}  // namespace prefsql
