// AVX2 forms of the packed block dominance kernels (internal to
// preference/). Compiled with a per-function target("avx2") attribute so
// the rest of the library keeps the baseline ISA; DominanceProgram only
// calls these after DispatchedSimdVariant() confirmed runtime support.
//
// Each function walks `rows[0..count)` as slices of `base` (stride =
// num_leaves doubles) against one broadcast candidate/target slice, four
// rows per 256-bit group, accumulating better/worse lane masks and
// deciding groups via movemask. The comparison predicates are ordered-
// quiet (_CMP_LT_OQ/_CMP_GT_OQ): NaN compares false both ways and
// -0.0 == 0.0, exactly like the scalar `<`/`>` the portable kernels use,
// so all variants agree bit-for-bit.

#pragma once

#include <cstddef>
#include <cstdint>

#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define PREFSQL_HAVE_AVX2_BUILD 1
#else
#define PREFSQL_HAVE_AVX2_BUILD 0
#endif

#if PREFSQL_HAVE_AVX2_BUILD

namespace prefsql {
namespace simd_detail {

/// True iff any rows[i] Pareto-dominates the target slice `t`.
bool ParetoAnyDominatesAvx2(const double* base, size_t num_leaves,
                            const size_t* rows, size_t count, const double* t,
                            size_t* tested);

/// out[i] = 1 iff candidate slice `c` Pareto-dominates rows[i].
void ParetoDominatesBlockAvx2(const double* base, size_t num_leaves,
                              const double* c, const size_t* rows,
                              size_t count, uint8_t* out, size_t* tested);

/// True iff any rows[i] lexicographically dominates the target slice `t`.
bool LexAnyDominatesAvx2(const double* base, size_t num_leaves,
                         const size_t* rows, size_t count, const double* t,
                         size_t* tested);

/// out[i] = 1 iff candidate slice `c` lexicographically dominates rows[i].
void LexDominatesBlockAvx2(const double* base, size_t num_leaves,
                           const double* c, const size_t* rows, size_t count,
                           uint8_t* out, size_t* tested);

}  // namespace simd_detail
}  // namespace prefsql

#endif  // PREFSQL_HAVE_AVX2_BUILD
