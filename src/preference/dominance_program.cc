#include "preference/dominance_program.h"

#include <cstdlib>

#include "preference/composite.h"
#include "preference/dominance_simd.h"

namespace prefsql {
namespace {

DomOp::Kind CompositeKind(PrefNode::Kind kind) {
  switch (kind) {
    case PrefNode::Kind::kPareto:
      return DomOp::Kind::kPareto;
    case PrefNode::Kind::kPrioritized:
      return DomOp::Kind::kPrioritized;
    case PrefNode::Kind::kIntersect:
      return DomOp::Kind::kIntersect;
    case PrefNode::Kind::kLeaf:
      break;
  }
  return DomOp::Kind::kLeafWeak;  // unreachable
}

// Emits the children of `node`, inlining same-kind composites: Pareto,
// prioritization and intersection are all associative, so Pareto(a,
// Pareto(b, c)) flattens to one three-child op — which is what lets a
// nested all-weak-order tree still hit the packed kernels.
void EmitChildren(const PrefNode& node, const std::vector<PrefLeaf>& leaves,
                  std::vector<DomOp>* ops, size_t depth, size_t* max_depth);

void EmitNode(const PrefNode& node, const std::vector<PrefLeaf>& leaves,
              std::vector<DomOp>* ops, size_t depth, size_t* max_depth) {
  if (node.kind == PrefNode::Kind::kLeaf) {
    DomOp op;
    const BasePreference* pref = leaves[node.leaf_slot].pref.get();
    op.kind = pref->CompareIsScoreOnly() ? DomOp::Kind::kLeafWeak
                                         : DomOp::Kind::kLeafGeneral;
    op.slot = static_cast<uint32_t>(node.leaf_slot);
    op.pref = pref;
    op.end = static_cast<uint32_t>(ops->size() + 1);
    ops->push_back(op);
    return;
  }
  if (depth + 1 > *max_depth) *max_depth = depth + 1;
  size_t self = ops->size();
  DomOp op;
  op.kind = CompositeKind(node.kind);
  ops->push_back(op);
  EmitChildren(node, leaves, ops, depth + 1, max_depth);
  (*ops)[self].end = static_cast<uint32_t>(ops->size());
}

void EmitChildren(const PrefNode& node, const std::vector<PrefLeaf>& leaves,
                  std::vector<DomOp>* ops, size_t depth, size_t* max_depth) {
  for (const auto& child : node.children) {
    if (child->kind == node.kind) {
      EmitChildren(*child, leaves, ops, depth, max_depth);
    } else {
      EmitNode(*child, leaves, ops, depth, max_depth);
    }
  }
}

Rel PackedParetoCompare(const double* a, const double* b, size_t n) {
  // Branch-light flag accumulation; the only early exit is the combined
  // incomparable case, which also ends most skyline-loop comparisons.
  bool better = false, worse = false;
  for (size_t i = 0; i < n; ++i) {
    better |= a[i] < b[i];
    worse |= a[i] > b[i];
    if (better & worse) return Rel::kIncomparable;
  }
  if (better) return Rel::kBetter;
  if (worse) return Rel::kWorse;
  return Rel::kEquivalent;
}

Rel PackedLexCompare(const double* a, const double* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return Rel::kBetter;
    if (a[i] > b[i]) return Rel::kWorse;
  }
  return Rel::kEquivalent;
}

// -- Scalar single-row helpers for the block API tails --------------------

// Pareto: row strictly dominates target (all <=, some <).
inline bool ParetoRowDominates(const double* r, const double* t, size_t L) {
  bool strict = false;
  for (size_t l = 0; l < L; ++l) {
    if (r[l] > t[l]) return false;
    strict |= r[l] < t[l];
  }
  return strict;
}

// Lexicographic: row strictly dominates target (first difference is <).
inline bool LexRowDominates(const double* r, const double* t, size_t L) {
  for (size_t l = 0; l < L; ++l) {
    if (r[l] < t[l]) return true;
    if (r[l] > t[l]) return false;
  }
  return false;
}

// -- Portable 4-wide unrolled block kernels -------------------------------
// One candidate slice against four KeyStore row slices per iteration, flag
// accumulators per lane, early exit once every lane of the group is
// decided. Exactly the arithmetic the AVX2 forms (dominance_simd.cc) run
// with vector registers, so both paths agree bit-for-bit (NaN compares
// false under < and > in both; -0.0 == 0.0 in both).

bool ParetoAnyDominates4(const double* base, size_t L, const size_t* rows,
                         size_t count, const double* t, size_t* tested) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const double* r0 = base + rows[i] * L;
    const double* r1 = base + rows[i + 1] * L;
    const double* r2 = base + rows[i + 2] * L;
    const double* r3 = base + rows[i + 3] * L;
    bool w0 = false, w1 = false, w2 = false, w3 = false;
    bool s0 = false, s1 = false, s2 = false, s3 = false;
    for (size_t l = 0; l < L; ++l) {
      const double tl = t[l];
      w0 |= r0[l] > tl;
      s0 |= r0[l] < tl;
      w1 |= r1[l] > tl;
      s1 |= r1[l] < tl;
      w2 |= r2[l] > tl;
      s2 |= r2[l] < tl;
      w3 |= r3[l] > tl;
      s3 |= r3[l] < tl;
      if (w0 & w1 & w2 & w3) break;  // every lane already worse somewhere
    }
    if (tested != nullptr) *tested += 4;
    if ((s0 & !w0) | (s1 & !w1) | (s2 & !w2) | (s3 & !w3)) return true;
  }
  for (; i < count; ++i) {
    if (tested != nullptr) ++*tested;
    if (ParetoRowDominates(base + rows[i] * L, t, L)) return true;
  }
  return false;
}

void ParetoDominatesBlock4(const double* base, size_t L, const double* c,
                           const size_t* rows, size_t count, uint8_t* out,
                           size_t* tested) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const double* r0 = base + rows[i] * L;
    const double* r1 = base + rows[i + 1] * L;
    const double* r2 = base + rows[i + 2] * L;
    const double* r3 = base + rows[i + 3] * L;
    bool w0 = false, w1 = false, w2 = false, w3 = false;
    bool s0 = false, s1 = false, s2 = false, s3 = false;
    for (size_t l = 0; l < L; ++l) {
      const double cl = c[l];
      w0 |= cl > r0[l];
      s0 |= cl < r0[l];
      w1 |= cl > r1[l];
      s1 |= cl < r1[l];
      w2 |= cl > r2[l];
      s2 |= cl < r2[l];
      w3 |= cl > r3[l];
      s3 |= cl < r3[l];
      if (w0 & w1 & w2 & w3) break;  // candidate worse in every lane
    }
    if (tested != nullptr) *tested += 4;
    out[i] = static_cast<uint8_t>(s0 & !w0);
    out[i + 1] = static_cast<uint8_t>(s1 & !w1);
    out[i + 2] = static_cast<uint8_t>(s2 & !w2);
    out[i + 3] = static_cast<uint8_t>(s3 & !w3);
  }
  for (; i < count; ++i) {
    if (tested != nullptr) ++*tested;
    out[i] =
        static_cast<uint8_t>(ParetoRowDominates(c, base + rows[i] * L, L));
  }
}

bool LexAnyDominates4(const double* base, size_t L, const size_t* rows,
                      size_t count, const double* t, size_t* tested) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const double* r0 = base + rows[i] * L;
    const double* r1 = base + rows[i + 1] * L;
    const double* r2 = base + rows[i + 2] * L;
    const double* r3 = base + rows[i + 3] * L;
    bool d0 = false, d1 = false, d2 = false, d3 = false;  // decided
    bool b0 = false, b1 = false, b2 = false, b3 = false;  // first diff <
    for (size_t l = 0; l < L; ++l) {
      const double tl = t[l];
      b0 |= !d0 & (r0[l] < tl);
      d0 |= (r0[l] < tl) | (r0[l] > tl);
      b1 |= !d1 & (r1[l] < tl);
      d1 |= (r1[l] < tl) | (r1[l] > tl);
      b2 |= !d2 & (r2[l] < tl);
      d2 |= (r2[l] < tl) | (r2[l] > tl);
      b3 |= !d3 & (r3[l] < tl);
      d3 |= (r3[l] < tl) | (r3[l] > tl);
      if (d0 & d1 & d2 & d3) break;
    }
    if (tested != nullptr) *tested += 4;
    if (b0 | b1 | b2 | b3) return true;
  }
  for (; i < count; ++i) {
    if (tested != nullptr) ++*tested;
    if (LexRowDominates(base + rows[i] * L, t, L)) return true;
  }
  return false;
}

void LexDominatesBlock4(const double* base, size_t L, const double* c,
                        const size_t* rows, size_t count, uint8_t* out,
                        size_t* tested) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const double* r0 = base + rows[i] * L;
    const double* r1 = base + rows[i + 1] * L;
    const double* r2 = base + rows[i + 2] * L;
    const double* r3 = base + rows[i + 3] * L;
    bool d0 = false, d1 = false, d2 = false, d3 = false;
    bool b0 = false, b1 = false, b2 = false, b3 = false;
    for (size_t l = 0; l < L; ++l) {
      const double cl = c[l];
      b0 |= !d0 & (cl < r0[l]);
      d0 |= (cl < r0[l]) | (cl > r0[l]);
      b1 |= !d1 & (cl < r1[l]);
      d1 |= (cl < r1[l]) | (cl > r1[l]);
      b2 |= !d2 & (cl < r2[l]);
      d2 |= (cl < r2[l]) | (cl > r2[l]);
      b3 |= !d3 & (cl < r3[l]);
      d3 |= (cl < r3[l]) | (cl > r3[l]);
      if (d0 & d1 & d2 & d3) break;
    }
    if (tested != nullptr) *tested += 4;
    out[i] = static_cast<uint8_t>(b0);
    out[i + 1] = static_cast<uint8_t>(b1);
    out[i + 2] = static_cast<uint8_t>(b2);
    out[i + 3] = static_cast<uint8_t>(b3);
  }
  for (; i < count; ++i) {
    if (tested != nullptr) ++*tested;
    out[i] = static_cast<uint8_t>(LexRowDominates(c, base + rows[i] * L, L));
  }
}

}  // namespace

const char* DominanceKernelToString(DominanceKernel k) {
  switch (k) {
    case DominanceKernel::kGeneric:
      return "generic";
    case DominanceKernel::kPackedPareto:
      return "packed-pareto";
    case DominanceKernel::kPackedLex:
      return "packed-lex";
  }
  return "?";
}

const char* SimdVariantToString(SimdVariant v) {
  switch (v) {
    case SimdVariant::kScalar:
      return "scalar";
    case SimdVariant::kUnrolled4:
      return "unrolled4";
    case SimdVariant::kAvx2:
      return "avx2";
  }
  return "?";
}

SimdVariant DispatchedSimdVariant() {
  static const SimdVariant v = [] {
#if PREFSQL_HAVE_AVX2_BUILD
    SimdVariant best = __builtin_cpu_supports("avx2") ? SimdVariant::kAvx2
                                                      : SimdVariant::kUnrolled4;
#else
    SimdVariant best = SimdVariant::kUnrolled4;
#endif
    const char* env = std::getenv("PREFSQL_SIMD");
    if (env != nullptr) {
      std::string s(env);
      if (s == "scalar" || s == "off") return SimdVariant::kScalar;
      if (s == "unrolled4") return SimdVariant::kUnrolled4;
      // "avx2" (or anything else) asks for the widest; clamp to supported.
    }
    return best;
  }();
  return v;
}

std::string DominanceKernelVariantName(DominanceKernel k, SimdVariant v) {
  std::string name = DominanceKernelToString(k);
  if (k == DominanceKernel::kGeneric) return name;
  return name + "-" + SimdVariantToString(v);
}

bool DominanceProgram::AnyDominates(const KeyStore& keys, const size_t* rows,
                                    size_t count, size_t target,
                                    SimdVariant variant,
                                    size_t* comparisons) const {
  if (count == 0) return false;
  if (kernel_ == DominanceKernel::kGeneric) variant = SimdVariant::kScalar;
  const double* t = keys.scores(target);
  if (variant != SimdVariant::kScalar) {
    const double* base = keys.scores(0);
#if PREFSQL_HAVE_AVX2_BUILD
    if (variant == SimdVariant::kAvx2) {
      return kernel_ == DominanceKernel::kPackedPareto
                 ? simd_detail::ParetoAnyDominatesAvx2(base, num_leaves_, rows,
                                                       count, t, comparisons)
                 : simd_detail::LexAnyDominatesAvx2(base, num_leaves_, rows,
                                                    count, t, comparisons);
    }
#endif
    return kernel_ == DominanceKernel::kPackedPareto
               ? ParetoAnyDominates4(base, num_leaves_, rows, count, t,
                                     comparisons)
               : LexAnyDominates4(base, num_leaves_, rows, count, t,
                                  comparisons);
  }
  for (size_t i = 0; i < count; ++i) {
    if (comparisons != nullptr) ++*comparisons;
    if (Dominates(keys, rows[i], target)) return true;
  }
  return false;
}

void DominanceProgram::DominatesBlock(const KeyStore& keys, size_t candidate,
                                      const size_t* rows, size_t count,
                                      uint8_t* out_dominated,
                                      SimdVariant variant,
                                      size_t* comparisons) const {
  if (count == 0) return;
  if (kernel_ == DominanceKernel::kGeneric) variant = SimdVariant::kScalar;
  const double* c = keys.scores(candidate);
  if (variant != SimdVariant::kScalar) {
    const double* base = keys.scores(0);
#if PREFSQL_HAVE_AVX2_BUILD
    if (variant == SimdVariant::kAvx2) {
      if (kernel_ == DominanceKernel::kPackedPareto) {
        simd_detail::ParetoDominatesBlockAvx2(base, num_leaves_, c, rows,
                                              count, out_dominated,
                                              comparisons);
      } else {
        simd_detail::LexDominatesBlockAvx2(base, num_leaves_, c, rows, count,
                                           out_dominated, comparisons);
      }
      return;
    }
#endif
    if (kernel_ == DominanceKernel::kPackedPareto) {
      ParetoDominatesBlock4(base, num_leaves_, c, rows, count, out_dominated,
                            comparisons);
    } else {
      LexDominatesBlock4(base, num_leaves_, c, rows, count, out_dominated,
                         comparisons);
    }
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    if (comparisons != nullptr) ++*comparisons;
    out_dominated[i] =
        static_cast<uint8_t>(Dominates(keys, candidate, rows[i]));
  }
}

DominanceProgram DominanceProgram::Compile(
    const PrefNode& root, const std::vector<PrefLeaf>& leaves) {
  DominanceProgram out;
  out.num_leaves_ = leaves.size();
  EmitNode(root, leaves, &out.ops_, 0, &out.max_depth_);

  // Kernel selection: a root composite whose children are all weak-order
  // leaves covers every leaf (pre-order slots 0..L-1), so the packed kernels
  // can stream the full score slices.
  auto all_weak_under = [&](DomOp::Kind root_kind) {
    if (out.ops_.size() != leaves.size() + 1) return false;
    if (out.ops_[0].kind != root_kind) return false;
    for (size_t i = 1; i < out.ops_.size(); ++i) {
      if (out.ops_[i].kind != DomOp::Kind::kLeafWeak) return false;
    }
    return true;
  };
  if (out.ops_.size() == 1 && out.ops_[0].kind == DomOp::Kind::kLeafWeak) {
    // A single weak-order leaf is a degenerate Pareto over one dimension.
    out.kernel_ = DominanceKernel::kPackedPareto;
  } else if (all_weak_under(DomOp::Kind::kPareto)) {
    out.kernel_ = DominanceKernel::kPackedPareto;
  } else if (all_weak_under(DomOp::Kind::kPrioritized)) {
    out.kernel_ = DominanceKernel::kPackedLex;
  } else {
    out.kernel_ = DominanceKernel::kGeneric;
  }
  return out;
}

Rel DominanceProgram::Compare(const double* sa, const int32_t* ia,
                              const double* sb, const int32_t* ib) const {
  switch (kernel_) {
    case DominanceKernel::kPackedPareto:
      return PackedParetoCompare(sa, sb, num_leaves_);
    case DominanceKernel::kPackedLex:
      return PackedLexCompare(sa, sb, num_leaves_);
    case DominanceKernel::kGeneric:
      break;
  }
  return GenericCompare(sa, ia, sb, ib);
}

Rel DominanceProgram::GenericCompare(const double* sa, const int32_t* ia,
                                     const double* sb,
                                     const int32_t* ib) const {
  struct Frame {
    uint32_t end;
    DomOp::Kind kind;
    uint8_t state;
  };
  // Composite nesting is bounded by the parsed expression depth; 64 inline
  // frames cover any realistic PREFERRING clause (flattening removes
  // same-kind nesting entirely). Deeper trees — only reachable through
  // pathological paren nesting — spill to the heap rather than mis-answer.
  constexpr size_t kInlineDepth = 64;
  Frame inline_frames[kInlineDepth];
  std::vector<Frame> heap_frames;
  Frame* stack = inline_frames;
  if (max_depth_ > kInlineDepth) {
    heap_frames.resize(max_depth_);
    stack = heap_frames.data();
  }
  size_t depth = 0;

  constexpr uint8_t kSomeBetter = 1;   // Pareto
  constexpr uint8_t kSomeWorse = 2;    // Pareto
  constexpr uint8_t kAllBetter = 1;    // Intersect
  constexpr uint8_t kAllWorse = 2;     // Intersect
  constexpr uint8_t kAllEquivalent = 4;

  size_t pc = 0;
  Rel val = Rel::kEquivalent;
  bool have = false;  // `val` holds the result of the last finished subtree
  while (true) {
    if (!have) {
      const DomOp& op = ops_[pc];
      switch (op.kind) {
        case DomOp::Kind::kLeafWeak: {
          const double x = sa[op.slot];
          const double y = sb[op.slot];
          val = x < y ? Rel::kBetter : (y < x ? Rel::kWorse : Rel::kEquivalent);
          have = true;
          ++pc;
          break;
        }
        case DomOp::Kind::kLeafGeneral:
          val = op.pref->Compare(LeafKey{sa[op.slot], ia[op.slot]},
                                 LeafKey{sb[op.slot], ib[op.slot]});
          have = true;
          ++pc;
          break;
        default:
          stack[depth++] = Frame{
              op.end, op.kind,
              op.kind == DomOp::Kind::kIntersect
                  ? static_cast<uint8_t>(kAllBetter | kAllWorse |
                                         kAllEquivalent)
                  : uint8_t{0}};
          ++pc;
          break;
      }
      continue;
    }

    // Feed the finished child's relation into the innermost open frame.
    if (depth == 0) return val;
    Frame& f = stack[depth - 1];
    bool resolved = false;
    Rel out = Rel::kEquivalent;
    switch (f.kind) {
      case DomOp::Kind::kPareto:
        if (val == Rel::kIncomparable) {
          resolved = true;
          out = Rel::kIncomparable;
          break;
        }
        if (val == Rel::kBetter) f.state |= kSomeBetter;
        if (val == Rel::kWorse) f.state |= kSomeWorse;
        if (f.state == (kSomeBetter | kSomeWorse)) {
          resolved = true;
          out = Rel::kIncomparable;
        }
        break;
      case DomOp::Kind::kPrioritized:
        if (val != Rel::kEquivalent) {
          resolved = true;
          out = val;
        }
        break;
      case DomOp::Kind::kIntersect: {
        uint8_t s = f.state;
        if (val != Rel::kBetter) s &= static_cast<uint8_t>(~kAllBetter);
        if (val != Rel::kWorse) s &= static_cast<uint8_t>(~kAllWorse);
        if (val != Rel::kEquivalent) s &= static_cast<uint8_t>(~kAllEquivalent);
        f.state = s;
        if (s == 0) {
          resolved = true;
          out = Rel::kIncomparable;
        }
        break;
      }
      default:
        break;
    }
    if (resolved) {
      pc = f.end;  // short-circuit: skip the frame's remaining children
      --depth;
      val = out;
      continue;  // propagate upward (have stays true)
    }
    if (pc == f.end) {
      // All children consumed without an early decision: finalize.
      switch (f.kind) {
        case DomOp::Kind::kPareto:
          out = (f.state & kSomeBetter) ? Rel::kBetter
                : (f.state & kSomeWorse) ? Rel::kWorse
                                         : Rel::kEquivalent;
          break;
        case DomOp::Kind::kIntersect:
          out = (f.state & kAllEquivalent) ? Rel::kEquivalent
                : (f.state & kAllBetter)   ? Rel::kBetter
                : (f.state & kAllWorse)    ? Rel::kWorse
                                           : Rel::kIncomparable;
          break;
        default:  // kPrioritized: every component equivalent
          out = Rel::kEquivalent;
          break;
      }
      --depth;
      val = out;
      continue;
    }
    have = false;  // evaluate the frame's next child at pc
  }
}

}  // namespace prefsql
