#include "preference/dominance_program.h"

#include "preference/composite.h"

namespace prefsql {
namespace {

DomOp::Kind CompositeKind(PrefNode::Kind kind) {
  switch (kind) {
    case PrefNode::Kind::kPareto:
      return DomOp::Kind::kPareto;
    case PrefNode::Kind::kPrioritized:
      return DomOp::Kind::kPrioritized;
    case PrefNode::Kind::kIntersect:
      return DomOp::Kind::kIntersect;
    case PrefNode::Kind::kLeaf:
      break;
  }
  return DomOp::Kind::kLeafWeak;  // unreachable
}

// Emits the children of `node`, inlining same-kind composites: Pareto,
// prioritization and intersection are all associative, so Pareto(a,
// Pareto(b, c)) flattens to one three-child op — which is what lets a
// nested all-weak-order tree still hit the packed kernels.
void EmitChildren(const PrefNode& node, const std::vector<PrefLeaf>& leaves,
                  std::vector<DomOp>* ops, size_t depth, size_t* max_depth);

void EmitNode(const PrefNode& node, const std::vector<PrefLeaf>& leaves,
              std::vector<DomOp>* ops, size_t depth, size_t* max_depth) {
  if (node.kind == PrefNode::Kind::kLeaf) {
    DomOp op;
    const BasePreference* pref = leaves[node.leaf_slot].pref.get();
    op.kind = pref->CompareIsScoreOnly() ? DomOp::Kind::kLeafWeak
                                         : DomOp::Kind::kLeafGeneral;
    op.slot = static_cast<uint32_t>(node.leaf_slot);
    op.pref = pref;
    op.end = static_cast<uint32_t>(ops->size() + 1);
    ops->push_back(op);
    return;
  }
  if (depth + 1 > *max_depth) *max_depth = depth + 1;
  size_t self = ops->size();
  DomOp op;
  op.kind = CompositeKind(node.kind);
  ops->push_back(op);
  EmitChildren(node, leaves, ops, depth + 1, max_depth);
  (*ops)[self].end = static_cast<uint32_t>(ops->size());
}

void EmitChildren(const PrefNode& node, const std::vector<PrefLeaf>& leaves,
                  std::vector<DomOp>* ops, size_t depth, size_t* max_depth) {
  for (const auto& child : node.children) {
    if (child->kind == node.kind) {
      EmitChildren(*child, leaves, ops, depth, max_depth);
    } else {
      EmitNode(*child, leaves, ops, depth, max_depth);
    }
  }
}

Rel PackedParetoCompare(const double* a, const double* b, size_t n) {
  // Branch-light flag accumulation; the only early exit is the combined
  // incomparable case, which also ends most skyline-loop comparisons.
  bool better = false, worse = false;
  for (size_t i = 0; i < n; ++i) {
    better |= a[i] < b[i];
    worse |= a[i] > b[i];
    if (better & worse) return Rel::kIncomparable;
  }
  if (better) return Rel::kBetter;
  if (worse) return Rel::kWorse;
  return Rel::kEquivalent;
}

Rel PackedLexCompare(const double* a, const double* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] < b[i]) return Rel::kBetter;
    if (a[i] > b[i]) return Rel::kWorse;
  }
  return Rel::kEquivalent;
}

}  // namespace

const char* DominanceKernelToString(DominanceKernel k) {
  switch (k) {
    case DominanceKernel::kGeneric:
      return "generic";
    case DominanceKernel::kPackedPareto:
      return "packed-pareto";
    case DominanceKernel::kPackedLex:
      return "packed-lex";
  }
  return "?";
}

DominanceProgram DominanceProgram::Compile(
    const PrefNode& root, const std::vector<PrefLeaf>& leaves) {
  DominanceProgram out;
  out.num_leaves_ = leaves.size();
  EmitNode(root, leaves, &out.ops_, 0, &out.max_depth_);

  // Kernel selection: a root composite whose children are all weak-order
  // leaves covers every leaf (pre-order slots 0..L-1), so the packed kernels
  // can stream the full score slices.
  auto all_weak_under = [&](DomOp::Kind root_kind) {
    if (out.ops_.size() != leaves.size() + 1) return false;
    if (out.ops_[0].kind != root_kind) return false;
    for (size_t i = 1; i < out.ops_.size(); ++i) {
      if (out.ops_[i].kind != DomOp::Kind::kLeafWeak) return false;
    }
    return true;
  };
  if (out.ops_.size() == 1 && out.ops_[0].kind == DomOp::Kind::kLeafWeak) {
    // A single weak-order leaf is a degenerate Pareto over one dimension.
    out.kernel_ = DominanceKernel::kPackedPareto;
  } else if (all_weak_under(DomOp::Kind::kPareto)) {
    out.kernel_ = DominanceKernel::kPackedPareto;
  } else if (all_weak_under(DomOp::Kind::kPrioritized)) {
    out.kernel_ = DominanceKernel::kPackedLex;
  } else {
    out.kernel_ = DominanceKernel::kGeneric;
  }
  return out;
}

Rel DominanceProgram::Compare(const double* sa, const int32_t* ia,
                              const double* sb, const int32_t* ib) const {
  switch (kernel_) {
    case DominanceKernel::kPackedPareto:
      return PackedParetoCompare(sa, sb, num_leaves_);
    case DominanceKernel::kPackedLex:
      return PackedLexCompare(sa, sb, num_leaves_);
    case DominanceKernel::kGeneric:
      break;
  }
  return GenericCompare(sa, ia, sb, ib);
}

Rel DominanceProgram::GenericCompare(const double* sa, const int32_t* ia,
                                     const double* sb,
                                     const int32_t* ib) const {
  struct Frame {
    uint32_t end;
    DomOp::Kind kind;
    uint8_t state;
  };
  // Composite nesting is bounded by the parsed expression depth; 64 inline
  // frames cover any realistic PREFERRING clause (flattening removes
  // same-kind nesting entirely). Deeper trees — only reachable through
  // pathological paren nesting — spill to the heap rather than mis-answer.
  constexpr size_t kInlineDepth = 64;
  Frame inline_frames[kInlineDepth];
  std::vector<Frame> heap_frames;
  Frame* stack = inline_frames;
  if (max_depth_ > kInlineDepth) {
    heap_frames.resize(max_depth_);
    stack = heap_frames.data();
  }
  size_t depth = 0;

  constexpr uint8_t kSomeBetter = 1;   // Pareto
  constexpr uint8_t kSomeWorse = 2;    // Pareto
  constexpr uint8_t kAllBetter = 1;    // Intersect
  constexpr uint8_t kAllWorse = 2;     // Intersect
  constexpr uint8_t kAllEquivalent = 4;

  size_t pc = 0;
  Rel val = Rel::kEquivalent;
  bool have = false;  // `val` holds the result of the last finished subtree
  while (true) {
    if (!have) {
      const DomOp& op = ops_[pc];
      switch (op.kind) {
        case DomOp::Kind::kLeafWeak: {
          const double x = sa[op.slot];
          const double y = sb[op.slot];
          val = x < y ? Rel::kBetter : (y < x ? Rel::kWorse : Rel::kEquivalent);
          have = true;
          ++pc;
          break;
        }
        case DomOp::Kind::kLeafGeneral:
          val = op.pref->Compare(LeafKey{sa[op.slot], ia[op.slot]},
                                 LeafKey{sb[op.slot], ib[op.slot]});
          have = true;
          ++pc;
          break;
        default:
          stack[depth++] = Frame{
              op.end, op.kind,
              op.kind == DomOp::Kind::kIntersect
                  ? static_cast<uint8_t>(kAllBetter | kAllWorse |
                                         kAllEquivalent)
                  : uint8_t{0}};
          ++pc;
          break;
      }
      continue;
    }

    // Feed the finished child's relation into the innermost open frame.
    if (depth == 0) return val;
    Frame& f = stack[depth - 1];
    bool resolved = false;
    Rel out = Rel::kEquivalent;
    switch (f.kind) {
      case DomOp::Kind::kPareto:
        if (val == Rel::kIncomparable) {
          resolved = true;
          out = Rel::kIncomparable;
          break;
        }
        if (val == Rel::kBetter) f.state |= kSomeBetter;
        if (val == Rel::kWorse) f.state |= kSomeWorse;
        if (f.state == (kSomeBetter | kSomeWorse)) {
          resolved = true;
          out = Rel::kIncomparable;
        }
        break;
      case DomOp::Kind::kPrioritized:
        if (val != Rel::kEquivalent) {
          resolved = true;
          out = val;
        }
        break;
      case DomOp::Kind::kIntersect: {
        uint8_t s = f.state;
        if (val != Rel::kBetter) s &= static_cast<uint8_t>(~kAllBetter);
        if (val != Rel::kWorse) s &= static_cast<uint8_t>(~kAllWorse);
        if (val != Rel::kEquivalent) s &= static_cast<uint8_t>(~kAllEquivalent);
        f.state = s;
        if (s == 0) {
          resolved = true;
          out = Rel::kIncomparable;
        }
        break;
      }
      default:
        break;
    }
    if (resolved) {
      pc = f.end;  // short-circuit: skip the frame's remaining children
      --depth;
      val = out;
      continue;  // propagate upward (have stays true)
    }
    if (pc == f.end) {
      // All children consumed without an early decision: finalize.
      switch (f.kind) {
        case DomOp::Kind::kPareto:
          out = (f.state & kSomeBetter) ? Rel::kBetter
                : (f.state & kSomeWorse) ? Rel::kWorse
                                         : Rel::kEquivalent;
          break;
        case DomOp::Kind::kIntersect:
          out = (f.state & kAllEquivalent) ? Rel::kEquivalent
                : (f.state & kAllBetter)   ? Rel::kBetter
                : (f.state & kAllWorse)    ? Rel::kWorse
                                           : Rel::kIncomparable;
          break;
        default:  // kPrioritized: every component equivalent
          out = Rel::kEquivalent;
          break;
      }
      --depth;
      val = out;
      continue;
    }
    have = false;  // evaluate the frame's next child at pc
  }
}

}  // namespace prefsql
