// EXPLICIT base preference: a finite strict partial order given by
// 'A BETTER THAN B' edges (§2.2.1: "Any preference that can be expressed by
// a finite set of 'A is better than B' relationships").

#pragma once

#include <map>
#include <vector>

#include "preference/preference.h"

namespace prefsql {

/// A finite partial order over mentioned values; unmentioned values are
/// worse than every mentioned one and equivalent to each other.
///
/// Dominance is transitive reachability in the edge DAG. Construction fails
/// on cycles (the relation would not be a strict partial order).
class ExplicitPreference : public BasePreference {
 public:
  /// Builds from (better, worse) edges; fails on cycles.
  static Result<std::unique_ptr<ExplicitPreference>> Make(
      std::vector<std::pair<Value, Value>> edges);

  const char* TypeName() const override { return "EXPLICIT"; }

  /// Mixes the mentioned values (in id order) and the transitive closure —
  /// together they determine the order completely.
  uint64_t Fingerprint() const override;

  /// Layer rank + 1 (longest chain from a maximal value); a monotone linear
  /// extension of the order. Unmentioned values score max_rank + 2.
  double Score(const Value& v) const override;

  int32_t ExplicitId(const Value& v) const override;

  /// Reachability-based comparison (NOT score-based: incomparable values may
  /// share a rank).
  Rel Compare(const LeafKey& a, const LeafKey& b) const override;

  /// For a weak order the rank score is a faithful encoding (same argument
  /// as ScoreExpr), so the packed kernels may compare scores directly.
  bool CompareIsScoreOnly() const override { return is_weak_order_; }

  /// Succeeds only when the order is a weak order (then the rank is a
  /// faithful single-column encoding); otherwise NotImplemented, and the
  /// query layer falls back to in-engine BMO evaluation.
  Result<ExprPtr> ScoreExpr(const Expr& attr) const override;

  bool IsCategorical() const override { return true; }
  std::optional<double> QualityOffset() const override { return 1.0; }

  /// True iff the rank score is a faithful single-column encoding: the
  /// mentioned values form a chain (rank order == dominance AND no two
  /// distinct values share a rank). Two same-rank values are incomparable
  /// under Compare but equivalent under any numeric encoding — a difference
  /// that surfaces under Pareto composition and in the SQL rewrite.
  bool IsWeakOrder() const { return is_weak_order_; }

  size_t num_values() const { return values_.size(); }

 private:
  ExplicitPreference() = default;

  /// True iff `a` reaches `b` through better-than edges.
  bool Reaches(int32_t a, int32_t b) const {
    return reach_[static_cast<size_t>(a) * values_.size() +
                  static_cast<size_t>(b)];
  }

  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const {
      return Value::Compare(a, b) < 0;
    }
  };

  std::vector<Value> values_;            // id -> value
  std::map<Value, int32_t, ValueLess> ids_;
  std::vector<bool> reach_;              // n*n transitive closure
  std::vector<int> rank_;                // id -> layer (0 = maximal)
  int max_rank_ = 0;
  bool is_weak_order_ = false;
};

}  // namespace prefsql
