// KeyCache: engine-owned reuse of packed preference keys across queries.
//
// Building the KeyStore (one leaf-attribute evaluation per tuple per leaf)
// dominates the cost of a repeated preference query once the dominance
// kernels are fast; the ROADMAP calls out a per-table key cache keyed by
// (preference fingerprint, table version) as the serving-scale lever. An
// entry maps
//
//   (CompiledPreference::Fingerprint, printed preference text,
//    Table::id, Table::version)
//     -> shared immutable KeyStore for rows 0..n-1 in storage order
//
// so a repeated `PREFERRING` query over an unchanged table reuses the keys
// wholesale instead of rebuilding them. Every component is there for a
// served-staleness argument: the table *version* (any DML bumps it) and the
// process-unique table *id* (a dropped-and-recreated table never matches
// its predecessor) pin the rows; the tree-hash fingerprint plus the printed
// preference text pin the preference — the text guards against a 64-bit
// hash collision between two different preferences, so a match provably
// produces identical keys. Eviction (LRU capacity plus the engine's
// post-write EvictStale sweep) is therefore purely about memory.
//
// Thread safety: all operations lock an internal mutex (util/lru_cache.h),
// so concurrent reader sessions of a shared engine may probe and fill the
// cache freely. The stored KeyStores are immutable after insertion.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "preference/key_store.h"
#include "util/lru_cache.h"

namespace prefsql {

/// Identity of one cached KeyStore; see file comment for the invalidation
/// argument behind each component.
struct KeyCacheKey {
  uint64_t preference_fingerprint = 0;
  /// PrefTermToSql of the compiled term — equality re-verifies the
  /// fingerprint (identical text => identical key semantics).
  std::string preference_text;
  uint64_t table_id = 0;
  uint64_t table_version = 0;

  bool operator==(const KeyCacheKey& other) const = default;
};

class KeyCache {
 public:
  /// `capacity` = maximum number of cached KeyStores (LRU beyond that).
  explicit KeyCache(size_t capacity = 64) : cache_(capacity) {}

  /// The cached keys for `key`, or nullptr. Counts a hit or miss and
  /// refreshes the entry's LRU position.
  std::shared_ptr<const KeyStore> Lookup(const KeyCacheKey& key) {
    return cache_.Lookup(key);
  }

  /// Publishes freshly built keys (replacing any entry under `key`). May
  /// LRU-evict the least recently used entry.
  void Insert(const KeyCacheKey& key, std::shared_ptr<const KeyStore> keys) {
    if (keys != nullptr) cache_.Insert(key, std::move(keys));
  }

  /// Early reclamation: drops every entry for which `live(table_id,
  /// table_version)` is false. Version-keyed entries can never be *served*
  /// stale; this just frees their memory as soon as a write makes them
  /// unreachable. Returns the number of dropped entries.
  size_t EvictStale(
      const std::function<bool(uint64_t table_id, uint64_t table_version)>&
          live) {
    return cache_.EvictWhere([&](const KeyCacheKey& key) {
      return !live(key.table_id, key.table_version);
    });
  }

  struct KeyHash {
    size_t operator()(const KeyCacheKey& k) const {
      uint64_t h = FingerprintMix(kFingerprintSeed, k.preference_fingerprint);
      h = FingerprintMix(h, k.table_id);
      h = FingerprintMix(h, k.table_version);
      return static_cast<size_t>(h);
    }
  };

  using Counters =
      LruCache<KeyCacheKey, std::shared_ptr<const KeyStore>,
               KeyHash>::Counters;
  Counters counters() const { return cache_.counters(); }
  size_t size() const { return cache_.size(); }

 private:
  LruCache<KeyCacheKey, std::shared_ptr<const KeyStore>, KeyHash> cache_;
};

}  // namespace prefsql
