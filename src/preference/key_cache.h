// SkylineCache: engine-owned reuse of packed preference keys — and of the
// computed skyline itself — across queries.
//
// Building the KeyStore (one leaf-attribute evaluation per tuple per leaf)
// dominates the cost of a repeated preference query once the dominance
// kernels are fast; computing the skyline is the other half. An entry maps
//
//   (CompiledPreference::Fingerprint, printed preference text,
//    Table::id, Table::version)
//     -> SkylineEntry{ shared immutable KeyStore for rows 0..n-1 in storage
//                      order,
//                      optionally the skyline row positions (ascending),
//                      the compiled preference that produced both }
//
// so a repeated `PREFERRING` query over an unchanged table reuses the keys
// wholesale — and, when the query shape allows serving positions directly
// (bare-table scan, no GROUPING/BUT ONLY/quality columns), skips the BMO
// entirely and replays the cached position list. Every key component is
// there for a served-staleness argument: the table *version* (any DML bumps
// it) and the process-unique table *id* (a dropped-and-recreated table
// never matches its predecessor) pin the rows; the tree-hash fingerprint
// plus the printed preference text pin the preference — the text guards
// against a 64-bit hash collision between two different preferences, so a
// match provably produces identical keys.
//
// Incremental maintenance: after a DML statement the engine does not merely
// abandon the now-unreachable entries — it re-derives them under the new
// table version (core/engine.cc, MaintainSkylineCaches):
//   * INSERT appends keys for the new rows and dominance-tests each new
//     tuple against the cached skyline (a non-maximal tuple is always
//     dominated by some maximal one, so testing against the skyline alone
//     is exact), adding survivors and evicting newly-dominated members;
//   * DELETE of non-skyline rows rebuilds the keys without them and remaps
//     the skyline positions; deleting a skyline member drops the skyline
//     (the members it was masking are unknown);
//   * UPDATE of non-skyline rows re-keys them and treats them as inserts;
//     updating a skyline member drops the skyline.
// The maintained entry is keyed at the *new* version; the stale entry is
// reclaimed by the regular post-write sweep. SnapshotForTable and the
// maintenance counters below exist for that loop.
//
// Thread safety: all operations lock an internal mutex (util/lru_cache.h),
// so concurrent reader sessions of a shared engine may probe and fill the
// cache freely. The stored entries are immutable after insertion;
// maintenance publishes fresh entries under fresh keys.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "preference/composite.h"
#include "preference/key_store.h"
#include "util/lru_cache.h"

namespace prefsql {

/// Identity of one cached entry; see file comment for the invalidation
/// argument behind each component.
struct KeyCacheKey {
  uint64_t preference_fingerprint = 0;
  /// PrefTermToSql of the compiled term — equality re-verifies the
  /// fingerprint (identical text => identical key semantics).
  std::string preference_text;
  uint64_t table_id = 0;
  uint64_t table_version = 0;

  bool operator==(const KeyCacheKey& other) const = default;
};

/// One cached unit of preference work over a table snapshot. `keys` always
/// covers rows 0..n-1 in storage order; `skyline` is engaged only when a
/// run whose result equals the bare skyline completed (no GROUPING, BUT
/// ONLY or top-k truncation). `pref` keeps the compiled preference alive
/// for incremental re-keying under DML.
struct SkylineEntry {
  std::shared_ptr<const KeyStore> keys;
  /// Skyline row positions, ascending; nullopt = keys-only entry.
  std::optional<std::vector<size_t>> skyline;
  std::shared_ptr<const CompiledPreference> pref;
};

class SkylineCache {
 public:
  /// `capacity` = maximum number of cached entries (LRU beyond that).
  explicit SkylineCache(size_t capacity = 64) : cache_(capacity) {}

  /// The cached entry for `key`, or nullptr. Counts a hit or miss and
  /// refreshes the entry's LRU position.
  std::shared_ptr<const SkylineEntry> Lookup(const KeyCacheKey& key) {
    return cache_.Lookup(key);
  }

  /// Publishes an entry (replacing any entry under `key`). May LRU-evict
  /// the least recently used entry. An entry carrying a skyline overwrites
  /// a keys-only entry for the same key; the reverse never discards a
  /// skyline (the keys are identical by the key argument, so the richer
  /// entry wins).
  void Insert(const KeyCacheKey& key,
              std::shared_ptr<const SkylineEntry> entry) {
    if (entry == nullptr || entry->keys == nullptr) return;
    if (!entry->skyline.has_value()) {
      if (auto existing = cache_.Lookup(key);
          existing != nullptr && existing->skyline.has_value()) {
        return;  // keep the richer entry
      }
    }
    cache_.Insert(key, std::move(entry));
  }

  /// Carries a maintained entry from its pre-DML version key to the new
  /// one in a single critical section: at no instant are both versions
  /// resident, so incremental maintenance never transiently doubles the
  /// cache's footprint. Use Insert instead when a pinned older snapshot
  /// must keep the superseded entry servable alongside the carried one.
  void Rekey(const KeyCacheKey& old_key, const KeyCacheKey& new_key,
             std::shared_ptr<const SkylineEntry> entry) {
    if (entry == nullptr || entry->keys == nullptr) return;
    cache_.Rekey(old_key, new_key, std::move(entry));
  }

  /// Memory-pressure shed: drops up to `n` cold entries (LRU order).
  size_t Shed(size_t n) { return cache_.EvictOldest(n); }

  /// All live entries of one table, for the post-DML maintenance loop.
  std::vector<std::pair<KeyCacheKey, std::shared_ptr<const SkylineEntry>>>
  SnapshotForTable(uint64_t table_id) const {
    return cache_.SnapshotWhere(
        [table_id](const KeyCacheKey& k) { return k.table_id == table_id; });
  }

  /// Early reclamation: drops every entry for which `live(table_id,
  /// table_version)` is false. Version-keyed entries can never be *served*
  /// stale; this just frees their memory as soon as a write makes them
  /// unreachable. Returns the number of dropped entries.
  size_t EvictStale(
      const std::function<bool(uint64_t table_id, uint64_t table_version)>&
          live) {
    return cache_.EvictWhere([&](const KeyCacheKey& key) {
      return !live(key.table_id, key.table_version);
    });
  }

  // Maintenance observability (cumulative engine-wide totals, like the
  // LruCache counters). An "event" is one entry carried across a DML
  // statement to the new table version; an "invalidation" is one entry the
  // maintenance had to drop instead (skyline member touched, re-key
  // failure).
  void CountMaintenance() {
    maintenance_events_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountInvalidation() {
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t maintenance_events() const {
    return maintenance_events_.load(std::memory_order_relaxed);
  }
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

  struct KeyHash {
    size_t operator()(const KeyCacheKey& k) const {
      uint64_t h = FingerprintMix(kFingerprintSeed, k.preference_fingerprint);
      h = FingerprintMix(h, k.table_id);
      h = FingerprintMix(h, k.table_version);
      return static_cast<size_t>(h);
    }
  };

  using Counters =
      LruCache<KeyCacheKey, std::shared_ptr<const SkylineEntry>,
               KeyHash>::Counters;
  Counters counters() const { return cache_.counters(); }
  size_t size() const { return cache_.size(); }

 private:
  LruCache<KeyCacheKey, std::shared_ptr<const SkylineEntry>, KeyHash> cache_;
  std::atomic<uint64_t> maintenance_events_{0};
  std::atomic<uint64_t> invalidations_{0};
};

/// FilterCache: cached candidate positions of one WHERE predicate over one
/// table snapshot, in the order the scan pulled them (storage order for a
/// sequential scan, index order for an index scan — replaying the list
/// reproduces the exact candidate stream). Keyed by the printed predicate
/// text plus (table id, table version), so any DML makes entries
/// unreachable; only subquery-free predicates are cached (a subquery's
/// value can change with *other* tables' versions).
struct FilterCacheKey {
  /// Printed SQL of the (bound) WHERE predicate, comparisons canonicalized
  /// to literal-right (`a < 4` and `4 > a` key identically).
  std::string where_text;
  uint64_t table_id = 0;
  uint64_t table_version = 0;

  bool operator==(const FilterCacheKey& other) const = default;
};

class FilterCache {
 public:
  explicit FilterCache(size_t capacity = 64) : cache_(capacity) {}

  std::shared_ptr<const std::vector<size_t>> Lookup(
      const FilterCacheKey& key) {
    return cache_.Lookup(key);
  }

  void Insert(const FilterCacheKey& key,
              std::shared_ptr<const std::vector<size_t>> positions) {
    if (positions != nullptr) cache_.Insert(key, std::move(positions));
  }

  /// Memory-pressure shed: drops up to `n` cold entries (LRU order).
  size_t Shed(size_t n) { return cache_.EvictOldest(n); }

  /// Same early-reclamation contract as SkylineCache::EvictStale.
  size_t EvictStale(
      const std::function<bool(uint64_t table_id, uint64_t table_version)>&
          live) {
    return cache_.EvictWhere([&](const FilterCacheKey& key) {
      return !live(key.table_id, key.table_version);
    });
  }

  struct KeyHash {
    size_t operator()(const FilterCacheKey& k) const {
      uint64_t h = FingerprintString(kFingerprintSeed, k.where_text);
      h = FingerprintMix(h, k.table_id);
      h = FingerprintMix(h, k.table_version);
      return static_cast<size_t>(h);
    }
  };

  using Counters =
      LruCache<FilterCacheKey, std::shared_ptr<const std::vector<size_t>>,
               KeyHash>::Counters;
  Counters counters() const { return cache_.counters(); }
  size_t size() const { return cache_.size(); }

 private:
  LruCache<FilterCacheKey, std::shared_ptr<const std::vector<size_t>>,
           KeyHash>
      cache_;
};

}  // namespace prefsql
