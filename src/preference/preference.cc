#include "preference/preference.h"

#include <cstring>

namespace prefsql {

namespace {
constexpr uint64_t kFnvPrime = 1099511628211ULL;
}  // namespace

uint64_t FingerprintMix(uint64_t h, uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h = (h ^ (v & 0xffu)) * kFnvPrime;
    v >>= 8;
  }
  return h;
}

uint64_t FingerprintString(uint64_t h, std::string_view s) {
  for (unsigned char c : s) h = (h ^ c) * kFnvPrime;
  // Length terminator: "ab"+"c" must differ from "a"+"bc".
  return FingerprintMix(h, s.size());
}

uint64_t FingerprintDouble(uint64_t h, double d) {
  if (d == 0.0) d = 0.0;  // collapse -0.0 onto +0.0
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return FingerprintMix(h, bits);
}

uint64_t FingerprintValue(uint64_t h, const Value& v) {
  h = FingerprintString(h, ValueTypeToString(v.type()));
  // Doubles hash by bit pattern — ToString's %g rendering would conflate
  // values differing past six significant digits.
  if (v.type() == ValueType::kDouble) return FingerprintDouble(h, v.AsDouble());
  return FingerprintString(h, v.ToString());
}

const char* RelToString(Rel rel) {
  switch (rel) {
    case Rel::kBetter:
      return "better";
    case Rel::kWorse:
      return "worse";
    case Rel::kEquivalent:
      return "equivalent";
    case Rel::kIncomparable:
      return "incomparable";
  }
  return "?";
}

Rel FlipRel(Rel rel) {
  switch (rel) {
    case Rel::kBetter:
      return Rel::kWorse;
    case Rel::kWorse:
      return Rel::kBetter;
    default:
      return rel;
  }
}

}  // namespace prefsql
