#include "preference/preference.h"

namespace prefsql {

const char* RelToString(Rel rel) {
  switch (rel) {
    case Rel::kBetter:
      return "better";
    case Rel::kWorse:
      return "worse";
    case Rel::kEquivalent:
      return "equivalent";
    case Rel::kIncomparable:
      return "incomparable";
  }
  return "?";
}

Rel FlipRel(Rel rel) {
  switch (rel) {
    case Rel::kBetter:
      return Rel::kWorse;
    case Rel::kWorse:
      return Rel::kBetter;
    default:
      return rel;
  }
}

}  // namespace prefsql
