#include "preference/dominance_simd.h"

#if PREFSQL_HAVE_AVX2_BUILD

#include <immintrin.h>

namespace prefsql {
namespace simd_detail {
namespace {

#define PREFSQL_AVX2 __attribute__((target("avx2")))

// The KeyStore's score vectors carry no alignment guarantee, and the four
// rows of a group are strided by num_leaves doubles — each group is
// gathered with _mm256_set_pd (scalar loads + inserts), which still wins
// because all 2L compares and the per-leaf mask arithmetic of four rows
// run in two vector ops per leaf.
PREFSQL_AVX2 inline __m256d GatherLeaf(const double* r0, const double* r1,
                                       const double* r2, const double* r3,
                                       size_t l) {
  return _mm256_set_pd(r3[l], r2[l], r1[l], r0[l]);
}

// Scalar tails (rows beyond the last full group of four).
inline bool ParetoRowDominates(const double* r, const double* t, size_t L) {
  bool strict = false;
  for (size_t l = 0; l < L; ++l) {
    if (r[l] > t[l]) return false;
    strict |= r[l] < t[l];
  }
  return strict;
}

inline bool LexRowDominates(const double* r, const double* t, size_t L) {
  for (size_t l = 0; l < L; ++l) {
    if (r[l] < t[l]) return true;
    if (r[l] > t[l]) return false;
  }
  return false;
}

}  // namespace

PREFSQL_AVX2
bool ParetoAnyDominatesAvx2(const double* base, size_t L, const size_t* rows,
                            size_t count, const double* t, size_t* tested) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const double* r0 = base + rows[i] * L;
    const double* r1 = base + rows[i + 1] * L;
    const double* r2 = base + rows[i + 2] * L;
    const double* r3 = base + rows[i + 3] * L;
    __m256d worse = _mm256_setzero_pd();
    __m256d strict = _mm256_setzero_pd();
    for (size_t l = 0; l < L; ++l) {
      const __m256d tl = _mm256_set1_pd(t[l]);
      const __m256d r = GatherLeaf(r0, r1, r2, r3, l);
      worse = _mm256_or_pd(worse, _mm256_cmp_pd(r, tl, _CMP_GT_OQ));
      strict = _mm256_or_pd(strict, _mm256_cmp_pd(r, tl, _CMP_LT_OQ));
      if (_mm256_movemask_pd(worse) == 0xF) break;  // every lane worse
    }
    if (tested != nullptr) *tested += 4;
    if ((_mm256_movemask_pd(strict) & ~_mm256_movemask_pd(worse)) != 0) {
      return true;
    }
  }
  for (; i < count; ++i) {
    if (tested != nullptr) ++*tested;
    if (ParetoRowDominates(base + rows[i] * L, t, L)) return true;
  }
  return false;
}

PREFSQL_AVX2
void ParetoDominatesBlockAvx2(const double* base, size_t L, const double* c,
                              const size_t* rows, size_t count, uint8_t* out,
                              size_t* tested) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const double* r0 = base + rows[i] * L;
    const double* r1 = base + rows[i + 1] * L;
    const double* r2 = base + rows[i + 2] * L;
    const double* r3 = base + rows[i + 3] * L;
    __m256d worse = _mm256_setzero_pd();
    __m256d strict = _mm256_setzero_pd();
    for (size_t l = 0; l < L; ++l) {
      const __m256d cl = _mm256_set1_pd(c[l]);
      const __m256d r = GatherLeaf(r0, r1, r2, r3, l);
      worse = _mm256_or_pd(worse, _mm256_cmp_pd(cl, r, _CMP_GT_OQ));
      strict = _mm256_or_pd(strict, _mm256_cmp_pd(cl, r, _CMP_LT_OQ));
      if (_mm256_movemask_pd(worse) == 0xF) break;  // candidate worse all
    }
    if (tested != nullptr) *tested += 4;
    const int dom = _mm256_movemask_pd(strict) & ~_mm256_movemask_pd(worse);
    out[i] = static_cast<uint8_t>(dom & 1);
    out[i + 1] = static_cast<uint8_t>((dom >> 1) & 1);
    out[i + 2] = static_cast<uint8_t>((dom >> 2) & 1);
    out[i + 3] = static_cast<uint8_t>((dom >> 3) & 1);
  }
  for (; i < count; ++i) {
    if (tested != nullptr) ++*tested;
    out[i] =
        static_cast<uint8_t>(ParetoRowDominates(c, base + rows[i] * L, L));
  }
}

PREFSQL_AVX2
bool LexAnyDominatesAvx2(const double* base, size_t L, const size_t* rows,
                         size_t count, const double* t, size_t* tested) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const double* r0 = base + rows[i] * L;
    const double* r1 = base + rows[i + 1] * L;
    const double* r2 = base + rows[i + 2] * L;
    const double* r3 = base + rows[i + 3] * L;
    __m256d decided = _mm256_setzero_pd();
    __m256d better = _mm256_setzero_pd();
    for (size_t l = 0; l < L; ++l) {
      const __m256d tl = _mm256_set1_pd(t[l]);
      const __m256d r = GatherLeaf(r0, r1, r2, r3, l);
      const __m256d lt = _mm256_cmp_pd(r, tl, _CMP_LT_OQ);
      const __m256d gt = _mm256_cmp_pd(r, tl, _CMP_GT_OQ);
      better = _mm256_or_pd(better, _mm256_andnot_pd(decided, lt));
      decided = _mm256_or_pd(decided, _mm256_or_pd(lt, gt));
      if (_mm256_movemask_pd(decided) == 0xF) break;
    }
    if (tested != nullptr) *tested += 4;
    if (_mm256_movemask_pd(better) != 0) return true;
  }
  for (; i < count; ++i) {
    if (tested != nullptr) ++*tested;
    if (LexRowDominates(base + rows[i] * L, t, L)) return true;
  }
  return false;
}

PREFSQL_AVX2
void LexDominatesBlockAvx2(const double* base, size_t L, const double* c,
                           const size_t* rows, size_t count, uint8_t* out,
                           size_t* tested) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const double* r0 = base + rows[i] * L;
    const double* r1 = base + rows[i + 1] * L;
    const double* r2 = base + rows[i + 2] * L;
    const double* r3 = base + rows[i + 3] * L;
    __m256d decided = _mm256_setzero_pd();
    __m256d better = _mm256_setzero_pd();
    for (size_t l = 0; l < L; ++l) {
      const __m256d cl = _mm256_set1_pd(c[l]);
      const __m256d r = GatherLeaf(r0, r1, r2, r3, l);
      const __m256d lt = _mm256_cmp_pd(cl, r, _CMP_LT_OQ);
      const __m256d gt = _mm256_cmp_pd(cl, r, _CMP_GT_OQ);
      better = _mm256_or_pd(better, _mm256_andnot_pd(decided, lt));
      decided = _mm256_or_pd(decided, _mm256_or_pd(lt, gt));
      if (_mm256_movemask_pd(decided) == 0xF) break;
    }
    if (tested != nullptr) *tested += 4;
    const int dom = _mm256_movemask_pd(better);
    out[i] = static_cast<uint8_t>(dom & 1);
    out[i + 1] = static_cast<uint8_t>((dom >> 1) & 1);
    out[i + 2] = static_cast<uint8_t>((dom >> 2) & 1);
    out[i + 3] = static_cast<uint8_t>((dom >> 3) & 1);
  }
  for (; i < count; ++i) {
    if (tested != nullptr) ++*tested;
    out[i] = static_cast<uint8_t>(LexRowDominates(c, base + rows[i] * L, L));
  }
}

#undef PREFSQL_AVX2

}  // namespace simd_detail
}  // namespace prefsql

#endif  // PREFSQL_HAVE_AVX2_BUILD
