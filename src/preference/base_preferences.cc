#include "preference/base_preferences.h"

#include <cmath>

#include "util/string_util.h"

namespace prefsql {
namespace {

// Numeric view of a value or nullopt (NULL / non-numeric text).
std::optional<double> Num(const Value& v) { return v.ToNumeric(); }

// COALESCE(expr, kWorstScore): makes the SQL score column rank NULLs worst,
// exactly like the in-engine Score() functions.
ExprPtr WrapNullWorst(ExprPtr e) {
  std::vector<ExprPtr> args;
  args.push_back(std::move(e));
  args.push_back(Expr::MakeLiteral(Value::Double(kWorstScore)));
  return Expr::MakeFunction("coalesce", std::move(args));
}

// attr IN (values) as an Expr.
ExprPtr InList(const Expr& attr, const std::vector<Value>& values) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIn;
  e->left = attr.Clone();
  for (const auto& v : values) {
    e->in_list.push_back(Expr::MakeLiteral(v));
  }
  return e;
}

}  // namespace

// ---------------------------------------------------------------------------
// AROUND
// ---------------------------------------------------------------------------

uint64_t AroundPreference::Fingerprint() const {
  return FingerprintDouble(BasePreference::Fingerprint(), target_);
}

double AroundPreference::Score(const Value& v) const {
  auto n = Num(v);
  if (!n) return kWorstScore;
  return std::fabs(*n - target_);
}

Result<ExprPtr> AroundPreference::ScoreExpr(const Expr& attr) const {
  // ABS(attr - target)
  std::vector<ExprPtr> args;
  args.push_back(Expr::MakeBinary(BinaryOp::kSub, attr.Clone(),
                                  Expr::MakeLiteral(Value::Double(target_))));
  return WrapNullWorst(Expr::MakeFunction("abs", std::move(args)));
}

// ---------------------------------------------------------------------------
// BETWEEN
// ---------------------------------------------------------------------------

uint64_t BetweenPreference::Fingerprint() const {
  return FingerprintDouble(FingerprintDouble(BasePreference::Fingerprint(), low_),
                           high_);
}

double BetweenPreference::Score(const Value& v) const {
  auto n = Num(v);
  if (!n) return kWorstScore;
  if (*n < low_) return low_ - *n;
  if (*n > high_) return *n - high_;
  return 0.0;
}

Result<ExprPtr> BetweenPreference::ScoreExpr(const Expr& attr) const {
  // CASE WHEN attr < low THEN low - attr
  //      WHEN attr > high THEN attr - high
  //      WHEN attr >= low AND attr <= high THEN 0
  //      ELSE worst END
  // NULL or non-numeric attributes fail every comparison (UNKNOWN) and land
  // in the ELSE branch, matching Score()'s kWorstScore.
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCase;
  CaseWhen below;
  below.when = Expr::MakeBinary(BinaryOp::kLt, attr.Clone(),
                                Expr::MakeLiteral(Value::Double(low_)));
  below.then = Expr::MakeBinary(BinaryOp::kSub,
                                Expr::MakeLiteral(Value::Double(low_)),
                                attr.Clone());
  e->case_whens.push_back(std::move(below));
  CaseWhen above;
  above.when = Expr::MakeBinary(BinaryOp::kGt, attr.Clone(),
                                Expr::MakeLiteral(Value::Double(high_)));
  above.then = Expr::MakeBinary(BinaryOp::kSub, attr.Clone(),
                                Expr::MakeLiteral(Value::Double(high_)));
  e->case_whens.push_back(std::move(above));
  CaseWhen inside;
  inside.when = Expr::MakeBinary(
      BinaryOp::kAnd,
      Expr::MakeBinary(BinaryOp::kGe, attr.Clone(),
                       Expr::MakeLiteral(Value::Double(low_))),
      Expr::MakeBinary(BinaryOp::kLe, attr.Clone(),
                       Expr::MakeLiteral(Value::Double(high_))));
  inside.then = Expr::MakeLiteral(Value::Double(0.0));
  e->case_whens.push_back(std::move(inside));
  e->case_else = Expr::MakeLiteral(Value::Double(kWorstScore));
  return e;
}

// ---------------------------------------------------------------------------
// LOWEST / HIGHEST
// ---------------------------------------------------------------------------

double LowestPreference::Score(const Value& v) const {
  auto n = Num(v);
  if (!n) return kWorstScore;
  return *n;
}

Result<ExprPtr> LowestPreference::ScoreExpr(const Expr& attr) const {
  // attr + 0 forces the numeric coercion (TEXT garbage becomes NULL and
  // COALESCE then ranks it worst, like Score()).
  return WrapNullWorst(Expr::MakeBinary(BinaryOp::kAdd, attr.Clone(),
                                        Expr::MakeLiteral(Value::Double(0.0))));
}

double HighestPreference::Score(const Value& v) const {
  auto n = Num(v);
  if (!n) return kWorstScore;
  return -*n;
}

Result<ExprPtr> HighestPreference::ScoreExpr(const Expr& attr) const {
  return WrapNullWorst(
      Expr::MakeBinary(BinaryOp::kSub, Expr::MakeLiteral(Value::Double(0.0)),
                       attr.Clone()));
}

// ---------------------------------------------------------------------------
// Layered set preferences (POS / NEG / POS-POS / POS-NEG)
// ---------------------------------------------------------------------------

LayeredSetPreference::LayeredSetPreference(
    const char* type_name, std::vector<std::vector<Value>> layers,
    std::optional<int> others_level)
    : type_name_(type_name),
      layers_(std::move(layers)),
      others_level_(others_level.value_or(static_cast<int>(layers_.size()) + 1)) {}

uint64_t LayeredSetPreference::Fingerprint() const {
  uint64_t h = BasePreference::Fingerprint();
  for (const auto& layer : layers_) {
    h = FingerprintMix(h, layer.size());
    for (const auto& v : layer) h = FingerprintValue(h, v);
  }
  return FingerprintMix(h, static_cast<uint64_t>(others_level_));
}

double LayeredSetPreference::Score(const Value& v) const {
  if (!v.is_null()) {
    for (size_t i = 0; i < layers_.size(); ++i) {
      for (const auto& member : layers_[i]) {
        auto eq = v.SqlEquals(member);
        if (eq && *eq) return static_cast<double>(i + 1);
      }
    }
  }
  return static_cast<double>(others_level_);
}

Result<ExprPtr> LayeredSetPreference::ScoreExpr(const Expr& attr) const {
  // CASE WHEN attr IN (layer1) THEN 1 WHEN attr IN (layer2) THEN 2 ...
  //      ELSE others END
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCase;
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].empty()) continue;
    CaseWhen cw;
    cw.when = InList(attr, layers_[i]);
    cw.then = Expr::MakeLiteral(Value::Int(static_cast<int64_t>(i + 1)));
    e->case_whens.push_back(std::move(cw));
  }
  e->case_else = Expr::MakeLiteral(Value::Int(others_level_));
  return e;
}

std::unique_ptr<BasePreference> MakePosPreference(std::vector<Value> values) {
  std::vector<std::vector<Value>> layers;
  layers.push_back(std::move(values));
  return std::make_unique<LayeredSetPreference>("POS", std::move(layers));
}

std::unique_ptr<BasePreference> MakeNegPreference(std::vector<Value> values) {
  // NEG: members of the set land at level 2, everything else at level 1.
  std::vector<std::vector<Value>> layers;
  layers.push_back({});                  // level 1 intentionally empty
  layers.push_back(std::move(values));   // level 2: the disliked values
  return std::make_unique<LayeredSetPreference>("NEG", std::move(layers),
                                                /*others_level=*/1);
}

std::unique_ptr<BasePreference> MakePosPosPreference(std::vector<Value> set1,
                                                     std::vector<Value> set2) {
  std::vector<std::vector<Value>> layers;
  layers.push_back(std::move(set1));
  layers.push_back(std::move(set2));
  return std::make_unique<LayeredSetPreference>("POS/POS", std::move(layers));
}

std::unique_ptr<BasePreference> MakePosNegPreference(std::vector<Value> pos,
                                                     std::vector<Value> neg) {
  // pos -> 1, neg -> 3, everything else -> 2.
  std::vector<std::vector<Value>> layers;
  layers.push_back(std::move(pos));
  layers.push_back({});
  layers.push_back(std::move(neg));
  return std::make_unique<LayeredSetPreference>("POS/NEG", std::move(layers),
                                                /*others_level=*/2);
}

// ---------------------------------------------------------------------------
// CONTAINS
// ---------------------------------------------------------------------------

uint64_t ContainsPreference::Fingerprint() const {
  return FingerprintString(BasePreference::Fingerprint(), needle_);
}

double ContainsPreference::Score(const Value& v) const {
  if (v.type() != ValueType::kText) return 2.0;
  return ContainsIgnoreCase(v.AsText(), needle_) ? 1.0 : 2.0;
}

Result<ExprPtr> ContainsPreference::ScoreExpr(const Expr& attr) const {
  // CASE WHEN CONTAINS(attr, 'needle') THEN 1 ELSE 2 END
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCase;
  CaseWhen cw;
  std::vector<ExprPtr> args;
  args.push_back(attr.Clone());
  args.push_back(Expr::MakeLiteral(Value::Text(needle_)));
  cw.when = Expr::MakeFunction("contains", std::move(args));
  cw.then = Expr::MakeLiteral(Value::Int(1));
  e->case_whens.push_back(std::move(cw));
  e->case_else = Expr::MakeLiteral(Value::Int(2));
  return e;
}

}  // namespace prefsql
