#include "preference/explicit_preference.h"

#include <algorithm>

namespace prefsql {

Result<std::unique_ptr<ExplicitPreference>> ExplicitPreference::Make(
    std::vector<std::pair<Value, Value>> edges) {
  auto p = std::unique_ptr<ExplicitPreference>(new ExplicitPreference());
  auto intern = [&](const Value& v) -> Result<int32_t> {
    if (v.is_null()) {
      return Status::InvalidArgument("EXPLICIT values must not be NULL");
    }
    auto it = p->ids_.find(v);
    if (it != p->ids_.end()) return it->second;
    int32_t id = static_cast<int32_t>(p->values_.size());
    p->values_.push_back(v);
    p->ids_.emplace(v, id);
    return id;
  };

  std::vector<std::pair<int32_t, int32_t>> id_edges;
  for (const auto& [better, worse] : edges) {
    PSQL_ASSIGN_OR_RETURN(int32_t b, intern(better));
    PSQL_ASSIGN_OR_RETURN(int32_t w, intern(worse));
    if (b == w) {
      return Status::InvalidArgument(
          "EXPLICIT preference is not irreflexive: '" + better.ToString() +
          "' BETTER THAN itself");
    }
    id_edges.emplace_back(b, w);
  }

  const size_t n = p->values_.size();
  p->reach_.assign(n * n, false);
  for (const auto& [b, w] : id_edges) {
    p->reach_[static_cast<size_t>(b) * n + static_cast<size_t>(w)] = true;
  }
  // Floyd-Warshall transitive closure (value dictionaries are small).
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!p->reach_[i * n + k]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (p->reach_[k * n + j]) p->reach_[i * n + j] = true;
      }
    }
  }
  // A strict partial order must be irreflexive after closure (no cycles).
  for (size_t i = 0; i < n; ++i) {
    if (p->reach_[i * n + i]) {
      return Status::InvalidArgument(
          "EXPLICIT preference contains a better-than cycle through '" +
          p->values_[i].ToString() + "'");
    }
  }

  // Layer ranks: longest chain from any maximal element, computed by
  // relaxation over the closed reachability relation (n is tiny).
  p->rank_.assign(n, 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (p->reach_[i * n + j] && p->rank_[j] < p->rank_[i] + 1) {
          p->rank_[j] = p->rank_[i] + 1;
          changed = true;
        }
      }
    }
  }
  p->max_rank_ = 0;
  for (size_t i = 0; i < n; ++i) p->max_rank_ = std::max(p->max_rank_, p->rank_[i]);

  // Score-faithfulness check: the single rank column encodes the order
  // exactly iff (a) dominance coincides with rank comparison on every
  // mentioned pair and (b) no two distinct mentioned values share a rank.
  // Without (b), same-rank values are incomparable under Compare but the
  // encoding would call them equivalent — indistinguishable for a flat
  // skyline, yet different under Pareto composition (an incomparable
  // component voids dominance, an equivalent one does not) and in the SQL
  // rewrite. In effect the mentioned values must form a chain.
  p->is_weak_order_ = true;
  for (size_t i = 0; i < n && p->is_weak_order_; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      bool dominates = p->reach_[i * n + j];
      bool rank_less = p->rank_[i] < p->rank_[j];
      if (dominates != rank_less || p->rank_[i] == p->rank_[j]) {
        p->is_weak_order_ = false;
        break;
      }
    }
  }
  return p;
}

uint64_t ExplicitPreference::Fingerprint() const {
  uint64_t h = BasePreference::Fingerprint();
  h = FingerprintMix(h, values_.size());
  for (const auto& v : values_) h = FingerprintValue(h, v);
  for (size_t i = 0; i < reach_.size(); ++i) {
    if (reach_[i]) h = FingerprintMix(h, i);
  }
  return h;
}

double ExplicitPreference::Score(const Value& v) const {
  int32_t id = ExplicitId(v);
  if (id < 0) return static_cast<double>(max_rank_ + 2);
  return static_cast<double>(rank_[static_cast<size_t>(id)] + 1);
}

int32_t ExplicitPreference::ExplicitId(const Value& v) const {
  if (v.is_null()) return -1;
  auto it = ids_.find(v);
  if (it == ids_.end()) return -1;
  return it->second;
}

Rel ExplicitPreference::Compare(const LeafKey& a, const LeafKey& b) const {
  if (a.explicit_id < 0 && b.explicit_id < 0) return Rel::kEquivalent;
  if (a.explicit_id < 0) return Rel::kWorse;   // mentioned beats unmentioned
  if (b.explicit_id < 0) return Rel::kBetter;
  if (a.explicit_id == b.explicit_id) return Rel::kEquivalent;
  if (Reaches(a.explicit_id, b.explicit_id)) return Rel::kBetter;
  if (Reaches(b.explicit_id, a.explicit_id)) return Rel::kWorse;
  return Rel::kIncomparable;
}

Result<ExprPtr> ExplicitPreference::ScoreExpr(const Expr& attr) const {
  if (!is_weak_order_) {
    return Status::NotImplemented(
        "EXPLICIT preference is not a weak order; it cannot be rewritten to "
        "a single level column (falling back to in-engine evaluation)");
  }
  // CASE attr WHEN v THEN rank+1 ... ELSE max_rank+2 END
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCase;
  e->left = attr.Clone();
  for (size_t i = 0; i < values_.size(); ++i) {
    CaseWhen cw;
    cw.when = Expr::MakeLiteral(values_[i]);
    cw.then = Expr::MakeLiteral(Value::Int(rank_[i] + 1));
    e->case_whens.push_back(std::move(cw));
  }
  e->case_else = Expr::MakeLiteral(Value::Int(max_rank_ + 2));
  return e;
}

}  // namespace prefsql
