#include "preference/algebra.h"

namespace prefsql {

Result<ExprPtr> DualBasePreference::ScoreExpr(const Expr& attr) const {
  // 0 - inner score: negation preserves the single-column encoding whenever
  // the inner preference has one (non-weak-order EXPLICIT still refuses,
  // and the query layer falls back to in-engine evaluation).
  PSQL_ASSIGN_OR_RETURN(ExprPtr inner_expr, inner_->ScoreExpr(attr));
  return Expr::MakeBinary(BinaryOp::kSub,
                          Expr::MakeLiteral(Value::Double(0.0)),
                          std::move(inner_expr));
}

}  // namespace prefsql
