// Preference algebra extensions (paper §5 outlook: "an even richer
// preference type system ... together with a preference algebra are being
// investigated", pointing at [Kie01] "Foundations of a Preference World").
//
// Implemented constructors:
//   * DUAL(P)        — the inverse order: x is better iff it was worse.
//                      Dual distributes over Pareto/prioritization/
//                      intersection, so compilation pushes it to the leaves
//                      and wraps each base preference in DualBasePreference.
//   * P1 INTERSECT P2 — the intersection order: x better than y iff better
//                      under *every* constituent (stricter than Pareto,
//                      which also admits better-and-equal mixes).

#pragma once

#include <memory>

#include "preference/preference.h"

namespace prefsql {

/// Inverts a base preference's order. Scores negate (which keeps Score a
/// monotone linear extension); EXPLICIT ids are preserved and compared
/// through the inner preference with flipped polarity, so duals of general
/// partial orders stay exact.
class DualBasePreference : public BasePreference {
 public:
  explicit DualBasePreference(std::unique_ptr<BasePreference> inner)
      : inner_(std::move(inner)) {}

  const char* TypeName() const override { return "DUAL"; }

  uint64_t Fingerprint() const override {
    return FingerprintMix(BasePreference::Fingerprint(),
                          inner_->Fingerprint());
  }

  double Score(const Value& v) const override { return -inner_->Score(v); }

  int32_t ExplicitId(const Value& v) const override {
    return inner_->ExplicitId(v);
  }

  Rel Compare(const LeafKey& a, const LeafKey& b) const override {
    LeafKey ia{-a.score, a.explicit_id};
    LeafKey ib{-b.score, b.explicit_id};
    return FlipRel(inner_->Compare(ia, ib));
  }

  /// The flipped-and-negated comparison of a score-only inner preference is
  /// the plain score comparison of the (already negated) dual scores.
  bool CompareIsScoreOnly() const override {
    return inner_->CompareIsScoreOnly();
  }

  Result<ExprPtr> ScoreExpr(const Expr& attr) const override;

  /// LEVEL on a dual has no natural discrete reading; report the numeric
  /// convention (1 iff at the observed optimum).
  bool IsCategorical() const override { return false; }

  /// Distances are measured from the observed optimum of the dual order.
  std::optional<double> QualityOffset() const override { return std::nullopt; }

  const BasePreference& inner() const { return *inner_; }

 private:
  std::unique_ptr<BasePreference> inner_;
};

}  // namespace prefsql
