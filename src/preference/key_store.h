// KeyStore: contiguous structure-of-arrays storage for preference keys.
//
// The BMO hot loop performs O(n²) dominance tests over per-tuple keys; the
// tuple-at-a-time representation (PrefKey = std::vector<LeafKey>) costs one
// heap allocation per tuple and scatters the scores the packed kernels want
// to stream. The KeyStore packs all keys of a candidate set into two flat
// arrays — `scores[n * L]` and `explicit_ids[n * L]` (L = number of
// preference leaves, row-major) — so a tuple's key is a contiguous slice,
// the whole set is one reservation, and the dominance kernels of
// dominance_program.h touch nothing but sequential memory.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "preference/preference.h"

namespace prefsql {

class KeyStore {
 public:
  KeyStore() = default;
  explicit KeyStore(size_t num_leaves) : num_leaves_(num_leaves) {}

  /// Clears the store and re-binds it to an L-leaf preference.
  void Reset(size_t num_leaves) {
    num_leaves_ = num_leaves;
    size_ = 0;
    scores_.clear();
    explicit_ids_.clear();
  }

  /// One reservation for `rows` keys (the "zero per-tuple allocations"
  /// contract once the estimate holds).
  void Reserve(size_t rows) {
    scores_.reserve(rows * num_leaves_);
    explicit_ids_.reserve(rows * num_leaves_);
  }

  size_t size() const { return size_; }
  size_t num_leaves() const { return num_leaves_; }

  /// The packed score / id slices of one tuple (length num_leaves()).
  const double* scores(size_t row) const {
    return scores_.data() + row * num_leaves_;
  }
  const int32_t* ids(size_t row) const {
    return explicit_ids_.data() + row * num_leaves_;
  }

  double score(size_t row, size_t leaf) const {
    return scores_[row * num_leaves_ + leaf];
  }
  LeafKey key(size_t row, size_t leaf) const {
    return LeafKey{scores_[row * num_leaves_ + leaf],
                   explicit_ids_[row * num_leaves_ + leaf]};
  }

  /// Appends one tuple's key from its AoS form (tests, oracle cross-checks).
  void Append(const std::vector<LeafKey>& key) {
    for (const LeafKey& k : key) PushLeaf(k.score, k.explicit_id);
    CommitRow();
  }

  // Streaming append protocol used by CompiledPreference::AppendKey: push
  // num_leaves() leaves, then commit; RollbackRow discards a half-built row
  // when a leaf expression fails to evaluate.
  void PushLeaf(double score, int32_t explicit_id) {
    scores_.push_back(score);
    explicit_ids_.push_back(explicit_id);
  }
  void CommitRow() { ++size_; }
  void RollbackRow() {
    scores_.resize(size_ * num_leaves_);
    explicit_ids_.resize(size_ * num_leaves_);
  }

  // Row-level mutators used by incremental skyline-cache maintenance
  // (the engine re-derives a cached store under a new table version from a
  // *copy* of the published immutable store — published stores themselves
  // are never mutated).

  /// Appends row `src_row` of `src` (which must have the same leaf count).
  void AppendRowFrom(const KeyStore& src, size_t src_row) {
    const double* s = src.scores(src_row);
    const int32_t* id = src.ids(src_row);
    for (size_t l = 0; l < num_leaves_; ++l) PushLeaf(s[l], id[l]);
    CommitRow();
  }

  /// Overwrites row `dst_row` with row `src_row` of `src` (same leaf
  /// count); used to re-key rows touched by UPDATE.
  void SetRowFrom(const KeyStore& src, size_t src_row, size_t dst_row) {
    const double* s = src.scores(src_row);
    const int32_t* id = src.ids(src_row);
    double* d = scores_.data() + dst_row * num_leaves_;
    int32_t* did = explicit_ids_.data() + dst_row * num_leaves_;
    for (size_t l = 0; l < num_leaves_; ++l) {
      d[l] = s[l];
      did[l] = id[l];
    }
  }

  /// Pre-order lexicographic comparison by leaf scores — the same linear
  /// extension as CompiledPreference::LexLess, over the packed layout.
  bool LexLess(size_t a, size_t b) const {
    const double* sa = scores(a);
    const double* sb = scores(b);
    for (size_t i = 0; i < num_leaves_; ++i) {
      if (sa[i] < sb[i]) return true;
      if (sa[i] > sb[i]) return false;
    }
    return false;
  }

 private:
  size_t num_leaves_ = 0;
  size_t size_ = 0;
  std::vector<double> scores_;
  std::vector<int32_t> explicit_ids_;
};

}  // namespace prefsql
