#include "net/protocol.h"

#include <algorithm>

namespace prefsql::net {

// ---------------------------------------------------------------------------
// WireWriter
// ---------------------------------------------------------------------------

void WireWriter::PutValue(const Value& v) {
  PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      PutU8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      PutI64(v.AsInt());
      break;
    case ValueType::kDouble:
      PutDouble(v.AsDouble());
      break;
    case ValueType::kText:
      PutString(v.AsText());
      break;
    case ValueType::kDate:
      PutI64(v.AsDateDays());
      break;
    case ValueType::kParam:
      // Parameter holes never cross the wire (binding replaces them before
      // execution; clients ship concrete values). Encode as NULL so a
      // library bug degrades instead of corrupting the stream.
      buf_.back() = static_cast<uint8_t>(ValueType::kNull);
      break;
  }
}

void WireWriter::PutSchema(const Schema& schema) {
  PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnInfo& col : schema.columns()) {
    PutString(col.qualifier);
    PutString(col.name);
  }
}

// ---------------------------------------------------------------------------
// WireReader
// ---------------------------------------------------------------------------

bool WireReader::Take(size_t n, const uint8_t** out) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_ + pos_;
  pos_ += n;
  return true;
}

bool WireReader::GetU8(uint8_t* out) {
  const uint8_t* p;
  if (!Take(1, &p)) return false;
  *out = p[0];
  return true;
}

bool WireReader::GetU16(uint16_t* out) {
  const uint8_t* p;
  if (!Take(2, &p)) return false;
  *out = static_cast<uint16_t>(p[0] | (p[1] << 8));
  return true;
}

bool WireReader::GetU32(uint32_t* out) {
  const uint8_t* p;
  if (!Take(4, &p)) return false;
  *out = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
  return true;
}

bool WireReader::GetI64(int64_t* out) {
  const uint8_t* p;
  if (!Take(8, &p)) return false;
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  *out = static_cast<int64_t>(v);
  return true;
}

bool WireReader::GetDouble(double* out) {
  int64_t bits;
  if (!GetI64(&bits)) return false;
  std::memcpy(out, &bits, sizeof(*out));
  return true;
}

bool WireReader::GetString(std::string* out) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  const uint8_t* p;
  if (!Take(len, &p)) return false;
  out->assign(reinterpret_cast<const char*>(p), len);
  return true;
}

bool WireReader::GetValue(Value* out) {
  uint8_t tag;
  if (!GetU8(&tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kBool: {
      uint8_t b;
      if (!GetU8(&b)) return false;
      *out = Value::Bool(b != 0);
      return true;
    }
    case ValueType::kInt: {
      int64_t i;
      if (!GetI64(&i)) return false;
      *out = Value::Int(i);
      return true;
    }
    case ValueType::kDouble: {
      double d;
      if (!GetDouble(&d)) return false;
      *out = Value::Double(d);
      return true;
    }
    case ValueType::kText: {
      std::string s;
      if (!GetString(&s)) return false;
      *out = Value::Text(std::move(s));
      return true;
    }
    case ValueType::kDate: {
      int64_t days;
      if (!GetI64(&days)) return false;
      *out = Value::Date(days);
      return true;
    }
    default:
      ok_ = false;  // includes kParam: holes never cross the wire
      return false;
  }
}

bool WireReader::GetSchema(Schema* out) {
  uint32_t ncols;
  if (!GetU32(&ncols)) return false;
  // Each column costs at least two length prefixes; bound the count by the
  // remaining bytes so a hostile prefix cannot force a huge allocation.
  if (ncols > remaining() / (2 * sizeof(uint32_t)) + 1) {
    ok_ = false;
    return false;
  }
  std::vector<ColumnInfo> cols;
  cols.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    ColumnInfo col;
    if (!GetString(&col.qualifier) || !GetString(&col.name)) return false;
    cols.push_back(std::move(col));
  }
  *out = Schema(std::move(cols));
  return true;
}

// ---------------------------------------------------------------------------
// Frame encoding
// ---------------------------------------------------------------------------

std::vector<uint8_t> EncodeFrame(Verb verb,
                                 const std::vector<uint8_t>& payload) {
  const uint32_t length = static_cast<uint32_t>(payload.size() + 1);
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + length);
  for (size_t i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(length >> (8 * i)));
  }
  out.push_back(static_cast<uint8_t>(verb));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<uint8_t> EncodeEmptyFrame(Verb verb) {
  return EncodeFrame(verb, {});
}

std::vector<uint8_t> EncodeHello() {
  WireWriter w;
  w.PutU32(kMagic);
  w.PutU16(kProtocolVersion);
  return EncodeFrame(Verb::kHello, w.bytes());
}

std::vector<uint8_t> EncodeHelloOk(const std::string& banner) {
  WireWriter w;
  w.PutU16(kProtocolVersion);
  w.PutString(banner);
  return EncodeFrame(Verb::kHelloOk, w.bytes());
}

std::vector<uint8_t> EncodeSql(Verb verb, const std::string& sql) {
  WireWriter w;
  w.PutString(sql);
  return EncodeFrame(verb, w.bytes());
}

std::vector<uint8_t> EncodeBind(
    uint32_t stmt_id, bool clear_first,
    const std::vector<std::pair<uint32_t, Value>>& values) {
  WireWriter w;
  w.PutU32(stmt_id);
  w.PutU8(clear_first ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(values.size()));
  for (const auto& [index, value] : values) {
    w.PutU32(index);
    w.PutValue(value);
  }
  return EncodeFrame(Verb::kBind, w.bytes());
}

std::vector<uint8_t> EncodeStmtId(Verb verb, uint32_t stmt_id) {
  WireWriter w;
  w.PutU32(stmt_id);
  return EncodeFrame(verb, w.bytes());
}

std::vector<uint8_t> EncodeFetch(uint32_t max_rows) {
  WireWriter w;
  w.PutU32(max_rows);
  return EncodeFrame(Verb::kFetch, w.bytes());
}

std::vector<uint8_t> EncodeError(const Status& status) {
  WireWriter w;
  w.PutU16(static_cast<uint16_t>(status.code()));
  w.PutString(status.message());
  return EncodeFrame(Verb::kError, w.bytes());
}

std::vector<uint8_t> EncodePrepared(uint32_t stmt_id,
                                    const std::vector<std::string>& names) {
  WireWriter w;
  w.PutU32(stmt_id);
  w.PutU32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) w.PutString(name);
  return EncodeFrame(Verb::kPrepared, w.bytes());
}

std::vector<uint8_t> EncodeResultHeader(const Schema& schema) {
  WireWriter w;
  w.PutSchema(schema);
  return EncodeFrame(Verb::kResultHeader, w.bytes());
}

std::vector<uint8_t> EncodeRowPage(bool last, const std::vector<Row>& rows) {
  WireWriter w;
  w.PutU8(last ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(rows.size()));
  for (const Row& row : rows) {
    for (const Value& v : row) w.PutValue(v);
  }
  return EncodeFrame(Verb::kRowPage, w.bytes());
}

std::vector<uint8_t> EncodeStatsResult(
    const std::vector<std::pair<std::string, int64_t>>& stats) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(stats.size()));
  for (const auto& [key, value] : stats) {
    w.PutString(key);
    w.PutI64(value);
  }
  return EncodeFrame(Verb::kStatsResult, w.bytes());
}

// ---------------------------------------------------------------------------
// Frame decoding
// ---------------------------------------------------------------------------

namespace {
Status Malformed(const char* what) {
  return Status::ParseError(std::string("malformed ") + what + " frame");
}
}  // namespace

Status DecodeHello(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  uint32_t magic;
  uint16_t version;
  if (!r.GetU32(&magic) || !r.GetU16(&version) || !r.AtEnd()) {
    return Malformed("HELLO");
  }
  if (magic != kMagic) {
    return Status::ParseError("bad protocol magic (not a prefsql client?)");
  }
  if (version != kProtocolVersion) {
    return Status::NotImplemented(
        "unsupported protocol version " + std::to_string(version) +
        " (server speaks " + std::to_string(kProtocolVersion) + ")");
  }
  return Status::OK();
}

Result<std::string> DecodeHelloOk(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  uint16_t version;
  std::string banner;
  if (!r.GetU16(&version) || !r.GetString(&banner) || !r.AtEnd()) {
    return Malformed("HELLO_OK");
  }
  if (version != kProtocolVersion) {
    return Status::NotImplemented("unsupported server protocol version " +
                                  std::to_string(version));
  }
  return banner;
}

Result<std::string> DecodeSql(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  std::string sql;
  if (!r.GetString(&sql) || !r.AtEnd()) return Malformed("SQL");
  return sql;
}

Result<BindRequest> DecodeBind(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  BindRequest req;
  uint8_t clear;
  uint32_t count;
  if (!r.GetU32(&req.stmt_id) || !r.GetU8(&clear) || !r.GetU32(&count)) {
    return Malformed("BIND");
  }
  req.clear_first = clear != 0;
  // Every entry costs at least index + tag bytes.
  if (count > r.remaining() / 5 + 1) return Malformed("BIND");
  req.values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t index;
    Value value;
    if (!r.GetU32(&index) || !r.GetValue(&value)) return Malformed("BIND");
    req.values.emplace_back(index, std::move(value));
  }
  if (!r.AtEnd()) return Malformed("BIND");
  return req;
}

Result<uint32_t> DecodeStmtId(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  uint32_t id;
  if (!r.GetU32(&id) || !r.AtEnd()) return Malformed("statement-id");
  return id;
}

Result<uint32_t> DecodeFetch(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  uint32_t max_rows;
  if (!r.GetU32(&max_rows) || !r.AtEnd()) return Malformed("FETCH");
  return max_rows;
}

Status DecodeError(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  uint16_t code;
  std::string message;
  if (!r.GetU16(&code) || !r.GetString(&message) || !r.AtEnd()) {
    return Malformed("ERROR");
  }
  if (code == 0 || code > static_cast<uint16_t>(StatusCode::kResourceExhausted)) {
    // Unknown category from a future peer: preserve the message, degrade
    // the code.
    return Status::ExecutionError("remote error (code " +
                                  std::to_string(code) + "): " + message);
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

Result<PreparedInfo> DecodePrepared(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  PreparedInfo info;
  uint32_t count;
  if (!r.GetU32(&info.stmt_id) || !r.GetU32(&count)) {
    return Malformed("PREPARED");
  }
  if (count > r.remaining() / sizeof(uint32_t) + 1) {
    return Malformed("PREPARED");
  }
  info.param_names.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!r.GetString(&name)) return Malformed("PREPARED");
    info.param_names.push_back(std::move(name));
  }
  if (!r.AtEnd()) return Malformed("PREPARED");
  return info;
}

Result<Schema> DecodeResultHeader(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  Schema schema;
  if (!r.GetSchema(&schema) || !r.AtEnd()) return Malformed("RESULT_HEADER");
  return schema;
}

Result<RowPage> DecodeRowPage(const std::vector<uint8_t>& payload,
                              size_t num_columns) {
  WireReader r(payload);
  RowPage page;
  uint8_t last;
  uint32_t nrows;
  if (!r.GetU8(&last) || !r.GetU32(&nrows)) return Malformed("ROW_PAGE");
  page.last = last != 0;
  // Every non-empty row costs at least one tag byte per value; a
  // zero-column result (DML, DDL) never ships rows at all, so a positive
  // count there is a lie that would otherwise loop unboundedly.
  if (num_columns == 0 && nrows > 0) return Malformed("ROW_PAGE");
  if (num_columns > 0 && nrows > r.remaining() / num_columns + 1) {
    return Malformed("ROW_PAGE");
  }
  page.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    Row row;
    row.reserve(num_columns);
    for (size_t c = 0; c < num_columns; ++c) {
      Value v;
      if (!r.GetValue(&v)) return Malformed("ROW_PAGE");
      row.push_back(std::move(v));
    }
    page.rows.push_back(std::move(row));
  }
  if (!r.AtEnd()) return Malformed("ROW_PAGE");
  return page;
}

Result<std::vector<std::pair<std::string, int64_t>>> DecodeStatsResult(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  uint32_t count;
  if (!r.GetU32(&count)) return Malformed("STATS_RESULT");
  if (count > r.remaining() / (sizeof(uint32_t) + sizeof(int64_t)) + 1) {
    return Malformed("STATS_RESULT");
  }
  std::vector<std::pair<std::string, int64_t>> stats;
  stats.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string key;
    int64_t value;
    if (!r.GetString(&key) || !r.GetI64(&value)) {
      return Malformed("STATS_RESULT");
    }
    stats.emplace_back(std::move(key), value);
  }
  if (!r.AtEnd()) return Malformed("STATS_RESULT");
  return stats;
}

// ---------------------------------------------------------------------------
// FrameBuffer
// ---------------------------------------------------------------------------

void FrameBuffer::Append(const uint8_t* data, size_t size) {
  // Compact lazily: once the consumed prefix dominates the buffer, slide
  // the live suffix down so the buffer does not grow without bound across
  // a long-lived connection.
  if (consumed_ > 4096 && consumed_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
}

Result<std::optional<Frame>> FrameBuffer::Next() {
  if (buffered() < kFrameHeaderBytes) return std::optional<Frame>{};
  const uint8_t* p = buf_.data() + consumed_;
  const uint32_t length = static_cast<uint32_t>(p[0]) |
                          (static_cast<uint32_t>(p[1]) << 8) |
                          (static_cast<uint32_t>(p[2]) << 16) |
                          (static_cast<uint32_t>(p[3]) << 24);
  if (length == 0) {
    return Status::ParseError("empty frame (missing verb byte)");
  }
  if (length > max_frame_bytes_) {
    return Status::ParseError("frame length " + std::to_string(length) +
                              " exceeds the " +
                              std::to_string(max_frame_bytes_) +
                              "-byte frame cap");
  }
  if (buffered() < kFrameHeaderBytes + length) return std::optional<Frame>{};
  Frame frame;
  frame.verb = static_cast<Verb>(p[kFrameHeaderBytes]);
  frame.payload.assign(p + kFrameHeaderBytes + 1,
                       p + kFrameHeaderBytes + length);
  consumed_ += kFrameHeaderBytes + length;
  if (consumed_ == buf_.size()) {
    buf_.clear();
    consumed_ = 0;
  }
  return std::optional<Frame>(std::move(frame));
}

}  // namespace prefsql::net
