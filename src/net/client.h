// Blocking C++ client for the prefsqld wire protocol — the remote mirror
// of the in-process Connection / PreparedStatement / Cursor surface.
//
//   auto client = net::Client::Connect("127.0.0.1", port);
//   auto rows = (*client)->Execute("SELECT * FROM car PREFERRING "
//                                  "LOWEST(price)");            // ResultTable
//   auto stmt = (*client)->Prepare("SELECT ... AROUND ?");
//   stmt->Bind(0, Value::Int(40000));
//   auto cursor = stmt->Open();                                  // streamed
//   while (auto row = cursor->Next()) { ... }                    // row pages
//
// Errors carry the engine's stable numeric StatusCode across the wire, so
// remote callers branch on exactly the codes embedded callers see
// (kParseError, kBindError, kTimeout, kCancelled, ...).
//
// Threading: a Client is used from one thread — with one exception,
// Cancel(), which may be called from any thread while a request is in
// flight (it writes the out-of-band CANCEL frame; the in-flight request
// then completes or returns kCancelled). This mirrors
// Session::CancelCurrent and is what the shell's Ctrl-C handler uses.
//
// At most one RemoteCursor is open per client at a time (the protocol's
// one-cursor-per-connection rule); RemoteCursor and RemoteStatement
// borrow the Client and must not outlive it.

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/protocol.h"
#include "types/result_table.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/status.h"

namespace prefsql::net {

struct ClientOptions {
  /// Frame cap applied to server responses (mirror of the server's cap).
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Rows requested per FETCH round trip.
  uint32_t fetch_page_rows = 512;
  /// Connect timeout; 0 blocks indefinitely.
  int connect_timeout_ms = 5000;
};

class Client;

/// Streamed remote result: buffers one ROW_PAGE at a time, fetching the
/// next page lazily. Movable; Close() (or destruction) releases the
/// server-side cursor early.
class RemoteCursor {
 public:
  RemoteCursor() = default;
  ~RemoteCursor();
  RemoteCursor(RemoteCursor&& other) noexcept;
  RemoteCursor& operator=(RemoteCursor&& other) noexcept;
  RemoteCursor(const RemoteCursor&) = delete;
  RemoteCursor& operator=(const RemoteCursor&) = delete;

  const Schema& columns() const { return schema_; }

  /// The next row, or nullopt at end of stream. A mid-stream server error
  /// (deadline, cancel, budget) surfaces with its numeric code and closes
  /// the cursor.
  Result<std::optional<Row>> Next();

  /// Releases the server-side cursor (early close); idempotent.
  void Close();

  bool is_open() const { return open_; }

 private:
  friend class Client;
  friend class RemoteStatement;
  RemoteCursor(Client* client, Schema schema)
      : client_(client), schema_(std::move(schema)), open_(true) {}

  Client* client_ = nullptr;
  Schema schema_;
  std::deque<Row> buffer_;
  bool open_ = false;
  bool exhausted_ = false;  ///< server sent the last page already
};

/// Server-side prepared statement handle. Bind calls accumulate locally
/// and ship with the next Execute/Open (one BIND round trip per
/// execution, not per value).
class RemoteStatement {
 public:
  RemoteStatement() = default;
  ~RemoteStatement();
  RemoteStatement(RemoteStatement&& other) noexcept;
  RemoteStatement& operator=(RemoteStatement&& other) noexcept;
  RemoteStatement(const RemoteStatement&) = delete;
  RemoteStatement& operator=(const RemoteStatement&) = delete;

  size_t parameter_count() const { return param_names_.size(); }
  const std::vector<std::string>& parameter_names() const {
    return param_names_;
  }

  /// Binds slot `index` (0-based); kBindError on a bad index. Value
  /// constraints are checked server-side at ship time.
  Status Bind(size_t index, Value value);
  /// Binds every slot named `$name`.
  Status Bind(const std::string& name, Value value);
  /// Clears all bindings (shipped with the next execution).
  void ClearBindings();

  /// Executes with the current bindings, materializing the result.
  Result<ResultTable> Execute();
  /// Executes with the current bindings, streaming row pages.
  Result<RemoteCursor> Open();

  /// Frees the server-side statement; idempotent.
  void Close();

 private:
  friend class Client;
  RemoteStatement(Client* client, uint32_t id,
                  std::vector<std::string> names)
      : client_(client), id_(id), param_names_(std::move(names)) {}

  /// Ships pending ClearBindings/Bind calls; no-op when clean.
  Status ShipBindings();

  Client* client_ = nullptr;
  uint32_t id_ = 0;
  std::vector<std::string> param_names_;
  std::vector<std::pair<uint32_t, Value>> pending_;
  bool pending_clear_ = false;
};

/// One blocking protocol connection.
class Client {
 public:
  /// Dials `host:port` and completes the versioned handshake.
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& host, int port, ClientOptions options = {});

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One-shot execute: streams every page and materializes the result
  /// (works for SELECT, DML, DDL, SET, EXPLAIN — anything a statement
  /// returns).
  Result<ResultTable> Execute(const std::string& sql);

  /// Opens a streamed cursor over one statement.
  Result<RemoteCursor> OpenCursor(const std::string& sql);

  /// Prepares a statement server-side for repeated bound execution.
  Result<RemoteStatement> Prepare(const std::string& sql);

  /// Server + this-connection counters (the STATS verb).
  Result<std::vector<std::pair<std::string, int64_t>>> Stats();

  /// Out-of-band cancel of this connection's in-flight statement; safe
  /// from any thread.
  Status Cancel();

  /// Best-effort GOODBYE, then closes the socket; idempotent.
  void Close();

  bool is_open() const { return fd_ >= 0; }
  /// The server's HELLO_OK banner.
  const std::string& banner() const { return banner_; }

 private:
  friend class RemoteCursor;
  friend class RemoteStatement;

  Client(int fd, ClientOptions options);

  /// Writes one encoded frame (serialized against concurrent Cancel).
  Status WriteBytes(const std::vector<uint8_t>& bytes);
  /// Blocks until one complete frame arrives.
  Result<Frame> ReadFrame();
  /// Write + read-one-frame; decodes kError frames into their Status.
  /// `expect` is the success verb; anything else is a protocol error.
  Result<Frame> RoundTrip(const std::vector<uint8_t>& request, Verb expect);

  /// FETCH one page for the open cursor.
  Result<RowPage> FetchPage(size_t num_columns);
  /// CLOSE_CURSOR round trip (RemoteCursor::Close).
  void CloseCursorEarly();
  /// CLOSE_STMT round trip (RemoteStatement::Close).
  void CloseStatement(uint32_t id);

  int fd_ = -1;
  ClientOptions options_;
  std::string banner_;
  FrameBuffer frames_;
  std::mutex write_mu_;  ///< serializes request writes against Cancel()
};

}  // namespace prefsql::net
