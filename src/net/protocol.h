// prefsqld wire protocol: length-prefixed binary frames over TCP.
//
// Every message is one frame:
//
//   [u32 length][u8 verb][payload ...]        (all integers little-endian)
//
// `length` counts the verb byte plus the payload, so a complete frame
// occupies 4 + length bytes on the wire. Frames above the negotiated
// maximum (ServerOptions::max_frame_bytes, default 16 MiB) are rejected
// before buffering — a malicious length prefix cannot make either side
// allocate unboundedly.
//
// The conversation is strict request-response: the client sends one
// request verb and reads frames until the response is complete (one frame
// for most verbs). The single exception is CANCEL, which is out-of-band:
// it may be sent while a request is in flight, elicits *no* response
// frame of its own, and the in-flight request either completes normally
// or fails with the numeric kCancelled status — exactly the semantics of
// Session::CancelCurrent. Because CANCEL never injects a response, the
// request-response stream never interleaves and a blocking client stays
// trivially correct.
//
// Handshake: the first client frame must be HELLO carrying the protocol
// magic and version; the server answers HELLO_OK (version + banner) or an
// ERROR frame and closes. Anything else first — or a malformed frame at
// any point — is a protocol error: the server sends ERROR and closes the
// connection (counted in the server's protocol_errors).
//
// Verb state machine (per connection, after the handshake):
//
//   EXECUTE sql          -> RESULT_HEADER          (opens the cursor)
//   PREPARE sql          -> PREPARED id names      (server-side statement)
//   BIND id values       -> OK
//   EXECUTE_STMT id      -> RESULT_HEADER          (opens the cursor)
//   FETCH max_rows       -> ROW_PAGE last rows     (last=1 closes it)
//   CLOSE_CURSOR         -> OK                     (early close)
//   CLOSE_STMT id        -> OK
//   STATS                -> STATS_RESULT pairs
//   GOODBYE              -> OK, then either side closes
//   CANCEL               -> (no response; out-of-band)
//
// At most one cursor is open per connection; EXECUTE/EXECUTE_STMT while
// one is open, or FETCH while none is, report kExecutionError. Errors
// carry the engine's stable numeric StatusCode plus the message, so a
// remote client branches on exactly the codes an embedded one would.
//
// Values are tagged with their ValueType ordinal; TEXT carries u32 length
// + bytes, DOUBLE the IEEE-754 bit pattern, DATE the day number. Schemas
// are (qualifier, name) string pairs so remote result headers print
// identically to in-process ones.

#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "types/schema.h"
#include "types/value.h"
#include "util/status.h"

namespace prefsql::net {

/// Protocol magic ("PSQL" little-endian) carried by HELLO.
inline constexpr uint32_t kMagic = 0x4C515350u;
/// Protocol version carried by HELLO / HELLO_OK.
inline constexpr uint16_t kProtocolVersion = 1;
/// Default cap on one frame's length field (verb + payload bytes).
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u * 1024 * 1024;
/// Frame header: u32 length prefix.
inline constexpr size_t kFrameHeaderBytes = 4;

/// Wire verbs. Client requests occupy 1..63, server responses 128..191.
enum class Verb : uint8_t {
  // client -> server
  kHello = 1,
  kExecute = 2,       ///< payload: string sql
  kPrepare = 3,       ///< payload: string sql
  kBind = 4,          ///< payload: u32 stmt_id, u8 clear, u32 n, n×(u32 index, Value)
  kExecuteStmt = 5,   ///< payload: u32 stmt_id
  kFetch = 6,         ///< payload: u32 max_rows (0 = server default page)
  kCloseCursor = 7,   ///< payload: empty
  kCloseStmt = 8,     ///< payload: u32 stmt_id
  kCancel = 9,        ///< payload: empty; out-of-band, no response
  kStats = 10,        ///< payload: empty
  kGoodbye = 11,      ///< payload: empty

  // server -> client
  kOk = 128,           ///< payload: empty
  kHelloOk = 129,      ///< payload: u16 version, string banner
  kError = 130,        ///< payload: u16 status code, string message
  kPrepared = 131,     ///< payload: u32 stmt_id, u32 n, n×string name
  kResultHeader = 132, ///< payload: encoded Schema
  kRowPage = 133,      ///< payload: u8 last, u32 nrows, nrows×ncols Values
  kStatsResult = 134,  ///< payload: u32 n, n×(string key, i64 value)
};

/// One reassembled frame: the verb plus its payload bytes.
struct Frame {
  Verb verb = Verb::kOk;
  std::vector<uint8_t> payload;
};

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Append-only little-endian encoder for frame payloads.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLE(v); }
  void PutU32(uint32_t v) { PutLE(v); }
  void PutI64(int64_t v) { PutLE(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutLE(bits);
  }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void PutValue(const Value& v);
  void PutSchema(const Schema& schema);

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  template <typename T>
  void PutLE(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian decoder. Every getter reports false (and
/// latches the failure) instead of reading past the payload, so decode
/// functions turn arbitrary bytes into either a value or a kParseError —
/// never undefined behavior.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::vector<uint8_t>& bytes)
      : WireReader(bytes.data(), bytes.size()) {}

  bool GetU8(uint8_t* out);
  bool GetU16(uint16_t* out);
  bool GetU32(uint32_t* out);
  bool GetI64(int64_t* out);
  bool GetDouble(double* out);
  bool GetString(std::string* out);
  bool GetValue(Value* out);
  bool GetSchema(Schema* out);

  /// True iff every get so far succeeded.
  bool ok() const { return ok_; }
  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }
  /// True iff the payload was consumed exactly (trailing garbage is a
  /// protocol error for fixed-shape payloads).
  bool AtEnd() const { return ok_ && pos_ == size_; }

 private:
  bool Take(size_t n, const uint8_t** out);
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Serializes a complete frame (header + verb + payload).
std::vector<uint8_t> EncodeFrame(Verb verb, const std::vector<uint8_t>& payload);
/// Convenience: frame with an empty payload.
std::vector<uint8_t> EncodeEmptyFrame(Verb verb);

// Typed payload builders for every frame shape.
std::vector<uint8_t> EncodeHello();
std::vector<uint8_t> EncodeHelloOk(const std::string& banner);
std::vector<uint8_t> EncodeSql(Verb verb, const std::string& sql);
std::vector<uint8_t> EncodeBind(uint32_t stmt_id, bool clear_first,
                                const std::vector<std::pair<uint32_t, Value>>&
                                    values);
std::vector<uint8_t> EncodeStmtId(Verb verb, uint32_t stmt_id);
std::vector<uint8_t> EncodeFetch(uint32_t max_rows);
std::vector<uint8_t> EncodeError(const Status& status);
std::vector<uint8_t> EncodePrepared(uint32_t stmt_id,
                                    const std::vector<std::string>& names);
std::vector<uint8_t> EncodeResultHeader(const Schema& schema);
std::vector<uint8_t> EncodeRowPage(bool last, const std::vector<Row>& rows);
std::vector<uint8_t> EncodeStatsResult(
    const std::vector<std::pair<std::string, int64_t>>& stats);

// Typed payload decoders; each rejects trailing bytes.
Status DecodeHello(const std::vector<uint8_t>& payload);
Result<std::string> DecodeHelloOk(const std::vector<uint8_t>& payload);
Result<std::string> DecodeSql(const std::vector<uint8_t>& payload);
struct BindRequest {
  uint32_t stmt_id = 0;
  bool clear_first = false;
  std::vector<std::pair<uint32_t, Value>> values;
};
Result<BindRequest> DecodeBind(const std::vector<uint8_t>& payload);
Result<uint32_t> DecodeStmtId(const std::vector<uint8_t>& payload);
Result<uint32_t> DecodeFetch(const std::vector<uint8_t>& payload);
/// The remote failure as a Status carrying the original numeric code;
/// a malformed ERROR payload itself decodes to kParseError.
Status DecodeError(const std::vector<uint8_t>& payload);
struct PreparedInfo {
  uint32_t stmt_id = 0;
  std::vector<std::string> param_names;
};
Result<PreparedInfo> DecodePrepared(const std::vector<uint8_t>& payload);
Result<Schema> DecodeResultHeader(const std::vector<uint8_t>& payload);
struct RowPage {
  bool last = false;
  std::vector<Row> rows;
};
/// `num_columns` comes from the preceding RESULT_HEADER; every row must
/// carry exactly that many values.
Result<RowPage> DecodeRowPage(const std::vector<uint8_t>& payload,
                              size_t num_columns);
Result<std::vector<std::pair<std::string, int64_t>>> DecodeStatsResult(
    const std::vector<uint8_t>& payload);

// ---------------------------------------------------------------------------
// Frame reassembly
// ---------------------------------------------------------------------------

/// Incremental frame reassembler: feed it whatever the socket produced,
/// pop complete frames. Tolerates arbitrary fragmentation (byte-at-a-time
/// delivery) and rejects oversized or truncated-forever frames by policy
/// of the caller (`max_frame_bytes`).
class FrameBuffer {
 public:
  explicit FrameBuffer(uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw socket bytes.
  void Append(const uint8_t* data, size_t size);

  /// Pops the next complete frame: nullopt when more bytes are needed, a
  /// kParseError status when the pending length prefix exceeds the frame
  /// cap or declares an empty frame (no verb byte) — the connection is
  /// unrecoverable then.
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed.
  size_t buffered() const { return buf_.size() - consumed_; }

 private:
  uint32_t max_frame_bytes_;
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;
};

}  // namespace prefsql::net
