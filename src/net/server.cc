#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace prefsql::net {

namespace {

/// Best-effort close that survives EINTR.
void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

Status SocketError(const char* what) {
  return Status::ExecutionError(std::string(what) + ": " +
                                std::strerror(errno));
}

}  // namespace

std::vector<std::pair<std::string, int64_t>> ServerStats::Snapshot() const {
  auto get = [](const std::atomic<uint64_t>& a) {
    return static_cast<int64_t>(a.load(std::memory_order_relaxed));
  };
  return {
      {"connections_accepted", get(connections_accepted)},
      {"connections_refused", get(connections_refused)},
      {"connections_closed", get(connections_closed)},
      {"active_connections", get(active_connections)},
      {"statements", get(statements)},
      {"rows_shipped", get(rows_shipped)},
      {"cancels", get(cancels)},
      {"protocol_errors", get(protocol_errors)},
  };
}

Server::Server(std::shared_ptr<Engine> engine, ServerOptions options)
    : engine_(std::move(engine)), options_(std::move(options)) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  std::lock_guard<std::mutex> guard(lifecycle_mu_);
  if (started_) return Status::ExecutionError("server already started");

  std::string host = options_.host == "localhost" ? "127.0.0.1"
                                                  : options_.host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address '" + options_.host +
                                   "' (numeric IPv4 expected)");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return SocketError("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = SocketError("bind");
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status st = SocketError("listen");
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  if (::pipe2(wake_fds_, O_NONBLOCK | O_CLOEXEC) != 0) {
    Status st = SocketError("pipe2");
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  pool_ = std::make_unique<ThreadPool>(options_.max_connections);
  stopping_.store(false, std::memory_order_release);
  reactor_ = std::thread(&Server::ReactorLoop, this);
  started_ = true;
  joined_ = false;
  return Status::OK();
}

void Server::Shutdown() {
  std::lock_guard<std::mutex> guard(lifecycle_mu_);
  if (!started_ || joined_) return;
  stopping_.store(true, std::memory_order_release);
  WakeReactor();
  reactor_.join();
  // Every handler has exited (the reactor reaps all connections before it
  // returns), so the pool drains immediately.
  pool_.reset();
  CloseFd(wake_fds_[0]);
  CloseFd(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  joined_ = true;
}

void Server::WakeReactor() {
  if (wake_fds_[1] < 0) return;
  uint8_t byte = 0;
  ssize_t ignored = ::write(wake_fds_[1], &byte, 1);
  (void)ignored;  // pipe full = reactor already has a wakeup pending
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

void Server::ReactorLoop() {
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  bool accepting = true;

  auto flag_closing = [](Conn* conn) {
    std::lock_guard<std::mutex> lk(conn->mu);
    conn->closing = true;
    conn->cv.notify_all();
  };

  for (;;) {
    const bool stop = stopping_.load(std::memory_order_acquire);
    if (stop && accepting) {
      // Graceful shutdown step 1: stop accepting, tell every handler to
      // finish its queued work and exit. In-flight statements complete —
      // they are not cancelled.
      CloseFd(listen_fd_);
      listen_fd_ = -1;
      accepting = false;
      for (auto& [fd, conn] : conns) flag_closing(conn.get());
    }

    // Reap connections whose handler has exited.
    for (auto it = conns.begin(); it != conns.end();) {
      if (it->second->handler_done.load(std::memory_order_acquire)) {
        CloseFd(it->second->fd);
        stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
        stats_.active_connections.fetch_sub(1, std::memory_order_relaxed);
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
    if (stop && conns.empty()) break;

    std::vector<pollfd> fds;
    fds.push_back({wake_fds_[0], POLLIN, 0});
    if (accepting) fds.push_back({listen_fd_, POLLIN, 0});
    std::vector<Conn*> polled;
    for (auto& [fd, conn] : conns) {
      fds.push_back({fd, POLLIN, 0});
      polled.push_back(conn.get());
    }
    if (::poll(fds.data(), fds.size(), /*timeout_ms=*/1000) < 0 &&
        errno != EINTR) {
      break;  // poll itself failed: tear down rather than spin
    }

    size_t idx = 0;
    if (fds[idx].revents & POLLIN) {
      uint8_t drain[64];
      while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    ++idx;

    if (accepting) {
      if (fds[idx].revents & (POLLIN | POLLERR)) {
        for (;;) {
          int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (fd < 0) break;
          if (conns.size() >= options_.max_connections) {
            // No handler worker to give this connection: refuse with a
            // best-effort ERROR frame. No handler exists yet, so this
            // write cannot interleave with one.
            stats_.connections_refused.fetch_add(1,
                                                 std::memory_order_relaxed);
            auto refusal = EncodeError(Status::ResourceExhausted(
                "server connection limit (" +
                std::to_string(options_.max_connections) + ") reached"));
            ssize_t ignored =
                ::send(fd, refusal.data(), refusal.size(), MSG_NOSIGNAL);
            (void)ignored;
            CloseFd(fd);
            continue;
          }
          auto conn = std::make_shared<Conn>();
          conn->fd = fd;
          conn->id = next_conn_id_++;
          conn->frames = FrameBuffer(options_.max_frame_bytes);
          ConnectionOptions copts;
          copts.statement_timeout_ms = options_.statement_timeout_ms;
          copts.statement_memory_bytes = options_.statement_memory_bytes;
          copts.engine_memory_bytes = options_.engine_memory_bytes;
          conn->session = std::make_shared<Session>(copts);
          stats_.connections_accepted.fetch_add(1,
                                                std::memory_order_relaxed);
          stats_.active_connections.fetch_add(1, std::memory_order_relaxed);
          conns.emplace(fd, conn);
          pool_->Submit([this, conn] { HandleConn(conn); });
        }
      }
      ++idx;
    }

    for (size_t c = 0; c < polled.size(); ++c, ++idx) {
      if (fds[idx].revents & (POLLIN | POLLHUP | POLLERR)) {
        ReadFromConn(polled[c]);
      }
    }
  }

  // Reactor exit: every connection has been reaped; release the listen fd
  // if shutdown raced an early failure.
  CloseFd(listen_fd_);
  listen_fd_ = -1;
}

bool Server::ReadFromConn(Conn* conn) {
  const bool stop = stopping_.load(std::memory_order_acquire);
  uint8_t buf[64 * 1024];
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->frames.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error: the peer is gone. Cancel whatever its handler is
    // executing so an abandoned statement releases its locks promptly.
    conn->peer_gone.store(true, std::memory_order_release);
    conn->session->CancelCurrent();
    std::lock_guard<std::mutex> lk(conn->mu);
    conn->closing = true;
    conn->cv.notify_all();
    return false;
  }

  for (;;) {
    auto next = conn->frames.Next();
    if (!next.ok()) {
      // Unrecoverable framing (oversized/empty length prefix): hand the
      // error to the handler — it owns the write side — and close.
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lk(conn->mu);
      conn->protocol_error = next.status();
      conn->closing = true;
      conn->cv.notify_all();
      return false;
    }
    if (!next->has_value()) break;
    Frame frame = std::move(**next);
    if (frame.verb == Verb::kCancel) {
      // Out-of-band by design: handled here on the reactor, never queued,
      // so it reaches a statement the handler is still executing.
      conn->cancels.fetch_add(1, std::memory_order_relaxed);
      stats_.cancels.fetch_add(1, std::memory_order_relaxed);
      conn->session->CancelCurrent();
      continue;
    }
    if (stop) continue;  // draining: new requests are dropped
    std::lock_guard<std::mutex> lk(conn->mu);
    conn->queue.push_back(std::move(frame));
    conn->cv.notify_all();
  }
  return true;
}

// ---------------------------------------------------------------------------
// Connection handler (one long-running pool task per connection)
// ---------------------------------------------------------------------------

void Server::HandleConn(std::shared_ptr<Conn> conn) {
  ConnState st;
  for (;;) {
    Frame frame;
    bool have_frame = false;
    std::optional<Status> protocol_error;
    {
      std::unique_lock<std::mutex> lk(conn->mu);
      conn->cv.wait(lk, [&] {
        return !conn->queue.empty() || conn->closing;
      });
      if (!conn->queue.empty()) {
        frame = std::move(conn->queue.front());
        conn->queue.pop_front();
        have_frame = true;
      } else {
        protocol_error = conn->protocol_error;
      }
    }
    if (!have_frame) {
      if (protocol_error.has_value()) SendError(conn.get(), *protocol_error);
      break;
    }
    if (!ProcessFrame(conn.get(), &st, frame)) break;
  }
  // Close the cursor on this thread: it holds the engine's shared DDL
  // lock, which must be released where it was acquired.
  if (st.cursor.has_value()) {
    st.cursor->Close();
    st.cursor.reset();
  }
  st.statements.clear();
  conn->handler_done.store(true, std::memory_order_release);
  WakeReactor();
}

bool Server::WriteFrame(Conn* conn, const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  int stalls = 0;
  while (sent < bytes.size()) {
    if (conn->peer_gone.load(std::memory_order_acquire)) return false;
    ssize_t n = ::send(conn->fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      stalls = 0;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Nonblocking socket with a full send buffer: wait for writability
      // in slices so a vanished peer or shutdown cannot wedge the worker.
      pollfd pfd{conn->fd, POLLOUT, 0};
      ::poll(&pfd, 1, /*timeout_ms=*/500);
      if (++stalls > 60) return false;  // ~30 s without progress
      continue;
    }
    conn->peer_gone.store(true, std::memory_order_release);
    return false;
  }
  return true;
}

bool Server::SendError(Conn* conn, const Status& status) {
  return WriteFrame(conn, EncodeError(status));
}

bool Server::ProcessFrame(Conn* conn, ConnState* st, const Frame& frame) {
  if (!st->hello_done) {
    if (frame.verb != Verb::kHello) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, Status::ParseError("expected HELLO handshake"));
      return false;
    }
    Status hello = DecodeHello(frame.payload);
    if (!hello.ok()) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, hello);
      return false;
    }
    st->hello_done = true;
    return WriteFrame(conn, EncodeHelloOk("prefsqld"));
  }

  switch (frame.verb) {
    case Verb::kExecute: {
      auto sql = DecodeSql(frame.payload);
      if (!sql.ok()) break;  // malformed: fall through to protocol error
      if (st->cursor.has_value()) {
        return SendError(conn, Status::ExecutionError(
                                   "a cursor is already open on this "
                                   "connection (FETCH it to completion or "
                                   "CLOSE_CURSOR first)"));
      }
      auto cursor = engine_->OpenCursor(*conn->session, *sql, engine_);
      if (!cursor.ok()) return SendError(conn, cursor.status());
      conn->statements.fetch_add(1, std::memory_order_relaxed);
      stats_.statements.fetch_add(1, std::memory_order_relaxed);
      st->cursor_schema = cursor->columns();
      st->cursor.emplace(std::move(*cursor));
      return WriteFrame(conn, EncodeResultHeader(st->cursor_schema));
    }
    case Verb::kPrepare: {
      auto sql = DecodeSql(frame.payload);
      if (!sql.ok()) break;
      auto prepared = engine_->Prepare(*conn->session, *sql, engine_);
      if (!prepared.ok()) return SendError(conn, prepared.status());
      const uint32_t id = st->next_stmt_id++;
      std::vector<std::string> names = prepared->parameter_names();
      st->statements.emplace(id, std::move(*prepared));
      return WriteFrame(conn, EncodePrepared(id, names));
    }
    case Verb::kBind: {
      auto req = DecodeBind(frame.payload);
      if (!req.ok()) break;
      auto it = st->statements.find(req->stmt_id);
      if (it == st->statements.end()) {
        return SendError(conn, Status::BindError(
                                   "unknown statement id " +
                                   std::to_string(req->stmt_id)));
      }
      if (req->clear_first) it->second.ClearBindings();
      for (const auto& [index, value] : req->values) {
        Status bound = it->second.Bind(index, value);
        if (!bound.ok()) return SendError(conn, bound);
      }
      return WriteFrame(conn, EncodeEmptyFrame(Verb::kOk));
    }
    case Verb::kExecuteStmt: {
      auto id = DecodeStmtId(frame.payload);
      if (!id.ok()) break;
      auto it = st->statements.find(*id);
      if (it == st->statements.end()) {
        return SendError(conn, Status::BindError("unknown statement id " +
                                                 std::to_string(*id)));
      }
      if (st->cursor.has_value()) {
        return SendError(conn, Status::ExecutionError(
                                   "a cursor is already open on this "
                                   "connection (FETCH it to completion or "
                                   "CLOSE_CURSOR first)"));
      }
      auto cursor = it->second.Open();
      if (!cursor.ok()) return SendError(conn, cursor.status());
      conn->statements.fetch_add(1, std::memory_order_relaxed);
      stats_.statements.fetch_add(1, std::memory_order_relaxed);
      st->cursor_schema = cursor->columns();
      st->cursor.emplace(std::move(*cursor));
      return WriteFrame(conn, EncodeResultHeader(st->cursor_schema));
    }
    case Verb::kFetch: {
      auto max = DecodeFetch(frame.payload);
      if (!max.ok()) break;
      if (!st->cursor.has_value()) {
        return SendError(conn,
                         Status::ExecutionError("no cursor is open"));
      }
      uint32_t want = *max == 0 ? options_.default_fetch_rows : *max;
      want = std::min(want, options_.max_fetch_rows);
      std::vector<Row> rows;
      rows.reserve(want);
      bool last = false;
      while (rows.size() < want) {
        auto next = st->cursor->Next();
        if (!next.ok()) {
          // Mid-stream failure (deadline, cancel, budget): the cursor is
          // dead — free the statement and carry the numeric code across.
          st->cursor->Close();
          st->cursor.reset();
          return SendError(conn, next.status());
        }
        if (!next->has_value()) {
          last = true;
          break;
        }
        rows.push_back((**next).row());
      }
      conn->rows_shipped.fetch_add(rows.size(), std::memory_order_relaxed);
      stats_.rows_shipped.fetch_add(rows.size(), std::memory_order_relaxed);
      if (last) {
        st->cursor->Close();
        st->cursor.reset();
      }
      return WriteFrame(conn, EncodeRowPage(last, rows));
    }
    case Verb::kCloseCursor: {
      if (st->cursor.has_value()) {
        st->cursor->Close();
        st->cursor.reset();
      }
      return WriteFrame(conn, EncodeEmptyFrame(Verb::kOk));
    }
    case Verb::kCloseStmt: {
      auto id = DecodeStmtId(frame.payload);
      if (!id.ok()) break;
      st->statements.erase(*id);
      return WriteFrame(conn, EncodeEmptyFrame(Verb::kOk));
    }
    case Verb::kStats: {
      auto snapshot = stats_.Snapshot();
      snapshot.emplace_back(
          "conn.statements",
          static_cast<int64_t>(
              conn->statements.load(std::memory_order_relaxed)));
      snapshot.emplace_back(
          "conn.rows_shipped",
          static_cast<int64_t>(
              conn->rows_shipped.load(std::memory_order_relaxed)));
      snapshot.emplace_back(
          "conn.cancels",
          static_cast<int64_t>(
              conn->cancels.load(std::memory_order_relaxed)));
      return WriteFrame(conn, EncodeStatsResult(snapshot));
    }
    case Verb::kGoodbye: {
      WriteFrame(conn, EncodeEmptyFrame(Verb::kOk));
      return false;
    }
    case Verb::kCancel:
      // Intercepted by the reactor; tolerate one slipping through.
      return true;
    default:
      break;
  }

  // Unknown verb or malformed payload for a known verb: protocol error,
  // report and close (the stream position can no longer be trusted).
  stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
  SendError(conn, Status::ParseError(
                      "malformed frame (verb " +
                      std::to_string(static_cast<int>(frame.verb)) + ")"));
  return false;
}

}  // namespace prefsql::net
