#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace prefsql::net {

namespace {

Status SocketError(const char* what) {
  return Status::ExecutionError(std::string(what) + ": " +
                                std::strerror(errno));
}

}  // namespace

// ---------------------------------------------------------------------------
// RemoteCursor
// ---------------------------------------------------------------------------

RemoteCursor::~RemoteCursor() { Close(); }

RemoteCursor::RemoteCursor(RemoteCursor&& other) noexcept
    : client_(other.client_),
      schema_(std::move(other.schema_)),
      buffer_(std::move(other.buffer_)),
      open_(other.open_),
      exhausted_(other.exhausted_) {
  other.client_ = nullptr;
  other.open_ = false;
}

RemoteCursor& RemoteCursor::operator=(RemoteCursor&& other) noexcept {
  if (this != &other) {
    Close();
    client_ = other.client_;
    schema_ = std::move(other.schema_);
    buffer_ = std::move(other.buffer_);
    open_ = other.open_;
    exhausted_ = other.exhausted_;
    other.client_ = nullptr;
    other.open_ = false;
  }
  return *this;
}

Result<std::optional<Row>> RemoteCursor::Next() {
  if (!open_ || client_ == nullptr) {
    return Status::ExecutionError("cursor is closed");
  }
  if (buffer_.empty() && !exhausted_) {
    auto page = client_->FetchPage(schema_.num_columns());
    if (!page.ok()) {
      // Mid-stream failure: the server already freed the cursor.
      open_ = false;
      client_ = nullptr;
      return page.status();
    }
    for (Row& row : page->rows) buffer_.push_back(std::move(row));
    exhausted_ = page->last;
  }
  if (buffer_.empty()) {
    open_ = false;  // end of stream; server closed the cursor with last=1
    return std::optional<Row>{};
  }
  Row row = std::move(buffer_.front());
  buffer_.pop_front();
  return std::optional<Row>(std::move(row));
}

void RemoteCursor::Close() {
  if (open_ && client_ != nullptr && !exhausted_) {
    client_->CloseCursorEarly();
  }
  open_ = false;
  client_ = nullptr;
  buffer_.clear();
}

// ---------------------------------------------------------------------------
// RemoteStatement
// ---------------------------------------------------------------------------

RemoteStatement::~RemoteStatement() { Close(); }

RemoteStatement::RemoteStatement(RemoteStatement&& other) noexcept
    : client_(other.client_),
      id_(other.id_),
      param_names_(std::move(other.param_names_)),
      pending_(std::move(other.pending_)),
      pending_clear_(other.pending_clear_) {
  other.client_ = nullptr;
}

RemoteStatement& RemoteStatement::operator=(RemoteStatement&& other) noexcept {
  if (this != &other) {
    Close();
    client_ = other.client_;
    id_ = other.id_;
    param_names_ = std::move(other.param_names_);
    pending_ = std::move(other.pending_);
    pending_clear_ = other.pending_clear_;
    other.client_ = nullptr;
  }
  return *this;
}

Status RemoteStatement::Bind(size_t index, Value value) {
  if (index >= param_names_.size()) {
    return Status::BindError(
        "parameter index " + std::to_string(index) + " out of range (" +
        std::to_string(param_names_.size()) + " parameter(s))");
  }
  pending_.emplace_back(static_cast<uint32_t>(index), std::move(value));
  return Status::OK();
}

Status RemoteStatement::Bind(const std::string& name, Value value) {
  if (name.empty()) {
    return Status::BindError(
        "parameter name must not be empty (bind positional '?' slots by "
        "index)");
  }
  bool found = false;
  for (size_t i = 0; i < param_names_.size(); ++i) {
    if (param_names_[i] == name) {
      pending_.emplace_back(static_cast<uint32_t>(i), value);
      found = true;
    }
  }
  if (!found) {
    return Status::BindError("statement has no parameter named '$" + name +
                             "'");
  }
  return Status::OK();
}

void RemoteStatement::ClearBindings() {
  pending_.clear();
  pending_clear_ = true;
}

Status RemoteStatement::ShipBindings() {
  if (pending_.empty() && !pending_clear_) return Status::OK();
  if (client_ == nullptr) {
    return Status::ExecutionError("statement is closed");
  }
  auto reply = client_->RoundTrip(
      EncodeBind(id_, pending_clear_, pending_), Verb::kOk);
  PSQL_RETURN_IF_ERROR(reply.status());
  pending_.clear();
  pending_clear_ = false;
  return Status::OK();
}

Result<ResultTable> RemoteStatement::Execute() {
  PSQL_ASSIGN_OR_RETURN(RemoteCursor cursor, Open());
  std::vector<Row> rows;
  for (;;) {
    PSQL_ASSIGN_OR_RETURN(auto row, cursor.Next());
    if (!row.has_value()) break;
    rows.push_back(std::move(*row));
  }
  return ResultTable(cursor.columns(), std::move(rows));
}

Result<RemoteCursor> RemoteStatement::Open() {
  if (client_ == nullptr) {
    return Status::ExecutionError("statement is closed");
  }
  PSQL_RETURN_IF_ERROR(ShipBindings());
  auto reply = client_->RoundTrip(EncodeStmtId(Verb::kExecuteStmt, id_),
                                  Verb::kResultHeader);
  PSQL_RETURN_IF_ERROR(reply.status());
  PSQL_ASSIGN_OR_RETURN(Schema schema, DecodeResultHeader(reply->payload));
  return RemoteCursor(client_, std::move(schema));
}

void RemoteStatement::Close() {
  if (client_ != nullptr) {
    client_->CloseStatement(id_);
    client_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(int fd, ClientOptions options)
    : fd_(fd), options_(options), frames_(options.max_frame_bytes) {}

Client::~Client() { Close(); }

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                int port,
                                                ClientOptions options) {
  std::string addr_text = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, addr_text.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad server address '" + host +
                                   "' (numeric IPv4 expected)");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) return SocketError("socket");
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    int timeout = options.connect_timeout_ms > 0 ? options.connect_timeout_ms
                                                 : -1;
    if (::poll(&pfd, 1, timeout) <= 0) {
      ::close(fd);
      return Status::ExecutionError("connect to " + host + ":" +
                                    std::to_string(port) + " timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return Status::ExecutionError("connect to " + host + ":" +
                                    std::to_string(port) + " failed: " +
                                    std::strerror(err));
    }
  } else if (rc != 0) {
    Status st = SocketError("connect");
    ::close(fd);
    return st;
  }
  // Blocking from here on: the client API is synchronous request/response.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto client = std::unique_ptr<Client>(new Client(fd, options));
  auto reply = client->RoundTrip(EncodeHello(), Verb::kHelloOk);
  PSQL_RETURN_IF_ERROR(reply.status());
  PSQL_ASSIGN_OR_RETURN(client->banner_, DecodeHelloOk(reply->payload));
  return client;
}

void Client::Close() {
  if (fd_ < 0) return;
  // Best-effort GOODBYE so the server logs a clean close; ignore failures
  // (the peer may already be gone).
  auto ignored = RoundTrip(EncodeEmptyFrame(Verb::kGoodbye), Verb::kOk);
  (void)ignored;
  ::close(fd_);
  fd_ = -1;
}

Status Client::WriteBytes(const std::vector<uint8_t>& bytes) {
  std::lock_guard<std::mutex> guard(write_mu_);
  if (fd_ < 0) return Status::ExecutionError("client is closed");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return SocketError("send");
  }
  return Status::OK();
}

Result<Frame> Client::ReadFrame() {
  for (;;) {
    auto next = frames_.Next();
    PSQL_RETURN_IF_ERROR(next.status());
    if (next->has_value()) return std::move(**next);
    uint8_t buf[64 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      frames_.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      return Status::ExecutionError("server closed the connection");
    }
    return SocketError("recv");
  }
}

Result<Frame> Client::RoundTrip(const std::vector<uint8_t>& request,
                                Verb expect) {
  PSQL_RETURN_IF_ERROR(WriteBytes(request));
  PSQL_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.verb == Verb::kError) {
    return DecodeError(frame.payload);
  }
  if (frame.verb != expect) {
    return Status::ExecutionError(
        "protocol error: unexpected server verb " +
        std::to_string(static_cast<int>(frame.verb)));
  }
  return frame;
}

Result<ResultTable> Client::Execute(const std::string& sql) {
  PSQL_ASSIGN_OR_RETURN(RemoteCursor cursor, OpenCursor(sql));
  std::vector<Row> rows;
  for (;;) {
    PSQL_ASSIGN_OR_RETURN(auto row, cursor.Next());
    if (!row.has_value()) break;
    rows.push_back(std::move(*row));
  }
  return ResultTable(cursor.columns(), std::move(rows));
}

Result<RemoteCursor> Client::OpenCursor(const std::string& sql) {
  auto reply =
      RoundTrip(EncodeSql(Verb::kExecute, sql), Verb::kResultHeader);
  PSQL_RETURN_IF_ERROR(reply.status());
  PSQL_ASSIGN_OR_RETURN(Schema schema, DecodeResultHeader(reply->payload));
  return RemoteCursor(this, std::move(schema));
}

Result<RemoteStatement> Client::Prepare(const std::string& sql) {
  auto reply = RoundTrip(EncodeSql(Verb::kPrepare, sql), Verb::kPrepared);
  PSQL_RETURN_IF_ERROR(reply.status());
  PSQL_ASSIGN_OR_RETURN(PreparedInfo info, DecodePrepared(reply->payload));
  return RemoteStatement(this, info.stmt_id, std::move(info.param_names));
}

Result<std::vector<std::pair<std::string, int64_t>>> Client::Stats() {
  auto reply =
      RoundTrip(EncodeEmptyFrame(Verb::kStats), Verb::kStatsResult);
  PSQL_RETURN_IF_ERROR(reply.status());
  return DecodeStatsResult(reply->payload);
}

Status Client::Cancel() {
  // Out-of-band: just the write, no response to read (the in-flight
  // request's response stream stays un-interleaved).
  return WriteBytes(EncodeEmptyFrame(Verb::kCancel));
}

Result<RowPage> Client::FetchPage(size_t num_columns) {
  auto reply =
      RoundTrip(EncodeFetch(options_.fetch_page_rows), Verb::kRowPage);
  PSQL_RETURN_IF_ERROR(reply.status());
  return DecodeRowPage(reply->payload, num_columns);
}

void Client::CloseCursorEarly() {
  auto ignored =
      RoundTrip(EncodeEmptyFrame(Verb::kCloseCursor), Verb::kOk);
  (void)ignored;  // best-effort: a dead connection closes it anyway
}

void Client::CloseStatement(uint32_t id) {
  if (fd_ < 0) return;
  auto ignored = RoundTrip(EncodeStmtId(Verb::kCloseStmt, id), Verb::kOk);
  (void)ignored;
}

}  // namespace prefsql::net
