// prefsqld server core: a poll()-based reactor accepting TCP connections,
// each bound to its own Session over one shared Engine.
//
// Threading model. The statement lifecycle of a connection must stay on
// one thread: a streaming Cursor holds the engine's shared DDL lock (a
// std::shared_mutex, which must be unlocked on the thread that locked
// it), so EXECUTE and the FETCHes that drain it cannot hop between pool
// workers. The server therefore splits work as:
//
//   * one reactor thread owns all sockets: it accepts, reads, reassembles
//     frames (net/protocol.h), and handles exactly one verb inline —
//     CANCEL, which it delivers out-of-band via Session::CancelCurrent
//     (thread-safe by design) so a cancel reaches a statement the
//     connection's own handler is still executing;
//   * every accepted connection gets one long-running handler task on a
//     ThreadPool sized ServerOptions::max_connections. The handler pops
//     frames from its connection's queue, executes verbs against the
//     shared Engine through the connection's private Session, and writes
//     responses back on the same thread — EXECUTE, every FETCH, and the
//     final cursor Close all run on that one worker.
//
// Accepts beyond max_connections are refused with an ERROR frame (the
// pool has no free worker to give them — the cap doubles as the
// per-connection admission limit). Each accepted connection's Session is
// armed with the daemon's governance knobs (statement deadline,
// statement/engine memory budgets — the PR 8 limits), so one remote
// client can neither wedge nor OOM the shared engine.
//
// Graceful shutdown: stop accepting, let every handler finish the frames
// already queued (in-flight statements run to completion — they are not
// cancelled), then close the sockets and join. A connection whose peer
// disappears mid-statement *is* cancelled (CancelCurrent on EOF), so an
// abandoned long query releases its locks promptly.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "net/protocol.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace prefsql::net {

/// Daemon-level configuration of one Server.
struct ServerOptions {
  /// Numeric IPv4 listen address ("127.0.0.1", "0.0.0.0"; "localhost" is
  /// accepted as an alias for 127.0.0.1).
  std::string host = "127.0.0.1";
  /// Listen port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Connection cap = handler pool size; accepts beyond it are refused
  /// with an ERROR frame.
  size_t max_connections = 32;
  /// Per-frame byte cap enforced before buffering (both directions).
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Rows per ROW_PAGE when a FETCH asks for 0, and the hard per-page cap.
  uint32_t default_fetch_rows = 512;
  uint32_t max_fetch_rows = 65536;
  /// Governance knobs stamped into every accepted connection's Session
  /// (the per-connection limits; 0 = unlimited, as in ConnectionOptions).
  uint64_t statement_timeout_ms = 0;
  uint64_t statement_memory_bytes = 0;
  uint64_t engine_memory_bytes = 0;
};

/// Server-wide counters (atomic; readable while serving). Per-connection
/// counters live on the connection and are surfaced by the STATS verb.
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_refused{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> active_connections{0};
  std::atomic<uint64_t> statements{0};      ///< EXECUTE + EXECUTE_STMT served
  std::atomic<uint64_t> rows_shipped{0};    ///< rows across all ROW_PAGEs
  std::atomic<uint64_t> cancels{0};         ///< CANCEL frames received
  std::atomic<uint64_t> protocol_errors{0}; ///< malformed frames/handshakes

  /// Key-value snapshot (STATS verb payload, daemon printouts).
  std::vector<std::pair<std::string, int64_t>> Snapshot() const;
};

/// One TCP server over one shared Engine. Start() spawns the reactor and
/// handler pool; Shutdown() (or destruction) drains and joins.
class Server {
 public:
  Server(std::shared_ptr<Engine> engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the reactor. kExecutionError on socket
  /// failures (address in use, bad host, ...).
  Status Start();

  /// Graceful shutdown: stop accepting, drain in-flight statements, close
  /// every connection, join the reactor and pool. Idempotent.
  void Shutdown();

  /// The bound listen port (resolves port 0); valid after Start().
  int port() const { return port_; }

  const ServerOptions& options() const { return options_; }
  ServerStats& stats() { return stats_; }

 private:
  /// Per-connection state shared between the reactor (socket I/O, CANCEL,
  /// lifecycle flags) and the connection's handler task (verb execution,
  /// response writes).
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    FrameBuffer frames;                  // reactor thread only
    std::shared_ptr<Session> session;    // CancelCurrent is thread-safe

    std::mutex mu;
    std::condition_variable cv;
    std::deque<Frame> queue;             // reactor -> handler
    bool closing = false;                // EOF, protocol error, or shutdown
    std::optional<Status> protocol_error;  // sent by handler before exit

    std::atomic<bool> peer_gone{false};  // EOF/reset seen: abort writes
    std::atomic<bool> handler_done{false};

    // Per-connection counters (STATS verb).
    std::atomic<uint64_t> statements{0};
    std::atomic<uint64_t> rows_shipped{0};
    std::atomic<uint64_t> cancels{0};
  };

  /// Handler-local execution state (single-threaded by construction).
  struct ConnState {
    bool hello_done = false;
    uint32_t next_stmt_id = 1;
    std::unordered_map<uint32_t, PreparedStatement> statements;
    std::optional<Cursor> cursor;
    Schema cursor_schema;
  };

  void ReactorLoop();
  /// Drains readable bytes of `conn` into its frame queue; CANCEL frames
  /// are handled inline. Returns false when the connection is done for
  /// (EOF, error, malformed framing) and has been flagged closing.
  bool ReadFromConn(Conn* conn);
  void HandleConn(std::shared_ptr<Conn> conn);
  /// Executes one frame; returns false when the connection should close
  /// (GOODBYE, protocol error, write failure).
  bool ProcessFrame(Conn* conn, ConnState* st, const Frame& frame);
  /// Writes a complete frame, handling partial writes on the nonblocking
  /// socket; false when the peer is gone.
  bool WriteFrame(Conn* conn, const std::vector<uint8_t>& bytes);
  bool SendError(Conn* conn, const Status& status);
  void WakeReactor();

  std::shared_ptr<Engine> engine_;
  ServerOptions options_;
  ServerStats stats_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool joined_ = false;
  std::mutex lifecycle_mu_;

  std::unique_ptr<ThreadPool> pool_;
  std::thread reactor_;
  uint64_t next_conn_id_ = 1;  // reactor thread only
};

}  // namespace prefsql::net
