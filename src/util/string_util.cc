#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace prefsql {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (EqualsIgnoreCase(haystack.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

std::optional<size_t> FindNameIgnoreCase(const std::vector<std::string>& names,
                                         std::string_view target) {
  return FindNameIgnoreCase(names, target,
                            [](const std::string& s) { return std::string_view(s); });
}

std::string QuoteSqlString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '\'';
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += '\'';
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FirstSqlWord(std::string_view sql) {
  size_t i = 0;
  while (i < sql.size()) {
    if (std::isspace(static_cast<unsigned char>(sql[i]))) {
      ++i;
    } else if (sql[i] == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;
    } else {
      break;
    }
  }
  std::string word;
  while (i < sql.size() &&
         std::isalpha(static_cast<unsigned char>(sql[i]))) {
    word += static_cast<char>(
        std::toupper(static_cast<unsigned char>(sql[i++])));
  }
  return word;
}

}  // namespace prefsql
