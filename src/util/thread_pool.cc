#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/failpoint.h"

namespace prefsql {

ThreadPool::ThreadPool(size_t threads) {
  threads = std::max<size_t>(1, threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    task_ready_.wait(lock,
                     [this] { return shutting_down_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutting_down_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    // Fault-injection site (delay-only — the pool has no status channel):
    // staggers worker start so partition merges and interrupt propagation
    // race-test under skew instead of lockstep dispatch.
    PSQL_FAILPOINT("pool_dispatch");
    task();
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
  }
}

size_t ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace prefsql
