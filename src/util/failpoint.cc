#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace prefsql {
namespace failpoint {
namespace {

struct SiteState {
  Action action;
  uint64_t hits = 0;
  bool evaluated = false;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteState> sites;
  bool env_parsed = false;
};

Registry& TheRegistry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

// "delay(5)*3" -> {kDelay, 5, 3}. Returns false on malformed input.
bool ParseSpec(const std::string& spec, Action* out) {
  std::string body = spec;
  uint64_t max_hits = 0;
  const size_t star = body.rfind('*');
  if (star != std::string::npos) {
    const std::string count = body.substr(star + 1);
    if (count.empty()) return false;
    for (char c : count) {
      if (c < '0' || c > '9') return false;
    }
    max_hits = std::strtoull(count.c_str(), nullptr, 10);
    body = body.substr(0, star);
  }
  Action action;
  action.max_hits = max_hits;
  if (body == "off") {
    action.kind = ActionKind::kOff;
  } else if (body == "error") {
    action.kind = ActionKind::kError;
  } else if (body == "crash") {
    action.kind = ActionKind::kCrash;
  } else if (body.rfind("delay(", 0) == 0 && body.back() == ')') {
    const std::string ms = body.substr(6, body.size() - 7);
    if (ms.empty()) return false;
    for (char c : ms) {
      if (c < '0' || c > '9') return false;
    }
    action.kind = ActionKind::kDelay;
    action.delay_ms = std::strtoull(ms.c_str(), nullptr, 10);
  } else {
    return false;
  }
  *out = action;
  return true;
}

// PREFSQL_FAILPOINTS="name=spec,name=spec"; malformed pairs are skipped.
void ParseEnvLocked(Registry& reg) {
  if (reg.env_parsed) return;
  reg.env_parsed = true;
  const char* env = std::getenv("PREFSQL_FAILPOINTS");
  if (env == nullptr) return;
  std::string s(env);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string pair = s.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) continue;
    Action action;
    if (ParseSpec(pair.substr(eq + 1), &action)) {
      reg.sites[pair.substr(0, eq)].action = action;
    }
  }
}

}  // namespace

void Arm(const std::string& name, Action action) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> g(reg.mu);
  ParseEnvLocked(reg);
  reg.sites[name].action = action;
}

bool ArmFromSpec(const std::string& name, const std::string& spec) {
  Action action;
  if (!ParseSpec(spec, &action)) return false;
  Arm(name, action);
  return true;
}

void Disarm(const std::string& name) {
  Arm(name, Action{});
}

void DisarmAll() {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> g(reg.mu);
  ParseEnvLocked(reg);
  for (auto& [name, site] : reg.sites) site.action = Action{};
}

uint64_t HitCount(const std::string& name) {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> g(reg.mu);
  auto it = reg.sites.find(name);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

std::vector<std::string> EvaluatedSites() {
  Registry& reg = TheRegistry();
  std::lock_guard<std::mutex> g(reg.mu);
  std::vector<std::string> out;
  for (const auto& [name, site] : reg.sites) {
    if (site.evaluated) out.push_back(name);
  }
  return out;
}

Status Evaluate(const char* name) {
  Action fired;
  {
    Registry& reg = TheRegistry();
    std::lock_guard<std::mutex> g(reg.mu);
    ParseEnvLocked(reg);
    SiteState& site = reg.sites[name];
    site.evaluated = true;
    if (site.action.kind == ActionKind::kOff) return Status::OK();
    ++site.hits;
    fired = site.action;
    if (site.action.max_hits != 0 && --site.action.max_hits == 0) {
      site.action = Action{};
    }
  }
  switch (fired.kind) {
    case ActionKind::kOff:
      break;
    case ActionKind::kError:
      return Status::Internal(std::string("failpoint ") + name);
    case ActionKind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fired.delay_ms));
      break;
    case ActionKind::kCrash:
      std::abort();
  }
  return Status::OK();
}

}  // namespace failpoint
}  // namespace prefsql
