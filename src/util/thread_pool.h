// A small fixed-size worker pool for intra-query parallelism (parallel
// partitioned BMO, core/bmo_parallel.h). Tasks are plain std::function
// thunks; Submit never blocks, Wait blocks until every submitted task has
// finished. The pool is reusable: Submit/Wait cycles can repeat until
// destruction.
//
// Tasks must not throw — error propagation is by value (capture a Status
// slot per task). Keeping the pool exception-free keeps the sanitizer
// builds honest about what crosses thread boundaries.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prefsql {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(size_t threads);

  /// Joins all workers; pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs on some worker thread.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is in flight.
  void Wait();

  size_t thread_count() const { return workers_.size(); }

  /// std::thread::hardware_concurrency with a sane floor of 1.
  static size_t HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace prefsql
