#include "util/random.h"

#include <cmath>

namespace prefsql {

int64_t Random::Uniform(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(rng_);
}

double Random::UniformDouble(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(rng_);
}

bool Random::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(rng_);
}

size_t Random::Zipf(size_t n, double s) {
  // Inverse-CDF sampling over the finite Zipf distribution. n is small for
  // all workloads (category dictionaries), so the linear scan is fine.
  if (n == 0) return 0;
  double norm = 0.0;
  for (size_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(static_cast<double>(i), s);
  double u = UniformDouble(0.0, norm);
  double acc = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

std::string Random::Identifier(size_t len) {
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out += static_cast<char>('a' + Uniform(0, 25));
  }
  return out;
}

}  // namespace prefsql
