// MemoryBudget: a lock-free byte accountant for query-level and engine-level
// memory governance.
//
// Large allocations on the query path (KeyStore builds, hash-join/sort
// buffers, RowHeap growth) charge a budget before allocating and release on
// teardown. A charge that would exceed the limit fails WITHOUT mutating the
// counter, letting the caller degrade gracefully (shed cache entries, run
// GC) and retry, or surface kResourceExhausted instead of an OOM kill.
//
// A limit of 0 means "unlimited" — the accountant still tracks usage (cheap:
// one relaxed atomic add) so peak consumption stays observable.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace prefsql {

/// Materializing operators batch their per-row charges up to this many bytes
/// before touching the (atomic) budget counters, keeping accounting off the
/// per-row fast path.
inline constexpr uint64_t kChargeBatchBytes = 64 * 1024;

class MemoryBudget {
 public:
  MemoryBudget() = default;
  explicit MemoryBudget(uint64_t limit_bytes) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Attempts to reserve `bytes`. Returns false (without charging) when the
  /// reservation would push usage past the limit.
  bool TryCharge(uint64_t bytes) {
    if (bytes == 0) return true;
    uint64_t used = used_.load(std::memory_order_relaxed);
    for (;;) {
      const uint64_t limit = limit_.load(std::memory_order_relaxed);
      const uint64_t next = used + bytes;
      if (limit != 0 && (next < used || next > limit)) return false;
      if (used_.compare_exchange_weak(used, next, std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  /// Returns a previous charge. Releasing more than was charged clamps to
  /// zero (defensive: double-release must not wedge the budget negative).
  void Release(uint64_t bytes) {
    if (bytes == 0) return;
    uint64_t used = used_.load(std::memory_order_relaxed);
    for (;;) {
      const uint64_t next = used > bytes ? used - bytes : 0;
      if (used_.compare_exchange_weak(used, next, std::memory_order_relaxed)) {
        return;
      }
    }
  }

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t limit() const { return limit_.load(std::memory_order_relaxed); }
  /// 0 = unlimited. Safe to adjust while queries run; in-flight charges are
  /// unaffected.
  void set_limit(uint64_t limit_bytes) {
    limit_.store(limit_bytes, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> limit_{0};
};

/// RAII charge against a budget; releases on destruction. `budget` may be
/// null (no-op) so call sites need no branching when budgets are off.
class ScopedMemoryCharge {
 public:
  ScopedMemoryCharge() = default;
  ~ScopedMemoryCharge() { Reset(); }
  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge(ScopedMemoryCharge&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  ScopedMemoryCharge& operator=(ScopedMemoryCharge&& other) noexcept {
    if (this != &other) {
      Reset();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }

  /// Adds `bytes` to the held charge. Returns false (charging nothing) when
  /// the budget refuses.
  bool Charge(MemoryBudget* budget, uint64_t bytes) {
    if (budget == nullptr || bytes == 0) return true;
    if (budget_ != nullptr && budget_ != budget) return false;
    if (!budget->TryCharge(bytes)) return false;
    budget_ = budget;
    bytes_ += bytes;
    return true;
  }

  void Reset() {
    if (budget_ != nullptr) budget_->Release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

  uint64_t bytes() const { return bytes_; }

 private:
  MemoryBudget* budget_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace prefsql
