// Deterministic pseudo-random generator used by the workload generators and
// property tests. Wrapping std::mt19937_64 keeps every dataset reproducible
// from a single seed across platforms.

#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace prefsql {

/// Seedable random source with the distributions the workloads need.
class Random {
 public:
  explicit Random(uint64_t seed) : rng_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p);

  /// Zipf-distributed index in [0, n) with exponent `s` (skewed categorical
  /// values; skill fields in the job-profile workload are heavy-tailed).
  size_t Zipf(size_t n, double s = 1.0);

  /// Picks one element of `choices` uniformly.
  template <typename T>
  const T& Choice(const std::vector<T>& choices) {
    return choices[static_cast<size_t>(Uniform(0, static_cast<int64_t>(choices.size()) - 1))];
  }

  /// Random lower-case identifier of length `len`.
  std::string Identifier(size_t len);

  std::mt19937_64& engine() { return rng_; }

 private:
  std::mt19937_64 rng_;
};

}  // namespace prefsql
