// Small string helpers shared across the library.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace prefsql {

/// Lower-cases ASCII characters (SQL identifiers and keywords are
/// case-insensitive in this dialect).
std::string ToLower(std::string_view s);

/// Upper-cases ASCII characters.
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII string equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True iff `haystack` contains `needle` ignoring ASCII case (used by the
/// CONTAINS base preference).
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Case-insensitive linear name lookup: index of the first element of
/// `range` whose projected name equals `target` (ASCII case-insensitive),
/// or nullopt. The shared primitive behind column/attribute resolution in
/// the storage, planner and preference layers (Schema keeps its hash-map
/// variant for the hot resolution path).
template <typename Range, typename Proj>
std::optional<size_t> FindNameIgnoreCase(const Range& range,
                                         std::string_view target, Proj proj) {
  size_t i = 0;
  for (const auto& element : range) {
    if (EqualsIgnoreCase(proj(element), target)) return i;
    ++i;
  }
  return std::nullopt;
}

/// Overload for plain name lists.
std::optional<size_t> FindNameIgnoreCase(const std::vector<std::string>& names,
                                         std::string_view target);

/// SQL single-quoted string literal: quotes and doubles embedded quotes.
std::string QuoteSqlString(std::string_view s);

/// Upper-cased first keyword of a SQL text, skipping leading whitespace and
/// `--` line comments ("" when none). Used to route statements by kind
/// without lexing (shell streaming, golden harness).
std::string FirstSqlWord(std::string_view sql);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace prefsql
