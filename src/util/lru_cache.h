// LruCache: the shared mutex-guarded LRU machinery behind the engine's
// plan cache (core/plan_cache.h) and preference-key cache
// (preference/key_cache.h).
//
// Semantics the two caches rely on:
//   * Lookup counts a hit or miss and refreshes the entry's LRU position.
//   * Insert overwrites an existing entry for the same key (a racing
//     builder's result simply wins; more importantly, a defensively
//     detected bad entry is replaced instead of pinned forever).
//   * EvictWhere drops every entry matching a predicate (version sweeps)
//     and feeds the eviction counter, as do LRU capacity evictions.
// All operations lock an internal mutex; stored values should be immutable
// shared_ptrs so a concurrent evict never invalidates an in-flight reader.

#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace prefsql {

template <typename Key, typename Value, typename KeyHash>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Cumulative counters (engine stats, EXPLAIN, benches).
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;  ///< LRU capacity evictions + EvictWhere sweeps
  };

  /// The cached value for `key`, or a default-constructed Value (nullptr
  /// for shared_ptr values). Counts a hit or miss and refreshes the
  /// entry's LRU position.
  Value Lookup(const Key& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++counters_.misses;
      return Value{};
    }
    ++counters_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }

  /// Publishes `value` under `key`, replacing any existing entry. May
  /// LRU-evict the least recently used entry.
  void Insert(const Key& key, Value value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(value));
    map_[key] = lru_.begin();
    ++counters_.insertions;
    while (lru_.size() > capacity_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
      ++counters_.evictions;
    }
  }

  /// Atomically moves the entry under `old_key` to `new_key`, storing
  /// `value` there — erase and insert happen inside one critical section,
  /// so at no instant are both keys resident (the skyline cache's
  /// incremental maintenance relies on this to keep its peak footprint
  /// flat across DML instead of transiently doubling). Works like Insert
  /// when `old_key` is absent; counts neither an eviction nor an insertion
  /// for the move itself (capacity evictions still count).
  void Rekey(const Key& old_key, const Key& new_key, Value value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto old_it = map_.find(old_key);
    if (old_it != map_.end()) {
      lru_.erase(old_it->second);
      map_.erase(old_it);
    }
    auto it = map_.find(new_key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(new_key, std::move(value));
    map_[new_key] = lru_.begin();
    while (lru_.size() > capacity_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
      ++counters_.evictions;
    }
  }

  /// Copies of every (key, value) pair whose key matches `pred`, in LRU
  /// order (most recent first). Does not count hits or touch LRU positions
  /// — this is the bulk-read primitive behind incremental cache
  /// maintenance, where the engine re-derives entries under a new version
  /// key rather than serving them.
  std::vector<std::pair<Key, Value>> SnapshotWhere(
      const std::function<bool(const Key&)>& pred) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<Key, Value>> out;
    for (const Entry& e : lru_) {
      if (pred(e.first)) out.push_back(e);
    }
    return out;
  }

  /// Drops up to `n` entries from the cold (least recently used) end —
  /// the memory-pressure shed primitive. Returns how many were dropped;
  /// they feed the eviction counter like capacity evictions.
  size_t EvictOldest(size_t n) {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t dropped = 0;
    while (dropped < n && !lru_.empty()) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
      ++dropped;
    }
    counters_.evictions += dropped;
    return dropped;
  }

  /// Drops every entry whose key matches `pred`; returns how many.
  size_t EvictWhere(const std::function<bool(const Key&)>& pred) {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t dropped = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (!pred(it->first)) {
        ++it;
        continue;
      }
      map_.erase(it->first);
      it = lru_.erase(it);
      ++dropped;
    }
    counters_.evictions += dropped;
    return dropped;
  }

  Counters counters() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
  }

 private:
  using Entry = std::pair<Key, Value>;

  mutable std::mutex mutex_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, KeyHash> map_;
  Counters counters_;
};

}  // namespace prefsql
