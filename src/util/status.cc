#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace prefsql {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kBindError:
      return "Bind error";
    case StatusCode::kExecutionError:
      return "Execution error";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void AbortWithMessage(const std::string& msg) {
  std::fprintf(stderr, "prefsql fatal: %s\n", msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace prefsql
