// Compile-time-gated failpoint harness for fault-injection testing.
//
// A failpoint is a named site at a hairy transition (epoch publish, skyline
// cache maintenance, writer-mutex handoff, GC horizon computation, thread
// pool dispatch). Production builds compile the sites away entirely; a build
// with -DPREFSQL_FAILPOINTS=ON (which defines PREFSQL_FAILPOINTS_ENABLED)
// evaluates each site against a registry armed either programmatically
// (failpoint::Arm) or through the environment:
//
//   PREFSQL_FAILPOINTS="epoch_publish=delay(5),skyline_maintenance=error"
//
// Actions:
//   error       the site reports Status::Internal("failpoint <name>"); sites
//               that cannot propagate a status ignore it (delay-only sites)
//   delay(N)    sleep N milliseconds — widens race windows for TSan/chaos
//   crash       std::abort() — crash-point testing for recovery tooling
//   off         disarmed (same as absent)
// An action may carry a hit limit: "delay(5)*3" fires three times, then
// disarms itself. Hit counts are queryable for test assertions.
//
// Site macros:
//   PSQL_FAILPOINT(name)          evaluate; discard any error action
//   PSQL_FAILPOINT_STATUS(name)   evaluate; `return` the error action's
//                                 Status from the enclosing function
//   PSQL_FAILPOINT_VOID(name)     evaluate; on an error action `return;`
//                                 from the enclosing void function (the
//                                 injected fault skips the guarded step)

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace prefsql {
namespace failpoint {

enum class ActionKind { kOff, kError, kDelay, kCrash };

struct Action {
  ActionKind kind = ActionKind::kOff;
  uint64_t delay_ms = 0;
  /// Remaining firings before self-disarm; 0 = unlimited.
  uint64_t max_hits = 0;
};

/// Arms `name` with `action` (replacing any previous arming).
void Arm(const std::string& name, Action action);
/// Arms from the textual form, e.g. "delay(5)*3". Returns false on a
/// malformed spec (the failpoint is left disarmed).
bool ArmFromSpec(const std::string& name, const std::string& spec);
void Disarm(const std::string& name);
void DisarmAll();
/// Times the named site fired (any action, including expired limits).
uint64_t HitCount(const std::string& name);
/// Names of every site evaluated at least once this process — the live
/// failpoint catalog, for coverage assertions.
std::vector<std::string> EvaluatedSites();

/// Evaluates the site: applies the armed action (sleeping, aborting, or
/// producing an error status) and returns OK when nothing fires. Parses
/// PREFSQL_FAILPOINTS from the environment on first call.
Status Evaluate(const char* name);

}  // namespace failpoint
}  // namespace prefsql

#if defined(PREFSQL_FAILPOINTS_ENABLED)
#define PSQL_FAILPOINT(name) ((void)::prefsql::failpoint::Evaluate(name))
#define PSQL_FAILPOINT_STATUS(name)                            \
  do {                                                         \
    ::prefsql::Status psql_fp_status_ =                        \
        ::prefsql::failpoint::Evaluate(name);                  \
    if (!psql_fp_status_.ok()) return psql_fp_status_;         \
  } while (false)
#define PSQL_FAILPOINT_VOID(name)                              \
  do {                                                         \
    if (!::prefsql::failpoint::Evaluate(name).ok()) return;    \
  } while (false)
#else
#define PSQL_FAILPOINT(name) ((void)0)
#define PSQL_FAILPOINT_STATUS(name) ((void)0)
#define PSQL_FAILPOINT_VOID(name) ((void)0)
#endif
