// Status and Result<T>: the library-wide error model.
//
// Public APIs in this library never throw; fallible operations return a
// Status (for "void" results) or a Result<T> (value-or-error), following the
// idiom used by Apache Arrow and RocksDB.

#pragma once

#include <string>
#include <utility>
#include <variant>

namespace prefsql {

/// Error category of a failed operation.
///
/// The numeric values are stable API: drivers sitting on top of the client
/// surface (Connection / PreparedStatement / Cursor) branch on the code, not
/// on the message text. The categories map as
///   parse      -> kParseError
///   bind       -> kBindError            (parameter arity/type/unbound)
///   catalog    -> kNotFound / kAlreadyExists
///   execution  -> kExecutionError / kInvalidArgument / kNotImplemented
///   governance -> kTimeout / kCancelled / kResourceExhausted
/// and kInternal is always a library bug.
enum class StatusCode {
  kOk = 0,
  /// Malformed SQL / Preference SQL input.
  kParseError = 1,
  /// Well-formed input that violates semantic rules (unknown column, type
  /// mismatch, ambiguous quality function, ...).
  kInvalidArgument = 2,
  /// Referenced catalog object does not exist.
  kNotFound = 3,
  /// Catalog object already exists.
  kAlreadyExists = 4,
  /// The operation is valid but not supported by this component (e.g. a
  /// non-weak-order EXPLICIT preference in the SQL rewriter).
  kNotImplemented = 5,
  /// Internal invariant violation; indicates a bug in the library.
  kInternal = 6,
  /// Parameter-binding failure on a prepared statement: index/name out of
  /// range, value violates the slot's type constraint, or execution was
  /// attempted with unbound parameters.
  kBindError = 7,
  /// Runtime failure of an otherwise valid statement (cursor used after
  /// Close, statement aborted mid-stream, ...).
  kExecutionError = 8,
  /// The statement exceeded its deadline (`SET statement_timeout_ms`) and
  /// was abandoned cooperatively. Partial DML effects are committed (no
  /// rollback under MVCC publish semantics); no partial cache entries are
  /// published.
  kTimeout = 9,
  /// The statement was cancelled by the client (Session::CancelCurrent).
  /// Same cleanup guarantees as kTimeout.
  kCancelled = 10,
  /// A per-statement or engine-wide memory budget was exhausted and the
  /// graceful-degradation path (cache shedding, GC escalation) could not
  /// recover enough headroom.
  kResourceExhausted = 11,
};

/// Human-readable name of a StatusCode ("Parse error", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation that produces no value.
///
/// A default-constructed Status is OK. Failed statuses carry a code and a
/// message. Statuses are cheap to copy and move.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsBindError() const { return code_ == StatusCode::kBindError; }
  bool IsExecutionError() const {
    return code_ == StatusCode::kExecutionError;
  }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "<code name>: <message>" for failures, "OK" otherwise.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error wrapper: holds either a T or a non-OK Status.
///
/// Access the value only after checking ok(); accessing the value of a failed
/// Result aborts. Use PSQL_ASSIGN_OR_RETURN to chain fallible computations.
template <typename T>
class Result {
 public:
  /// Constructs a successful Result (implicit so `return value;` works).
  Result(T value) : payload_(std::move(value)) {}
  /// Constructs a failed Result from a non-OK status (implicit so
  /// `return Status::...;` works). Aborts if the status is OK.
  Result(Status status) : payload_(std::move(status)) {
    if (std::get<Status>(payload_).ok()) {
      Abort("Result constructed from OK status");
    }
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The status: OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Borrows the value; requires ok().
  const T& value() const& {
    CheckOk();
    return std::get<T>(payload_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(payload_);
  }
  /// Moves the value out; requires ok().
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) Abort(std::get<Status>(payload_).ToString());
  }
  [[noreturn]] static void Abort(const std::string& msg);

  std::variant<T, Status> payload_;
};

namespace internal {
[[noreturn]] void AbortWithMessage(const std::string& msg);
}  // namespace internal

template <typename T>
void Result<T>::Abort(const std::string& msg) {
  internal::AbortWithMessage("Result::value() on failed Result: " + msg);
}

// Internal helpers for the macros below.
#define PSQL_CONCAT_IMPL(a, b) a##b
#define PSQL_CONCAT(a, b) PSQL_CONCAT_IMPL(a, b)

/// Propagates a non-OK Status to the caller.
#define PSQL_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::prefsql::Status psql_status_ = (expr);       \
    if (!psql_status_.ok()) return psql_status_;   \
  } while (false)

/// Evaluates a Result<T> expression; assigns the value to `lhs` on success,
/// propagates the Status on failure. `lhs` may declare a new variable.
#define PSQL_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  PSQL_ASSIGN_OR_RETURN_IMPL(PSQL_CONCAT(psql_result_, __LINE__), \
                             lhs, rexpr)

#define PSQL_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value();

}  // namespace prefsql
