#include "workload/generators.h"

#include "types/date.h"
#include "util/random.h"
#include "util/string_util.h"

namespace prefsql {
namespace {

// Creates the table and bulk-loads rows without per-value validation (the
// generators produce well-typed values by construction).
Status CreateAndLoad(Database& db, const std::string& name,
                     std::vector<ColumnDef> columns, std::vector<Row> rows) {
  PSQL_RETURN_IF_ERROR(
      db.catalog().CreateTable(name, std::move(columns), false));
  PSQL_ASSIGN_OR_RETURN(Table * table, db.catalog().GetTable(name));
  table->BulkLoadUnchecked(std::move(rows));
  return Status::OK();
}

const std::vector<std::string> kMakes = {
    "Opel",  "BMW",   "Audi",  "Volkswagen", "Mercedes",
    "Fiat",  "Ford",  "Toyota", "Renault",   "Volvo"};
const std::vector<std::string> kCategories = {
    "roadster", "passenger", "suv", "van", "coupe", "estate"};
const std::vector<std::string> kColors = {
    "red", "black", "silver", "white", "blue", "green", "yellow", "brown"};
const std::vector<std::string> kCities = {
    "Augsburg", "Munich", "Berlin", "Hamburg", "Cologne",
    "Frankfurt", "Stuttgart", "Dresden"};
const std::vector<std::string> kLocations = {
    "downtown", "suburb", "airport", "old town", "fair grounds"};
const std::vector<std::string> kSkills = {
    "java", "C++", "SQL", "COBOL", "perl", "python", "SAP", "oracle",
    "javascript", "assembler", "fortran", "delphi"};
const std::vector<std::string> kDestinations = {
    "Rome", "Paris", "Mallorca", "Crete", "Lisbon", "Oslo", "Vienna",
    "Prague", "Istanbul", "Madeira"};
const std::vector<std::string> kTripCategories = {
    "beach", "city", "hiking", "cruise", "ski"};
const std::vector<std::string> kManufacturers = {
    "Aturi", "Whirlwind", "CleanTech", "Bosch", "Siemens", "Gorenje"};
const std::vector<std::string> kShops = {
    "Amazon", "BOL", "Buecher.de", "Libri", "Weltbild", "Hugendubel"};
const std::vector<std::string> kRegions = {
    "north", "south", "east", "west", "bavaria", "saxony", "hesse",
    "berlin", "hamburg", "rhineland", "swabia", "franconia", "palatinate",
    "baden", "thuringia", "holstein"};
const std::vector<std::string> kProfessions = {
    "programmer", "nurse", "driver", "teacher", "electrician", "carpenter",
    "accountant", "cook", "waiter", "mechanic", "plumber", "painter",
    "clerk", "cashier", "welder", "gardener", "baker", "butcher",
    "cleaner", "guard", "analyst", "designer", "architect", "engineer",
    "consultant", "translator", "librarian", "optician", "tailor",
    "roofer", "glazier", "mason", "farmer", "fisher", "forester",
    "florist", "jeweler", "locksmith", "miller", "brewer"};

}  // namespace

Status LoadOldtimer(Database& db) {
  std::vector<ColumnDef> cols = {{"ident", ColumnType::kText},
                                 {"color", ColumnType::kText},
                                 {"age", ColumnType::kInt}};
  // Exactly the relation printed in §2.2.3.
  std::vector<Row> rows = {
      {Value::Text("Maggie"), Value::Text("white"), Value::Int(19)},
      {Value::Text("Bart"), Value::Text("green"), Value::Int(19)},
      {Value::Text("Homer"), Value::Text("yellow"), Value::Int(35)},
      {Value::Text("Selma"), Value::Text("red"), Value::Int(40)},
      {Value::Text("Smithers"), Value::Text("red"), Value::Int(43)},
      {Value::Text("Skinner"), Value::Text("yellow"), Value::Int(51)},
  };
  return CreateAndLoad(db, "oldtimer", std::move(cols), std::move(rows));
}

Status LoadCarsExample(Database& db) {
  std::vector<ColumnDef> cols = {
      {"Identifier", ColumnType::kInt}, {"Make", ColumnType::kText},
      {"Model", ColumnType::kText},     {"Price", ColumnType::kInt},
      {"Mileage", ColumnType::kInt},    {"Airbag", ColumnType::kText},
      {"Diesel", ColumnType::kText}};
  // Exactly the relation of the §3.2 rewrite example.
  std::vector<Row> rows = {
      {Value::Int(1), Value::Text("Audi"), Value::Text("A6"),
       Value::Int(40000), Value::Int(15000), Value::Text("yes"),
       Value::Text("no")},
      {Value::Int(2), Value::Text("BMW"), Value::Text("5 series"),
       Value::Int(35000), Value::Int(30000), Value::Text("yes"),
       Value::Text("yes")},
      {Value::Int(3), Value::Text("Volkswagen"), Value::Text("Beetle"),
       Value::Int(20000), Value::Int(10000), Value::Text("yes"),
       Value::Text("no")},
  };
  return CreateAndLoad(db, "Cars", std::move(cols), std::move(rows));
}

Status GenerateUsedCars(Database& db, size_t n, uint64_t seed,
                        const std::string& table) {
  Random rng(seed);
  std::vector<ColumnDef> cols = {
      {"id", ColumnType::kInt},        {"make", ColumnType::kText},
      {"model", ColumnType::kText},    {"category", ColumnType::kText},
      {"color", ColumnType::kText},    {"price", ColumnType::kInt},
      {"mileage", ColumnType::kInt},   {"power", ColumnType::kInt},
      {"age", ColumnType::kInt},       {"diesel", ColumnType::kText},
      {"airbag", ColumnType::kText}};
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string& make = kMakes[rng.Zipf(kMakes.size(), 0.8)];
    int64_t age = rng.Uniform(0, 25);
    int64_t power = rng.Uniform(40, 320);
    // Price correlates with power and anti-correlates with age/mileage so
    // the Pareto fronts are non-trivial.
    int64_t mileage = rng.Uniform(0, 30000) * (age + 1) / 3;
    int64_t price =
        1000 + power * 400 - age * 1200 - mileage / 40 + rng.Uniform(-3000, 3000);
    if (price < 500) price = 500 + rng.Uniform(0, 1000);
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Text(make),
                    Value::Text(make.substr(0, 2) + std::to_string(rng.Uniform(100, 999))),
                    Value::Text(kCategories[rng.Zipf(kCategories.size(), 0.7)]),
                    Value::Text(rng.Choice(kColors)),
                    Value::Int(price),
                    Value::Int(mileage),
                    Value::Int(power),
                    Value::Int(age),
                    Value::Text(rng.Bernoulli(0.35) ? "yes" : "no"),
                    Value::Text(rng.Bernoulli(0.85) ? "yes" : "no")});
  }
  return CreateAndLoad(db, table, std::move(cols), std::move(rows));
}

Status GenerateProducts(Database& db, size_t n, uint64_t seed,
                        const std::string& table) {
  Random rng(seed);
  std::vector<ColumnDef> cols = {
      {"id", ColumnType::kInt},
      {"manufacturer", ColumnType::kText},
      {"width", ColumnType::kInt},
      {"spinspeed", ColumnType::kInt},
      {"powerconsumption", ColumnType::kDouble},
      {"waterconsumption", ColumnType::kDouble},
      {"price", ColumnType::kInt},
      {"rating", ColumnType::kInt}};
  std::vector<Row> rows;
  rows.reserve(n);
  static const int64_t kWidths[] = {45, 50, 55, 60, 65, 70};
  static const int64_t kSpins[] = {800, 1000, 1200, 1400, 1600};
  for (size_t i = 0; i < n; ++i) {
    int64_t spin = kSpins[rng.Uniform(0, 4)];
    double power = 0.5 + rng.UniformDouble(0.0, 1.4);
    double water = 35.0 + rng.UniformDouble(0.0, 30.0);
    // Better (lower) consumption costs money.
    int64_t price = 900 + spin / 2 +
                    static_cast<int64_t>((2.0 - power) * 500) +
                    static_cast<int64_t>((65.0 - water) * 15) +
                    rng.Uniform(-150, 150);
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Text(kManufacturers[rng.Zipf(kManufacturers.size(), 0.6)]),
                    Value::Int(kWidths[rng.Uniform(0, 5)]),
                    Value::Int(spin),
                    Value::Double(power),
                    Value::Double(water),
                    Value::Int(price),
                    Value::Int(rng.Uniform(1, 5))});
  }
  return CreateAndLoad(db, table, std::move(cols), std::move(rows));
}

Status GenerateTrips(Database& db, size_t n, uint64_t seed,
                     const std::string& table) {
  Random rng(seed);
  std::vector<ColumnDef> cols = {
      {"id", ColumnType::kInt},         {"destination", ColumnType::kText},
      {"start_day", ColumnType::kDate}, {"duration", ColumnType::kInt},
      {"price", ColumnType::kInt},      {"category", ColumnType::kText}};
  std::vector<Row> rows;
  rows.reserve(n);
  int64_t season_start = *DateToDayNumber(1999, 5, 1);
  for (size_t i = 0; i < n; ++i) {
    int64_t duration = rng.Uniform(3, 28);
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Text(rng.Choice(kDestinations)),
                    Value::Date(season_start + rng.Uniform(0, 150)),
                    Value::Int(duration),
                    Value::Int(300 + duration * rng.Uniform(40, 120)),
                    Value::Text(rng.Choice(kTripCategories))});
  }
  return CreateAndLoad(db, table, std::move(cols), std::move(rows));
}

Status GenerateHotels(Database& db, size_t n, uint64_t seed,
                      const std::string& table) {
  Random rng(seed);
  std::vector<ColumnDef> cols = {
      {"id", ColumnType::kInt},       {"name", ColumnType::kText},
      {"city", ColumnType::kText},    {"location", ColumnType::kText},
      {"price", ColumnType::kInt},    {"stars", ColumnType::kInt}};
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t stars = rng.Uniform(1, 5);
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Text("Hotel " + ToUpper(rng.Identifier(1)) +
                                rng.Identifier(6)),
                    Value::Text(rng.Choice(kCities)),
                    Value::Text(kLocations[rng.Zipf(kLocations.size(), 0.5)]),
                    Value::Int(40 + stars * rng.Uniform(15, 60)),
                    Value::Int(stars)});
  }
  return CreateAndLoad(db, table, std::move(cols), std::move(rows));
}

Status GenerateProgrammers(Database& db, size_t n, uint64_t seed,
                           const std::string& table) {
  Random rng(seed);
  std::vector<ColumnDef> cols = {
      {"id", ColumnType::kInt},        {"name", ColumnType::kText},
      {"exp", ColumnType::kText},      {"languages", ColumnType::kText},
      {"salary", ColumnType::kInt},    {"region", ColumnType::kText}};
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string langs = rng.Choice(kSkills);
    size_t extra = static_cast<size_t>(rng.Uniform(0, 3));
    for (size_t k = 0; k < extra; ++k) langs += ", " + rng.Choice(kSkills);
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Text(ToUpper(rng.Identifier(1)) + rng.Identifier(7)),
                    Value::Text(kSkills[rng.Zipf(kSkills.size(), 0.9)]),
                    Value::Text(langs),
                    Value::Int(rng.Uniform(30, 95) * 1000),
                    Value::Text(rng.Choice(kRegions))});
  }
  return CreateAndLoad(db, table, std::move(cols), std::move(rows));
}

Status GenerateJobProfiles(Database& db, const JobProfileConfig& config) {
  Random rng(config.seed);
  std::vector<ColumnDef> cols = {
      {"id", ColumnType::kInt},
      {"region", ColumnType::kText},
      {"profession", ColumnType::kText},
      {"availability", ColumnType::kInt},
      {"skill_a", ColumnType::kText},
      {"skill_b", ColumnType::kText},
      {"skill_c", ColumnType::kText},
      {"skill_d", ColumnType::kText},
      {"experience", ColumnType::kInt},
      {"salary", ColumnType::kInt},
      {"age", ColumnType::kInt}};
  while (cols.size() < config.total_attributes) {
    cols.push_back({"f" + std::to_string(cols.size()), ColumnType::kInt});
  }
  std::vector<Row> rows;
  rows.reserve(config.rows);
  for (size_t i = 0; i < config.rows; ++i) {
    Row row;
    row.reserve(cols.size());
    row.push_back(Value::Int(static_cast<int64_t>(i)));
    row.push_back(Value::Text(rng.Choice(kRegions)));
    row.push_back(Value::Text(kProfessions[rng.Zipf(kProfessions.size(), 0.9)]));
    row.push_back(Value::Int(rng.Uniform(0, 365)));
    for (int s = 0; s < 4; ++s) {
      row.push_back(Value::Text(kSkills[rng.Zipf(kSkills.size(), 0.8)]));
    }
    row.push_back(Value::Int(rng.Uniform(0, 40)));
    row.push_back(Value::Int(rng.Uniform(20, 120) * 1000));
    row.push_back(Value::Int(rng.Uniform(18, 64)));
    while (row.size() < cols.size()) {
      row.push_back(Value::Int(rng.Uniform(0, 1000000)));
    }
    rows.push_back(std::move(row));
  }
  return CreateAndLoad(db, config.table, std::move(cols), std::move(rows));
}

Status GenerateShopOffers(Database& db, size_t n, uint64_t seed,
                          const std::string& table) {
  Random rng(seed);
  std::vector<ColumnDef> cols = {
      {"id", ColumnType::kInt},           {"shop", ColumnType::kText},
      {"product", ColumnType::kText},     {"price", ColumnType::kDouble},
      {"shipping", ColumnType::kDouble},  {"delivery_days", ColumnType::kInt},
      {"rating", ColumnType::kInt}};
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double base = rng.UniformDouble(8.0, 60.0);
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Text(rng.Choice(kShops)),
                    Value::Text("item-" + std::to_string(rng.Uniform(1, 40))),
                    Value::Double(base),
                    Value::Double(rng.Bernoulli(0.3) ? 0.0
                                                     : rng.UniformDouble(2.0, 7.0)),
                    Value::Int(rng.Uniform(1, 14)),
                    Value::Int(rng.Uniform(1, 5))});
  }
  return CreateAndLoad(db, table, std::move(cols), std::move(rows));
}

}  // namespace prefsql
