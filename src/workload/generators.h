// Deterministic synthetic workload generators for the paper's scenarios.
//
// Substitution note (DESIGN.md): the paper benchmarks against 1.4M real job
// profiles with 74 attributes on Informix; we generate a deterministic
// dataset of the same shape (74 attributes, skewed categorical skills,
// calibratable pre-selection selectivities). Absolute sizes are tunable so
// the benchmark fits the test machine; the comparison shape is preserved.

#pragma once

#include <cstdint>
#include <string>

#include "engine/database.h"
#include "util/status.h"

namespace prefsql {

/// Loads the paper's 6-row `oldtimer` table (§2.2.3) into `db`.
Status LoadOldtimer(Database& db);

/// Loads the paper's 3-row `Cars` relation from the §3.2 rewrite example.
Status LoadCarsExample(Database& db);

/// Generates `used_cars(id, make, model, category, color, price, mileage,
/// power, age, diesel, airbag)` — the §2.2.2 car-dealer scenario.
Status GenerateUsedCars(Database& db, size_t n, uint64_t seed = 42,
                        const std::string& table = "car");

/// Generates `products(id, manufacturer, width, spinspeed,
/// powerconsumption, waterconsumption, price, rating)` — washing machines
/// for the §4.1 e-shop search mask.
Status GenerateProducts(Database& db, size_t n, uint64_t seed = 42,
                        const std::string& table = "products");

/// Generates `trips(id, destination, start_day, duration, price, category)`
/// — the §2.2.4 travel scenario (start_day is a DATE).
Status GenerateTrips(Database& db, size_t n, uint64_t seed = 42,
                     const std::string& table = "trips");

/// Generates `hotels(id, name, city, location, price, stars)` (§2.2.1 NEG
/// example).
Status GenerateHotels(Database& db, size_t n, uint64_t seed = 42,
                      const std::string& table = "hotels");

/// Generates `programmers(id, name, exp, languages, salary, region)`
/// (§2.2.1 POS example); `exp` holds the main skill, `languages` a
/// comma-separated list for CONTAINS.
Status GenerateProgrammers(Database& db, size_t n, uint64_t seed = 42,
                           const std::string& table = "programmers");

/// Configuration of the §3.3 job-profile benchmark relation.
struct JobProfileConfig {
  size_t rows = 200000;          ///< paper: ~1.4M (scaled for the container)
  uint64_t seed = 42;
  std::string table = "profiles";
  /// Number of attributes including the benchmark-relevant ones; the paper's
  /// relation has 74 attributes per tuple.
  size_t total_attributes = 74;
};

/// Generates the job-profile relation. Benchmark-relevant attributes:
///   region (TEXT, 16 values, uniform)     — pre-selection
///   profession (TEXT, 40 values, Zipf)    — pre-selection
///   availability (INTEGER days, 0..365)   — pre-selection range
///   skill_a .. skill_d (TEXT, Zipf)       — the 4 second-selection criteria
///   experience (INTEGER years), salary (INTEGER), age (INTEGER)
/// plus filler attributes f0, f1, ... to reach `total_attributes` columns.
Status GenerateJobProfiles(Database& db, const JobProfileConfig& config = {});

/// Generates `offers(id, shop, product, price, shipping, delivery_days,
/// rating)` — synthetic meta-search snapshots for the COSIMA scenario
/// (§4.3): `n` offers as gathered into the temporary comparison-shopping DB.
Status GenerateShopOffers(Database& db, size_t n, uint64_t seed = 42,
                          const std::string& table = "offers");

}  // namespace prefsql
