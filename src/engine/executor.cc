#include "engine/executor.h"

#include <algorithm>
#include <unordered_map>

#include "engine/aggregates.h"
#include "sql/printer.h"
#include "util/string_util.h"

namespace prefsql {
namespace {

// Derives an output column name for a select item without alias.
std::string DeriveColumnName(const Expr& e, size_t position) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      return e.column;
    case ExprKind::kFunction:
      if (!e.args.empty() && e.args[0]->kind == ExprKind::kColumnRef) {
        return ToUpper(e.function_name) + "(" + e.args[0]->column + ")";
      }
      return ToUpper(e.function_name);
    case ExprKind::kLiteral:
      return e.literal.ToString();
    default: {
      std::string text = ExprToSql(e);
      if (text.size() <= 32) return text;
      return "col" + std::to_string(position + 1);
    }
  }
}

// Extracts equi-join key pairs from an ON conjunction; non-extractable
// conjuncts land in `residual`.
void ExtractEquiKeys(const Expr& on, const Schema& left, const Schema& right,
                     std::vector<std::pair<size_t, size_t>>* keys,
                     std::vector<const Expr*>* residual) {
  if (on.kind == ExprKind::kBinary && on.binary_op == BinaryOp::kAnd) {
    ExtractEquiKeys(*on.left, left, right, keys, residual);
    ExtractEquiKeys(*on.right, left, right, keys, residual);
    return;
  }
  if (on.kind == ExprKind::kBinary && on.binary_op == BinaryOp::kEq &&
      on.left->kind == ExprKind::kColumnRef &&
      on.right->kind == ExprKind::kColumnRef) {
    auto l_in_left = left.TryResolve(on.left->qualifier, on.left->column);
    auto r_in_right = right.TryResolve(on.right->qualifier, on.right->column);
    if (l_in_left && r_in_right) {
      keys->emplace_back(*l_in_left, *r_in_right);
      return;
    }
    auto l_in_right = right.TryResolve(on.left->qualifier, on.left->column);
    auto r_in_left = left.TryResolve(on.right->qualifier, on.right->column);
    if (l_in_right && r_in_left) {
      keys->emplace_back(*r_in_left, *l_in_right);
      return;
    }
  }
  residual->push_back(&on);
}

Row ConcatRows(const Row& a, const Row& b) {
  Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

// ===========================================================================
// Statement dispatch
// ===========================================================================

Result<ResultTable> Executor::ExecuteStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(*stmt.select);
    case StatementKind::kCreateTable: {
      PSQL_RETURN_IF_ERROR(
          catalog_->CreateTable(stmt.name, stmt.columns, stmt.if_not_exists));
      return ResultTable();
    }
    case StatementKind::kCreateView: {
      PSQL_RETURN_IF_ERROR(catalog_->CreateView(stmt.name, stmt.select));
      return ResultTable();
    }
    case StatementKind::kCreateIndex: {
      PSQL_RETURN_IF_ERROR(
          catalog_->CreateIndex(stmt.name, stmt.on_table, stmt.index_columns));
      return ResultTable();
    }
    case StatementKind::kCreatePreference: {
      // Expand nested PREFERENCE references at definition time so stored
      // bodies are self-contained (snapshot semantics; cycles impossible).
      // The expansion lives in the core layer; here we only store the body
      // verbatim — Database-level users get the same semantics because the
      // body cannot reference itself (the name does not exist yet).
      PSQL_RETURN_IF_ERROR(
          catalog_->CreatePreference(stmt.name, stmt.preference->Clone()));
      return ResultTable();
    }
    case StatementKind::kExplain:
      return Status::InvalidArgument(
          "EXPLAIN is handled by the Preference SQL layer "
          "(prefsql::Connection)");
    case StatementKind::kInsert:
      return ExecuteInsert(stmt);
    case StatementKind::kUpdate:
      return ExecuteUpdate(stmt);
    case StatementKind::kDelete:
      return ExecuteDelete(stmt);
    case StatementKind::kDrop: {
      PSQL_RETURN_IF_ERROR(
          catalog_->Drop(stmt.drop_kind, stmt.name, stmt.if_exists));
      return ResultTable();
    }
  }
  return Status::Internal("unreachable statement kind");
}

// ===========================================================================
// FROM resolution
// ===========================================================================

Result<Executor::Source> Executor::ResolveTableRef(const TableRef& tr,
                                                   const EvalContext* outer) {
  switch (tr.kind) {
    case TableRef::Kind::kTable: {
      std::string visible = tr.alias.empty() ? tr.table_name : tr.alias;
      if (catalog_->HasTable(tr.table_name)) {
        PSQL_ASSIGN_OR_RETURN(Table * table,
                              catalog_->GetTable(tr.table_name));
        Source src;
        src.schema = table->schema().WithQualifier(visible);
        src.borrowed = &table->rows();
        return src;
      }
      if (catalog_->HasView(tr.table_name)) {
        // Views materialize once per top-level statement; the rewriter's Aux
        // view is referenced twice (A1/A2) and must not run twice.
        std::string key = ToLower(tr.table_name);
        auto it = view_cache_.find(key);
        std::shared_ptr<ResultTable> materialized;
        if (it != view_cache_.end()) {
          materialized = it->second;
        } else {
          PSQL_ASSIGN_OR_RETURN(auto def, catalog_->GetView(tr.table_name));
          PSQL_ASSIGN_OR_RETURN(ResultTable rt, ExecuteSelect(*def, nullptr));
          materialized = std::make_shared<ResultTable>(std::move(rt));
          view_cache_[key] = materialized;
        }
        Source src;
        src.schema = materialized->schema().WithQualifier(visible);
        src.borrowed = &materialized->rows();
        src.keepalive = materialized;
        return src;
      }
      return Status::NotFound("no table or view '" + tr.table_name + "'");
    }
    case TableRef::Kind::kSubquery: {
      PSQL_ASSIGN_OR_RETURN(ResultTable rt,
                            ExecuteSelect(*tr.subquery, outer));
      Source src;
      src.schema = rt.schema().WithQualifier(tr.alias);
      src.owned = std::move(rt.rows());
      return src;
    }
    case TableRef::Kind::kJoin:
      return ExecuteJoin(tr, outer);
  }
  return Status::Internal("unreachable table ref kind");
}

Result<Executor::Source> Executor::ExecuteJoin(const TableRef& tr,
                                               const EvalContext* outer) {
  PSQL_ASSIGN_OR_RETURN(Source left, ResolveTableRef(*tr.join_left, outer));
  PSQL_ASSIGN_OR_RETURN(Source right, ResolveTableRef(*tr.join_right, outer));
  Source out;
  out.schema = left.schema.Concat(right.schema);
  const auto& lrows = left.data();
  const auto& rrows = right.data();

  std::vector<std::pair<size_t, size_t>> keys;
  std::vector<const Expr*> residual;
  if (tr.join_on != nullptr) {
    ExtractEquiKeys(*tr.join_on, left.schema, right.schema, &keys, &residual);
  }

  auto residual_ok = [&](const Row& combined) -> Result<bool> {
    EvalContext ctx{&out.schema, &combined, outer, this};
    for (const Expr* e : residual) {
      PSQL_ASSIGN_OR_RETURN(bool pass, EvaluatePredicate(*e, ctx));
      if (!pass) return false;
    }
    return true;
  };

  bool is_left_join = tr.join_type == TableRef::JoinType::kLeft;

  if (!keys.empty()) {
    // Hash join: build on the right input, probe with the left.
    std::unordered_map<size_t, std::vector<size_t>> build;
    build.reserve(rrows.size() * 2);
    auto key_of = [](const Row& row, const std::vector<size_t>& cols) {
      Row key;
      key.reserve(cols.size());
      for (size_t c : cols) key.push_back(row[c]);
      return key;
    };
    std::vector<size_t> lcols, rcols;
    for (auto& [l, r] : keys) {
      lcols.push_back(l);
      rcols.push_back(r);
    }
    for (size_t j = 0; j < rrows.size(); ++j) {
      build[HashRow(key_of(rrows[j], rcols))].push_back(j);
    }
    for (size_t i = 0; i < lrows.size(); ++i) {
      Row lkey = key_of(lrows[i], lcols);
      bool matched = false;
      auto it = build.find(HashRow(lkey));
      if (it != build.end()) {
        for (size_t j : it->second) {
          Row rkey = key_of(rrows[j], rcols);
          if (!RowsIdentityEqual(lkey, rkey)) continue;
          // NULL keys never join.
          bool has_null = false;
          for (const auto& v : lkey) has_null |= v.is_null();
          if (has_null) continue;
          Row combined = ConcatRows(lrows[i], rrows[j]);
          PSQL_ASSIGN_OR_RETURN(bool pass, residual_ok(combined));
          if (pass) {
            out.owned.push_back(std::move(combined));
            matched = true;
          }
        }
      }
      if (is_left_join && !matched) {
        Row combined = lrows[i];
        combined.resize(out.schema.num_columns());  // NULL-pad the right side
        out.owned.push_back(std::move(combined));
      }
    }
    return out;
  }

  // Nested-loop join (CROSS, or ON without extractable equi-keys).
  for (size_t i = 0; i < lrows.size(); ++i) {
    bool matched = false;
    for (size_t j = 0; j < rrows.size(); ++j) {
      Row combined = ConcatRows(lrows[i], rrows[j]);
      bool pass = true;
      if (tr.join_on != nullptr) {
        EvalContext ctx{&out.schema, &combined, outer, this};
        PSQL_ASSIGN_OR_RETURN(pass, EvaluatePredicate(*tr.join_on, ctx));
      }
      if (pass) {
        out.owned.push_back(std::move(combined));
        matched = true;
      }
    }
    if (is_left_join && !matched) {
      Row combined = lrows[i];
      combined.resize(out.schema.num_columns());
      out.owned.push_back(std::move(combined));
    }
  }
  return out;
}

Result<Executor::Source> Executor::ResolveFromList(
    const std::vector<std::unique_ptr<TableRef>>& from,
    const EvalContext* outer) {
  PSQL_ASSIGN_OR_RETURN(Source acc, ResolveTableRef(*from[0], outer));
  for (size_t i = 1; i < from.size(); ++i) {
    PSQL_ASSIGN_OR_RETURN(Source next, ResolveTableRef(*from[i], outer));
    Source combined;
    combined.schema = acc.schema.Concat(next.schema);
    const auto& lrows = acc.data();
    const auto& rrows = next.data();
    combined.owned.reserve(lrows.size() * rrows.size());
    for (const auto& l : lrows) {
      for (const auto& r : rrows) {
        combined.owned.push_back(ConcatRows(l, r));
      }
    }
    acc = std::move(combined);
  }
  return acc;
}

// ===========================================================================
// SELECT pipeline
// ===========================================================================

Result<ResultTable> Executor::ExecuteSelect(const SelectStmt& select,
                                            const EvalContext* outer) {
  if (select.IsPreferenceQuery()) {
    return Status::InvalidArgument(
        "PREFERRING queries must go through the Preference SQL layer "
        "(prefsql::Connection), not the plain engine");
  }
  if (select.from.empty()) {
    // SELECT <exprs>: one synthetic empty row.
    Schema empty_schema;
    Row empty_row;
    Source src;
    src.schema = empty_schema;
    src.owned.push_back(empty_row);
    std::vector<uint32_t> sel{0};
    if (select.where != nullptr) {
      EvalContext ctx{&src.schema, &src.owned[0], outer, this};
      PSQL_ASSIGN_OR_RETURN(bool pass, EvaluatePredicate(*select.where, ctx));
      if (!pass) sel.clear();
    }
    return ProjectCore(select.items, select.distinct, select.order_by,
                       select.limit, select.offset, src.schema, src.owned, sel,
                       outer);
  }

  PSQL_ASSIGN_OR_RETURN(Source input, ResolveFromList(select.from, outer));
  const auto& rows = input.data();
  PSQL_ASSIGN_OR_RETURN(std::vector<uint32_t> selection,
                        ComputeSelection(select, input, outer));

  bool has_aggregates = !select.group_by.empty() || select.having != nullptr;
  if (!has_aggregates) {
    for (const auto& item : select.items) {
      if (ContainsAggregate(*item.expr)) {
        has_aggregates = true;
        break;
      }
    }
  }
  if (has_aggregates) {
    return ProjectGrouped(select, input, selection, outer);
  }
  return ProjectCore(select.items, select.distinct, select.order_by,
                     select.limit, select.offset, input.schema, rows,
                     selection, outer);
}

Result<ResultTable> Executor::ProjectCore(
    const std::vector<SelectItem>& items, bool distinct,
    const std::vector<OrderItem>& order_by, std::optional<int64_t> limit,
    std::optional<int64_t> offset, const Schema& in_schema,
    const std::vector<Row>& in_rows, const std::vector<uint32_t>& selection,
    const EvalContext* outer) {
  // Expand stars and derive the output schema.
  std::vector<const Expr*> out_exprs_storage;
  std::vector<ExprPtr> synthesized;
  std::vector<ColumnInfo> out_cols;
  for (size_t i = 0; i < items.size(); ++i) {
    const Expr& e = *items[i].expr;
    if (e.kind == ExprKind::kStar) {
      for (size_t c = 0; c < in_schema.num_columns(); ++c) {
        const ColumnInfo& ci = in_schema.column(c);
        if (!e.qualifier.empty() &&
            !EqualsIgnoreCase(e.qualifier, ci.qualifier)) {
          continue;
        }
        synthesized.push_back(Expr::MakeColumn(ci.qualifier, ci.name));
        out_exprs_storage.push_back(synthesized.back().get());
        out_cols.push_back({"", ci.name});
      }
      continue;
    }
    out_exprs_storage.push_back(&e);
    std::string name =
        !items[i].alias.empty() ? items[i].alias : DeriveColumnName(e, i);
    out_cols.push_back({"", std::move(name)});
  }
  if (out_cols.empty()) {
    return Status::InvalidArgument("empty select list");
  }
  Schema out_schema(std::move(out_cols));

  std::vector<Row> out_rows;
  out_rows.reserve(selection.size());
  std::vector<uint32_t> input_of_output;
  input_of_output.reserve(selection.size());
  for (uint32_t idx : selection) {
    EvalContext ctx{&in_schema, &in_rows[idx], outer, this};
    Row out;
    out.reserve(out_exprs_storage.size());
    for (const Expr* e : out_exprs_storage) {
      PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(*e, ctx));
      out.push_back(std::move(v));
    }
    out_rows.push_back(std::move(out));
    input_of_output.push_back(idx);
  }

  if (distinct) {
    std::unordered_map<size_t, std::vector<size_t>> seen;
    std::vector<Row> dedup;
    std::vector<uint32_t> dedup_src;
    for (size_t i = 0; i < out_rows.size(); ++i) {
      size_t h = HashRow(out_rows[i]);
      bool dup = false;
      for (size_t j : seen[h]) {
        if (RowsIdentityEqual(dedup[j], out_rows[i])) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        seen[h].push_back(dedup.size());
        dedup.push_back(std::move(out_rows[i]));
        dedup_src.push_back(input_of_output[i]);
      }
    }
    out_rows = std::move(dedup);
    input_of_output = std::move(dedup_src);
  }

  // ORDER BY: keys evaluate against the output columns (aliases, ordinals)
  // or, failing that, the input row.
  if (!order_by.empty()) {
    std::vector<Row> keys(out_rows.size());
    std::vector<bool> asc;
    for (const auto& oi : order_by) asc.push_back(oi.ascending);
    for (size_t k = 0; k < order_by.size(); ++k) {
      const Expr& e = *order_by[k].expr;
      // ORDER BY <ordinal>.
      if (e.kind == ExprKind::kLiteral && e.literal.type() == ValueType::kInt) {
        int64_t ord = e.literal.AsInt();
        if (ord < 1 || ord > static_cast<int64_t>(out_schema.num_columns())) {
          return Status::InvalidArgument("ORDER BY position out of range");
        }
        for (size_t i = 0; i < out_rows.size(); ++i) {
          keys[i].push_back(out_rows[i][static_cast<size_t>(ord - 1)]);
        }
        continue;
      }
      // ORDER BY <output column / alias>.
      if (e.kind == ExprKind::kColumnRef && e.qualifier.empty()) {
        if (auto pos = out_schema.TryResolve("", e.column)) {
          for (size_t i = 0; i < out_rows.size(); ++i) {
            keys[i].push_back(out_rows[i][*pos]);
          }
          continue;
        }
      }
      // General expression over the input row.
      for (size_t i = 0; i < out_rows.size(); ++i) {
        EvalContext ctx{&in_schema, &in_rows[input_of_output[i]], outer, this};
        PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(e, ctx));
        keys[i].push_back(std::move(v));
      }
    }
    std::vector<size_t> perm(out_rows.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < asc.size(); ++k) {
        int c = Value::Compare(keys[a][k], keys[b][k]);
        if (c != 0) return asc[k] ? c < 0 : c > 0;
      }
      return false;
    });
    std::vector<Row> sorted;
    sorted.reserve(out_rows.size());
    for (size_t i : perm) sorted.push_back(std::move(out_rows[i]));
    out_rows = std::move(sorted);
  }

  // OFFSET / LIMIT.
  if (offset && *offset > 0) {
    size_t skip = std::min<size_t>(static_cast<size_t>(*offset), out_rows.size());
    out_rows.erase(out_rows.begin(), out_rows.begin() + skip);
  }
  if (limit && static_cast<size_t>(*limit) < out_rows.size()) {
    out_rows.resize(static_cast<size_t>(*limit));
  }
  return ResultTable(std::move(out_schema), std::move(out_rows));
}

// ===========================================================================
// GROUP BY / aggregation
// ===========================================================================

namespace {

// Collects distinct aggregate calls in an expression tree.
void CollectAggregates(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kFunction && IsAggregateFunction(e.function_name)) {
    for (const Expr* seen : *out) {
      if (ExprStructurallyEqual(*seen, e)) return;
    }
    out->push_back(&e);
    return;  // aggregates cannot nest
  }
  auto walk = [&](const ExprPtr& p) {
    if (p) CollectAggregates(*p, out);
  };
  walk(e.left);
  walk(e.right);
  walk(e.lo);
  walk(e.hi);
  walk(e.case_else);
  for (const auto& a : e.args) CollectAggregates(*a, out);
  for (const auto& item : e.in_list) CollectAggregates(*item, out);
  for (const auto& cw : e.case_whens) {
    CollectAggregates(*cw.when, out);
    CollectAggregates(*cw.then, out);
  }
}

// Rewrites `e`, replacing group-by expressions and aggregate calls with
// references into the synthetic per-group schema.
ExprPtr RewriteForGroups(const Expr& e, const std::vector<ExprPtr>& group_by,
                         const std::vector<std::string>& group_names,
                         const std::vector<const Expr*>& aggs,
                         const std::vector<std::string>& agg_names) {
  for (size_t i = 0; i < group_by.size(); ++i) {
    if (ExprStructurallyEqual(*group_by[i], e)) {
      return Expr::MakeColumn("", group_names[i]);
    }
  }
  for (size_t j = 0; j < aggs.size(); ++j) {
    if (ExprStructurallyEqual(*aggs[j], e)) {
      return Expr::MakeColumn("", agg_names[j]);
    }
  }
  ExprPtr out = e.Clone();
  auto rewrite = [&](ExprPtr& p) {
    if (p) p = RewriteForGroups(*p, group_by, group_names, aggs, agg_names);
  };
  rewrite(out->left);
  rewrite(out->right);
  rewrite(out->lo);
  rewrite(out->hi);
  rewrite(out->case_else);
  for (auto& a : out->args) {
    a = RewriteForGroups(*a, group_by, group_names, aggs, agg_names);
  }
  for (auto& item : out->in_list) {
    item = RewriteForGroups(*item, group_by, group_names, aggs, agg_names);
  }
  for (auto& cw : out->case_whens) {
    cw.when = RewriteForGroups(*cw.when, group_by, group_names, aggs, agg_names);
    cw.then = RewriteForGroups(*cw.then, group_by, group_names, aggs, agg_names);
  }
  return out;
}

}  // namespace

Result<ResultTable> Executor::ProjectGrouped(
    const SelectStmt& select, const Source& input,
    const std::vector<uint32_t>& selection, const EvalContext* outer) {
  const auto& rows = input.data();

  for (const auto& item : select.items) {
    if (item.expr->kind == ExprKind::kStar) {
      return Status::InvalidArgument("SELECT * cannot be used with GROUP BY");
    }
  }

  // Gather aggregate calls across items, HAVING and ORDER BY.
  std::vector<const Expr*> aggs;
  for (const auto& item : select.items) CollectAggregates(*item.expr, &aggs);
  if (select.having) CollectAggregates(*select.having, &aggs);
  for (const auto& oi : select.order_by) CollectAggregates(*oi.expr, &aggs);

  std::vector<AggregateKind> agg_kinds;
  for (const Expr* a : aggs) {
    bool star = !a->args.empty() && a->args[0]->kind == ExprKind::kStar;
    if (a->args.size() != 1) {
      return Status::InvalidArgument("aggregate " + a->function_name +
                                     " expects exactly one argument");
    }
    PSQL_ASSIGN_OR_RETURN(AggregateKind kind,
                          AggregateKindFromName(a->function_name, star));
    agg_kinds.push_back(kind);
  }

  // Group rows.
  struct Group {
    Row key;
    std::vector<AggregateAccumulator> accs;
  };
  std::vector<Group> groups;
  std::unordered_map<size_t, std::vector<size_t>> group_index;

  auto new_group = [&](Row key) {
    Group g;
    g.key = std::move(key);
    for (size_t j = 0; j < aggs.size(); ++j) {
      g.accs.emplace_back(agg_kinds[j], aggs[j]->distinct_arg);
    }
    groups.push_back(std::move(g));
    return groups.size() - 1;
  };

  for (uint32_t idx : selection) {
    EvalContext ctx{&input.schema, &rows[idx], outer, this};
    Row key;
    key.reserve(select.group_by.size());
    for (const auto& g : select.group_by) {
      PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(*g, ctx));
      key.push_back(std::move(v));
    }
    size_t h = HashRow(key);
    size_t gidx = SIZE_MAX;
    for (size_t cand : group_index[h]) {
      if (RowsIdentityEqual(groups[cand].key, key)) {
        gidx = cand;
        break;
      }
    }
    if (gidx == SIZE_MAX) {
      gidx = new_group(std::move(key));
      group_index[h].push_back(gidx);
    }
    for (size_t j = 0; j < aggs.size(); ++j) {
      Value arg;  // NULL placeholder for COUNT(*)
      if (agg_kinds[j] != AggregateKind::kCountStar) {
        PSQL_ASSIGN_OR_RETURN(arg, Evaluate(*aggs[j]->args[0], ctx));
      }
      PSQL_RETURN_IF_ERROR(groups[gidx].accs[j].Add(arg));
    }
  }
  // Scalar aggregation over an empty input still yields one group.
  if (select.group_by.empty() && groups.empty()) new_group(Row{});

  // Synthetic per-group relation.
  std::vector<std::string> group_names, agg_names;
  std::vector<ColumnInfo> cols;
  for (size_t i = 0; i < select.group_by.size(); ++i) {
    std::string name;
    if (select.group_by[i]->kind == ExprKind::kColumnRef) {
      name = select.group_by[i]->column;
    } else {
      name = "$g" + std::to_string(i);
    }
    group_names.push_back(name);
    cols.push_back({"", name});
  }
  for (size_t j = 0; j < aggs.size(); ++j) {
    agg_names.push_back("$a" + std::to_string(j));
    cols.push_back({"", agg_names.back()});
  }
  Schema group_schema(std::move(cols));
  std::vector<Row> group_rows;
  group_rows.reserve(groups.size());
  for (auto& g : groups) {
    Row r = std::move(g.key);
    for (auto& acc : g.accs) r.push_back(acc.Finish());
    group_rows.push_back(std::move(r));
  }

  // Rewrite items / HAVING / ORDER BY against the synthetic schema.
  std::vector<SelectItem> items;
  for (size_t i = 0; i < select.items.size(); ++i) {
    const auto& item = select.items[i];
    SelectItem out;
    out.expr = RewriteForGroups(*item.expr, select.group_by, group_names, aggs,
                                agg_names);
    out.alias = !item.alias.empty() ? item.alias
                                    : DeriveColumnName(*item.expr, i);
    items.push_back(std::move(out));
  }
  std::vector<OrderItem> order_by;
  for (const auto& oi : select.order_by) {
    order_by.push_back({RewriteForGroups(*oi.expr, select.group_by,
                                         group_names, aggs, agg_names),
                        oi.ascending});
  }

  std::vector<uint32_t> group_selection;
  if (select.having != nullptr) {
    ExprPtr having = RewriteForGroups(*select.having, select.group_by,
                                      group_names, aggs, agg_names);
    for (uint32_t i = 0; i < group_rows.size(); ++i) {
      EvalContext ctx{&group_schema, &group_rows[i], outer, this};
      PSQL_ASSIGN_OR_RETURN(bool pass, EvaluatePredicate(*having, ctx));
      if (pass) group_selection.push_back(i);
    }
  } else {
    for (uint32_t i = 0; i < group_rows.size(); ++i) {
      group_selection.push_back(i);
    }
  }

  return ProjectCore(items, select.distinct, order_by, select.limit,
                     select.offset, group_schema, group_rows, group_selection,
                     outer);
}

namespace {

// Collects top-level `column = literal` conjuncts of a predicate. Columns
// must be unqualified or qualified with `alias`.
void CollectEqualityConjuncts(
    const Expr& e, const std::string& alias,
    std::vector<std::pair<std::string, const Value*>>* out) {
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kAnd) {
    CollectEqualityConjuncts(*e.left, alias, out);
    CollectEqualityConjuncts(*e.right, alias, out);
    return;
  }
  if (e.kind != ExprKind::kBinary || e.binary_op != BinaryOp::kEq) return;
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  if (e.left->kind == ExprKind::kColumnRef &&
      e.right->kind == ExprKind::kLiteral) {
    col = e.left.get();
    lit = e.right.get();
  } else if (e.right->kind == ExprKind::kColumnRef &&
             e.left->kind == ExprKind::kLiteral) {
    col = e.right.get();
    lit = e.left.get();
  } else {
    return;
  }
  if (!col->qualifier.empty() && !EqualsIgnoreCase(col->qualifier, alias)) {
    return;
  }
  out->emplace_back(col->column, &lit->literal);
}

}  // namespace

std::optional<std::vector<size_t>> Executor::TryIndexLookup(
    const std::string& table_name, const std::string& visible_alias,
    const Expr& where) {
  auto table = catalog_->GetTable(table_name);
  if (!table.ok()) return std::nullopt;
  std::vector<std::pair<std::string, const Value*>> equalities;
  CollectEqualityConjuncts(where, visible_alias, &equalities);
  if (equalities.empty()) return std::nullopt;

  // Pick the index with the most key columns fully covered by equalities
  // ("having the right indices available", §3.2).
  Index* best = nullptr;
  for (Index* idx : catalog_->IndexesOn(table_name)) {
    bool covered = true;
    for (size_t key_col : idx->key_columns()) {
      const std::string& name = (*table)->columns()[key_col].name;
      bool found = false;
      for (const auto& [col, value] : equalities) {
        if (EqualsIgnoreCase(col, name)) {
          found = true;
          break;
        }
      }
      if (!found) {
        covered = false;
        break;
      }
    }
    if (covered && (best == nullptr ||
                    idx->key_columns().size() > best->key_columns().size())) {
      best = idx;
    }
  }
  if (best == nullptr) return std::nullopt;

  Row key;
  for (size_t key_col : best->key_columns()) {
    const std::string& name = (*table)->columns()[key_col].name;
    for (const auto& [col, value] : equalities) {
      if (EqualsIgnoreCase(col, name)) {
        key.push_back(*value);
        break;
      }
    }
  }
  return best->Lookup(key);
}

Result<std::vector<uint32_t>> Executor::ComputeSelection(
    const SelectStmt& select, const Source& input, const EvalContext* outer) {
  const auto& rows = input.data();
  std::vector<uint32_t> selection;
  if (select.where == nullptr) {
    selection.reserve(rows.size());
    for (uint32_t i = 0; i < rows.size(); ++i) selection.push_back(i);
    return selection;
  }
  // Index-assisted path: single base-table FROM with a covering index.
  if (select.from.size() == 1 &&
      select.from[0]->kind == TableRef::Kind::kTable &&
      catalog_->HasTable(select.from[0]->table_name)) {
    const std::string& visible = select.from[0]->alias.empty()
                                     ? select.from[0]->table_name
                                     : select.from[0]->alias;
    auto positions =
        TryIndexLookup(select.from[0]->table_name, visible, *select.where);
    if (positions) {
      ++stats_.index_scans;
      for (size_t pos : *positions) {
        EvalContext ctx{&input.schema, &rows[pos], outer, this};
        PSQL_ASSIGN_OR_RETURN(bool pass,
                              EvaluatePredicate(*select.where, ctx));
        if (pass) selection.push_back(static_cast<uint32_t>(pos));
      }
      std::sort(selection.begin(), selection.end());
      return selection;
    }
  }
  ++stats_.full_scans;
  for (uint32_t i = 0; i < rows.size(); ++i) {
    EvalContext ctx{&input.schema, &rows[i], outer, this};
    PSQL_ASSIGN_OR_RETURN(bool pass, EvaluatePredicate(*select.where, ctx));
    if (pass) selection.push_back(i);
  }
  return selection;
}

Result<ResultTable> Executor::MaterializeCandidates(const SelectStmt& select) {
  if (select.from.empty()) {
    return Status::InvalidArgument("preference query requires a FROM clause");
  }
  PSQL_ASSIGN_OR_RETURN(Source input, ResolveFromList(select.from, nullptr));
  const auto& rows = input.data();
  PSQL_ASSIGN_OR_RETURN(std::vector<uint32_t> selection,
                        ComputeSelection(select, input, nullptr));
  std::vector<Row> out;
  out.reserve(selection.size());
  for (uint32_t i : selection) out.push_back(rows[i]);
  return ResultTable(input.schema, std::move(out));
}

Result<ResultTable> Executor::InsertTable(const std::string& table,
                                          const std::vector<std::string>& columns,
                                          const ResultTable& data) {
  PSQL_ASSIGN_OR_RETURN(Table * target, catalog_->GetTable(table));
  std::vector<size_t> positions;
  if (columns.empty()) {
    for (size_t i = 0; i < target->columns().size(); ++i) {
      positions.push_back(i);
    }
  } else {
    for (const auto& c : columns) {
      PSQL_ASSIGN_OR_RETURN(size_t idx, target->ColumnIndex(c));
      positions.push_back(idx);
    }
  }
  if (data.num_columns() != positions.size()) {
    return Status::InvalidArgument(
        "INSERT expects " + std::to_string(positions.size()) +
        " values, got " + std::to_string(data.num_columns()));
  }
  int64_t affected = 0;
  for (const Row& src : data.rows()) {
    Row row(target->columns().size());
    for (size_t i = 0; i < positions.size(); ++i) {
      row[positions[i]] = src[i];
    }
    PSQL_RETURN_IF_ERROR(target->Insert(std::move(row)));
    ++affected;
  }
  return ResultTable(Schema::FromNames({"rows_affected"}),
                     {Row{Value::Int(affected)}});
}

// ===========================================================================
// Subqueries
// ===========================================================================

Result<ResultTable> Executor::RunSubquery(const SelectStmt& select,
                                          const EvalContext* outer) {
  return ExecuteSelect(select, outer);
}

Result<bool> Executor::SubqueryExists(const SelectStmt& select,
                                      const EvalContext* outer) {
  // Fast path: plain SELECT without grouping/limit machinery can stop at the
  // first row whose WHERE predicate holds. This is what makes the rewritten
  // NOT EXISTS dominance query tractable (§3.2).
  bool plain = select.group_by.empty() && select.having == nullptr &&
               !select.limit && !select.offset && !select.preferring &&
               !select.from.empty();
  if (plain) {
    for (const auto& item : select.items) {
      if (item.expr->kind != ExprKind::kStar &&
          ContainsAggregate(*item.expr)) {
        plain = false;
        break;
      }
    }
  }
  if (!plain) {
    PSQL_ASSIGN_OR_RETURN(ResultTable rt, ExecuteSelect(select, outer));
    return rt.num_rows() > 0;
  }
  PSQL_ASSIGN_OR_RETURN(Source input, ResolveFromList(select.from, outer));
  const auto& rows = input.data();
  if (select.where == nullptr) return !rows.empty();
  for (const auto& row : rows) {
    EvalContext ctx{&input.schema, &row, outer, this};
    PSQL_ASSIGN_OR_RETURN(bool pass, EvaluatePredicate(*select.where, ctx));
    if (pass) return true;
  }
  return false;
}

// ===========================================================================
// DML
// ===========================================================================

Result<ResultTable> Executor::ExecuteInsert(const Statement& stmt) {
  PSQL_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(stmt.name));
  // Column position mapping.
  std::vector<size_t> positions;
  if (stmt.insert_columns.empty()) {
    for (size_t i = 0; i < table->columns().size(); ++i) positions.push_back(i);
  } else {
    for (const auto& c : stmt.insert_columns) {
      PSQL_ASSIGN_OR_RETURN(size_t idx, table->ColumnIndex(c));
      positions.push_back(idx);
    }
  }

  auto insert_values = [&](std::vector<Value> values) -> Status {
    if (values.size() != positions.size()) {
      return Status::InvalidArgument(
          "INSERT expects " + std::to_string(positions.size()) +
          " values, got " + std::to_string(values.size()));
    }
    Row row(table->columns().size());  // missing columns default to NULL
    for (size_t i = 0; i < positions.size(); ++i) {
      row[positions[i]] = std::move(values[i]);
    }
    return table->Insert(std::move(row));
  };

  int64_t affected = 0;
  if (stmt.select) {
    PSQL_ASSIGN_OR_RETURN(ResultTable rt, ExecuteSelect(*stmt.select));
    for (auto& row : rt.rows()) {
      PSQL_RETURN_IF_ERROR(insert_values(std::move(row)));
      ++affected;
    }
  } else {
    for (const auto& row_exprs : stmt.insert_rows) {
      std::vector<Value> values;
      values.reserve(row_exprs.size());
      for (const auto& e : row_exprs) {
        PSQL_ASSIGN_OR_RETURN(Value v, EvaluateConstant(*e));
        values.push_back(std::move(v));
      }
      PSQL_RETURN_IF_ERROR(insert_values(std::move(values)));
      ++affected;
    }
  }
  ResultTable out(Schema::FromNames({"rows_affected"}),
                  {Row{Value::Int(affected)}});
  return out;
}

Result<ResultTable> Executor::ExecuteUpdate(const Statement& stmt) {
  PSQL_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(stmt.name));
  std::vector<size_t> target_cols;
  for (const auto& [col, e] : stmt.assignments) {
    PSQL_ASSIGN_OR_RETURN(size_t idx, table->ColumnIndex(col));
    target_cols.push_back(idx);
  }
  const Schema& schema = table->schema();
  int64_t affected = 0;
  for (size_t r = 0; r < table->rows().size(); ++r) {
    const Row& row = table->rows()[r];
    if (stmt.where != nullptr) {
      EvalContext ctx{&schema, &row, nullptr, this};
      PSQL_ASSIGN_OR_RETURN(bool pass, EvaluatePredicate(*stmt.where, ctx));
      if (!pass) continue;
    }
    // Evaluate all assignments against the OLD row, then apply.
    std::vector<Value> new_values;
    for (const auto& [col, e] : stmt.assignments) {
      EvalContext ctx{&schema, &row, nullptr, this};
      PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(*e, ctx));
      new_values.push_back(std::move(v));
    }
    for (size_t i = 0; i < target_cols.size(); ++i) {
      PSQL_RETURN_IF_ERROR(
          table->UpdateCell(r, target_cols[i], std::move(new_values[i])));
    }
    ++affected;
  }
  return ResultTable(Schema::FromNames({"rows_affected"}),
                     {Row{Value::Int(affected)}});
}

Result<ResultTable> Executor::ExecuteDelete(const Statement& stmt) {
  PSQL_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(stmt.name));
  const Schema& schema = table->schema();
  std::vector<bool> matches(table->rows().size(), stmt.where == nullptr);
  if (stmt.where != nullptr) {
    for (size_t r = 0; r < table->rows().size(); ++r) {
      EvalContext ctx{&schema, &table->rows()[r], nullptr, this};
      PSQL_ASSIGN_OR_RETURN(bool pass, EvaluatePredicate(*stmt.where, ctx));
      matches[r] = pass;
    }
  }
  size_t deleted = table->DeleteWhere(matches);
  return ResultTable(Schema::FromNames({"rows_affected"}),
                     {Row{Value::Int(static_cast<int64_t>(deleted))}});
}

}  // namespace prefsql
