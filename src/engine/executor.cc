#include "engine/executor.h"

#include <algorithm>

#include "core/query_context.h"
#include "engine/planner.h"
#include "util/failpoint.h"
#include "util/memory_budget.h"
#include "util/string_util.h"

namespace prefsql {

// ===========================================================================
// Statement dispatch
// ===========================================================================

Executor::DmlEffect& Executor::BeginDml(DmlEffect::Kind kind,
                                        const std::string& name,
                                        const Table& table) {
  last_dml_ = DmlEffect{};
  last_dml_.kind = kind;
  last_dml_.table = name;
  last_dml_.table_id = table.id();
  last_dml_.version_before = table.version();
  last_dml_.heap_before = table.heap_size();
  return last_dml_;
}

Result<ResultTable> Executor::ExecuteStatement(const Statement& stmt) {
  last_dml_ = DmlEffect{};
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(*stmt.select);
    case StatementKind::kCreateTable: {
      PSQL_RETURN_IF_ERROR(
          catalog_->CreateTable(stmt.name, stmt.columns, stmt.if_not_exists));
      return ResultTable();
    }
    case StatementKind::kCreateView: {
      PSQL_RETURN_IF_ERROR(catalog_->CreateView(stmt.name, stmt.select));
      return ResultTable();
    }
    case StatementKind::kCreateIndex: {
      PSQL_RETURN_IF_ERROR(
          catalog_->CreateIndex(stmt.name, stmt.on_table, stmt.index_columns));
      return ResultTable();
    }
    case StatementKind::kCreatePreference: {
      // Expand nested PREFERENCE references at definition time so stored
      // bodies are self-contained (snapshot semantics; cycles impossible).
      // The expansion lives in the core layer; here we only store the body
      // verbatim — Database-level users get the same semantics because the
      // body cannot reference itself (the name does not exist yet).
      PSQL_RETURN_IF_ERROR(
          catalog_->CreatePreference(stmt.name, stmt.preference->Clone()));
      return ResultTable();
    }
    case StatementKind::kExplain:
      return Status::InvalidArgument(
          "EXPLAIN is handled by the Preference SQL layer "
          "(prefsql::Connection)");
    case StatementKind::kSet:
      return Status::InvalidArgument(
          "SET is handled by the Preference SQL layer "
          "(prefsql::Connection)");
    case StatementKind::kInsert:
      return ExecuteInsert(stmt);
    case StatementKind::kUpdate:
      return ExecuteUpdate(stmt);
    case StatementKind::kDelete:
      return ExecuteDelete(stmt);
    case StatementKind::kDrop: {
      PSQL_RETURN_IF_ERROR(
          catalog_->Drop(stmt.drop_kind, stmt.name, stmt.if_exists));
      return ResultTable();
    }
  }
  return Status::Internal("unreachable statement kind");
}

// ===========================================================================
// SELECT facade over the operator pipeline
// ===========================================================================

Result<ResultTable> Executor::ExecuteSelect(const SelectStmt& select,
                                            const EvalContext* outer) {
  PSQL_ASSIGN_OR_RETURN(OperatorPtr plan, PlanSelectOperator(select, outer));
  return DrainToTable(*plan);
}

Result<OperatorPtr> Executor::PlanSelectOperator(const SelectStmt& select,
                                                 const EvalContext* outer) {
  Planner planner(this);
  return planner.PlanSelect(select, outer);
}

Result<ResultTable> Executor::MaterializeCandidates(const SelectStmt& select) {
  Planner planner(this);
  PSQL_ASSIGN_OR_RETURN(OperatorPtr plan,
                        planner.PlanCandidates(select, nullptr));
  return DrainToTable(*plan);
}

Result<std::shared_ptr<ResultTable>> Executor::MaterializeViewCached(
    const std::string& name) {
  std::string key = ToLower(name);
  {
    std::lock_guard<std::mutex> lock(view_cache_mutex_);
    auto it = view_cache_.find(key);
    if (it != view_cache_.end()) return it->second;
  }
  // Materialize outside the lock: nested views re-enter this function, and
  // duplicated work between two concurrent readers is harmless.
  PSQL_ASSIGN_OR_RETURN(auto def, catalog_->GetView(name));
  PSQL_ASSIGN_OR_RETURN(ResultTable rt, ExecuteSelect(*def, nullptr));
  auto materialized = std::make_shared<ResultTable>(std::move(rt));
  std::lock_guard<std::mutex> lock(view_cache_mutex_);
  view_cache_[key] = materialized;
  return materialized;
}

namespace {

// One DML statement = one commit epoch. The writer allocates the epoch up
// front, stamps every change with it, and this guard seals + publishes on
// scope exit if anything was stamped — also on mid-statement error, because
// this storage layer has no rollback and already-stamped versions must
// become durable rather than ghosts under an unpublished epoch.
class DmlCommit {
 public:
  DmlCommit(Table* table, Executor::DmlEffect* dml)
      : table_(table), dml_(dml), epoch_(table->epochs().BeginWrite()) {}
  ~DmlCommit() {
    if (mutated_) {
      // Fault-injection site (delay-only — a destructor cannot propagate a
      // status): stretches the window between the last stamped change and
      // the epoch becoming visible, the exact interval concurrent readers
      // and cache maintenance must tolerate.
      PSQL_FAILPOINT("epoch_publish");
      table_->SealVersion(epoch_);
      table_->epochs().Publish(epoch_);
      dml_->commit_epoch = epoch_;
    }
  }
  uint64_t epoch() const { return epoch_; }
  void MarkMutated() { mutated_ = true; }

 private:
  Table* table_;
  Executor::DmlEffect* dml_;
  uint64_t epoch_;
  bool mutated_ = false;
};

}  // namespace

Result<ResultTable> Executor::InsertTable(const std::string& table,
                                          const std::vector<std::string>& columns,
                                          const ResultTable& data) {
  PSQL_ASSIGN_OR_RETURN(Table * target, catalog_->GetTable(table));
  DmlEffect& dml = BeginDml(DmlEffect::Kind::kInsert, table, *target);
  std::vector<size_t> positions;
  if (columns.empty()) {
    for (size_t i = 0; i < target->columns().size(); ++i) {
      positions.push_back(i);
    }
  } else {
    for (const auto& c : columns) {
      PSQL_ASSIGN_OR_RETURN(size_t idx, target->ColumnIndex(c));
      positions.push_back(idx);
    }
  }
  if (data.num_columns() != positions.size()) {
    return Status::InvalidArgument(
        "INSERT expects " + std::to_string(positions.size()) +
        " values, got " + std::to_string(data.num_columns()));
  }
  DmlCommit commit(target, &dml);
  int64_t affected = 0;
  for (const Row& src : data.rows()) {
    Row row(target->columns().size());
    for (size_t i = 0; i < positions.size(); ++i) {
      row[positions[i]] = src[i];
    }
    PSQL_ASSIGN_OR_RETURN(row, target->CoerceRow(std::move(row)));
    target->AppendVersion(std::move(row), commit.epoch());
    commit.MarkMutated();
    ++affected;
  }
  return ResultTable(Schema::FromNames({"rows_affected"}),
                     {Row{Value::Int(affected)}});
}

// ===========================================================================
// Subqueries
// ===========================================================================

Result<ResultTable> Executor::RunSubquery(const SelectStmt& select,
                                          const EvalContext* outer) {
  return ExecuteSelect(select, outer);
}

Result<bool> Executor::SubqueryExists(const SelectStmt& select,
                                      const EvalContext* outer) {
  // Fast path: plain SELECT without grouping/limit machinery can stop at the
  // first row the streamed FROM/WHERE pipeline produces. This is what makes
  // the rewritten NOT EXISTS dominance query tractable (§3.2). Scan counters
  // stay untouched (probes would drown the per-statement counts).
  bool plain = select.group_by.empty() && select.having == nullptr &&
               !select.limit && !select.offset && !select.preferring &&
               !select.from.empty();
  if (plain) {
    for (const auto& item : select.items) {
      if (item.expr->kind != ExprKind::kStar &&
          ContainsAggregate(*item.expr)) {
        plain = false;
        break;
      }
    }
  }
  if (!plain) {
    PSQL_ASSIGN_OR_RETURN(ResultTable rt, ExecuteSelect(select, outer));
    return rt.num_rows() > 0;
  }
  Planner planner(this);
  PSQL_ASSIGN_OR_RETURN(
      OperatorPtr plan,
      planner.PlanCandidates(select, outer, /*count_stats=*/false));
  Status open = plan->Open();
  if (!open.ok()) {
    plan->Close();
    return open;
  }
  RowRef row;
  auto more = plan->Next(&row);
  plan->Close();
  PSQL_RETURN_IF_ERROR(more.status());
  return *more;
}

// ===========================================================================
// DML
// ===========================================================================

Result<ResultTable> Executor::ExecuteInsert(const Statement& stmt) {
  PSQL_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(stmt.name));
  DmlEffect& dml = BeginDml(DmlEffect::Kind::kInsert, stmt.name, *table);
  // Reads inside the statement (INSERT ... SELECT, subqueries) see the
  // pre-statement snapshot; appended versions carry the commit epoch, so a
  // self-referencing source can never re-read its own inserts (Halloween).
  ScopedSnapshot scope(AmbientSnapshotOr(table->epochs().current()));
  // Column position mapping.
  std::vector<size_t> positions;
  if (stmt.insert_columns.empty()) {
    for (size_t i = 0; i < table->columns().size(); ++i) positions.push_back(i);
  } else {
    for (const auto& c : stmt.insert_columns) {
      PSQL_ASSIGN_OR_RETURN(size_t idx, table->ColumnIndex(c));
      positions.push_back(idx);
    }
  }

  DmlCommit commit(table, &dml);
  // Cooperative interrupt + RowHeap-growth accounting. A mid-statement
  // interrupt commits the rows already stamped (this storage layer has no
  // rollback — the DmlCommit guard publishes partial effects by design);
  // the budget bounds one statement's ingest spike and releases when the
  // statement finishes.
  QueryContext* qctx = CurrentQueryContext();
  ScopedMemoryCharge stmt_charge;
  ScopedMemoryCharge engine_charge;
  size_t tick = 0;
  uint64_t pending = 0;
  auto insert_values = [&](std::vector<Value> values) -> Status {
    PSQL_RETURN_IF_ERROR(PollInterrupt(&tick));
    if (values.size() != positions.size()) {
      return Status::InvalidArgument(
          "INSERT expects " + std::to_string(positions.size()) +
          " values, got " + std::to_string(values.size()));
    }
    Row row(table->columns().size());  // missing columns default to NULL
    for (size_t i = 0; i < positions.size(); ++i) {
      row[positions[i]] = std::move(values[i]);
    }
    PSQL_ASSIGN_OR_RETURN(row, table->CoerceRow(std::move(row)));
    if (qctx != nullptr) {
      pending += sizeof(Row) + row.size() * sizeof(Value);
      if (pending >= kChargeBatchBytes) {
        PSQL_RETURN_IF_ERROR(
            qctx->ChargeMemory(pending, &stmt_charge, &engine_charge));
        pending = 0;
      }
    }
    table->AppendVersion(std::move(row), commit.epoch());
    commit.MarkMutated();
    return Status::OK();
  };

  int64_t affected = 0;
  if (stmt.select) {
    PSQL_ASSIGN_OR_RETURN(ResultTable rt, ExecuteSelect(*stmt.select));
    for (auto& row : rt.rows()) {
      PSQL_RETURN_IF_ERROR(insert_values(std::move(row)));
      ++affected;
    }
  } else {
    for (const auto& row_exprs : stmt.insert_rows) {
      std::vector<Value> values;
      values.reserve(row_exprs.size());
      for (const auto& e : row_exprs) {
        PSQL_ASSIGN_OR_RETURN(Value v, EvaluateConstant(*e));
        values.push_back(std::move(v));
      }
      PSQL_RETURN_IF_ERROR(insert_values(std::move(values)));
      ++affected;
    }
  }
  ResultTable out(Schema::FromNames({"rows_affected"}),
                  {Row{Value::Int(affected)}});
  return out;
}

Result<ResultTable> Executor::ExecuteUpdate(const Statement& stmt) {
  PSQL_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(stmt.name));
  DmlEffect& dml = BeginDml(DmlEffect::Kind::kUpdate, stmt.name, *table);
  uint64_t read_epoch = AmbientSnapshotOr(table->epochs().current());
  ScopedSnapshot scope(read_epoch);
  std::vector<size_t> target_cols;
  for (const auto& [col, e] : stmt.assignments) {
    PSQL_ASSIGN_OR_RETURN(size_t idx, table->ColumnIndex(col));
    target_cols.push_back(idx);
  }
  const Schema& schema = table->schema();
  const RowHeap& heap = table->heap();
  DmlCommit commit(table, &dml);
  QueryContext* qctx = CurrentQueryContext();
  ScopedMemoryCharge stmt_charge;
  ScopedMemoryCharge engine_charge;
  size_t tick = 0;
  uint64_t pending = 0;
  int64_t affected = 0;
  // Only slots that existed at statement start: our own appended versions
  // land above heap_before and must not be revisited.
  for (size_t slot = 0; slot < dml.heap_before; ++slot) {
    PSQL_RETURN_IF_ERROR(PollInterrupt(&tick));
    if (!heap.VisibleAt(slot, read_epoch)) continue;
    const Row& row = heap.row(slot);
    if (stmt.where != nullptr) {
      EvalContext ctx{&schema, &row, nullptr, this};
      PSQL_ASSIGN_OR_RETURN(bool pass, EvaluatePredicate(*stmt.where, ctx));
      if (!pass) continue;
    }
    // Evaluate all assignments against the OLD row, then build the new
    // version: end-stamp the old slot, append the replacement.
    std::vector<Value> new_values;
    for (const auto& [col, e] : stmt.assignments) {
      EvalContext ctx{&schema, &row, nullptr, this};
      PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(*e, ctx));
      new_values.push_back(std::move(v));
    }
    Row updated = row;
    for (size_t i = 0; i < target_cols.size(); ++i) {
      PSQL_ASSIGN_OR_RETURN(
          updated[target_cols[i]],
          table->CoerceToColumn(target_cols[i], std::move(new_values[i])));
    }
    if (qctx != nullptr) {
      // Each touched row appends a replacement version (RowHeap growth).
      pending += sizeof(Row) + updated.size() * sizeof(Value);
      if (pending >= kChargeBatchBytes) {
        PSQL_RETURN_IF_ERROR(
            qctx->ChargeMemory(pending, &stmt_charge, &engine_charge));
        pending = 0;
      }
    }
    table->MarkDeleted(slot, commit.epoch());
    table->AppendVersion(std::move(updated), commit.epoch());
    commit.MarkMutated();
    dml.dead.push_back(static_cast<uint32_t>(slot));
    ++affected;
  }
  return ResultTable(Schema::FromNames({"rows_affected"}),
                     {Row{Value::Int(affected)}});
}

Result<ResultTable> Executor::ExecuteDelete(const Statement& stmt) {
  PSQL_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(stmt.name));
  DmlEffect& dml = BeginDml(DmlEffect::Kind::kDelete, stmt.name, *table);
  uint64_t read_epoch = AmbientSnapshotOr(table->epochs().current());
  ScopedSnapshot scope(read_epoch);
  const Schema& schema = table->schema();
  const RowHeap& heap = table->heap();
  DmlCommit commit(table, &dml);
  size_t tick = 0;
  int64_t deleted = 0;
  for (size_t slot = 0; slot < dml.heap_before; ++slot) {
    PSQL_RETURN_IF_ERROR(PollInterrupt(&tick));
    if (!heap.VisibleAt(slot, read_epoch)) continue;
    if (stmt.where != nullptr) {
      EvalContext ctx{&schema, &heap.row(slot), nullptr, this};
      PSQL_ASSIGN_OR_RETURN(bool pass, EvaluatePredicate(*stmt.where, ctx));
      if (!pass) continue;
    }
    table->MarkDeleted(slot, commit.epoch());
    commit.MarkMutated();
    dml.dead.push_back(static_cast<uint32_t>(slot));
    ++deleted;
  }
  return ResultTable(Schema::FromNames({"rows_affected"}),
                     {Row{Value::Int(deleted)}});
}

}  // namespace prefsql
