// Database: the "standard SQL DB system" of the paper's architecture figure.
// Owns a catalog and an executor; parses and runs standard SQL text.

#pragma once

#include <memory>
#include <string>

#include "engine/executor.h"
#include "storage/catalog.h"
#include "types/result_table.h"
#include "util/status.h"

namespace prefsql {

/// An in-memory SQL database (SQL92-entry-level subset, no preferences).
/// Preference SQL queries are rejected here; they belong to the
/// prefsql::Connection layer which rewrites them into standard SQL first.
class Database {
 public:
  Database();
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Parses and runs one statement.
  Result<ResultTable> Execute(const std::string& sql);

  /// Parses and runs a semicolon-separated script; returns the result of the
  /// last statement.
  Result<ResultTable> ExecuteScript(const std::string& sql);

  /// Runs an already-parsed statement.
  Result<ResultTable> ExecuteStatement(const Statement& stmt);

  /// Runs an already-parsed SELECT.
  Result<ResultTable> ExecuteSelect(const SelectStmt& select);

  Catalog& catalog() { return catalog_; }
  Executor& executor() { return *executor_; }

 private:
  Catalog catalog_;
  std::unique_ptr<Executor> executor_;
};

}  // namespace prefsql
