#include "engine/database.h"

#include "sql/parser.h"

namespace prefsql {

Database::Database() : executor_(std::make_unique<Executor>(&catalog_)) {}
Database::~Database() = default;

Result<ResultTable> Database::Execute(const std::string& sql) {
  PSQL_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return ExecuteStatement(stmt);
}

Result<ResultTable> Database::ExecuteScript(const std::string& sql) {
  PSQL_ASSIGN_OR_RETURN(auto stmts, ParseScript(sql));
  if (stmts.empty()) {
    return Status::InvalidArgument("empty script");
  }
  ResultTable last;
  for (const auto& stmt : stmts) {
    PSQL_ASSIGN_OR_RETURN(last, ExecuteStatement(stmt));
  }
  return last;
}

Result<ResultTable> Database::ExecuteStatement(const Statement& stmt) {
  executor_->ClearStatementCache();
  return executor_->ExecuteStatement(stmt);
}

Result<ResultTable> Database::ExecuteSelect(const SelectStmt& select) {
  executor_->ClearStatementCache();
  return executor_->ExecuteSelect(select);
}

}  // namespace prefsql
