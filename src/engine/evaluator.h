// Expression evaluation with SQL three-valued logic and correlated-subquery
// support.

#pragma once

#include "sql/ast.h"
#include "types/result_table.h"
#include "types/row_batch.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/status.h"

namespace prefsql {

struct EvalContext;

/// Executes subqueries on behalf of the evaluator (implemented by the
/// engine's Executor; kept abstract to avoid a dependency cycle).
class SubqueryRunner {
 public:
  virtual ~SubqueryRunner() = default;
  /// Runs `select` with `outer` providing the correlated scope chain.
  virtual Result<ResultTable> RunSubquery(const SelectStmt& select,
                                          const EvalContext* outer) = 0;

  /// EXISTS probe: true iff the subquery yields at least one row. Implementors
  /// may early-exit at the first matching row.
  virtual Result<bool> SubqueryExists(const SelectStmt& select,
                                      const EvalContext* outer) = 0;
};

/// One scope of the evaluation environment: the current row with its schema,
/// chained to outer scopes for correlated subqueries.
struct EvalContext {
  const Schema* schema = nullptr;
  const Row* row = nullptr;
  const EvalContext* outer = nullptr;
  SubqueryRunner* runner = nullptr;  // may be null for subquery-free exprs

  /// Scope with the given row/schema and no outer chain.
  static EvalContext For(const Schema& schema, const Row& row,
                         SubqueryRunner* runner = nullptr) {
    return EvalContext{&schema, &row, nullptr, runner};
  }
};

/// Evaluates `expr` in `ctx`. Comparison/logic operators return BOOL or NULL
/// (UNKNOWN); arithmetic on NULL yields NULL.
Result<Value> Evaluate(const Expr& expr, const EvalContext& ctx);

/// Evaluates `expr` as a predicate: true iff the result is BOOL TRUE
/// (NULL/UNKNOWN filters out, as in a WHERE clause).
Result<bool> EvaluatePredicate(const Expr& expr, const EvalContext& ctx);

/// Batch predicate evaluation: compacts `batch->sel` in place to the rows
/// where `expr` is TRUE. Top-level AND conjuncts run left-to-right over the
/// surviving selection (the batch form of the row path's short-circuit
/// AND), and `column OP literal` / `column IS [NOT] NULL` conjuncts resolve
/// the column index once per batch instead of once per row. Everything else
/// falls back to per-row EvaluatePredicate with `outer`/`runner` providing
/// the correlated scope chain, so results match row mode exactly; only the
/// order in which multiple *erroring* rows surface may differ (a conjunct
/// sees rows already filtered by its left siblings).
Status EvaluatePredicateBatch(const Expr& expr, const Schema& schema,
                              RowBatch* batch, const EvalContext* outer,
                              SubqueryRunner* runner);

/// Evaluates a constant expression (no column refs); used for INSERT VALUES.
Result<Value> EvaluateConstant(const Expr& expr);

/// True iff `name` (lower case) is one of the engine's aggregate functions
/// (count, sum, avg, min, max).
bool IsAggregateFunction(const std::string& name);

/// True iff the expression tree contains an aggregate function call.
bool ContainsAggregate(const Expr& expr);

/// SQL LIKE with '%' and '_' wildcards (case-sensitive).
bool SqlLike(const std::string& text, const std::string& pattern);

}  // namespace prefsql
