#include "engine/csv.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace prefsql {
namespace {

// Splits CSV text into records of raw fields; handles quoted fields with
// doubled-quote escapes and embedded newlines.
Result<std::vector<std::vector<std::pair<std::string, bool>>>> SplitCsv(
    const std::string& text, char sep) {
  std::vector<std::vector<std::pair<std::string, bool>>> records;
  std::vector<std::pair<std::string, bool>> record;  // (field, was_quoted)
  std::string field;
  bool quoted = false;    // current field was quoted
  bool in_quotes = false;
  size_t i = 0;
  auto end_field = [&] {
    record.emplace_back(std::move(field), quoted);
    field.clear();
    quoted = false;
  };
  auto end_record = [&] {
    end_field();
    // Skip completely empty trailing lines.
    if (record.size() > 1 || !record[0].first.empty() || record[0].second) {
      records.push_back(std::move(record));
    }
    record.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      quoted = true;
      ++i;
      continue;
    }
    if (c == sep) {
      end_field();
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      end_record();
      ++i;
      continue;
    }
    field += c;
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (!field.empty() || !record.empty()) end_record();
  return records;
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeDouble(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

Value FieldToValue(const std::string& raw, bool was_quoted) {
  if (!was_quoted) {
    if (raw.empty()) return Value::Null();
    if (LooksLikeInt(raw)) {
      return Value::Int(std::strtoll(raw.c_str(), nullptr, 10));
    }
    if (LooksLikeDouble(raw)) {
      return Value::Double(std::strtod(raw.c_str(), nullptr));
    }
  }
  return Value::Text(raw);
}

std::string EscapeField(const std::string& s, char sep) {
  bool needs_quotes = s.find(sep) != std::string::npos ||
                      s.find('"') != std::string::npos ||
                      s.find('\n') != std::string::npos;
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<ResultTable> ParseCsv(const std::string& text,
                             const CsvOptions& options) {
  PSQL_ASSIGN_OR_RETURN(auto records, SplitCsv(text, options.separator));
  if (records.empty()) {
    return Status::InvalidArgument("empty CSV input");
  }
  std::vector<std::string> names;
  size_t first_data = 0;
  if (options.has_header) {
    for (const auto& [field, quoted] : records[0]) names.push_back(field);
    first_data = 1;
  } else {
    for (size_t c = 0; c < records[0].size(); ++c) {
      names.push_back("c" + std::to_string(c));
    }
  }
  std::vector<Row> rows;
  for (size_t r = first_data; r < records.size(); ++r) {
    if (records[r].size() != names.size()) {
      return Status::InvalidArgument(
          "CSV record " + std::to_string(r + 1) + " has " +
          std::to_string(records[r].size()) + " fields, expected " +
          std::to_string(names.size()));
    }
    Row row;
    row.reserve(names.size());
    for (const auto& [field, quoted] : records[r]) {
      row.push_back(FieldToValue(field, quoted));
    }
    rows.push_back(std::move(row));
  }
  return ResultTable(Schema::FromNames(names), std::move(rows));
}

Result<size_t> ImportCsv(Database& db, const std::string& table,
                         const std::string& text, const CsvOptions& options) {
  PSQL_ASSIGN_OR_RETURN(ResultTable data, ParseCsv(text, options));
  if (!db.catalog().HasTable(table)) {
    // Infer column types from the first data row (TEXT when absent/NULL).
    std::vector<ColumnDef> cols;
    for (size_t c = 0; c < data.num_columns(); ++c) {
      ColumnType type = ColumnType::kText;
      if (data.num_rows() > 0) {
        switch (data.at(0, c).type()) {
          case ValueType::kInt:
            type = ColumnType::kInt;
            break;
          case ValueType::kDouble:
            type = ColumnType::kDouble;
            break;
          default:
            type = ColumnType::kText;
            break;
        }
      }
      cols.push_back({data.schema().column(c).name, type});
    }
    PSQL_RETURN_IF_ERROR(db.catalog().CreateTable(table, cols, false));
  }
  PSQL_ASSIGN_OR_RETURN(Table * target, db.catalog().GetTable(table));
  for (Row& row : data.rows()) {
    PSQL_RETURN_IF_ERROR(target->Insert(std::move(row)));
  }
  return data.num_rows();
}

std::string ToCsv(const ResultTable& table, const CsvOptions& options) {
  std::string out;
  if (options.has_header) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c) out += options.separator;
      out += EscapeField(table.schema().column(c).name, options.separator);
    }
    out += '\n';
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c) out += options.separator;
      const Value& v = table.at(r, c);
      if (v.is_null()) continue;  // NULL renders as an empty field
      out += EscapeField(v.ToString(), options.separator);
    }
    out += '\n';
  }
  return out;
}

Result<size_t> ImportCsvFile(Database& db, const std::string& table,
                             const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ImportCsv(db, table, buffer.str(), options);
}

Status ExportCsvFile(const ResultTable& table, const std::string& path,
                     const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  out << ToCsv(table, options);
  return Status::OK();
}

}  // namespace prefsql
