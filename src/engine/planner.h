// Planner: compiles a SelectStmt into a tree of physical operators
// (engine/operators/). Access-path selection (sequential scan vs. index
// lookup for equality/range predicates), join algorithm choice (hash vs.
// nested loop) and the projection/distinct/order/limit tail all happen
// here; execution is pure pulling afterwards.
//
// The Preference SQL layer uses PlanCandidates to stream `FROM ... WHERE`
// (qualifiers preserved) into a BmoOperator, and PlanTail to project the
// BMO stream with the engine's own rules.

#pragma once

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/evaluator.h"
#include "engine/operators/operator.h"
#include "sql/ast.h"
#include "util/status.h"

namespace prefsql {

class Executor;

/// Builds the preference layer's semi-skyline pre-filter over `input`,
/// computing per-partition maximal tuples; `partition_cols` are positions in
/// input's schema. Supplied by core (the planner stays preference-agnostic).
using PrefilterFactory =
    std::function<OperatorPtr(OperatorPtr input,
                              std::vector<size_t> partition_cols)>;

/// Request to push the BMO block below the query's join (algebraic
/// preference pushdown). The planner applies it only when provably sound;
/// see Planner::PlanCandidates.
struct PreferencePushdown {
  /// (qualifier, column) references of the preference's leaf attribute
  /// expressions (the quality columns).
  std::vector<std::pair<std::string, std::string>> pref_columns;
  /// GROUPING attribute names of the query (bare names).
  std::vector<std::string> grouping;
  PrefilterFactory make_prefilter;
};

/// Outcome of a pushdown attempt (EXPLAIN, Connection::last_stats, tests).
struct PushdownReport {
  bool pushed = false;
  /// Human-readable decision: the pre-filter placement when pushed, the
  /// rejection reason otherwise.
  std::string detail;
};

class Planner {
 public:
  /// The executor provides the catalog, the per-statement view cache, scan
  /// counters, and subquery execution.
  explicit Planner(Executor* executor) : executor_(executor) {}

  /// Plans a full (non-preference) SELECT pipeline.
  Result<OperatorPtr> PlanSelect(const SelectStmt& select,
                                 const EvalContext* outer);

  /// Plans `FROM ... WHERE ...` of `select` with column qualifiers
  /// preserved (no projection). `count_stats` = false leaves the executor's
  /// scan counters untouched (EXISTS probes).
  ///
  /// With `pushdown` set, attempts the algebraic preference pushdown: when
  /// the FROM is a single two-way join, every preference quality column
  /// binds to exactly one join side, and each WHERE conjunct binds wholly
  /// to one side, the pre-filter from `pushdown->make_prefilter` is placed
  /// below the join on the preference side — partitioned by the side's
  /// equi-join keys plus its GROUPING columns, so that every tuple it drops
  /// is dominated by a kept tuple with the same join fate. Pref-side WHERE
  /// conjuncts move below the pre-filter (dominators must not be filtered
  /// away later); the remaining conjuncts stay above the join. Falls back
  /// to the ordinary plan otherwise; `report` records the decision.
  Result<OperatorPtr> PlanCandidates(const SelectStmt& select,
                                     const EvalContext* outer,
                                     bool count_stats = true,
                                     const PreferencePushdown* pushdown =
                                         nullptr,
                                     PushdownReport* report = nullptr);

  /// Plans the projection/distinct/order/limit tail over `child`. Takes
  /// ownership of the item/order expressions (callers clone from the AST or
  /// pass synthesized rewrites).
  Result<OperatorPtr> PlanTail(std::vector<SelectItem> items, bool distinct,
                               std::vector<OrderItem> order_by,
                               std::optional<int64_t> limit,
                               std::optional<int64_t> offset,
                               OperatorPtr child, const EvalContext* outer);

 private:
  Result<OperatorPtr> PlanTableRef(const TableRef& tr,
                                   const EvalContext* outer);
  Result<OperatorPtr> PlanJoin(const TableRef& tr, const EvalContext* outer);
  /// The pushdown plan described at PlanCandidates, or nullopt (with the
  /// rejection reason in `report`) when a soundness condition fails.
  Result<std::optional<OperatorPtr>> TryPlanPushdown(
      const SelectStmt& select, const EvalContext* outer, bool count_stats,
      const PreferencePushdown& pushdown, PushdownReport* report);
  Result<OperatorPtr> PlanFromWhere(const SelectStmt& select,
                                    const EvalContext* outer,
                                    bool count_stats);
  Result<OperatorPtr> PlanAggregate(const SelectStmt& select,
                                    OperatorPtr input,
                                    const EvalContext* outer);

  /// Index-assisted access path: row positions matching the indexable
  /// equality/range conjuncts of `where` (callers re-apply the full WHERE);
  /// nullopt when no usable index exists.
  std::optional<std::vector<size_t>> TryIndexPositions(
      const std::string& table_name, const std::string& visible_alias,
      const Expr& where);

  Executor* executor_;
};

}  // namespace prefsql
