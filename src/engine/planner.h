// Planner: compiles a SelectStmt into a tree of physical operators
// (engine/operators/). Access-path selection (sequential scan vs. index
// lookup for equality/range predicates), join algorithm choice (hash vs.
// nested loop) and the projection/distinct/order/limit tail all happen
// here; execution is pure pulling afterwards.
//
// The Preference SQL layer uses PlanCandidates to stream `FROM ... WHERE`
// (qualifiers preserved) into a BmoOperator, and PlanTail to project the
// BMO stream with the engine's own rules.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "engine/evaluator.h"
#include "engine/operators/operator.h"
#include "sql/ast.h"
#include "util/status.h"

namespace prefsql {

class Executor;

class Planner {
 public:
  /// The executor provides the catalog, the per-statement view cache, scan
  /// counters, and subquery execution.
  explicit Planner(Executor* executor) : executor_(executor) {}

  /// Plans a full (non-preference) SELECT pipeline.
  Result<OperatorPtr> PlanSelect(const SelectStmt& select,
                                 const EvalContext* outer);

  /// Plans `FROM ... WHERE ...` of `select` with column qualifiers
  /// preserved (no projection). `count_stats` = false leaves the executor's
  /// scan counters untouched (EXISTS probes).
  Result<OperatorPtr> PlanCandidates(const SelectStmt& select,
                                     const EvalContext* outer,
                                     bool count_stats = true);

  /// Plans the projection/distinct/order/limit tail over `child`. Takes
  /// ownership of the item/order expressions (callers clone from the AST or
  /// pass synthesized rewrites).
  Result<OperatorPtr> PlanTail(std::vector<SelectItem> items, bool distinct,
                               std::vector<OrderItem> order_by,
                               std::optional<int64_t> limit,
                               std::optional<int64_t> offset,
                               OperatorPtr child, const EvalContext* outer);

 private:
  Result<OperatorPtr> PlanTableRef(const TableRef& tr,
                                   const EvalContext* outer);
  Result<OperatorPtr> PlanJoin(const TableRef& tr, const EvalContext* outer);
  Result<OperatorPtr> PlanFromWhere(const SelectStmt& select,
                                    const EvalContext* outer,
                                    bool count_stats);
  Result<OperatorPtr> PlanAggregate(const SelectStmt& select,
                                    OperatorPtr input,
                                    const EvalContext* outer);

  /// Index-assisted access path: row positions matching the indexable
  /// equality/range conjuncts of `where` (callers re-apply the full WHERE);
  /// nullopt when no usable index exists.
  std::optional<std::vector<size_t>> TryIndexPositions(
      const std::string& table_name, const std::string& visible_alias,
      const Expr& where);

  Executor* executor_;
};

}  // namespace prefsql
