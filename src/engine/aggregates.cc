#include "engine/aggregates.h"

namespace prefsql {

Result<AggregateKind> AggregateKindFromName(const std::string& lower_name,
                                            bool star_arg) {
  if (lower_name == "count") {
    return star_arg ? AggregateKind::kCountStar : AggregateKind::kCount;
  }
  if (star_arg) {
    return Status::InvalidArgument("'*' is only valid in COUNT(*)");
  }
  if (lower_name == "sum") return AggregateKind::kSum;
  if (lower_name == "avg") return AggregateKind::kAvg;
  if (lower_name == "min") return AggregateKind::kMin;
  if (lower_name == "max") return AggregateKind::kMax;
  return Status::InvalidArgument("unknown aggregate: " + lower_name);
}

Status AggregateAccumulator::Add(const Value& v) {
  if (kind_ == AggregateKind::kCountStar) {
    ++count_;
    return Status::OK();
  }
  if (v.is_null()) return Status::OK();
  if (distinct_) {
    if (!seen_.insert(v).second) return Status::OK();
  }
  switch (kind_) {
    case AggregateKind::kCount:
      ++count_;
      return Status::OK();
    case AggregateKind::kSum:
    case AggregateKind::kAvg: {
      auto n = v.ToNumeric();
      if (!n) {
        return Status::InvalidArgument("SUM/AVG requires numeric input, got '" +
                                       v.ToString() + "'");
      }
      if (v.type() != ValueType::kInt) sum_is_int_ = false;
      isum_ += v.type() == ValueType::kInt ? v.AsInt() : 0;
      sum_ += *n;
      ++count_;
      return Status::OK();
    }
    case AggregateKind::kMin:
      if (min_.is_null() || Value::Compare(v, min_) < 0) min_ = v;
      ++count_;
      return Status::OK();
    case AggregateKind::kMax:
      if (max_.is_null() || Value::Compare(v, max_) > 0) max_ = v;
      ++count_;
      return Status::OK();
    default:
      return Status::Internal("unreachable");
  }
}

Value AggregateAccumulator::Finish() const {
  switch (kind_) {
    case AggregateKind::kCountStar:
    case AggregateKind::kCount:
      return Value::Int(count_);
    case AggregateKind::kSum:
      if (count_ == 0) return Value::Null();
      return sum_is_int_ ? Value::Int(isum_) : Value::Double(sum_);
    case AggregateKind::kAvg:
      if (count_ == 0) return Value::Null();
      return Value::Double(sum_ / static_cast<double>(count_));
    case AggregateKind::kMin:
      return count_ == 0 ? Value::Null() : min_;
    case AggregateKind::kMax:
      return count_ == 0 ? Value::Null() : max_;
  }
  return Value::Null();
}

}  // namespace prefsql
