#include "engine/planner.h"

#include <algorithm>
#include <unordered_map>

#include "engine/aggregates.h"
#include "engine/executor.h"
#include "engine/operators/aggregate.h"
#include "engine/operators/filter.h"
#include "engine/operators/join.h"
#include "engine/operators/project.h"
#include "engine/operators/scan.h"
#include "engine/operators/sort.h"
#include "sql/printer.h"
#include "util/string_util.h"

namespace prefsql {
namespace {

// Derives an output column name for a select item without alias.
std::string DeriveColumnName(const Expr& e, size_t position) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      return e.column;
    case ExprKind::kFunction:
      if (!e.args.empty() && e.args[0]->kind == ExprKind::kColumnRef) {
        return ToUpper(e.function_name) + "(" + e.args[0]->column + ")";
      }
      return ToUpper(e.function_name);
    case ExprKind::kLiteral:
      return e.literal.ToString();
    default: {
      std::string text = ExprToSql(e);
      if (text.size() <= 32) return text;
      return "col" + std::to_string(position + 1);
    }
  }
}

// Extracts equi-join key pairs from an ON conjunction; non-extractable
// conjuncts land in `residual`.
void ExtractEquiKeys(const Expr& on, const Schema& left, const Schema& right,
                     std::vector<std::pair<size_t, size_t>>* keys,
                     std::vector<const Expr*>* residual) {
  if (on.kind == ExprKind::kBinary && on.binary_op == BinaryOp::kAnd) {
    ExtractEquiKeys(*on.left, left, right, keys, residual);
    ExtractEquiKeys(*on.right, left, right, keys, residual);
    return;
  }
  if (on.kind == ExprKind::kBinary && on.binary_op == BinaryOp::kEq &&
      on.left->kind == ExprKind::kColumnRef &&
      on.right->kind == ExprKind::kColumnRef) {
    auto l_in_left = left.TryResolve(on.left->qualifier, on.left->column);
    auto r_in_right = right.TryResolve(on.right->qualifier, on.right->column);
    if (l_in_left && r_in_right) {
      keys->emplace_back(*l_in_left, *r_in_right);
      return;
    }
    auto l_in_right = right.TryResolve(on.left->qualifier, on.left->column);
    auto r_in_left = left.TryResolve(on.right->qualifier, on.right->column);
    if (l_in_right && r_in_left) {
      keys->emplace_back(*r_in_left, *l_in_right);
      return;
    }
  }
  residual->push_back(&on);
}

// Collects top-level `column = literal` conjuncts of a predicate. Columns
// must be unqualified or qualified with `alias`.
void CollectEqualityConjuncts(
    const Expr& e, const std::string& alias,
    std::vector<std::pair<std::string, const Value*>>* out) {
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kAnd) {
    CollectEqualityConjuncts(*e.left, alias, out);
    CollectEqualityConjuncts(*e.right, alias, out);
    return;
  }
  if (e.kind != ExprKind::kBinary || e.binary_op != BinaryOp::kEq) return;
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  if (e.left->kind == ExprKind::kColumnRef &&
      e.right->kind == ExprKind::kLiteral) {
    col = e.left.get();
    lit = e.right.get();
  } else if (e.right->kind == ExprKind::kColumnRef &&
             e.left->kind == ExprKind::kLiteral) {
    col = e.right.get();
    lit = e.left.get();
  } else {
    return;
  }
  if (!col->qualifier.empty() && !EqualsIgnoreCase(col->qualifier, alias)) {
    return;
  }
  out->emplace_back(col->column, &lit->literal);
}

// Inclusive over-approximated range bounds per column name. Callers re-apply
// the full WHERE, so widening (inclusive bounds, ignored conjuncts) is safe.
struct RangeBounds {
  const Value* lo = nullptr;
  const Value* hi = nullptr;
};

void TightenLo(RangeBounds* b, const Value* v) {
  if (b->lo == nullptr || Value::Compare(*v, *b->lo) > 0) b->lo = v;
}

void TightenHi(RangeBounds* b, const Value* v) {
  if (b->hi == nullptr || Value::Compare(*v, *b->hi) < 0) b->hi = v;
}

void CollectRangeConjuncts(
    const Expr& e, const std::string& alias,
    std::unordered_map<std::string, RangeBounds>* out) {
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kAnd) {
    CollectRangeConjuncts(*e.left, alias, out);
    CollectRangeConjuncts(*e.right, alias, out);
    return;
  }
  auto column_ok = [&](const Expr& col) {
    return col.kind == ExprKind::kColumnRef &&
           (col.qualifier.empty() || EqualsIgnoreCase(col.qualifier, alias));
  };
  if (e.kind == ExprKind::kBetween && !e.negated && e.left != nullptr &&
      column_ok(*e.left) && e.lo != nullptr &&
      e.lo->kind == ExprKind::kLiteral && e.hi != nullptr &&
      e.hi->kind == ExprKind::kLiteral) {
    RangeBounds& b = (*out)[ToLower(e.left->column)];
    TightenLo(&b, &e.lo->literal);
    TightenHi(&b, &e.hi->literal);
    return;
  }
  if (e.kind != ExprKind::kBinary) return;
  bool lower_bound;  // does the comparison bound the column from below?
  const Expr *col, *lit;
  switch (e.binary_op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      col = e.left.get();
      lit = e.right.get();
      lower_bound = false;
      break;
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      col = e.left.get();
      lit = e.right.get();
      lower_bound = true;
      break;
    default:
      return;
  }
  // literal OP column: flip the bound direction.
  if (col->kind == ExprKind::kLiteral && lit->kind == ExprKind::kColumnRef) {
    std::swap(col, lit);
    lower_bound = !lower_bound;
  }
  if (col->kind != ExprKind::kColumnRef || lit->kind != ExprKind::kLiteral ||
      !column_ok(*col)) {
    return;
  }
  RangeBounds& b = (*out)[ToLower(col->column)];
  if (lower_bound) {
    TightenLo(&b, &lit->literal);
  } else {
    TightenHi(&b, &lit->literal);
  }
}

// Splits a predicate into its top-level AND conjuncts.
void FlattenConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kAnd) {
    FlattenConjuncts(*e.left, out);
    FlattenConjuncts(*e.right, out);
    return;
  }
  out->push_back(&e);
}

// Collects the column references of `e`; returns false when the expression
// contains a subquery (whose correlated references are invisible here).
bool CollectRefsNoSubquery(const Expr& e, std::vector<const Expr*>* refs) {
  if (e.subquery != nullptr) return false;
  if (e.kind == ExprKind::kColumnRef) {
    refs->push_back(&e);
    return true;
  }
  auto walk = [&](const ExprPtr& p) {
    return p == nullptr || CollectRefsNoSubquery(*p, refs);
  };
  if (!walk(e.left) || !walk(e.right) || !walk(e.lo) || !walk(e.hi) ||
      !walk(e.case_else)) {
    return false;
  }
  for (const auto& a : e.args) {
    if (!CollectRefsNoSubquery(*a, refs)) return false;
  }
  for (const auto& item : e.in_list) {
    if (!CollectRefsNoSubquery(*item, refs)) return false;
  }
  for (const auto& cw : e.case_whens) {
    if (!CollectRefsNoSubquery(*cw.when, refs) ||
        !CollectRefsNoSubquery(*cw.then, refs)) {
      return false;
    }
  }
  return true;
}

// True when planning the table ref would execute a subquery (planning twice
// for a rejected pushdown attempt must stay side-effect free).
bool RefContainsSubquery(const TableRef& tr) {
  switch (tr.kind) {
    case TableRef::Kind::kTable:
      return false;
    case TableRef::Kind::kSubquery:
      return true;
    case TableRef::Kind::kJoin:
      return RefContainsSubquery(*tr.join_left) ||
             RefContainsSubquery(*tr.join_right);
  }
  return true;
}

std::vector<SelectItem> CloneItems(const std::vector<SelectItem>& items) {
  std::vector<SelectItem> out;
  out.reserve(items.size());
  for (const auto& item : items) out.push_back({item.expr->Clone(), item.alias});
  return out;
}

std::vector<OrderItem> CloneOrder(const std::vector<OrderItem>& order_by) {
  std::vector<OrderItem> out;
  out.reserve(order_by.size());
  for (const auto& oi : order_by) out.push_back({oi.expr->Clone(), oi.ascending});
  return out;
}

// Collects distinct aggregate calls in an expression tree.
void CollectAggregates(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kFunction && IsAggregateFunction(e.function_name)) {
    for (const Expr* seen : *out) {
      if (ExprStructurallyEqual(*seen, e)) return;
    }
    out->push_back(&e);
    return;  // aggregates cannot nest
  }
  auto walk = [&](const ExprPtr& p) {
    if (p) CollectAggregates(*p, out);
  };
  walk(e.left);
  walk(e.right);
  walk(e.lo);
  walk(e.hi);
  walk(e.case_else);
  for (const auto& a : e.args) CollectAggregates(*a, out);
  for (const auto& item : e.in_list) CollectAggregates(*item, out);
  for (const auto& cw : e.case_whens) {
    CollectAggregates(*cw.when, out);
    CollectAggregates(*cw.then, out);
  }
}

// Rewrites `e`, replacing group-by expressions and aggregate calls with
// references into the synthetic per-group schema.
ExprPtr RewriteForGroups(const Expr& e, const std::vector<ExprPtr>& group_by,
                         const std::vector<std::string>& group_names,
                         const std::vector<const Expr*>& aggs,
                         const std::vector<std::string>& agg_names) {
  for (size_t i = 0; i < group_by.size(); ++i) {
    if (ExprStructurallyEqual(*group_by[i], e)) {
      return Expr::MakeColumn("", group_names[i]);
    }
  }
  for (size_t j = 0; j < aggs.size(); ++j) {
    if (ExprStructurallyEqual(*aggs[j], e)) {
      return Expr::MakeColumn("", agg_names[j]);
    }
  }
  ExprPtr out = e.Clone();
  auto rewrite = [&](ExprPtr& p) {
    if (p) p = RewriteForGroups(*p, group_by, group_names, aggs, agg_names);
  };
  rewrite(out->left);
  rewrite(out->right);
  rewrite(out->lo);
  rewrite(out->hi);
  rewrite(out->case_else);
  for (auto& a : out->args) {
    a = RewriteForGroups(*a, group_by, group_names, aggs, agg_names);
  }
  for (auto& item : out->in_list) {
    item = RewriteForGroups(*item, group_by, group_names, aggs, agg_names);
  }
  for (auto& cw : out->case_whens) {
    cw.when = RewriteForGroups(*cw.when, group_by, group_names, aggs, agg_names);
    cw.then = RewriteForGroups(*cw.then, group_by, group_names, aggs, agg_names);
  }
  return out;
}

}  // namespace

// ===========================================================================
// SELECT planning
// ===========================================================================

Result<OperatorPtr> Planner::PlanSelect(const SelectStmt& select,
                                        const EvalContext* outer) {
  if (select.IsPreferenceQuery()) {
    return Status::InvalidArgument(
        "PREFERRING queries must go through the Preference SQL layer "
        "(prefsql::Connection), not the plain engine");
  }

  OperatorPtr input;
  if (select.from.empty()) {
    // SELECT <exprs>: one synthetic empty row.
    input = std::make_unique<OneRowOperator>();
    if (select.where != nullptr) {
      input = std::make_unique<FilterOperator>(
          std::move(input), select.where.get(), outer, executor_);
    }
  } else {
    PSQL_ASSIGN_OR_RETURN(input,
                          PlanFromWhere(select, outer, /*count_stats=*/true));
    bool has_aggregates =
        !select.group_by.empty() || select.having != nullptr;
    if (!has_aggregates) {
      for (const auto& item : select.items) {
        if (ContainsAggregate(*item.expr)) {
          has_aggregates = true;
          break;
        }
      }
    }
    if (has_aggregates) {
      return PlanAggregate(select, std::move(input), outer);
    }
  }
  return PlanTail(CloneItems(select.items), select.distinct,
                  CloneOrder(select.order_by), select.limit, select.offset,
                  std::move(input), outer);
}

Result<OperatorPtr> Planner::PlanCandidates(const SelectStmt& select,
                                            const EvalContext* outer,
                                            bool count_stats,
                                            const PreferencePushdown* pushdown,
                                            PushdownReport* report) {
  if (select.from.empty()) {
    return Status::InvalidArgument("preference query requires a FROM clause");
  }
  if (pushdown != nullptr) {
    PSQL_ASSIGN_OR_RETURN(
        auto pushed,
        TryPlanPushdown(select, outer, count_stats, *pushdown, report));
    if (pushed) return std::move(*pushed);
  }
  return PlanFromWhere(select, outer, count_stats);
}

// ===========================================================================
// FROM / WHERE (access paths)
// ===========================================================================

Result<OperatorPtr> Planner::PlanTableRef(const TableRef& tr,
                                          const EvalContext* outer) {
  switch (tr.kind) {
    case TableRef::Kind::kTable: {
      std::string visible = tr.alias.empty() ? tr.table_name : tr.alias;
      Catalog* catalog = executor_->catalog();
      if (catalog->HasTable(tr.table_name)) {
        PSQL_ASSIGN_OR_RETURN(Table * table, catalog->GetTable(tr.table_name));
        // Scan the version heap at the statement's snapshot; the slot bound
        // is the heap size that snapshot's table version sealed, so rows a
        // concurrent writer appends later are out of range by construction.
        uint64_t snap = AmbientSnapshotOr(table->epochs().current());
        return OperatorPtr(std::make_unique<HeapScanOperator>(
            table->schema().WithQualifier(visible), &table->heap(),
            table->HeapSizeAt(snap), snap, executor_->mvcc_counters()));
      }
      if (catalog->HasView(tr.table_name)) {
        PSQL_ASSIGN_OR_RETURN(auto materialized,
                              executor_->MaterializeViewCached(tr.table_name));
        return OperatorPtr(std::make_unique<SeqScanOperator>(
            materialized->schema().WithQualifier(visible),
            &materialized->rows(), materialized));
      }
      return Status::NotFound("no table or view '" + tr.table_name + "'");
    }
    case TableRef::Kind::kSubquery: {
      PSQL_ASSIGN_OR_RETURN(ResultTable rt,
                            executor_->ExecuteSelect(*tr.subquery, outer));
      Schema schema = rt.schema().WithQualifier(tr.alias);
      return OperatorPtr(std::make_unique<SeqScanOperator>(std::move(schema),
                                                           std::move(rt)));
    }
    case TableRef::Kind::kJoin:
      return PlanJoin(tr, outer);
  }
  return Status::Internal("unreachable table ref kind");
}

Result<OperatorPtr> Planner::PlanJoin(const TableRef& tr,
                                      const EvalContext* outer) {
  PSQL_ASSIGN_OR_RETURN(OperatorPtr left, PlanTableRef(*tr.join_left, outer));
  PSQL_ASSIGN_OR_RETURN(OperatorPtr right,
                        PlanTableRef(*tr.join_right, outer));
  bool left_join = tr.join_type == TableRef::JoinType::kLeft;

  std::vector<std::pair<size_t, size_t>> keys;
  std::vector<const Expr*> residual;
  if (tr.join_on != nullptr) {
    ExtractEquiKeys(*tr.join_on, left->schema(), right->schema(), &keys,
                    &residual);
  }
  if (!keys.empty()) {
    std::vector<size_t> lcols, rcols;
    for (auto& [l, r] : keys) {
      lcols.push_back(l);
      rcols.push_back(r);
    }
    return OperatorPtr(std::make_unique<HashJoinOperator>(
        std::move(left), std::move(right), std::move(lcols), std::move(rcols),
        std::move(residual), left_join, outer, executor_));
  }
  return OperatorPtr(std::make_unique<NestedLoopJoinOperator>(
      std::move(left), std::move(right), tr.join_on.get(), left_join, outer,
      executor_));
}

Result<OperatorPtr> Planner::PlanFromWhere(const SelectStmt& select,
                                           const EvalContext* outer,
                                           bool count_stats) {
  // Index-assisted path: single base-table FROM with a usable index.
  Catalog* catalog = executor_->catalog();
  if (select.where != nullptr && select.from.size() == 1 &&
      select.from[0]->kind == TableRef::Kind::kTable &&
      catalog->HasTable(select.from[0]->table_name)) {
    const std::string& visible = select.from[0]->alias.empty()
                                     ? select.from[0]->table_name
                                     : select.from[0]->alias;
    auto positions = TryIndexPositions(select.from[0]->table_name, visible,
                                       *select.where);
    if (positions) {
      if (count_stats) executor_->CountScan(/*used_index=*/true);
      PSQL_ASSIGN_OR_RETURN(Table * table,
                            catalog->GetTable(select.from[0]->table_name));
      std::sort(positions->begin(), positions->end());
      // Index hits are candidates over all heap slots (dead versions
      // included), so the scan re-checks visibility at the snapshot; slots
      // beyond the snapshot's sealed heap size carry begin > snap and are
      // dropped by the same check.
      uint64_t snap = AmbientSnapshotOr(table->epochs().current());
      OperatorPtr scan = std::make_unique<HeapPositionScanOperator>(
          table->schema().WithQualifier(visible), &table->heap(),
          std::move(*positions), snap, /*check_visibility=*/true,
          executor_->mvcc_counters());
      // Re-apply the full WHERE (residual predicates, over-approximation).
      return OperatorPtr(std::make_unique<FilterOperator>(
          std::move(scan), select.where.get(), outer, executor_));
    }
  }

  // Left-deep cross-product chain over the FROM list (single-source FROMs
  // collapse to their scan/join tree).
  PSQL_ASSIGN_OR_RETURN(OperatorPtr acc, PlanTableRef(*select.from[0], outer));
  for (size_t i = 1; i < select.from.size(); ++i) {
    PSQL_ASSIGN_OR_RETURN(OperatorPtr next,
                          PlanTableRef(*select.from[i], outer));
    acc = std::make_unique<NestedLoopJoinOperator>(
        std::move(acc), std::move(next), nullptr, /*left_join=*/false, outer,
        executor_);
  }
  if (select.where == nullptr) return acc;
  if (count_stats) executor_->CountScan(/*used_index=*/false);
  return OperatorPtr(std::make_unique<FilterOperator>(
      std::move(acc), select.where.get(), outer, executor_));
}

// ===========================================================================
// Algebraic preference pushdown
// ===========================================================================

Result<std::optional<OperatorPtr>> Planner::TryPlanPushdown(
    const SelectStmt& select, const EvalContext* outer, bool count_stats,
    const PreferencePushdown& pushdown, PushdownReport* report) {
  auto reject = [&](const std::string& why) -> std::optional<OperatorPtr> {
    if (report != nullptr) {
      report->pushed = false;
      report->detail = "no pushdown: " + why;
    }
    return std::nullopt;
  };
  if (pushdown.make_prefilter == nullptr || pushdown.pref_columns.empty()) {
    return reject("no bindable preference columns");
  }
  if (select.from.size() != 1 ||
      select.from[0]->kind != TableRef::Kind::kJoin) {
    return reject("FROM is not a single join");
  }
  const TableRef& tr = *select.from[0];
  if (RefContainsSubquery(tr)) {
    return reject("join side contains a subquery");
  }

  // Plan both sides (cheap: scans over tables/views only, checked above).
  PSQL_ASSIGN_OR_RETURN(OperatorPtr left, PlanTableRef(*tr.join_left, outer));
  PSQL_ASSIGN_OR_RETURN(OperatorPtr right,
                        PlanTableRef(*tr.join_right, outer));

  // 1. Every quality column must bind to exactly one side — and to neither
  //    side ambiguously, or the pre-filter and the BMO on top could resolve
  //    the same name differently.
  bool all_left = true, all_right = true;
  for (const auto& [q, c] : pushdown.pref_columns) {
    bool in_left = left->schema().TryResolve(q, c).has_value();
    bool in_right = right->schema().TryResolve(q, c).has_value();
    if (in_left && in_right) {
      return reject("quality column '" + c + "' binds to both join sides");
    }
    all_left &= in_left;
    all_right &= in_right;
  }
  if (!all_left && !all_right) {
    return reject("quality columns do not bind to a single join side");
  }
  const bool pref_on_left = all_left;
  const Schema& side_schema = pref_on_left ? left->schema() : right->schema();
  const Schema& other_schema = pref_on_left ? right->schema() : left->schema();

  // 2. Join shape. Equi-join with no residual conjuncts: tuples sharing the
  //    side's key columns have identical join fates, so a per-key-group
  //    dominance drop is exact. A cross join makes every fate identical.
  //    LEFT JOIN additionally requires the preference side to be preserved
  //    (the left side), or null-padding changes the fate argument.
  std::vector<std::pair<size_t, size_t>> keys;
  std::vector<size_t> partition_cols;
  const char* join_kind = "cross";
  bool left_join = tr.join_type == TableRef::JoinType::kLeft;
  if (tr.join_on != nullptr) {
    std::vector<const Expr*> residual;
    ExtractEquiKeys(*tr.join_on, left->schema(), right->schema(), &keys,
                    &residual);
    if (!residual.empty()) {
      return reject("join condition has non-equi conjuncts");
    }
    if (keys.empty()) return reject("join condition yields no equi keys");
    for (const auto& [l, r] : keys) {
      partition_cols.push_back(pref_on_left ? l : r);
    }
    join_kind = "hash";
  } else if (left_join) {
    return reject("LEFT JOIN without ON");
  }
  if (left_join && !pref_on_left) {
    return reject("preference side is not preserved by the LEFT JOIN");
  }

  // 3. GROUPING columns on the preference side further partition the
  //    pre-filter (per-group maxima must survive); other-side GROUPING
  //    columns never split same-fate side tuples.
  for (const std::string& g : pushdown.grouping) {
    bool in_side = side_schema.TryResolve("", g).has_value();
    bool in_other = other_schema.TryResolve("", g).has_value();
    if (in_side && in_other) {
      return reject("GROUPING column '" + g + "' binds to both join sides");
    }
    if (!in_side && !in_other) {
      return reject("GROUPING column '" + g + "' does not bind");
    }
    if (in_side) partition_cols.push_back(*side_schema.TryResolve("", g));
  }
  std::sort(partition_cols.begin(), partition_cols.end());
  partition_cols.erase(
      std::unique(partition_cols.begin(), partition_cols.end()),
      partition_cols.end());

  // 4. WHERE conjuncts must each bind wholly to one side. Pref-side
  //    conjuncts move below the pre-filter (a dominator filtered away later
  //    would make the drop of its victims unsound); the rest stays above
  //    the join. A conjunct straddling both sides rules the pushdown out.
  std::vector<const Expr*> below, above;
  if (select.where != nullptr) {
    std::vector<const Expr*> conjuncts;
    FlattenConjuncts(*select.where, &conjuncts);
    for (const Expr* conjunct : conjuncts) {
      std::vector<const Expr*> refs;
      if (!CollectRefsNoSubquery(*conjunct, &refs)) {
        return reject("WHERE conjunct contains a subquery");
      }
      bool any_side = false, any_other = false;
      for (const Expr* ref : refs) {
        bool in_side =
            side_schema.TryResolve(ref->qualifier, ref->column).has_value();
        bool in_other =
            other_schema.TryResolve(ref->qualifier, ref->column).has_value();
        if (in_side && in_other) {
          return reject("WHERE column '" + ref->column +
                        "' binds to both join sides");
        }
        any_side |= in_side;
        any_other |= in_other;
        if (!in_side && !in_other) {
          return reject("WHERE column '" + ref->column + "' does not bind");
        }
      }
      if (any_side && any_other) {
        return reject("WHERE conjunct straddles the join");
      }
      (any_side ? below : above).push_back(conjunct);
    }
  }

  // Assemble: side scan -> [pref-side filter] -> semi-skyline pre-filter ->
  // join -> [remaining filter]. The BMO block on top (built by the caller)
  // re-runs the full dominance test, so the pre-filter only ever *reduces*
  // the candidate stream.
  auto conjunction = [](const std::vector<const Expr*>& parts) {
    std::vector<ExprPtr> clones;
    clones.reserve(parts.size());
    for (const Expr* p : parts) clones.push_back(p->Clone());
    return Expr::MakeConjunction(std::move(clones));
  };
  OperatorPtr side = pref_on_left ? std::move(left) : std::move(right);
  if (!below.empty()) {
    side = std::make_unique<FilterOperator>(std::move(side),
                                            conjunction(below), outer,
                                            executor_);
  }
  std::string detail = "pushdown: bmo prefilter below " +
                       std::string(join_kind) + " join, side=" +
                       (pref_on_left ? "left" : "right") + ", partition_cols=[";
  for (size_t i = 0; i < partition_cols.size(); ++i) {
    if (i > 0) detail += ",";
    detail += side_schema.column(partition_cols[i]).name;
  }
  detail += "]";
  if (!below.empty()) {
    detail += ", " + std::to_string(below.size()) + " conjunct(s) below";
  }
  side = pushdown.make_prefilter(std::move(side), std::move(partition_cols));

  OperatorPtr op;
  if (pref_on_left) {
    left = std::move(side);
  } else {
    right = std::move(side);
  }
  if (!keys.empty()) {
    std::vector<size_t> lcols, rcols;
    for (auto& [l, r] : keys) {
      lcols.push_back(l);
      rcols.push_back(r);
    }
    op = std::make_unique<HashJoinOperator>(
        std::move(left), std::move(right), std::move(lcols), std::move(rcols),
        std::vector<const Expr*>{}, left_join, outer, executor_);
  } else {
    op = std::make_unique<NestedLoopJoinOperator>(
        std::move(left), std::move(right), nullptr, /*left_join=*/false,
        outer, executor_);
  }
  if (!above.empty()) {
    op = std::make_unique<FilterOperator>(std::move(op), conjunction(above),
                                          outer, executor_);
  }
  // Mirror PlanFromWhere: a WHERE-driven scan counts once, never indexed.
  if (count_stats && select.where != nullptr) {
    executor_->CountScan(/*used_index=*/false);
  }
  if (report != nullptr) {
    report->pushed = true;
    report->detail = std::move(detail);
  }
  return std::optional<OperatorPtr>(std::move(op));
}

std::optional<std::vector<size_t>> Planner::TryIndexPositions(
    const std::string& table_name, const std::string& visible_alias,
    const Expr& where) {
  Catalog* catalog = executor_->catalog();
  auto table = catalog->GetTable(table_name);
  if (!table.ok()) return std::nullopt;

  // 1) Equality path: the index with the most key columns fully covered by
  //    `column = literal` conjuncts ("having the right indices available",
  //    §3.2).
  std::vector<std::pair<std::string, const Value*>> equalities;
  CollectEqualityConjuncts(where, visible_alias, &equalities);
  if (!equalities.empty()) {
    auto equality_on = [&](const std::string& name) {
      return FindNameIgnoreCase(equalities, name, [](const auto& eq) {
        return std::string_view(eq.first);
      });
    };
    Index* best = nullptr;
    for (Index* idx : catalog->IndexesOn(table_name)) {
      bool covered = true;
      for (size_t key_col : idx->key_columns()) {
        if (!equality_on((*table)->columns()[key_col].name)) {
          covered = false;
          break;
        }
      }
      if (covered && (best == nullptr || idx->key_columns().size() >
                                             best->key_columns().size())) {
        best = idx;
      }
    }
    if (best != nullptr) {
      Row key;
      for (size_t key_col : best->key_columns()) {
        auto pos = equality_on((*table)->columns()[key_col].name);
        key.push_back(*equalities[*pos].second);
      }
      return best->Lookup(key);
    }
  }

  // 2) Range path: a single-column index whose column has at least one
  //    comparison/BETWEEN bound. Prefer both-sided ranges; tie-break by
  //    index name for determinism.
  std::unordered_map<std::string, RangeBounds> bounds;
  CollectRangeConjuncts(where, visible_alias, &bounds);
  if (bounds.empty()) return std::nullopt;
  Index* best_range = nullptr;
  int best_sides = 0;
  for (Index* idx : catalog->IndexesOn(table_name)) {
    if (idx->key_columns().size() != 1) continue;
    const std::string& name = (*table)->columns()[idx->key_columns()[0]].name;
    auto it = bounds.find(ToLower(name));
    if (it == bounds.end()) continue;
    int sides = (it->second.lo != nullptr ? 1 : 0) +
                (it->second.hi != nullptr ? 1 : 0);
    if (sides > best_sides ||
        (sides == best_sides && best_range != nullptr &&
         idx->name() < best_range->name())) {
      best_range = idx;
      best_sides = sides;
    }
  }
  if (best_range == nullptr) return std::nullopt;
  const std::string& name =
      (*table)->columns()[best_range->key_columns()[0]].name;
  const RangeBounds& b = bounds.at(ToLower(name));
  return best_range->RangeLookupBounds(b.lo, b.hi);
}

// ===========================================================================
// Projection tail
// ===========================================================================

Result<OperatorPtr> Planner::PlanTail(std::vector<SelectItem> items,
                                      bool distinct,
                                      std::vector<OrderItem> order_by,
                                      std::optional<int64_t> limit,
                                      std::optional<int64_t> offset,
                                      OperatorPtr child,
                                      const EvalContext* outer) {
  const Schema& in_schema = child->schema();

  // Expand stars and derive the output schema.
  std::vector<ExprPtr> exprs;
  std::vector<ColumnInfo> out_cols;
  for (size_t i = 0; i < items.size(); ++i) {
    Expr& e = *items[i].expr;
    if (e.kind == ExprKind::kStar) {
      for (size_t c = 0; c < in_schema.num_columns(); ++c) {
        const ColumnInfo& ci = in_schema.column(c);
        if (!e.qualifier.empty() &&
            !EqualsIgnoreCase(e.qualifier, ci.qualifier)) {
          continue;
        }
        exprs.push_back(Expr::MakeColumn(ci.qualifier, ci.name));
        out_cols.push_back({"", ci.name});
      }
      continue;
    }
    std::string name =
        !items[i].alias.empty() ? items[i].alias : DeriveColumnName(e, i);
    exprs.push_back(std::move(items[i].expr));
    out_cols.push_back({"", std::move(name)});
  }
  if (out_cols.empty()) {
    return Status::InvalidArgument("empty select list");
  }
  size_t n_visible = out_cols.size();
  Schema visible_schema(out_cols);

  // ORDER BY keys resolve against the output columns (ordinals, aliases)
  // or, failing that, become hidden key columns computed from the input row.
  std::vector<SortKey> sort_keys;
  std::vector<ColumnInfo> all_cols = std::move(out_cols);
  for (size_t k = 0; k < order_by.size(); ++k) {
    const Expr& e = *order_by[k].expr;
    bool asc = order_by[k].ascending;
    // ORDER BY <ordinal>.
    if (e.kind == ExprKind::kLiteral && e.literal.type() == ValueType::kInt) {
      int64_t ord = e.literal.AsInt();
      if (ord < 1 || ord > static_cast<int64_t>(n_visible)) {
        return Status::InvalidArgument("ORDER BY position out of range");
      }
      sort_keys.push_back({static_cast<size_t>(ord - 1), asc});
      continue;
    }
    // ORDER BY <output column / alias>.
    if (e.kind == ExprKind::kColumnRef && e.qualifier.empty()) {
      if (auto pos = visible_schema.TryResolve("", e.column)) {
        sort_keys.push_back({*pos, asc});
        continue;
      }
    }
    // General expression: hidden key column evaluated on the input row.
    // Under DISTINCT this computes the key once per input row rather than
    // once per surviving row — identical results; revisit if a hot query
    // ever pairs DISTINCT with an expensive ORDER BY expression.
    sort_keys.push_back({exprs.size(), asc});
    exprs.push_back(std::move(order_by[k].expr));
    all_cols.push_back({"", "$ord" + std::to_string(k)});
  }
  bool has_hidden = all_cols.size() > n_visible;

  OperatorPtr op = std::make_unique<ProjectOperator>(
      std::move(child), Schema(std::move(all_cols)), std::move(exprs), outer,
      executor_);
  if (distinct) {
    op = std::make_unique<DistinctOperator>(std::move(op), n_visible);
  }
  if (!sort_keys.empty()) {
    op = std::make_unique<SortOperator>(std::move(op), std::move(sort_keys));
  }
  std::optional<int64_t> lim =
      limit && *limit >= 0 ? limit : std::optional<int64_t>();
  std::optional<int64_t> off =
      offset && *offset > 0 ? offset : std::optional<int64_t>();
  if (lim || off) {
    op = std::make_unique<LimitOperator>(std::move(op), lim, off);
  }
  if (has_hidden) {
    op = std::make_unique<PrefixOperator>(std::move(op),
                                          std::move(visible_schema));
  }
  return op;
}

// ===========================================================================
// GROUP BY / aggregation
// ===========================================================================

Result<OperatorPtr> Planner::PlanAggregate(const SelectStmt& select,
                                           OperatorPtr input,
                                           const EvalContext* outer) {
  for (const auto& item : select.items) {
    if (item.expr->kind == ExprKind::kStar) {
      return Status::InvalidArgument("SELECT * cannot be used with GROUP BY");
    }
  }

  // Gather aggregate calls across items, HAVING and ORDER BY.
  std::vector<const Expr*> aggs;
  for (const auto& item : select.items) CollectAggregates(*item.expr, &aggs);
  if (select.having) CollectAggregates(*select.having, &aggs);
  for (const auto& oi : select.order_by) CollectAggregates(*oi.expr, &aggs);

  std::vector<AggregateKind> agg_kinds;
  for (const Expr* a : aggs) {
    bool star = !a->args.empty() && a->args[0]->kind == ExprKind::kStar;
    if (a->args.size() != 1) {
      return Status::InvalidArgument("aggregate " + a->function_name +
                                     " expects exactly one argument");
    }
    PSQL_ASSIGN_OR_RETURN(AggregateKind kind,
                          AggregateKindFromName(a->function_name, star));
    agg_kinds.push_back(kind);
  }

  // Synthetic per-group relation: group key columns, then aggregates.
  std::vector<std::string> group_names, agg_names;
  std::vector<ColumnInfo> cols;
  std::vector<const Expr*> group_ptrs;
  for (size_t i = 0; i < select.group_by.size(); ++i) {
    std::string name;
    if (select.group_by[i]->kind == ExprKind::kColumnRef) {
      name = select.group_by[i]->column;
    } else {
      name = "$g" + std::to_string(i);
    }
    group_names.push_back(name);
    cols.push_back({"", name});
    group_ptrs.push_back(select.group_by[i].get());
  }
  for (size_t j = 0; j < aggs.size(); ++j) {
    agg_names.push_back("$a" + std::to_string(j));
    cols.push_back({"", agg_names.back()});
  }

  OperatorPtr op = std::make_unique<AggregateOperator>(
      std::move(input), Schema(std::move(cols)), std::move(group_ptrs), aggs,
      agg_kinds, outer, executor_);

  if (select.having != nullptr) {
    ExprPtr having = RewriteForGroups(*select.having, select.group_by,
                                      group_names, aggs, agg_names);
    op = std::make_unique<FilterOperator>(std::move(op), std::move(having),
                                          outer, executor_);
  }

  // Rewrite items / ORDER BY against the synthetic schema.
  std::vector<SelectItem> items;
  for (size_t i = 0; i < select.items.size(); ++i) {
    const auto& item = select.items[i];
    SelectItem out;
    out.expr = RewriteForGroups(*item.expr, select.group_by, group_names,
                                aggs, agg_names);
    out.alias =
        !item.alias.empty() ? item.alias : DeriveColumnName(*item.expr, i);
    items.push_back(std::move(out));
  }
  std::vector<OrderItem> order_by;
  for (const auto& oi : select.order_by) {
    order_by.push_back({RewriteForGroups(*oi.expr, select.group_by,
                                         group_names, aggs, agg_names),
                        oi.ascending});
  }

  return PlanTail(std::move(items), select.distinct, std::move(order_by),
                  select.limit, select.offset, std::move(op), outer);
}

}  // namespace prefsql
