// CSV import/export: load real datasets into tables and dump query results,
// so the library is usable beyond the built-in generators (and so the
// benchmarks can be re-run against external data).

#pragma once

#include <string>

#include "engine/database.h"
#include "types/result_table.h"
#include "util/status.h"

namespace prefsql {

/// RFC-4180-style options (subset): comma separator, '"' quoting with ""
/// escapes, optional header row.
struct CsvOptions {
  char separator = ',';
  bool has_header = true;
};

/// Parses CSV text into rows of TEXT/INT/DOUBLE values (numeric-looking
/// fields become numbers, empty unquoted fields become NULL).
Result<ResultTable> ParseCsv(const std::string& text,
                             const CsvOptions& options = {});

/// Imports CSV text into `table`. If the table does not exist it is created
/// with column names from the header (or c0, c1, ... without one); column
/// types are inferred from the first data row (INTEGER / DOUBLE / TEXT).
/// Returns the number of inserted rows.
Result<size_t> ImportCsv(Database& db, const std::string& table,
                         const std::string& text,
                         const CsvOptions& options = {});

/// Renders a result table as CSV (header + rows; quotes where needed).
std::string ToCsv(const ResultTable& table, const CsvOptions& options = {});

/// File variants.
Result<size_t> ImportCsvFile(Database& db, const std::string& table,
                             const std::string& path,
                             const CsvOptions& options = {});
Status ExportCsvFile(const ResultTable& table, const std::string& path,
                     const CsvOptions& options = {});

}  // namespace prefsql
