#include "engine/evaluator.h"

#include <cmath>

#include "types/date.h"
#include "util/string_util.h"

namespace prefsql {
namespace {

Value BoolOrNull(std::optional<bool> b) {
  if (!b) return Value::Null();
  return Value::Bool(*b);
}

// Resolves a column reference against the scope chain (innermost first).
Result<Value> ResolveColumn(const Expr& e, const EvalContext& ctx) {
  for (const EvalContext* scope = &ctx; scope != nullptr;
       scope = scope->outer) {
    if (scope->schema == nullptr) continue;
    size_t idx = 0;
    switch (scope->schema->ResolveScoped(e.qualifier, e.column, &idx)) {
      case Schema::ResolveOutcome::kFound:
        return (*scope->row)[idx];
      case Schema::ResolveOutcome::kAmbiguous:
        return Status::InvalidArgument(
            "ambiguous column: " +
            (e.qualifier.empty() ? e.column : e.qualifier + "." + e.column));
      case Schema::ResolveOutcome::kNotFound:
        break;
    }
  }
  return Status::InvalidArgument(
      "unknown column: " +
      (e.qualifier.empty() ? e.column : e.qualifier + "." + e.column));
}

Result<Value> EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  // Integer arithmetic stays integral except for division by non-divisor.
  bool both_int =
      l.type() == ValueType::kInt && r.type() == ValueType::kInt;
  auto ln = l.ToNumeric(), rn = r.ToNumeric();
  if (!ln || !rn) {
    // Dynamic typing, SQLite-flavored: arithmetic on a non-numeric operand
    // yields NULL rather than an error. The preference rewriter relies on
    // this (COALESCE(attr - target, worst) ranks garbage values worst, the
    // same way the native Score() functions do).
    return Value::Null();
  }
  switch (op) {
    case BinaryOp::kAdd:
      if (both_int) return Value::Int(l.AsInt() + r.AsInt());
      return Value::Double(*ln + *rn);
    case BinaryOp::kSub:
      if (both_int) return Value::Int(l.AsInt() - r.AsInt());
      return Value::Double(*ln - *rn);
    case BinaryOp::kMul:
      if (both_int) return Value::Int(l.AsInt() * r.AsInt());
      return Value::Double(*ln * *rn);
    case BinaryOp::kDiv:
      if (*rn == 0.0) return Value::Null();  // SQL: division by zero -> NULL
      if (both_int && l.AsInt() % r.AsInt() == 0) {
        return Value::Int(l.AsInt() / r.AsInt());
      }
      return Value::Double(*ln / *rn);
    case BinaryOp::kMod:
      if (*rn == 0.0) return Value::Null();
      if (both_int) return Value::Int(l.AsInt() % r.AsInt());
      return Value::Double(std::fmod(*ln, *rn));
    default:
      return Status::Internal("not an arithmetic operator");
  }
}

Result<Value> EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  switch (op) {
    case BinaryOp::kEq:
      return BoolOrNull(l.SqlEquals(r));
    case BinaryOp::kNe: {
      auto eq = l.SqlEquals(r);
      if (!eq) return Value::Null();
      return Value::Bool(!*eq);
    }
    case BinaryOp::kLt:
      return BoolOrNull(l.SqlLess(r));
    case BinaryOp::kGt:
      return BoolOrNull(r.SqlLess(l));
    case BinaryOp::kLe: {
      auto gt = r.SqlLess(l);
      if (!gt) return Value::Null();
      return Value::Bool(!*gt);
    }
    case BinaryOp::kGe: {
      auto lt = l.SqlLess(r);
      if (!lt) return Value::Null();
      return Value::Bool(!*lt);
    }
    default:
      return Status::Internal("not a comparison operator");
  }
}

std::optional<bool> AsTruth(const Value& v) {
  if (v.is_null()) return std::nullopt;
  if (v.type() == ValueType::kBool) return v.AsBool();
  if (auto n = v.ToNumeric()) return *n != 0.0;
  return std::nullopt;
}

Result<Value> EvalScalarFunction(const Expr& e, const EvalContext& ctx,
                                 std::vector<Value> args) {
  const std::string& f = e.function_name;
  auto need = [&](size_t n) -> Status {
    if (args.size() == n) return Status::OK();
    return Status::InvalidArgument("function " + f + " expects " +
                                   std::to_string(n) + " argument(s)");
  };
  (void)ctx;
  if (f == "abs") {
    PSQL_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() == ValueType::kInt) {
      return Value::Int(std::llabs(args[0].AsInt()));
    }
    auto n = args[0].ToNumeric();
    if (!n) return Status::InvalidArgument("abs requires a numeric argument");
    return Value::Double(std::fabs(*n));
  }
  if (f == "lower" || f == "upper") {
    PSQL_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() != ValueType::kText) {
      return Status::InvalidArgument(f + " requires a text argument");
    }
    return Value::Text(f == "lower" ? ToLower(args[0].AsText())
                                    : ToUpper(args[0].AsText()));
  }
  if (f == "length") {
    PSQL_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() != ValueType::kText) {
      return Status::InvalidArgument("length requires a text argument");
    }
    return Value::Int(static_cast<int64_t>(args[0].AsText().size()));
  }
  if (f == "coalesce") {
    for (auto& a : args) {
      if (!a.is_null()) return std::move(a);
    }
    return Value::Null();
  }
  if (f == "round") {
    if (args.size() != 1 && args.size() != 2) {
      return Status::InvalidArgument("round expects 1 or 2 arguments");
    }
    if (args[0].is_null()) return Value::Null();
    auto n = args[0].ToNumeric();
    if (!n) return Status::InvalidArgument("round requires numeric argument");
    double scale = 1.0;
    if (args.size() == 2) {
      auto digits = args[1].ToNumeric();
      if (!digits) {
        return Status::InvalidArgument("round digits must be numeric");
      }
      scale = std::pow(10.0, *digits);
    }
    return Value::Double(std::round(*n * scale) / scale);
  }
  if (f == "sqrt") {
    PSQL_RETURN_IF_ERROR(need(1));
    if (args[0].is_null()) return Value::Null();
    auto n = args[0].ToNumeric();
    if (!n || *n < 0) {
      return Status::InvalidArgument("sqrt requires a non-negative number");
    }
    return Value::Double(std::sqrt(*n));
  }
  if (f == "contains") {
    // Scalar twin of the CONTAINS base preference (case-insensitive).
    PSQL_RETURN_IF_ERROR(need(2));
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    if (args[0].type() != ValueType::kText ||
        args[1].type() != ValueType::kText) {
      return Value::Null();  // non-text haystack: no match information
    }
    return Value::Bool(ContainsIgnoreCase(args[0].AsText(), args[1].AsText()));
  }
  if (f == "top" || f == "level" || f == "distance") {
    return Status::InvalidArgument(
        "quality function " + ToUpper(f) +
        "() is only valid in a query with a PREFERRING clause");
  }
  if (IsAggregateFunction(f)) {
    return Status::InvalidArgument("aggregate function " + f +
                                   " is not allowed in this context");
  }
  return Status::InvalidArgument("unknown function: " + f);
}

}  // namespace

bool IsAggregateFunction(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" || name == "min" ||
         name == "max";
}

bool ContainsAggregate(const Expr& e) {
  if (e.kind == ExprKind::kFunction && IsAggregateFunction(e.function_name)) {
    return true;
  }
  auto check = [](const ExprPtr& p) { return p && ContainsAggregate(*p); };
  if (check(e.left) || check(e.right) || check(e.lo) || check(e.hi) ||
      check(e.case_else)) {
    return true;
  }
  for (const auto& a : e.args) {
    if (ContainsAggregate(*a)) return true;
  }
  for (const auto& item : e.in_list) {
    if (ContainsAggregate(*item)) return true;
  }
  for (const auto& cw : e.case_whens) {
    if (ContainsAggregate(*cw.when) || ContainsAggregate(*cw.then)) return true;
  }
  return false;
}

bool SqlLike(const std::string& text, const std::string& pattern) {
  // Iterative matcher with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> Evaluate(const Expr& e, const EvalContext& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      if (e.literal.is_param()) {
        // Parameter holes must be bound before execution; reaching one here
        // means a statement bypassed the binding layer.
        return Status::BindError("unbound statement parameter " +
                                 e.literal.ToString());
      }
      return e.literal;
    case ExprKind::kColumnRef:
      return ResolveColumn(e, ctx);
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is not a scalar expression");
    case ExprKind::kUnary: {
      PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(*e.left, ctx));
      if (e.unary_op == UnaryOp::kNot) {
        auto t = AsTruth(v);
        if (!t) return Value::Null();
        return Value::Bool(!*t);
      }
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kInt) return Value::Int(-v.AsInt());
      auto n = v.ToNumeric();
      if (!n) return Value::Null();  // same coercion rule as binary arithmetic
      return Value::Double(-*n);
    }
    case ExprKind::kBinary: {
      // AND/OR get three-valued short-circuit treatment.
      if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
        PSQL_ASSIGN_OR_RETURN(Value lv, Evaluate(*e.left, ctx));
        auto lt = AsTruth(lv);
        if (e.binary_op == BinaryOp::kAnd) {
          if (lt && !*lt) return Value::Bool(false);
          PSQL_ASSIGN_OR_RETURN(Value rv, Evaluate(*e.right, ctx));
          auto rt = AsTruth(rv);
          if (rt && !*rt) return Value::Bool(false);
          if (!lt || !rt) return Value::Null();
          return Value::Bool(true);
        }
        if (lt && *lt) return Value::Bool(true);
        PSQL_ASSIGN_OR_RETURN(Value rv, Evaluate(*e.right, ctx));
        auto rt = AsTruth(rv);
        if (rt && *rt) return Value::Bool(true);
        if (!lt || !rt) return Value::Null();
        return Value::Bool(false);
      }
      PSQL_ASSIGN_OR_RETURN(Value l, Evaluate(*e.left, ctx));
      PSQL_ASSIGN_OR_RETURN(Value r, Evaluate(*e.right, ctx));
      switch (e.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return EvalArithmetic(e.binary_op, l, r);
        case BinaryOp::kConcat: {
          if (l.is_null() || r.is_null()) return Value::Null();
          return Value::Text(l.ToString() + r.ToString());
        }
        default:
          return EvalComparison(e.binary_op, l, r);
      }
    }
    case ExprKind::kIn: {
      PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(*e.left, ctx));
      if (v.is_null()) return Value::Null();
      bool saw_null = false;
      if (e.subquery) {
        if (ctx.runner == nullptr) {
          return Status::InvalidArgument("subquery not supported here");
        }
        PSQL_ASSIGN_OR_RETURN(ResultTable rt,
                              ctx.runner->RunSubquery(*e.subquery, &ctx));
        if (rt.num_columns() != 1) {
          return Status::InvalidArgument(
              "IN subquery must return exactly one column");
        }
        for (const auto& row : rt.rows()) {
          auto eq = v.SqlEquals(row[0]);
          if (!eq) {
            saw_null = true;
          } else if (*eq) {
            return Value::Bool(!e.negated);
          }
        }
      } else {
        for (const auto& item : e.in_list) {
          PSQL_ASSIGN_OR_RETURN(Value c, Evaluate(*item, ctx));
          auto eq = v.SqlEquals(c);
          if (!eq) {
            saw_null = true;
          } else if (*eq) {
            return Value::Bool(!e.negated);
          }
        }
      }
      if (saw_null) return Value::Null();
      return Value::Bool(e.negated);
    }
    case ExprKind::kBetween: {
      PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(*e.left, ctx));
      PSQL_ASSIGN_OR_RETURN(Value lo, Evaluate(*e.lo, ctx));
      PSQL_ASSIGN_OR_RETURN(Value hi, Evaluate(*e.hi, ctx));
      auto ge_lo = lo.SqlLess(v);   // lo < v
      auto eq_lo = lo.SqlEquals(v);
      auto le_hi = v.SqlLess(hi);   // v < hi
      auto eq_hi = v.SqlEquals(hi);
      if (!ge_lo || !eq_lo || !le_hi || !eq_hi) return Value::Null();
      bool inside = (*ge_lo || *eq_lo) && (*le_hi || *eq_hi);
      return Value::Bool(e.negated ? !inside : inside);
    }
    case ExprKind::kLike: {
      PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(*e.left, ctx));
      PSQL_ASSIGN_OR_RETURN(Value p, Evaluate(*e.right, ctx));
      if (v.is_null() || p.is_null()) return Value::Null();
      if (v.type() != ValueType::kText || p.type() != ValueType::kText) {
        return Status::InvalidArgument("LIKE requires text operands");
      }
      bool m = SqlLike(v.AsText(), p.AsText());
      return Value::Bool(e.negated ? !m : m);
    }
    case ExprKind::kIsNull: {
      PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(*e.left, ctx));
      bool is_null = v.is_null();
      return Value::Bool(e.negated ? !is_null : is_null);
    }
    case ExprKind::kCase: {
      if (e.left) {
        PSQL_ASSIGN_OR_RETURN(Value operand, Evaluate(*e.left, ctx));
        for (const auto& cw : e.case_whens) {
          PSQL_ASSIGN_OR_RETURN(Value w, Evaluate(*cw.when, ctx));
          auto eq = operand.SqlEquals(w);
          if (eq && *eq) return Evaluate(*cw.then, ctx);
        }
      } else {
        for (const auto& cw : e.case_whens) {
          PSQL_ASSIGN_OR_RETURN(Value w, Evaluate(*cw.when, ctx));
          auto t = AsTruth(w);
          if (t && *t) return Evaluate(*cw.then, ctx);
        }
      }
      if (e.case_else) return Evaluate(*e.case_else, ctx);
      return Value::Null();
    }
    case ExprKind::kFunction: {
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) {
        PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(*a, ctx));
        args.push_back(std::move(v));
      }
      return EvalScalarFunction(e, ctx, std::move(args));
    }
    case ExprKind::kExists: {
      if (ctx.runner == nullptr) {
        return Status::InvalidArgument("subquery not supported here");
      }
      PSQL_ASSIGN_OR_RETURN(bool exists,
                            ctx.runner->SubqueryExists(*e.subquery, &ctx));
      return Value::Bool(e.negated ? !exists : exists);
    }
    case ExprKind::kSubquery: {
      if (ctx.runner == nullptr) {
        return Status::InvalidArgument("subquery not supported here");
      }
      PSQL_ASSIGN_OR_RETURN(ResultTable rt,
                            ctx.runner->RunSubquery(*e.subquery, &ctx));
      if (rt.num_columns() != 1) {
        return Status::InvalidArgument(
            "scalar subquery must return exactly one column");
      }
      if (rt.num_rows() == 0) return Value::Null();
      if (rt.num_rows() > 1) {
        return Status::InvalidArgument(
            "scalar subquery returned more than one row");
      }
      return rt.at(0, 0);
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<bool> EvaluatePredicate(const Expr& e, const EvalContext& ctx) {
  PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(e, ctx));
  auto t = AsTruth(v);
  return t && *t;
}

namespace {

// Top-level AND chains split into conjuncts; each conjunct filters the
// selection left-to-right, which is the batch form of the row path's
// short-circuit AND (a row false under conjunct k never evaluates k+1).
void CollectConjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kBinary && e.binary_op == BinaryOp::kAnd &&
      e.left != nullptr && e.right != nullptr) {
    CollectConjuncts(*e.left, out);
    CollectConjuncts(*e.right, out);
    return;
  }
  out->push_back(&e);
}

BinaryOp MirrorComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // kEq / kNe are symmetric
  }
}

// A conjunct shape the batch path can evaluate with one column resolution
// per batch: `col OP literal` (either operand order) or `col IS [NOT]
// NULL`. Anything else — outer-scope references (kNotFound here may resolve
// in an outer scope), ambiguous names, unbound parameters, arbitrary
// expressions — takes the generic per-row path, which raises the identical
// error row mode would.
struct FastConjunct {
  enum class Kind { kGeneric, kColOpLit, kIsNull };
  Kind kind = Kind::kGeneric;
  size_t col = 0;
  BinaryOp op = BinaryOp::kEq;
  const Value* lit = nullptr;
  bool negated = false;  // IS NOT NULL
};

FastConjunct ClassifyConjunct(const Expr& e, const Schema& schema) {
  FastConjunct out;
  if (e.kind == ExprKind::kIsNull && e.left != nullptr &&
      e.left->kind == ExprKind::kColumnRef) {
    size_t idx = 0;
    if (schema.ResolveScoped(e.left->qualifier, e.left->column, &idx) ==
        Schema::ResolveOutcome::kFound) {
      out.kind = FastConjunct::Kind::kIsNull;
      out.col = idx;
      out.negated = e.negated;
    }
    return out;
  }
  if (e.kind != ExprKind::kBinary || e.left == nullptr || e.right == nullptr) {
    return out;
  }
  switch (e.binary_op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      break;
    default:
      return out;
  }
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  bool flipped = false;
  if (e.left->kind == ExprKind::kColumnRef &&
      e.right->kind == ExprKind::kLiteral) {
    col = e.left.get();
    lit = e.right.get();
  } else if (e.left->kind == ExprKind::kLiteral &&
             e.right->kind == ExprKind::kColumnRef) {
    lit = e.left.get();
    col = e.right.get();
    flipped = true;
  } else {
    return out;
  }
  if (lit->literal.is_param()) return out;
  size_t idx = 0;
  if (schema.ResolveScoped(col->qualifier, col->column, &idx) !=
      Schema::ResolveOutcome::kFound) {
    return out;
  }
  out.kind = FastConjunct::Kind::kColOpLit;
  out.col = idx;
  out.lit = &lit->literal;
  out.op = flipped ? MirrorComparisonOp(e.binary_op) : e.binary_op;
  return out;
}

}  // namespace

Status EvaluatePredicateBatch(const Expr& expr, const Schema& schema,
                              RowBatch* batch, const EvalContext* outer,
                              SubqueryRunner* runner) {
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(expr, &conjuncts);
  for (const Expr* c : conjuncts) {
    // Row semantics: once a conjunct filtered every row out, the remaining
    // conjuncts see no rows and evaluate nothing.
    if (batch->sel.empty()) break;
    const FastConjunct fast = ClassifyConjunct(*c, schema);
    size_t kept = 0;
    switch (fast.kind) {
      case FastConjunct::Kind::kColOpLit:
        for (uint32_t idx : batch->sel) {
          PSQL_ASSIGN_OR_RETURN(
              Value v, EvalComparison(fast.op, batch->rows[idx].row()[fast.col],
                                      *fast.lit));
          auto t = AsTruth(v);
          if (t && *t) batch->sel[kept++] = idx;
        }
        break;
      case FastConjunct::Kind::kIsNull:
        for (uint32_t idx : batch->sel) {
          if (batch->rows[idx].row()[fast.col].is_null() != fast.negated) {
            batch->sel[kept++] = idx;
          }
        }
        break;
      case FastConjunct::Kind::kGeneric:
        for (uint32_t idx : batch->sel) {
          EvalContext ctx{&schema, &batch->rows[idx].row(), outer, runner};
          PSQL_ASSIGN_OR_RETURN(bool pass, EvaluatePredicate(*c, ctx));
          if (pass) batch->sel[kept++] = idx;
        }
        break;
    }
    batch->sel.resize(kept);
  }
  return Status::OK();
}

Result<Value> EvaluateConstant(const Expr& e) {
  EvalContext ctx;
  return Evaluate(e, ctx);
}

}  // namespace prefsql
