// Aggregate accumulators for GROUP BY / scalar aggregation.

#pragma once

#include <set>
#include <string>

#include "types/value.h"
#include "util/status.h"

namespace prefsql {

/// Supported aggregate functions.
enum class AggregateKind { kCountStar, kCount, kSum, kAvg, kMin, kMax };

/// Maps a function name + argument shape to its AggregateKind.
Result<AggregateKind> AggregateKindFromName(const std::string& lower_name,
                                            bool star_arg);

/// Streaming accumulator for one aggregate over one group. NULL inputs are
/// skipped (except COUNT(*)); empty input yields COUNT 0 and NULL otherwise.
class AggregateAccumulator {
 public:
  AggregateAccumulator(AggregateKind kind, bool distinct)
      : kind_(kind), distinct_(distinct) {}

  /// Feeds one input value (the evaluated argument; ignored for COUNT(*)).
  Status Add(const Value& v);

  /// Final aggregate value for the group.
  Value Finish() const;

 private:
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const {
      return Value::Compare(a, b) < 0;
    }
  };

  AggregateKind kind_;
  bool distinct_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  bool sum_is_int_ = true;
  int64_t isum_ = 0;
  Value min_, max_;
  std::set<Value, ValueLess> seen_;  // DISTINCT dedup
};

}  // namespace prefsql
