// Statement execution facade. SELECTs compile into a pull-based physical
// operator tree (engine/planner.h + engine/operators/) and stream row views
// instead of materializing every stage; DML and DDL execute here directly.
//
// Views referenced several times inside one statement (the rewriter's Aux
// view appears as A1 and A2) are materialized once per top-level statement
// via a cache.

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/evaluator.h"
#include "engine/operators/operator.h"
#include "engine/operators/scan.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "types/result_table.h"
#include "util/status.h"

namespace prefsql {

/// Executes parsed statements against a catalog.
class Executor : public SubqueryRunner {
 public:
  explicit Executor(Catalog* catalog) : catalog_(catalog) {}

  /// Runs a top-level statement. SELECT returns its result; DML returns a
  /// one-cell table [rows_affected]; DDL returns an empty table.
  Result<ResultTable> ExecuteStatement(const Statement& stmt);

  /// Runs a SELECT: plans the operator tree and drains it (used by the
  /// preference layer which builds ASTs directly).
  Result<ResultTable> ExecuteSelect(const SelectStmt& select,
                                    const EvalContext* outer = nullptr);

  /// Compiles a SELECT into an unopened operator tree without draining it —
  /// the streaming-cursor entry point (core/cursor.h). The tree borrows
  /// from `select` and the catalog; both must outlive it.
  Result<OperatorPtr> PlanSelectOperator(const SelectStmt& select,
                                         const EvalContext* outer = nullptr);

  /// SubqueryRunner: correlated subqueries re-enter the executor with the
  /// outer scope chained.
  Result<ResultTable> RunSubquery(const SelectStmt& select,
                                  const EvalContext* outer) override;

  /// Early-exit EXISTS probe: pulls a single row from the streamed
  /// FROM/WHERE pipeline when the subquery has no grouping/limit machinery.
  Result<bool> SubqueryExists(const SelectStmt& select,
                              const EvalContext* outer) override;

  /// Materializes `FROM ... WHERE ...` of `select`, preserving column
  /// qualifiers (unlike SELECT *). Kept as a thin facade over
  /// Planner::PlanCandidates for callers that need the full relation.
  Result<ResultTable> MaterializeCandidates(const SelectStmt& select);

  /// Inserts all rows of `data` into `table` (column mapping as in INSERT;
  /// empty `columns` = positional). Returns [rows_affected]. Public so the
  /// Preference SQL layer can execute INSERT statements whose SELECT has a
  /// PREFERRING clause (§2.2.5).
  Result<ResultTable> InsertTable(const std::string& table,
                                  const std::vector<std::string>& columns,
                                  const ResultTable& data);

  /// Materializes a view once per top-level statement (planner access path).
  Result<std::shared_ptr<ResultTable>> MaterializeViewCached(
      const std::string& name);

  /// Drops per-statement caches (view materializations). Called by the
  /// Database facade between top-level statements.
  void ClearStatementCache() {
    std::lock_guard<std::mutex> lock(view_cache_mutex_);
    view_cache_.clear();
  }

  Catalog* catalog() { return catalog_; }

  /// What the last DML statement did to its target table, at heap-slot
  /// granularity — the input of the engine's incremental skyline-cache
  /// maintenance (core/engine.cc). Reset at every statement dispatch and by
  /// InsertTable; filled as the mutation proceeds, so after a mid-statement
  /// error it reflects exactly the versions actually stamped (this storage
  /// layer has no rollback — partial effects are sealed and published).
  ///
  /// MVCC shape: slots never move, so the appended versions of an
  /// INSERT/UPDATE are implicit as [heap_before, table->heap_size()), and
  /// `dead` lists the slots end-stamped at `commit_epoch` (DELETE victims
  /// and the superseded old versions of an UPDATE), ascending.
  struct DmlEffect {
    enum class Kind { kNone, kInsert, kDelete, kUpdate };
    Kind kind = Kind::kNone;
    uint64_t table_id = 0;
    uint64_t version_before = 0;  ///< Table::version at statement start
    uint64_t commit_epoch = 0;    ///< epoch this statement committed (0 = none)
    size_t heap_before = 0;       ///< heap slot count at statement start
    std::string table;            ///< target table name
    /// Slots end-stamped by this statement, ascending.
    std::vector<uint32_t> dead;
  };
  const DmlEffect& last_dml() const { return last_dml_; }

  /// Execution counters (monotone per executor; used by tests and benches).
  /// Atomic so concurrent reader sessions of a shared engine can count scans
  /// without synchronization.
  struct Stats {
    std::atomic<uint64_t> index_scans{0};  ///< WHEREs served via an index
    std::atomic<uint64_t> full_scans{0};   ///< WHEREs evaluated by full scan
    MvccScanCounters mvcc;                 ///< visibility filter traffic
    std::atomic<uint64_t> gc_cleared{0};   ///< version payloads reclaimed
  };
  const Stats& stats() const { return stats_; }
  MvccScanCounters* mvcc_counters() { return &stats_.mvcc; }
  void CountGarbageCollected(uint64_t n) {
    stats_.gc_cleared.fetch_add(n, std::memory_order_relaxed);
  }

  /// Records the access-path choice of one planned WHERE (planner only).
  void CountScan(bool used_index) {
    if (used_index) {
      stats_.index_scans.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.full_scans.fetch_add(1, std::memory_order_relaxed);
    }
  }

 private:
  Result<ResultTable> ExecuteInsert(const Statement& stmt);
  Result<ResultTable> ExecuteUpdate(const Statement& stmt);
  Result<ResultTable> ExecuteDelete(const Statement& stmt);

  /// Stamps `last_dml_` with the pre-statement identity of `table`.
  DmlEffect& BeginDml(DmlEffect::Kind kind, const std::string& name,
                      const Table& table);

  Catalog* catalog_;
  DmlEffect last_dml_;
  /// Guards view_cache_ against concurrent reader sessions; entries are
  /// shared_ptr so a concurrent clear never invalidates an in-flight read.
  std::mutex view_cache_mutex_;
  std::unordered_map<std::string, std::shared_ptr<ResultTable>> view_cache_;
  Stats stats_;
};

}  // namespace prefsql
