// Statement execution: SELECT pipeline (FROM/joins, WHERE, GROUP BY/HAVING,
// DISTINCT, ORDER BY, LIMIT) plus DML and DDL.
//
// Everything materializes into ResultTables; base-table scans and view
// materializations are borrowed rather than copied. Views referenced several
// times inside one statement (the rewriter's Aux view appears as A1 and A2)
// are materialized once per top-level statement via a cache.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/evaluator.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "types/result_table.h"
#include "util/status.h"

namespace prefsql {

/// Executes parsed statements against a catalog.
class Executor : public SubqueryRunner {
 public:
  explicit Executor(Catalog* catalog) : catalog_(catalog) {}

  /// Runs a top-level statement. SELECT returns its result; DML returns a
  /// one-cell table [rows_affected]; DDL returns an empty table.
  Result<ResultTable> ExecuteStatement(const Statement& stmt);

  /// Runs a SELECT (used by the preference layer which builds ASTs directly).
  Result<ResultTable> ExecuteSelect(const SelectStmt& select,
                                    const EvalContext* outer = nullptr);

  /// SubqueryRunner: correlated subqueries re-enter the executor with the
  /// outer scope chained.
  Result<ResultTable> RunSubquery(const SelectStmt& select,
                                  const EvalContext* outer) override;

  /// Early-exit EXISTS probe (stops at the first row passing WHERE when the
  /// subquery has no grouping/limit machinery).
  Result<bool> SubqueryExists(const SelectStmt& select,
                              const EvalContext* outer) override;

  /// Materializes `FROM ... WHERE ...` of `select`, preserving column
  /// qualifiers (unlike SELECT *). The Preference SQL layer evaluates
  /// preference attributes and quality functions against this relation.
  Result<ResultTable> MaterializeCandidates(const SelectStmt& select);

  /// Projection/distinct/order/limit pipeline over an explicit input
  /// relation. Public so the Preference SQL layer can project the BMO result
  /// set with the engine's own rules (alias handling, ordinals, ...).
  Result<ResultTable> ProjectRows(const std::vector<SelectItem>& items,
                                  bool distinct,
                                  const std::vector<OrderItem>& order_by,
                                  std::optional<int64_t> limit,
                                  std::optional<int64_t> offset,
                                  const Schema& in_schema,
                                  const std::vector<Row>& in_rows,
                                  const std::vector<uint32_t>& selection) {
    return ProjectCore(items, distinct, order_by, limit, offset, in_schema,
                       in_rows, selection, nullptr);
  }

  /// Inserts all rows of `data` into `table` (column mapping as in INSERT;
  /// empty `columns` = positional). Returns [rows_affected]. Public so the
  /// Preference SQL layer can execute INSERT statements whose SELECT has a
  /// PREFERRING clause (§2.2.5).
  Result<ResultTable> InsertTable(const std::string& table,
                                  const std::vector<std::string>& columns,
                                  const ResultTable& data);

  /// Drops per-statement caches (view materializations). Called by the
  /// Database facade between top-level statements.
  void ClearStatementCache() { view_cache_.clear(); }

  Catalog* catalog() { return catalog_; }

  /// Execution counters (monotone per executor; used by tests and benches).
  struct Stats {
    uint64_t index_scans = 0;  ///< WHERE clauses served via a secondary index
    uint64_t full_scans = 0;   ///< WHERE clauses evaluated by full scan
  };
  const Stats& stats() const { return stats_; }

 private:
  /// A resolved FROM source: schema plus row storage (owned or borrowed).
  struct Source {
    Schema schema;
    std::vector<Row> owned;
    const std::vector<Row>* borrowed = nullptr;
    std::shared_ptr<ResultTable> keepalive;  // pins a cached view
    const std::vector<Row>& data() const {
      return borrowed != nullptr ? *borrowed : owned;
    }
  };

  Result<Source> ResolveTableRef(const TableRef& tr, const EvalContext* outer);
  Result<Source> ResolveFromList(
      const std::vector<std::unique_ptr<TableRef>>& from,
      const EvalContext* outer);
  Result<Source> ExecuteJoin(const TableRef& tr, const EvalContext* outer);

  Result<ResultTable> ProjectCore(const std::vector<SelectItem>& items,
                                  bool distinct,
                                  const std::vector<OrderItem>& order_by,
                                  std::optional<int64_t> limit,
                                  std::optional<int64_t> offset,
                                  const Schema& in_schema,
                                  const std::vector<Row>& in_rows,
                                  const std::vector<uint32_t>& selection,
                                  const EvalContext* outer);
  Result<ResultTable> ProjectGrouped(const SelectStmt& select,
                                     const Source& input,
                                     const std::vector<uint32_t>& selection,
                                     const EvalContext* outer);

  /// Index-assisted scan: if `where` has equality conjuncts covering all
  /// key columns of an index on `table_name`, returns the matching row
  /// positions (callers still re-apply the full WHERE). nullopt = no index.
  std::optional<std::vector<size_t>> TryIndexLookup(
      const std::string& table_name, const std::string& visible_alias,
      const Expr& where);

  /// Computes the post-WHERE selection over a resolved source, using an
  /// index when `from` is a single base table with a matching index.
  Result<std::vector<uint32_t>> ComputeSelection(
      const SelectStmt& select, const Source& input, const EvalContext* outer);

  Result<ResultTable> ExecuteInsert(const Statement& stmt);
  Result<ResultTable> ExecuteUpdate(const Statement& stmt);
  Result<ResultTable> ExecuteDelete(const Statement& stmt);

  Catalog* catalog_;
  std::unordered_map<std::string, std::shared_ptr<ResultTable>> view_cache_;
  Stats stats_;
};

}  // namespace prefsql
