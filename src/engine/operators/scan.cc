#include "engine/operators/scan.h"

namespace prefsql {

SeqScanOperator::SeqScanOperator(Schema schema, const std::vector<Row>* rows,
                                 std::shared_ptr<ResultTable> keepalive)
    : schema_(std::move(schema)),
      rows_(rows),
      keepalive_(std::move(keepalive)) {}

SeqScanOperator::SeqScanOperator(Schema schema, ResultTable owned)
    : schema_(std::move(schema)), owned_(std::move(owned)) {
  rows_ = &owned_.rows();
}

Status SeqScanOperator::Open() {
  pos_ = 0;
  return Status::OK();
}

Result<bool> SeqScanOperator::Next(RowRef* out) {
  if (pos_ >= rows_->size()) return false;
  *out = RowRef::Borrowed(&(*rows_)[pos_++]);
  return true;
}

void SeqScanOperator::Close() {}

PositionScanOperator::PositionScanOperator(Schema schema,
                                           const std::vector<Row>* rows,
                                           std::vector<size_t> positions)
    : schema_(std::move(schema)),
      rows_(rows),
      positions_(std::move(positions)) {}

Status PositionScanOperator::Open() {
  pos_ = 0;
  return Status::OK();
}

Result<bool> PositionScanOperator::Next(RowRef* out) {
  if (pos_ >= positions_.size()) return false;
  *out = RowRef::Borrowed(&(*rows_)[positions_[pos_++]]);
  return true;
}

void PositionScanOperator::Close() {}

Status OneRowOperator::Open() {
  done_ = false;
  return Status::OK();
}

Result<bool> OneRowOperator::Next(RowRef* out) {
  if (done_) return false;
  done_ = true;
  *out = RowRef::Borrowed(&row_);
  return true;
}

}  // namespace prefsql
