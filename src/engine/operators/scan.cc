#include "engine/operators/scan.h"

#include <algorithm>

#include "core/query_context.h"

namespace prefsql {

SeqScanOperator::SeqScanOperator(Schema schema, const std::vector<Row>* rows,
                                 std::shared_ptr<ResultTable> keepalive)
    : schema_(std::move(schema)),
      rows_(rows),
      keepalive_(std::move(keepalive)) {}

SeqScanOperator::SeqScanOperator(Schema schema, ResultTable owned)
    : schema_(std::move(schema)), owned_(std::move(owned)) {
  rows_ = &owned_.rows();
}

Status SeqScanOperator::Open() {
  pos_ = 0;
  return Status::OK();
}

Result<bool> SeqScanOperator::Next(RowRef* out) {
  if (pos_ >= rows_->size()) return false;
  *out = RowRef::Borrowed(&(*rows_)[pos_++]);
  return true;
}

Result<bool> SeqScanOperator::NextBatch(RowBatch* out) {
  out->Clear();
  if (pos_ >= rows_->size()) return false;
  const size_t take = std::min(kRowBatchCapacity, rows_->size() - pos_);
  out->rows.reserve(take);
  out->sel.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out->PushRow(RowRef::Borrowed(&(*rows_)[pos_ + i]));
  }
  pos_ += take;
  return true;
}

void SeqScanOperator::Close() {}

PositionScanOperator::PositionScanOperator(Schema schema,
                                           const std::vector<Row>* rows,
                                           std::vector<size_t> positions)
    : schema_(std::move(schema)),
      rows_(rows),
      positions_(std::move(positions)) {}

Status PositionScanOperator::Open() {
  pos_ = 0;
  return Status::OK();
}

Result<bool> PositionScanOperator::Next(RowRef* out) {
  if (pos_ >= positions_.size()) return false;
  *out = RowRef::Borrowed(&(*rows_)[positions_[pos_++]]);
  return true;
}

Result<bool> PositionScanOperator::NextBatch(RowBatch* out) {
  out->Clear();
  if (pos_ >= positions_.size()) return false;
  const size_t take = std::min(kRowBatchCapacity, positions_.size() - pos_);
  out->rows.reserve(take);
  out->sel.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out->PushRow(RowRef::Borrowed(&(*rows_)[positions_[pos_ + i]]));
  }
  pos_ += take;
  return true;
}

void PositionScanOperator::Close() {}

HeapScanOperator::HeapScanOperator(Schema schema, const RowHeap* heap,
                                   size_t limit, uint64_t snapshot,
                                   MvccScanCounters* counters)
    : schema_(std::move(schema)),
      heap_(heap),
      limit_(limit),
      snapshot_(snapshot),
      counters_(counters) {}

Status HeapScanOperator::Open() {
  pos_ = 0;
  tick_ = 0;
  scanned_ = 0;
  skipped_ = 0;
  return Status::OK();
}

Result<bool> HeapScanOperator::Next(RowRef* out) {
  while (pos_ < limit_) {
    size_t slot = pos_++;
    ++scanned_;
    if (!heap_->VisibleAt(slot, snapshot_)) {
      ++skipped_;
      continue;
    }
    *out = RowRef::Borrowed(&heap_->row(slot));
    return true;
  }
  return false;
}

Result<bool> HeapScanOperator::NextBatch(RowBatch* out) {
  out->Clear();
  // One visibility sweep fills the whole batch. A run of dead versions
  // keeps sweeping (the slot range is sealed, so this terminates) rather
  // than hand back an empty batch; the stride poll keeps a
  // dead-version-heavy sweep interruptible mid-batch.
  while (pos_ < limit_ && out->rows.size() < kRowBatchCapacity) {
    PSQL_RETURN_IF_ERROR(PollInterrupt(&tick_));
    size_t slot = pos_++;
    ++scanned_;
    if (!heap_->VisibleAt(slot, snapshot_)) {
      ++skipped_;
      continue;
    }
    out->PushRow(RowRef::Borrowed(&heap_->row(slot)));
  }
  return !out->rows.empty();
}

void HeapScanOperator::Close() {
  if (counters_ != nullptr && scanned_ > 0) {
    counters_->versions_scanned.fetch_add(scanned_, std::memory_order_relaxed);
    counters_->versions_skipped.fetch_add(skipped_, std::memory_order_relaxed);
    scanned_ = 0;
    skipped_ = 0;
  }
}

HeapPositionScanOperator::HeapPositionScanOperator(
    Schema schema, const RowHeap* heap, std::vector<size_t> positions,
    uint64_t snapshot, bool check_visibility, MvccScanCounters* counters)
    : schema_(std::move(schema)),
      heap_(heap),
      positions_(std::move(positions)),
      snapshot_(snapshot),
      check_visibility_(check_visibility),
      counters_(counters) {}

Status HeapPositionScanOperator::Open() {
  pos_ = 0;
  tick_ = 0;
  scanned_ = 0;
  skipped_ = 0;
  return Status::OK();
}

Result<bool> HeapPositionScanOperator::Next(RowRef* out) {
  while (pos_ < positions_.size()) {
    size_t slot = positions_[pos_++];
    ++scanned_;
    if (check_visibility_ && !heap_->VisibleAt(slot, snapshot_)) {
      ++skipped_;
      continue;
    }
    *out = RowRef::Borrowed(&heap_->row(slot));
    return true;
  }
  return false;
}

Result<bool> HeapPositionScanOperator::NextBatch(RowBatch* out) {
  out->Clear();
  while (pos_ < positions_.size() && out->rows.size() < kRowBatchCapacity) {
    PSQL_RETURN_IF_ERROR(PollInterrupt(&tick_));
    size_t slot = positions_[pos_++];
    ++scanned_;
    if (check_visibility_ && !heap_->VisibleAt(slot, snapshot_)) {
      ++skipped_;
      continue;
    }
    out->PushRow(RowRef::Borrowed(&heap_->row(slot)));
  }
  return !out->rows.empty();
}

void HeapPositionScanOperator::Close() {
  if (counters_ != nullptr && scanned_ > 0) {
    counters_->versions_scanned.fetch_add(scanned_, std::memory_order_relaxed);
    counters_->versions_skipped.fetch_add(skipped_, std::memory_order_relaxed);
    scanned_ = 0;
    skipped_ = 0;
  }
}

Status OneRowOperator::Open() {
  done_ = false;
  return Status::OK();
}

Result<bool> OneRowOperator::Next(RowRef* out) {
  if (done_) return false;
  done_ = true;
  *out = RowRef::Borrowed(&row_);
  return true;
}

Result<bool> OneRowOperator::NextBatch(RowBatch* out) {
  out->Clear();
  if (done_) return false;
  done_ = true;
  out->PushRow(RowRef::Borrowed(&row_));
  return true;
}

}  // namespace prefsql
