#include "engine/operators/operator.h"

#include "core/query_context.h"

namespace prefsql {

Result<bool> PhysicalOperator::NextBatch(RowBatch* out) {
  if (!batch_fallback_recorded_) {
    batch_fallback_recorded_ = true;
    if (QueryContext* ctx = CurrentQueryContext()) {
      ctx->batch_stats().RecordFallback(label());
    }
  }
  out->Clear();
  RowRef ref;
  while (out->rows.size() < kRowBatchCapacity) {
    PSQL_ASSIGN_OR_RETURN(bool more, Next(&ref));
    if (!more) break;
    out->PushRow(std::move(ref));
  }
  return !out->rows.empty();
}

Result<ResultTable> DrainToTable(PhysicalOperator& op) {
  Status open = op.Open();
  if (!open.ok()) {
    op.Close();
    return open;
  }
  std::vector<Row> rows;
  if (BatchModeEnabled()) {
    QueryContext* ctx = CurrentQueryContext();
    RowBatch batch;
    while (true) {
      // One deadline/cancel check per batch (vs the stride-256 row poll of
      // the row loop below) keeps multi-hundred-thousand-row drains
      // interruptible at ~1k-row granularity.
      if (ctx != nullptr) {
        Status interrupt = ctx->CheckInterrupt();
        if (!interrupt.ok()) {
          op.Close();
          return interrupt;
        }
      }
      auto more = op.NextBatch(&batch);
      if (!more.ok()) {
        op.Close();
        return more.status();
      }
      if (!*more) break;
      if (ctx != nullptr) ctx->batch_stats().Record(batch.sel.size());
      for (uint32_t idx : batch.sel) {
        rows.push_back(std::move(batch.rows[idx]).IntoRow());
      }
    }
  } else {
    RowRef ref;
    size_t tick = 0;
    while (true) {
      // Every eager materialization funnels through here (view
      // materialization, rewrite-mode scripts, DML sources); poll the
      // deadline/cancel latch so multi-hundred-thousand-row drains stay
      // interruptible between operator-level polls.
      Status interrupt = PollInterrupt(&tick);
      if (!interrupt.ok()) {
        op.Close();
        return interrupt;
      }
      auto more = op.Next(&ref);
      if (!more.ok()) {
        op.Close();
        return more.status();
      }
      if (!*more) break;
      rows.push_back(std::move(ref).IntoRow());
    }
  }
  op.Close();
  return ResultTable(op.schema(), std::move(rows));
}

}  // namespace prefsql
