#include "engine/operators/operator.h"

namespace prefsql {

Result<ResultTable> DrainToTable(PhysicalOperator& op) {
  Status open = op.Open();
  if (!open.ok()) {
    op.Close();
    return open;
  }
  std::vector<Row> rows;
  RowRef ref;
  while (true) {
    auto more = op.Next(&ref);
    if (!more.ok()) {
      op.Close();
      return more.status();
    }
    if (!*more) break;
    rows.push_back(std::move(ref).IntoRow());
  }
  op.Close();
  return ResultTable(op.schema(), std::move(rows));
}

}  // namespace prefsql
