#include "engine/operators/operator.h"

#include "core/query_context.h"

namespace prefsql {

Result<ResultTable> DrainToTable(PhysicalOperator& op) {
  Status open = op.Open();
  if (!open.ok()) {
    op.Close();
    return open;
  }
  std::vector<Row> rows;
  RowRef ref;
  size_t tick = 0;
  while (true) {
    // Every eager materialization funnels through here (view
    // materialization, rewrite-mode scripts, DML sources); poll the
    // deadline/cancel latch so multi-hundred-thousand-row drains stay
    // interruptible between operator-level polls.
    Status interrupt = PollInterrupt(&tick);
    if (!interrupt.ok()) {
      op.Close();
      return interrupt;
    }
    auto more = op.Next(&ref);
    if (!more.ok()) {
      op.Close();
      return more.status();
    }
    if (!*more) break;
    rows.push_back(std::move(ref).IntoRow());
  }
  op.Close();
  return ResultTable(op.schema(), std::move(rows));
}

}  // namespace prefsql
