// Streaming selection: forwards child rows whose predicate evaluates to
// TRUE (SQL three-valued logic; NULL/UNKNOWN drops the row).

#pragma once

#include <cstddef>

#include "core/query_context.h"
#include "engine/evaluator.h"
#include "engine/operators/operator.h"
#include "sql/ast.h"

namespace prefsql {

class FilterOperator : public PhysicalOperator {
 public:
  /// Filters on `predicate` (not owned; must outlive the plan).
  FilterOperator(OperatorPtr child, const Expr* predicate,
                 const EvalContext* outer, SubqueryRunner* runner);

  /// Filters on an expression the planner synthesized (HAVING rewrites).
  FilterOperator(OperatorPtr child, ExprPtr predicate,
                 const EvalContext* outer, SubqueryRunner* runner);

  const Schema& schema() const override { return child_->schema(); }
  Status Open() override { return child_->Open(); }
  Result<bool> Next(RowRef* out) override;
  Result<bool> NextBatch(RowBatch* out) override;
  void Close() override { child_->Close(); }
  const char* label() const override { return "filter"; }

 private:
  OperatorPtr child_;
  ExprPtr owned_predicate_;
  const Expr* predicate_;
  const EvalContext* outer_;
  SubqueryRunner* runner_;
  size_t tick_ = 0;  ///< interrupt-poll stride over rejected rows
};

}  // namespace prefsql
