// Access-path operators: sequential scan, index-selected position scan, and
// the synthetic one-row source used by FROM-less SELECTs.

#pragma once

#include <memory>
#include <vector>

#include "engine/operators/operator.h"

namespace prefsql {

/// Scans a row vector in order. The vector is either borrowed (base-table
/// heap, cached view — optionally pinned via `keepalive`) or owned (FROM
/// subquery materialization).
class SeqScanOperator : public PhysicalOperator {
 public:
  /// Borrowing scan; `keepalive` may pin a shared view materialization.
  SeqScanOperator(Schema schema, const std::vector<Row>* rows,
                  std::shared_ptr<ResultTable> keepalive = nullptr);

  /// Owning scan over a materialized result.
  SeqScanOperator(Schema schema, ResultTable owned);

  const Schema& schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  void Close() override;

 private:
  Schema schema_;
  ResultTable owned_;
  const std::vector<Row>* rows_;
  std::shared_ptr<ResultTable> keepalive_;
  size_t pos_ = 0;
};

/// Emits the rows at `positions` (in order) of a borrowed row vector; the
/// access path for index-served scans and for re-projecting an explicit
/// selection vector over a materialized relation.
class PositionScanOperator : public PhysicalOperator {
 public:
  PositionScanOperator(Schema schema, const std::vector<Row>* rows,
                       std::vector<size_t> positions);

  const Schema& schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  void Close() override;

 private:
  Schema schema_;
  const std::vector<Row>* rows_;
  std::vector<size_t> positions_;
  size_t pos_ = 0;
};

/// Produces exactly one empty row (SELECT without FROM).
class OneRowOperator : public PhysicalOperator {
 public:
  OneRowOperator() = default;

  const Schema& schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  void Close() override {}

 private:
  Schema schema_;
  Row row_;
  bool done_ = false;
};

}  // namespace prefsql
