// Access-path operators: sequential scan, index-selected position scan, and
// the synthetic one-row source used by FROM-less SELECTs.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/operators/operator.h"
#include "storage/row_heap.h"

namespace prefsql {

/// MVCC visibility counters surfaced through EXPLAIN/session stats. Scans
/// batch locally and flush on Close (relaxed adds — purely informational).
struct MvccScanCounters {
  std::atomic<uint64_t> versions_scanned{0};
  std::atomic<uint64_t> versions_skipped{0};
};

/// Scans a row vector in order. The vector is either borrowed (base-table
/// heap, cached view — optionally pinned via `keepalive`) or owned (FROM
/// subquery materialization).
class SeqScanOperator : public PhysicalOperator {
 public:
  /// Borrowing scan; `keepalive` may pin a shared view materialization.
  SeqScanOperator(Schema schema, const std::vector<Row>* rows,
                  std::shared_ptr<ResultTable> keepalive = nullptr);

  /// Owning scan over a materialized result.
  SeqScanOperator(Schema schema, ResultTable owned);

  const Schema& schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  Result<bool> NextBatch(RowBatch* out) override;
  void Close() override;
  const char* label() const override { return "seq_scan"; }

 private:
  Schema schema_;
  ResultTable owned_;
  const std::vector<Row>* rows_;
  std::shared_ptr<ResultTable> keepalive_;
  size_t pos_ = 0;
};

/// Emits the rows at `positions` (in order) of a borrowed row vector; the
/// access path for index-served scans and for re-projecting an explicit
/// selection vector over a materialized relation.
class PositionScanOperator : public PhysicalOperator {
 public:
  PositionScanOperator(Schema schema, const std::vector<Row>* rows,
                       std::vector<size_t> positions);

  const Schema& schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  Result<bool> NextBatch(RowBatch* out) override;
  void Close() override;
  const char* label() const override { return "position_scan"; }

 private:
  Schema schema_;
  const std::vector<Row>* rows_;
  std::vector<size_t> positions_;
  size_t pos_ = 0;
};

/// Scans the row versions of a base-table heap, emitting those visible at
/// `snapshot`. `limit` bounds the slot range (the heap size the snapshot's
/// table version sealed), so the scan is deterministic even while writers
/// append concurrently.
class HeapScanOperator : public PhysicalOperator {
 public:
  HeapScanOperator(Schema schema, const RowHeap* heap, size_t limit,
                   uint64_t snapshot, MvccScanCounters* counters = nullptr);

  const Schema& schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  Result<bool> NextBatch(RowBatch* out) override;
  void Close() override;
  const char* label() const override { return "heap_scan"; }

 private:
  Schema schema_;
  const RowHeap* heap_;
  size_t limit_;
  uint64_t snapshot_;
  MvccScanCounters* counters_;
  size_t pos_ = 0;
  size_t tick_ = 0;
  uint64_t scanned_ = 0;
  uint64_t skipped_ = 0;
};

/// Emits the rows at explicit heap slot positions. Index lookups return
/// *candidate* slots (they cover dead versions too), so those scans re-check
/// visibility at `snapshot`; position lists served from the version-matched
/// preference caches are visible by construction and pass
/// `check_visibility = false`.
class HeapPositionScanOperator : public PhysicalOperator {
 public:
  HeapPositionScanOperator(Schema schema, const RowHeap* heap,
                           std::vector<size_t> positions, uint64_t snapshot,
                           bool check_visibility,
                           MvccScanCounters* counters = nullptr);

  const Schema& schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  Result<bool> NextBatch(RowBatch* out) override;
  void Close() override;
  const char* label() const override { return "heap_position_scan"; }

 private:
  Schema schema_;
  const RowHeap* heap_;
  std::vector<size_t> positions_;
  uint64_t snapshot_;
  bool check_visibility_;
  MvccScanCounters* counters_;
  size_t pos_ = 0;
  size_t tick_ = 0;
  uint64_t scanned_ = 0;
  uint64_t skipped_ = 0;
};

/// Produces exactly one empty row (SELECT without FROM).
class OneRowOperator : public PhysicalOperator {
 public:
  OneRowOperator() = default;

  const Schema& schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  Result<bool> NextBatch(RowBatch* out) override;
  void Close() override {}
  const char* label() const override { return "one_row"; }

 private:
  Schema schema_;
  Row row_;
  bool done_ = false;
};

}  // namespace prefsql
