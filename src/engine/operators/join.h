// Join operators. The planner extracts equi-join keys from the ON clause
// and picks HashJoinOperator when any exist; otherwise (CROSS JOIN, ON
// without extractable keys, comma-list FROM) NestedLoopJoinOperator runs.
// Both stream the left input and materialize the right at Open; LEFT JOIN
// NULL-pads unmatched left rows.

#pragma once

#include <unordered_map>
#include <vector>

#include "engine/evaluator.h"
#include "engine/operators/operator.h"
#include "sql/ast.h"
#include "util/memory_budget.h"

namespace prefsql {

/// Hash join on equi-key columns with an optional residual conjunction.
class HashJoinOperator : public PhysicalOperator {
 public:
  HashJoinOperator(OperatorPtr left, OperatorPtr right,
                   std::vector<size_t> left_keys,
                   std::vector<size_t> right_keys,
                   std::vector<const Expr*> residual, bool left_join,
                   const EvalContext* outer, SubqueryRunner* runner);

  const Schema& schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  void Close() override;
  // Joins serve NextBatch through the row-loop fallback (probe state is
  // inherently per-left-row); the label makes that visible in stats.
  const char* label() const override { return "hash_join"; }

 private:
  Result<bool> AdvanceLeft();

  OperatorPtr left_;
  OperatorPtr right_;
  Schema schema_;
  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  std::vector<const Expr*> residual_;
  bool left_join_;
  const EvalContext* outer_;
  SubqueryRunner* runner_;

  // Build side (right input), materialized at Open.
  std::vector<RowRef> build_rows_;
  std::unordered_map<size_t, std::vector<size_t>> build_index_;
  // Budget reservations for the build side, held until Close.
  ScopedMemoryCharge stmt_charge_;
  ScopedMemoryCharge engine_charge_;

  // Probe state for the current left row.
  RowRef left_row_;
  Row left_key_;
  bool left_key_null_ = false;
  const std::vector<size_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
  bool left_matched_ = false;
  bool left_valid_ = false;
  size_t tick_ = 0;  // interrupt-poll stride counter for the probe loop
};

/// Nested-loop join; `join_on` may be null (cross product).
class NestedLoopJoinOperator : public PhysicalOperator {
 public:
  NestedLoopJoinOperator(OperatorPtr left, OperatorPtr right,
                         const Expr* join_on, bool left_join,
                         const EvalContext* outer, SubqueryRunner* runner);

  const Schema& schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  void Close() override;
  const char* label() const override { return "nl_join"; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  Schema schema_;
  const Expr* join_on_;
  bool left_join_;
  const EvalContext* outer_;
  SubqueryRunner* runner_;

  std::vector<RowRef> right_rows_;
  RowRef left_row_;
  size_t right_pos_ = 0;
  bool left_matched_ = false;
  bool left_valid_ = false;
  size_t tick_ = 0;  // interrupt-poll stride counter for the scan loop
};

}  // namespace prefsql
