#include "engine/operators/filter.h"

namespace prefsql {

FilterOperator::FilterOperator(OperatorPtr child, const Expr* predicate,
                               const EvalContext* outer,
                               SubqueryRunner* runner)
    : child_(std::move(child)),
      predicate_(predicate),
      outer_(outer),
      runner_(runner) {}

FilterOperator::FilterOperator(OperatorPtr child, ExprPtr predicate,
                               const EvalContext* outer,
                               SubqueryRunner* runner)
    : child_(std::move(child)),
      owned_predicate_(std::move(predicate)),
      predicate_(owned_predicate_.get()),
      outer_(outer),
      runner_(runner) {}

Result<bool> FilterOperator::Next(RowRef* out) {
  RowRef row;
  while (true) {
    // A selective predicate (e.g. the rewrite path's NOT EXISTS anti-join)
    // can reject unboundedly many rows inside one pull; poll the deadline/
    // cancel latch so the reject loop stays interruptible.
    PSQL_RETURN_IF_ERROR(PollInterrupt(&tick_));
    PSQL_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) return false;
    EvalContext ctx{&child_->schema(), &row.row(), outer_, runner_};
    PSQL_ASSIGN_OR_RETURN(bool pass, EvaluatePredicate(*predicate_, ctx));
    if (pass) {
      *out = std::move(row);
      return true;
    }
  }
}

Result<bool> FilterOperator::NextBatch(RowBatch* out) {
  while (true) {
    // One latch check per child batch replaces the stride-256 row poll; a
    // fully-rejecting predicate keeps pulling rather than hand back an
    // empty batch, so the check also bounds the reject loop.
    if (QueryContext* ctx = CurrentQueryContext()) {
      PSQL_RETURN_IF_ERROR(ctx->CheckInterrupt());
    }
    PSQL_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
    if (!more) return false;
    PSQL_RETURN_IF_ERROR(EvaluatePredicateBatch(
        *predicate_, child_->schema(), out, outer_, runner_));
    if (!out->sel.empty()) return true;
  }
}

}  // namespace prefsql
