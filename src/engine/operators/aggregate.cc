#include "engine/operators/aggregate.h"

namespace prefsql {

AggregateOperator::AggregateOperator(OperatorPtr child, Schema out_schema,
                                     std::vector<const Expr*> group_by,
                                     std::vector<const Expr*> aggs,
                                     std::vector<AggregateKind> kinds,
                                     const EvalContext* outer,
                                     SubqueryRunner* runner)
    : child_(std::move(child)),
      schema_(std::move(out_schema)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)),
      kinds_(std::move(kinds)),
      outer_(outer),
      runner_(runner) {}

Status AggregateOperator::Open() {
  PSQL_RETURN_IF_ERROR(child_->Open());
  group_rows_.clear();
  pos_ = 0;

  struct Group {
    Row key;
    std::vector<AggregateAccumulator> accs;
  };
  std::vector<Group> groups;
  std::unordered_map<size_t, std::vector<size_t>> group_index;

  auto new_group = [&](Row key) {
    Group g;
    g.key = std::move(key);
    for (size_t j = 0; j < aggs_.size(); ++j) {
      g.accs.emplace_back(kinds_[j], aggs_[j]->distinct_arg);
    }
    groups.push_back(std::move(g));
    return groups.size() - 1;
  };

  RowRef ref;
  while (true) {
    PSQL_ASSIGN_OR_RETURN(bool more, child_->Next(&ref));
    if (!more) break;
    EvalContext ctx{&child_->schema(), &ref.row(), outer_, runner_};
    Row key;
    key.reserve(group_by_.size());
    for (const Expr* g : group_by_) {
      PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(*g, ctx));
      key.push_back(std::move(v));
    }
    size_t h = HashRow(key);
    size_t gidx = SIZE_MAX;
    for (size_t cand : group_index[h]) {
      if (RowsIdentityEqual(groups[cand].key, key)) {
        gidx = cand;
        break;
      }
    }
    if (gidx == SIZE_MAX) {
      gidx = new_group(std::move(key));
      group_index[h].push_back(gidx);
    }
    for (size_t j = 0; j < aggs_.size(); ++j) {
      Value arg;  // NULL placeholder for COUNT(*)
      if (kinds_[j] != AggregateKind::kCountStar) {
        PSQL_ASSIGN_OR_RETURN(arg, Evaluate(*aggs_[j]->args[0], ctx));
      }
      PSQL_RETURN_IF_ERROR(groups[gidx].accs[j].Add(arg));
    }
  }
  // Scalar aggregation over an empty input still yields one group.
  if (group_by_.empty() && groups.empty()) new_group(Row{});

  group_rows_.reserve(groups.size());
  for (auto& g : groups) {
    Row r = std::move(g.key);
    for (auto& acc : g.accs) r.push_back(acc.Finish());
    group_rows_.push_back(std::move(r));
  }
  return Status::OK();
}

Result<bool> AggregateOperator::Next(RowRef* out) {
  if (pos_ >= group_rows_.size()) return false;
  *out = RowRef::Owned(std::move(group_rows_[pos_++]));
  return true;
}

void AggregateOperator::Close() {
  child_->Close();
  group_rows_.clear();
}

}  // namespace prefsql
