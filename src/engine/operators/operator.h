// Physical operator interface: pull-based open/next/close execution (the
// Volcano iterator model). The planner (engine/planner.h) compiles a
// SelectStmt into a tree of these; the executor facade drains the root into
// a ResultTable, while early-exit consumers (EXISTS probes, LIMIT) stop
// pulling as soon as they are satisfied.

#pragma once

#include <memory>

#include "types/result_table.h"
#include "types/row_view.h"
#include "types/schema.h"
#include "util/status.h"

namespace prefsql {

/// One node of a physical execution plan.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  /// Output schema; known from construction (plan time).
  virtual const Schema& schema() const = 0;

  /// Prepares execution; pipeline breakers (sort, hash build, aggregation,
  /// BMO) consume their input here.
  virtual Status Open() = 0;

  /// Produces the next row into `*out`; returns false at end of stream.
  virtual Result<bool> Next(RowRef* out) = 0;

  /// Releases per-execution state. Must be safe to call after Open failed.
  virtual void Close() = 0;
};

using OperatorPtr = std::unique_ptr<PhysicalOperator>;

/// Opens, fully drains and closes `op`, materializing a ResultTable.
Result<ResultTable> DrainToTable(PhysicalOperator& op);

}  // namespace prefsql
