// Physical operator interface: pull-based open/next/close execution (the
// Volcano iterator model). The planner (engine/planner.h) compiles a
// SelectStmt into a tree of these; the executor facade drains the root into
// a ResultTable, while early-exit consumers (EXISTS probes, LIMIT) stop
// pulling as soon as they are satisfied.
//
// Two pull protocols share one tree: row-at-a-time Next(RowRef*) and
// batch-at-a-time NextBatch(RowBatch*) (types/row_batch.h). A drain site
// picks exactly one protocol per execution — the two must never be
// interleaved on the same operator instance. Operators without a native
// batch implementation serve NextBatch through a row-loop fallback, so a
// partially-vectorized tree is always correct; the fallback is recorded in
// the statement's BatchExecStats so parity is inspectable from
// last_stats()/EXPLAIN.

#pragma once

#include <memory>

#include "types/result_table.h"
#include "types/row_batch.h"
#include "types/row_view.h"
#include "types/schema.h"
#include "util/status.h"

namespace prefsql {

/// One node of a physical execution plan.
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  /// Output schema; known from construction (plan time).
  virtual const Schema& schema() const = 0;

  /// Prepares execution; pipeline breakers (sort, hash build, aggregation,
  /// BMO) consume their input here.
  virtual Status Open() = 0;

  /// Produces the next row into `*out`; returns false at end of stream.
  virtual Result<bool> Next(RowRef* out) = 0;

  /// Produces the next batch of rows into `*out` (cleared first); returns
  /// false at end of stream, true iff at least one selected row — a
  /// filter-heavy operator keeps pulling internally rather than return an
  /// empty batch, so callers need no empty-but-not-done handling. The base
  /// implementation loops this operator's own Next() up to
  /// kRowBatchCapacity with an identity selection, which also drops the
  /// whole subtree below to row-at-a-time pulls.
  virtual Result<bool> NextBatch(RowBatch* out);

  /// Releases per-execution state. Must be safe to call after Open failed.
  virtual void Close() = 0;

  /// Short stable label for fallback/EXPLAIN reporting ("filter", "sort").
  virtual const char* label() const { return "operator"; }

 private:
  // The row-loop fallback reports itself once per instance.
  bool batch_fallback_recorded_ = false;
};

using OperatorPtr = std::unique_ptr<PhysicalOperator>;

/// Opens, fully drains and closes `op`, materializing a ResultTable.
Result<ResultTable> DrainToTable(PhysicalOperator& op);

}  // namespace prefsql
