#include "engine/operators/sort.h"

#include <algorithm>

#include "core/query_context.h"

namespace prefsql {

SortOperator::SortOperator(OperatorPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

Status SortOperator::Open() {
  PSQL_RETURN_IF_ERROR(child_->Open());
  rows_.clear();
  pos_ = 0;
  stmt_charge_.Reset();
  engine_charge_.Reset();
  QueryContext* qctx = CurrentQueryContext();
  uint64_t pending = 0;
  if (BatchModeEnabled()) {
    // Batch feed: one interrupt check and one (accumulated) memory charge
    // per ~1k rows instead of stride-256 row polls.
    RowBatch batch;
    while (true) {
      if (qctx != nullptr) PSQL_RETURN_IF_ERROR(qctx->CheckInterrupt());
      PSQL_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&batch));
      if (!more) break;
      if (qctx != nullptr) qctx->batch_stats().Record(batch.sel.size());
      for (uint32_t idx : batch.sel) {
        Row row = std::move(batch.rows[idx]).IntoRow();
        pending += sizeof(Row) + row.size() * sizeof(Value);
        rows_.push_back(std::move(row));
      }
      if (qctx != nullptr && pending >= kChargeBatchBytes) {
        PSQL_RETURN_IF_ERROR(
            qctx->ChargeMemory(pending, &stmt_charge_, &engine_charge_));
        pending = 0;
      }
    }
  } else {
    RowRef ref;
    size_t tick = 0;
    while (true) {
      PSQL_RETURN_IF_ERROR(PollInterrupt(&tick));
      PSQL_ASSIGN_OR_RETURN(bool more, child_->Next(&ref));
      if (!more) break;
      Row row = std::move(ref).IntoRow();
      if (qctx != nullptr) {
        pending += sizeof(Row) + row.size() * sizeof(Value);
        if (pending >= kChargeBatchBytes) {
          PSQL_RETURN_IF_ERROR(
              qctx->ChargeMemory(pending, &stmt_charge_, &engine_charge_));
          pending = 0;
        }
      }
      rows_.push_back(std::move(row));
    }
  }
  if (qctx != nullptr) {
    if (pending > 0) {
      PSQL_RETURN_IF_ERROR(
          qctx->ChargeMemory(pending, &stmt_charge_, &engine_charge_));
    }
    PSQL_RETURN_IF_ERROR(qctx->CheckInterrupt());
  }
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (const SortKey& k : keys_) {
                       int c = Value::Compare(a[k.column], b[k.column]);
                       if (c != 0) return k.ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return Status::OK();
}

Result<bool> SortOperator::Next(RowRef* out) {
  if (pos_ >= rows_.size()) return false;
  *out = RowRef::Owned(std::move(rows_[pos_++]));
  return true;
}

Result<bool> SortOperator::NextBatch(RowBatch* out) {
  out->Clear();
  if (pos_ >= rows_.size()) return false;
  const size_t take = std::min(kRowBatchCapacity, rows_.size() - pos_);
  out->rows.reserve(take);
  out->sel.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out->PushRow(RowRef::Owned(std::move(rows_[pos_ + i])));
  }
  pos_ += take;
  return true;
}

void SortOperator::Close() {
  child_->Close();
  rows_.clear();
  stmt_charge_.Reset();
  engine_charge_.Reset();
}

LimitOperator::LimitOperator(OperatorPtr child, std::optional<int64_t> limit,
                             std::optional<int64_t> offset)
    : child_(std::move(child)), limit_(limit), offset_(offset) {}

Status LimitOperator::Open() {
  skipped_ = 0;
  emitted_ = 0;
  return child_->Open();
}

Result<bool> LimitOperator::Next(RowRef* out) {
  if (limit_ && emitted_ >= *limit_) return false;
  RowRef row;
  while (true) {
    PSQL_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) return false;
    if (offset_ && skipped_ < *offset_) {
      ++skipped_;
      continue;
    }
    ++emitted_;
    *out = std::move(row);
    return true;
  }
}

Result<bool> LimitOperator::NextBatch(RowBatch* out) {
  if (limit_ && emitted_ >= *limit_) return false;
  while (true) {
    PSQL_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
    if (!more) return false;
    // OFFSET consumes from the front of the selection; LIMIT truncates its
    // tail. Row data stays in place — only `sel` changes.
    if (offset_ && skipped_ < *offset_) {
      const size_t skip = std::min(static_cast<size_t>(*offset_ - skipped_),
                                   out->sel.size());
      out->sel.erase(out->sel.begin(),
                     out->sel.begin() + static_cast<ptrdiff_t>(skip));
      skipped_ += static_cast<int64_t>(skip);
    }
    if (limit_) {
      const size_t room = static_cast<size_t>(*limit_ - emitted_);
      if (out->sel.size() > room) out->sel.resize(room);
    }
    if (!out->sel.empty()) {
      emitted_ += static_cast<int64_t>(out->sel.size());
      return true;
    }
    // Whole batch swallowed by OFFSET: pull again.
  }
}

}  // namespace prefsql
