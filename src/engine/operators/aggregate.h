// Hash aggregation (pipeline breaker): consumes the child, groups rows by
// the GROUP BY expressions and emits one synthetic row per group — group
// key columns followed by one column per aggregate call. The planner
// rewrites SELECT items / HAVING / ORDER BY against this synthetic schema.

#pragma once

#include <unordered_map>
#include <vector>

#include "engine/aggregates.h"
#include "engine/evaluator.h"
#include "engine/operators/operator.h"
#include "sql/ast.h"

namespace prefsql {

class AggregateOperator : public PhysicalOperator {
 public:
  /// `group_by` and `aggs` point into the statement AST (not owned); one
  /// entry of `kinds` per aggregate call.
  AggregateOperator(OperatorPtr child, Schema out_schema,
                    std::vector<const Expr*> group_by,
                    std::vector<const Expr*> aggs,
                    std::vector<AggregateKind> kinds, const EvalContext* outer,
                    SubqueryRunner* runner);

  const Schema& schema() const override { return schema_; }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  void Close() override;
  // Serves NextBatch through the row-loop fallback: emission is one row
  // per group, already far below batch granularity.
  const char* label() const override { return "aggregate"; }

 private:
  OperatorPtr child_;
  Schema schema_;
  std::vector<const Expr*> group_by_;
  std::vector<const Expr*> aggs_;
  std::vector<AggregateKind> kinds_;
  const EvalContext* outer_;
  SubqueryRunner* runner_;

  std::vector<Row> group_rows_;
  size_t pos_ = 0;
};

}  // namespace prefsql
