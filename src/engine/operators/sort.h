// Sort (pipeline breaker) and streaming OFFSET/LIMIT.

#pragma once

#include <optional>
#include <vector>

#include "engine/operators/operator.h"
#include "util/memory_budget.h"

namespace prefsql {

/// One ORDER BY key: a column position of the input schema (the planner
/// projects hidden key columns for general expressions).
struct SortKey {
  size_t column;
  bool ascending;
};

/// Materializes the child and emits rows in stable-sorted key order
/// (Value::Compare total ordering, as ORDER BY requires).
class SortOperator : public PhysicalOperator {
 public:
  SortOperator(OperatorPtr child, std::vector<SortKey> keys);

  const Schema& schema() const override { return child_->schema(); }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  Result<bool> NextBatch(RowBatch* out) override;
  void Close() override;
  const char* label() const override { return "sort"; }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
  // Budget reservations for the materialized input, held until Close.
  ScopedMemoryCharge stmt_charge_;
  ScopedMemoryCharge engine_charge_;
};

/// Skips `offset` rows, then forwards at most `limit` rows and stops
/// pulling from the child (true early exit for streaming children).
class LimitOperator : public PhysicalOperator {
 public:
  LimitOperator(OperatorPtr child, std::optional<int64_t> limit,
                std::optional<int64_t> offset);

  const Schema& schema() const override { return child_->schema(); }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  Result<bool> NextBatch(RowBatch* out) override;
  void Close() override { child_->Close(); }
  const char* label() const override { return "limit"; }

 private:
  OperatorPtr child_;
  std::optional<int64_t> limit_;
  std::optional<int64_t> offset_;
  int64_t skipped_ = 0;
  int64_t emitted_ = 0;
};

}  // namespace prefsql
