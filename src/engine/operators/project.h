// Row-computing operators of the projection tail: expression projection,
// DISTINCT, and the prefix strip that drops hidden sort-key columns.

#pragma once

#include <unordered_map>
#include <vector>

#include "engine/evaluator.h"
#include "engine/operators/operator.h"
#include "sql/ast.h"

namespace prefsql {

/// Evaluates one expression per output column against each child row. Owns
/// the expressions (the planner synthesizes star expansions, GROUP BY
/// rewrites and hidden ORDER BY keys).
class ProjectOperator : public PhysicalOperator {
 public:
  ProjectOperator(OperatorPtr child, Schema out_schema,
                  std::vector<ExprPtr> exprs, const EvalContext* outer,
                  SubqueryRunner* runner);

  const Schema& schema() const override { return schema_; }
  Status Open() override { return child_->Open(); }
  Result<bool> Next(RowRef* out) override;
  Result<bool> NextBatch(RowBatch* out) override;
  void Close() override { child_->Close(); }
  const char* label() const override { return "project"; }

 private:
  OperatorPtr child_;
  Schema schema_;
  std::vector<ExprPtr> exprs_;
  const EvalContext* outer_;
  SubqueryRunner* runner_;
};

/// Streams the first occurrence of each distinct key prefix (the visible
/// output columns; hidden sort-key columns do not participate).
class DistinctOperator : public PhysicalOperator {
 public:
  DistinctOperator(OperatorPtr child, size_t key_width);

  const Schema& schema() const override { return child_->schema(); }
  Status Open() override;
  Result<bool> Next(RowRef* out) override;
  void Close() override;
  // Stays on the row-loop NextBatch fallback: the dedup hash probe is
  // per-row either way, so a native batch path would buy nothing.
  const char* label() const override { return "distinct"; }

 private:
  OperatorPtr child_;
  size_t key_width_;
  std::vector<Row> seen_rows_;  // kept key prefixes
  std::unordered_map<size_t, std::vector<size_t>> seen_;
};

/// Truncates each row to its first `width` columns (drops hidden keys).
class PrefixOperator : public PhysicalOperator {
 public:
  PrefixOperator(OperatorPtr child, Schema out_schema);

  const Schema& schema() const override { return schema_; }
  Status Open() override { return child_->Open(); }
  Result<bool> Next(RowRef* out) override;
  Result<bool> NextBatch(RowBatch* out) override;
  void Close() override { child_->Close(); }
  const char* label() const override { return "prefix"; }

 private:
  OperatorPtr child_;
  Schema schema_;
};

}  // namespace prefsql
