#include "engine/operators/join.h"

#include "core/query_context.h"

namespace prefsql {
namespace {

Row ConcatRows(const Row& a, const Row& b) {
  Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Row KeyOf(const Row& row, const std::vector<size_t>& cols) {
  Row key;
  key.reserve(cols.size());
  for (size_t c : cols) key.push_back(row[c]);
  return key;
}

/// NULL-pads `left` to the combined width (LEFT JOIN without match).
Row PadRight(const Row& left, size_t width) {
  Row combined = left;
  combined.resize(width);
  return combined;
}

}  // namespace

// ===========================================================================
// HashJoinOperator
// ===========================================================================

HashJoinOperator::HashJoinOperator(OperatorPtr left, OperatorPtr right,
                                   std::vector<size_t> left_keys,
                                   std::vector<size_t> right_keys,
                                   std::vector<const Expr*> residual,
                                   bool left_join, const EvalContext* outer,
                                   SubqueryRunner* runner)
    : left_(std::move(left)),
      right_(std::move(right)),
      schema_(left_->schema().Concat(right_->schema())),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)),
      left_join_(left_join),
      outer_(outer),
      runner_(runner) {}

Status HashJoinOperator::Open() {
  PSQL_RETURN_IF_ERROR(left_->Open());
  PSQL_RETURN_IF_ERROR(right_->Open());
  build_rows_.clear();
  build_index_.clear();
  stmt_charge_.Reset();
  engine_charge_.Reset();
  QueryContext* qctx = CurrentQueryContext();
  RowRef row;
  size_t tick = 0;
  uint64_t pending = 0;
  while (true) {
    PSQL_RETURN_IF_ERROR(PollInterrupt(&tick));
    PSQL_ASSIGN_OR_RETURN(bool more, right_->Next(&row));
    if (!more) break;
    if (qctx != nullptr) {
      // Row payload + its index entry, batched to keep the atomics off the
      // per-row path.
      pending += sizeof(RowRef) + row.row().size() * sizeof(Value) +
                 2 * sizeof(size_t);
      if (pending >= kChargeBatchBytes) {
        PSQL_RETURN_IF_ERROR(
            qctx->ChargeMemory(pending, &stmt_charge_, &engine_charge_));
        pending = 0;
      }
    }
    build_index_[HashRow(KeyOf(row.row(), right_keys_))].push_back(
        build_rows_.size());
    build_rows_.push_back(std::move(row));
  }
  if (qctx != nullptr && pending > 0) {
    PSQL_RETURN_IF_ERROR(
        qctx->ChargeMemory(pending, &stmt_charge_, &engine_charge_));
  }
  left_valid_ = false;
  return Status::OK();
}

Result<bool> HashJoinOperator::AdvanceLeft() {
  PSQL_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
  if (!more) return false;
  left_valid_ = true;
  left_matched_ = false;
  match_pos_ = 0;
  left_key_ = KeyOf(left_row_.row(), left_keys_);
  left_key_null_ = false;
  for (const auto& v : left_key_) left_key_null_ |= v.is_null();
  auto it = build_index_.find(HashRow(left_key_));
  matches_ = it != build_index_.end() ? &it->second : nullptr;
  return true;
}

Result<bool> HashJoinOperator::Next(RowRef* out) {
  while (true) {
    PSQL_RETURN_IF_ERROR(PollInterrupt(&tick_));
    if (!left_valid_) {
      PSQL_ASSIGN_OR_RETURN(bool more, AdvanceLeft());
      if (!more) return false;
    }
    // NULL keys never join.
    if (matches_ != nullptr && !left_key_null_) {
      while (match_pos_ < matches_->size()) {
        size_t j = (*matches_)[match_pos_++];
        const Row& right_row = build_rows_[j].row();
        if (!RowsIdentityEqual(left_key_, KeyOf(right_row, right_keys_))) {
          continue;
        }
        Row combined = ConcatRows(left_row_.row(), right_row);
        bool pass = true;
        EvalContext ctx{&schema_, &combined, outer_, runner_};
        for (const Expr* e : residual_) {
          PSQL_ASSIGN_OR_RETURN(pass, EvaluatePredicate(*e, ctx));
          if (!pass) break;
        }
        if (pass) {
          left_matched_ = true;
          *out = RowRef::Owned(std::move(combined));
          return true;
        }
      }
    }
    // Left row exhausted.
    left_valid_ = false;
    if (left_join_ && !left_matched_) {
      *out = RowRef::Owned(PadRight(left_row_.row(), schema_.num_columns()));
      return true;
    }
  }
}

void HashJoinOperator::Close() {
  left_->Close();
  right_->Close();
  build_rows_.clear();
  build_index_.clear();
  stmt_charge_.Reset();
  engine_charge_.Reset();
}

// ===========================================================================
// NestedLoopJoinOperator
// ===========================================================================

NestedLoopJoinOperator::NestedLoopJoinOperator(OperatorPtr left,
                                               OperatorPtr right,
                                               const Expr* join_on,
                                               bool left_join,
                                               const EvalContext* outer,
                                               SubqueryRunner* runner)
    : left_(std::move(left)),
      right_(std::move(right)),
      schema_(left_->schema().Concat(right_->schema())),
      join_on_(join_on),
      left_join_(left_join),
      outer_(outer),
      runner_(runner) {}

Status NestedLoopJoinOperator::Open() {
  PSQL_RETURN_IF_ERROR(left_->Open());
  PSQL_RETURN_IF_ERROR(right_->Open());
  right_rows_.clear();
  RowRef row;
  size_t tick = 0;
  while (true) {
    PSQL_RETURN_IF_ERROR(PollInterrupt(&tick));
    PSQL_ASSIGN_OR_RETURN(bool more, right_->Next(&row));
    if (!more) break;
    right_rows_.push_back(std::move(row));
  }
  left_valid_ = false;
  return Status::OK();
}

Result<bool> NestedLoopJoinOperator::Next(RowRef* out) {
  while (true) {
    if (!left_valid_) {
      PSQL_ASSIGN_OR_RETURN(bool more, left_->Next(&left_row_));
      if (!more) return false;
      left_valid_ = true;
      left_matched_ = false;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      PSQL_RETURN_IF_ERROR(PollInterrupt(&tick_));
      const Row& right_row = right_rows_[right_pos_++].row();
      Row combined = ConcatRows(left_row_.row(), right_row);
      bool pass = true;
      if (join_on_ != nullptr) {
        EvalContext ctx{&schema_, &combined, outer_, runner_};
        PSQL_ASSIGN_OR_RETURN(pass, EvaluatePredicate(*join_on_, ctx));
      }
      if (pass) {
        left_matched_ = true;
        *out = RowRef::Owned(std::move(combined));
        return true;
      }
    }
    left_valid_ = false;
    if (left_join_ && !left_matched_) {
      *out = RowRef::Owned(PadRight(left_row_.row(), schema_.num_columns()));
      return true;
    }
  }
}

void NestedLoopJoinOperator::Close() {
  left_->Close();
  right_->Close();
  right_rows_.clear();
}

}  // namespace prefsql
