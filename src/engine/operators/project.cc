#include "engine/operators/project.h"

namespace prefsql {

ProjectOperator::ProjectOperator(OperatorPtr child, Schema out_schema,
                                 std::vector<ExprPtr> exprs,
                                 const EvalContext* outer,
                                 SubqueryRunner* runner)
    : child_(std::move(child)),
      schema_(std::move(out_schema)),
      exprs_(std::move(exprs)),
      outer_(outer),
      runner_(runner) {}

Result<bool> ProjectOperator::Next(RowRef* out) {
  RowRef in;
  PSQL_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  EvalContext ctx{&child_->schema(), &in.row(), outer_, runner_};
  Row row;
  row.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(*e, ctx));
    row.push_back(std::move(v));
  }
  *out = RowRef::Owned(std::move(row));
  return true;
}

Result<bool> ProjectOperator::NextBatch(RowBatch* out) {
  PSQL_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
  if (!more) return false;
  for (uint32_t idx : out->sel) {
    // Build the output row fully before overwriting the slot: the eval
    // context reads the input row living there.
    EvalContext ctx{&child_->schema(), &out->rows[idx].row(), outer_,
                    runner_};
    Row row;
    row.reserve(exprs_.size());
    for (const ExprPtr& e : exprs_) {
      PSQL_ASSIGN_OR_RETURN(Value v, Evaluate(*e, ctx));
      row.push_back(std::move(v));
    }
    out->rows[idx] = RowRef::Owned(std::move(row));
  }
  return true;
}

DistinctOperator::DistinctOperator(OperatorPtr child, size_t key_width)
    : child_(std::move(child)), key_width_(key_width) {}

Status DistinctOperator::Open() {
  seen_rows_.clear();
  seen_.clear();
  return child_->Open();
}

Result<bool> DistinctOperator::Next(RowRef* out) {
  RowRef row;
  while (true) {
    PSQL_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
    if (!more) return false;
    const Row& r = row.row();
    size_t h = HashRowPrefix(r, key_width_);
    bool dup = false;
    for (size_t idx : seen_[h]) {
      if (RowPrefixIdentityEqual(seen_rows_[idx], r, key_width_)) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    Row prefix(r.begin(), r.begin() + static_cast<ptrdiff_t>(key_width_));
    seen_[h].push_back(seen_rows_.size());
    seen_rows_.push_back(std::move(prefix));
    *out = std::move(row);
    return true;
  }
}

void DistinctOperator::Close() {
  child_->Close();
  seen_rows_.clear();
  seen_.clear();
}

PrefixOperator::PrefixOperator(OperatorPtr child, Schema out_schema)
    : child_(std::move(child)), schema_(std::move(out_schema)) {}

Result<bool> PrefixOperator::Next(RowRef* out) {
  RowRef in;
  PSQL_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
  if (!more) return false;
  Row row = std::move(in).IntoRow();
  row.resize(schema_.num_columns());
  *out = RowRef::Owned(std::move(row));
  return true;
}

Result<bool> PrefixOperator::NextBatch(RowBatch* out) {
  PSQL_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
  if (!more) return false;
  for (uint32_t idx : out->sel) {
    Row row = std::move(out->rows[idx]).IntoRow();
    row.resize(schema_.num_columns());
    out->rows[idx] = RowRef::Owned(std::move(row));
  }
  return true;
}

}  // namespace prefsql
