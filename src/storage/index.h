// Secondary index: an ordered multimap from key rows to row positions.
//
// The paper notes that "having the right indices available current SQL
// optimizers can efficiently process" the rewritten NOT EXISTS query; the
// engine uses these indexes for equality lookups in filters and joins.

#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "types/value.h"
#include "util/status.h"

namespace prefsql {

class Table;

/// Ordered secondary index over one or more columns of a base table.
/// Rebuilt lazily when the table version changes (simple and correct for an
/// analytics-style workload; no incremental maintenance).
///
/// Lookups are safe from concurrent reader sessions: the lazy rebuild and
/// the map accesses are serialized by an internal mutex. The engine's
/// shared/exclusive statement lock guarantees the table version cannot move
/// while readers are active, so a reference returned by Lookup stays valid
/// for the duration of the reading statement.
class Index {
 public:
  Index(std::string name, const Table* table, std::vector<size_t> key_columns);

  const std::string& name() const { return name_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }

  /// Row positions whose key equals `key` (same arity as key_columns).
  /// Refreshes the index if the table changed.
  const std::vector<size_t>& Lookup(const Row& key);

  /// Row positions with key in [lo, hi] on a single-column index.
  std::vector<size_t> RangeLookup(const Value& lo, const Value& hi);

  /// Like RangeLookup with optionally open bounds (nullptr = unbounded);
  /// the planner's access path for range predicates (col < v, BETWEEN, ...).
  std::vector<size_t> RangeLookupBounds(const Value* lo, const Value* hi);

  /// Number of distinct keys (after refresh).
  size_t NumDistinctKeys();

 private:
  struct RowLess {
    bool operator()(const Row& a, const Row& b) const {
      for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
        int c = Value::Compare(a[i], b[i]);
        if (c != 0) return c < 0;
      }
      return a.size() < b.size();
    }
  };

  void RefreshIfStale();

  mutable std::mutex mutex_;
  std::string name_;
  const Table* table_;
  std::vector<size_t> key_columns_;
  uint64_t built_version_ = ~0ULL;
  std::map<Row, std::vector<size_t>, RowLess> entries_;
  std::vector<size_t> empty_;
};

}  // namespace prefsql
