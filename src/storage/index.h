// Secondary index: an ordered multimap from key rows to row positions.
//
// The paper notes that "having the right indices available current SQL
// optimizers can efficiently process" the rewritten NOT EXISTS query; the
// engine uses these indexes for equality lookups in filters and joins.

#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "types/value.h"
#include "util/status.h"

namespace prefsql {

class Table;

/// Ordered secondary index over one or more columns of a base table.
///
/// MVCC notes: the index covers every heap slot (live and dead versions
/// alike, skipping GC-cleared payloads) and is rebuilt lazily when the heap
/// has grown — deletes only end-stamp slots, so they never stale the index.
/// Lookups therefore return *candidate* positions; the planner filters them
/// by snapshot visibility before use. Results are returned by value because
/// writers commit concurrently with readers now, so another statement may
/// trigger a rebuild while a previously returned result is still in use.
class Index {
 public:
  Index(std::string name, const Table* table, std::vector<size_t> key_columns);

  const std::string& name() const { return name_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }

  /// Slot positions whose key equals `key` (same arity as key_columns).
  /// Refreshes the index if the heap grew. Candidates only — callers must
  /// filter by snapshot visibility.
  std::vector<size_t> Lookup(const Row& key);

  /// Slot positions with key in [lo, hi] on a single-column index.
  std::vector<size_t> RangeLookup(const Value& lo, const Value& hi);

  /// Like RangeLookup with optionally open bounds (nullptr = unbounded);
  /// the planner's access path for range predicates (col < v, BETWEEN, ...).
  std::vector<size_t> RangeLookupBounds(const Value* lo, const Value* hi);

  /// Number of distinct keys (after refresh).
  size_t NumDistinctKeys();

 private:
  struct RowLess {
    bool operator()(const Row& a, const Row& b) const {
      for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
        int c = Value::Compare(a[i], b[i]);
        if (c != 0) return c < 0;
      }
      return a.size() < b.size();
    }
  };

  void RefreshIfStale();

  mutable std::mutex mutex_;
  std::string name_;
  const Table* table_;
  std::vector<size_t> key_columns_;
  size_t built_size_ = ~size_t{0};
  std::map<Row, std::vector<size_t>, RowLess> entries_;
};

}  // namespace prefsql
