#include "storage/catalog.h"

#include <mutex>

#include "util/string_util.h"

namespace prefsql {

std::string Catalog::Key(const std::string& name) { return ToLower(name); }

Status Catalog::CreateTable(const std::string& name,
                            std::vector<ColumnDef> columns,
                            bool if_not_exists) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::string key = Key(name);
  if (tables_.count(key) || views_.count(key)) {
    if (if_not_exists) return Status::OK();
    return Status::AlreadyExists("table or view '" + name + "' already exists");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("table '" + name + "' needs columns");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    auto first = FindNameIgnoreCase(
        columns, columns[i].name,
        [](const ColumnDef& c) { return std::string_view(c.name); });
    if (first && *first != i) {
      return Status::InvalidArgument("duplicate column '" + columns[i].name +
                                     "' in table " + name);
    }
  }
  tables_[key] = std::make_unique<Table>(name, std::move(columns), &epochs_);
  BumpVersion();
  return Status::OK();
}

Status Catalog::CreateView(const std::string& name,
                           std::shared_ptr<SelectStmt> definition) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::string key = Key(name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::AlreadyExists("table or view '" + name + "' already exists");
  }
  views_[key] = std::move(definition);
  BumpVersion();
  return Status::OK();
}

Status Catalog::CreateIndex(const std::string& name, const std::string& table,
                            const std::vector<std::string>& columns) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::string key = Key(name);
  if (indexes_.count(key)) {
    return Status::AlreadyExists("index '" + name + "' already exists");
  }
  PSQL_ASSIGN_OR_RETURN(Table * tbl, GetTableUnlocked(table));
  std::vector<size_t> cols;
  for (const auto& c : columns) {
    PSQL_ASSIGN_OR_RETURN(size_t idx, tbl->ColumnIndex(c));
    cols.push_back(idx);
  }
  if (cols.empty()) {
    return Status::InvalidArgument("index '" + name + "' needs key columns");
  }
  indexes_[key] = std::make_unique<Index>(name, tbl, std::move(cols));
  index_table_[key] = Key(table);
  BumpVersion();
  return Status::OK();
}

Status Catalog::CreatePreference(const std::string& name,
                                 PrefTermPtr definition) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::string key = Key(name);
  if (preferences_.count(key)) {
    return Status::AlreadyExists("preference '" + name + "' already exists");
  }
  preferences_[key] = std::move(definition);
  BumpVersion();
  return Status::OK();
}

Result<const PrefTerm*> Catalog::GetPreference(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = preferences_.find(Key(name));
  if (it == preferences_.end()) {
    return Status::NotFound("no preference '" + name + "'");
  }
  return it->second.get();
}

bool Catalog::HasPreference(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return preferences_.count(Key(name)) > 0;
}

Status Catalog::Drop(Statement::DropKind kind, const std::string& name,
                     bool if_exists) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::string key = Key(name);
  switch (kind) {
    case Statement::DropKind::kTable: {
      auto it = tables_.find(key);
      if (it == tables_.end()) {
        if (if_exists) return Status::OK();
        return Status::NotFound("no table '" + name + "'");
      }
      // Drop dependent indexes first.
      for (auto iit = indexes_.begin(); iit != indexes_.end();) {
        if (index_table_[iit->first] == key) {
          index_table_.erase(iit->first);
          iit = indexes_.erase(iit);
        } else {
          ++iit;
        }
      }
      tables_.erase(it);
      BumpVersion();
      return Status::OK();
    }
    case Statement::DropKind::kView: {
      auto it = views_.find(key);
      if (it == views_.end()) {
        if (if_exists) return Status::OK();
        return Status::NotFound("no view '" + name + "'");
      }
      views_.erase(it);
      BumpVersion();
      return Status::OK();
    }
    case Statement::DropKind::kIndex: {
      auto it = indexes_.find(key);
      if (it == indexes_.end()) {
        if (if_exists) return Status::OK();
        return Status::NotFound("no index '" + name + "'");
      }
      index_table_.erase(key);
      indexes_.erase(it);
      BumpVersion();
      return Status::OK();
    }
    case Statement::DropKind::kPreference: {
      auto it = preferences_.find(key);
      if (it == preferences_.end()) {
        if (if_exists) return Status::OK();
        return Status::NotFound("no preference '" + name + "'");
      }
      preferences_.erase(it);
      BumpVersion();
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

Result<Table*> Catalog::GetTableUnlocked(const std::string& name) const {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  return it->second.get();
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return GetTableUnlocked(name);
}

Result<std::shared_ptr<SelectStmt>> Catalog::GetView(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = views_.find(Key(name));
  if (it == views_.end()) {
    return Status::NotFound("no view '" + name + "'");
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tables_.count(Key(name)) > 0;
}

bool Catalog::HasView(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return views_.count(Key(name)) > 0;
}

std::vector<Index*> Catalog::IndexesOnUnlocked(const std::string& table) const {
  std::vector<Index*> out;
  std::string tkey = Key(table);
  for (const auto& [iname, tname] : index_table_) {
    if (tname == tkey) out.push_back(indexes_.at(iname).get());
  }
  return out;
}

std::vector<Index*> Catalog::IndexesOn(const std::string& table) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return IndexesOnUnlocked(table);
}

Index* Catalog::FindIndex(const std::string& table,
                          const std::vector<size_t>& columns) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (Index* idx : IndexesOnUnlocked(table)) {
    if (idx->key_columns() == columns) return idx;
  }
  return nullptr;
}

std::vector<std::string> Catalog::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [k, t] : tables_) out.push_back(t->name());
  return out;
}

}  // namespace prefsql
