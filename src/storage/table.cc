#include "storage/table.h"

#include <atomic>
#include <cmath>

#include "types/date.h"
#include "util/string_util.h"

namespace prefsql {

uint64_t Table::NextId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Table::Table(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  std::vector<ColumnInfo> infos;
  infos.reserve(columns_.size());
  for (const auto& c : columns_) infos.push_back({"", c.name});
  schema_ = Schema(std::move(infos));
}

Result<size_t> Table::ColumnIndex(const std::string& column) const {
  auto idx = FindNameIgnoreCase(
      columns_, column, [](const ColumnDef& c) { return std::string_view(c.name); });
  if (idx) return *idx;
  return Status::NotFound("no column '" + column + "' in table " + name_);
}

Result<Value> Table::CoerceToColumn(size_t col, Value value) const {
  if (value.is_null()) return value;
  switch (columns_[col].type) {
    case ColumnType::kInt:
      if (value.type() == ValueType::kInt) return value;
      if (value.type() == ValueType::kDouble) {
        double d = value.AsDouble();
        if (d == std::floor(d)) return Value::Int(static_cast<int64_t>(d));
      }
      break;
    case ColumnType::kDouble:
      if (value.type() == ValueType::kDouble) return value;
      if (value.type() == ValueType::kInt) {
        return Value::Double(static_cast<double>(value.AsInt()));
      }
      break;
    case ColumnType::kText:
      if (value.type() == ValueType::kText) return value;
      // Render non-text scalars; keeps INSERT ergonomics close to SQLite.
      return Value::Text(value.ToString());
    case ColumnType::kBool:
      if (value.type() == ValueType::kBool) return value;
      if (value.type() == ValueType::kInt) {
        return Value::Bool(value.AsInt() != 0);
      }
      break;
    case ColumnType::kDate:
      if (value.type() == ValueType::kDate) return value;
      if (value.type() == ValueType::kText) {
        auto days = ParseDate(value.AsText());
        if (days) return Value::Date(*days);
      }
      if (value.type() == ValueType::kInt) return Value::Date(value.AsInt());
      break;
  }
  return Status::InvalidArgument(
      "cannot store " + std::string(ValueTypeToString(value.type())) +
      " value '" + value.ToString() + "' in column " + name_ + "." +
      columns_[col].name);
}

Status Table::Insert(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "INSERT into " + name_ + " expects " +
        std::to_string(columns_.size()) + " values, got " +
        std::to_string(row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    PSQL_ASSIGN_OR_RETURN(row[i], CoerceToColumn(i, std::move(row[i])));
  }
  rows_.push_back(std::move(row));
  ++version_;
  return Status::OK();
}

void Table::BulkLoadUnchecked(std::vector<Row> rows) {
  if (rows_.empty()) {
    rows_ = std::move(rows);
  } else {
    rows_.reserve(rows_.size() + rows.size());
    for (auto& r : rows) rows_.push_back(std::move(r));
  }
  ++version_;
}

size_t Table::DeleteWhere(const std::vector<bool>& matches) {
  size_t kept = 0;
  size_t deleted = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (i < matches.size() && matches[i]) {
      ++deleted;
    } else {
      if (kept != i) rows_[kept] = std::move(rows_[i]);
      ++kept;
    }
  }
  rows_.resize(kept);
  if (deleted > 0) ++version_;
  return deleted;
}

Status Table::UpdateCell(size_t row, size_t col, Value value) {
  PSQL_ASSIGN_OR_RETURN(auto coerced, CoerceToColumn(col, std::move(value)));
  rows_[row][col] = std::move(coerced);
  ++version_;
  return Status::OK();
}

}  // namespace prefsql
