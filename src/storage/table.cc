#include "storage/table.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "types/date.h"
#include "util/string_util.h"

namespace prefsql {

uint64_t Table::NextId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Table::Table(std::string name, std::vector<ColumnDef> columns,
             EpochManager* epochs)
    : name_(std::move(name)), columns_(std::move(columns)) {
  if (epochs == nullptr) {
    owned_epochs_ = std::make_unique<EpochManager>();
    epochs_ = owned_epochs_.get();
  } else {
    epochs_ = epochs;
  }
  std::vector<ColumnInfo> infos;
  infos.reserve(columns_.size());
  for (const auto& c : columns_) infos.push_back({"", c.name});
  schema_ = Schema(std::move(infos));
  seals_.push_back({0, 0, 0});
}

Result<size_t> Table::ColumnIndex(const std::string& column) const {
  auto idx = FindNameIgnoreCase(
      columns_, column, [](const ColumnDef& c) { return std::string_view(c.name); });
  if (idx) return *idx;
  return Status::NotFound("no column '" + column + "' in table " + name_);
}

Result<Value> Table::CoerceToColumn(size_t col, Value value) const {
  if (value.is_null()) return value;
  switch (columns_[col].type) {
    case ColumnType::kInt:
      if (value.type() == ValueType::kInt) return value;
      if (value.type() == ValueType::kDouble) {
        double d = value.AsDouble();
        if (d == std::floor(d)) return Value::Int(static_cast<int64_t>(d));
      }
      break;
    case ColumnType::kDouble:
      if (value.type() == ValueType::kDouble) return value;
      if (value.type() == ValueType::kInt) {
        return Value::Double(static_cast<double>(value.AsInt()));
      }
      break;
    case ColumnType::kText:
      if (value.type() == ValueType::kText) return value;
      // Render non-text scalars; keeps INSERT ergonomics close to SQLite.
      return Value::Text(value.ToString());
    case ColumnType::kBool:
      if (value.type() == ValueType::kBool) return value;
      if (value.type() == ValueType::kInt) {
        return Value::Bool(value.AsInt() != 0);
      }
      break;
    case ColumnType::kDate:
      if (value.type() == ValueType::kDate) return value;
      if (value.type() == ValueType::kText) {
        auto days = ParseDate(value.AsText());
        if (days) return Value::Date(*days);
      }
      if (value.type() == ValueType::kInt) return Value::Date(value.AsInt());
      break;
  }
  return Status::InvalidArgument(
      "cannot store " + std::string(ValueTypeToString(value.type())) +
      " value '" + value.ToString() + "' in column " + name_ + "." +
      columns_[col].name);
}

Result<Row> Table::CoerceRow(Row row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "INSERT into " + name_ + " expects " +
        std::to_string(columns_.size()) + " values, got " +
        std::to_string(row.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    PSQL_ASSIGN_OR_RETURN(row[i], CoerceToColumn(i, std::move(row[i])));
  }
  return row;
}

Status Table::Insert(Row row) {
  PSQL_ASSIGN_OR_RETURN(row, CoerceRow(std::move(row)));
  uint64_t commit = epochs_->BeginWrite();
  heap_.Append(std::move(row), commit);
  SealVersion(commit);
  epochs_->Publish(commit);
  return Status::OK();
}

void Table::BulkLoadUnchecked(std::vector<Row> rows) {
  uint64_t commit = epochs_->BeginWrite();
  for (auto& r : rows) heap_.Append(std::move(r), commit);
  SealVersion(commit);
  epochs_->Publish(commit);
}

void Table::SealVersion(uint64_t commit_epoch) {
  uint64_t v = version_.load(std::memory_order_relaxed) + 1;
  version_.store(v, std::memory_order_release);
  std::lock_guard<std::mutex> g(seal_mu_);
  seals_.push_back({commit_epoch, v, heap_.size()});
}

uint64_t Table::VersionAt(uint64_t snapshot) const {
  std::lock_guard<std::mutex> g(seal_mu_);
  // Last seal with epoch <= snapshot (seals_ ascends; seeded with epoch 0).
  auto it = std::upper_bound(
      seals_.begin(), seals_.end(), snapshot,
      [](uint64_t snap, const Seal& s) { return snap < s.epoch; });
  return it == seals_.begin() ? 0 : std::prev(it)->version;
}

size_t Table::HeapSizeAt(uint64_t snapshot) const {
  std::lock_guard<std::mutex> g(seal_mu_);
  auto it = std::upper_bound(
      seals_.begin(), seals_.end(), snapshot,
      [](uint64_t snap, const Seal& s) { return snap < s.epoch; });
  return it == seals_.begin() ? 0 : std::prev(it)->heap_size;
}

size_t Table::NumVisibleAt(uint64_t snapshot) const {
  size_t n = HeapSizeAt(snapshot);
  size_t visible = 0;
  for (size_t pos = 0; pos < n; ++pos) {
    if (heap_.VisibleAt(pos, snapshot)) ++visible;
  }
  return visible;
}

size_t Table::CollectGarbage(uint64_t horizon) {
  size_t freed = heap_.CollectGarbage(horizon);
  std::lock_guard<std::mutex> g(seal_mu_);
  // Keep the last seal at or below the horizon (it resolves VersionAt for
  // the horizon snapshot itself) and everything after it.
  auto it = std::upper_bound(
      seals_.begin(), seals_.end(), horizon,
      [](uint64_t snap, const Seal& s) { return snap < s.epoch; });
  if (it != seals_.begin()) --it;
  seals_.erase(seals_.begin(), it);
  return freed;
}

}  // namespace prefsql
