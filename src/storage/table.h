// Base table storage: a typed, multi-version row heap (MVCC).
//
// Every DML statement commits one epoch: INSERT appends versions stamped
// [commit, inf), DELETE end-stamps victims at commit, UPDATE end-stamps the
// old version and appends the replacement. A reader at snapshot S sees
// exactly the versions with begin <= S < end, so concurrent readers never
// block writers and a pinned cursor keeps a stable view for its lifetime.
//
// SealVersion records (commit epoch -> logical table version, heap size)
// after each statement; VersionAt/HeapSizeAt let snapshot readers key the
// plan/key/skyline caches by the table version *their epoch* saw, which is
// how a pinned reader can still serve from a superseded cache entry.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "storage/epoch.h"
#include "storage/row_heap.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/status.h"

namespace prefsql {

/// An in-memory base table: column definitions plus a versioned row heap.
///
/// Values are checked/coerced against the declared column type on insert
/// (INTEGER accepts doubles with integral value, DATE accepts date-formatted
/// TEXT, DOUBLE accepts INTEGER, ...). NULL is allowed in any column.
///
/// Write primitives (AppendVersion/MarkDeleted/SealVersion) assume one
/// writer at a time — the engine serializes DML under its writer mutex.
/// The convenience Insert/BulkLoadUnchecked wrappers commit one epoch per
/// call for single-threaded callers (tests, CSV import, generators).
class Table {
 public:
  /// `epochs` is the database-wide epoch manager (owned by the Catalog);
  /// when null (standalone tables in tests) the table owns a private one.
  Table(std::string name, std::vector<ColumnDef> columns,
        EpochManager* epochs = nullptr);

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  const Schema& schema() const { return schema_; }

  const RowHeap& heap() const { return heap_; }
  /// All slots ever appended, live and dead (the slot-position key space of
  /// the preference caches).
  size_t heap_size() const { return heap_.size(); }
  EpochManager& epochs() const { return *epochs_; }

  /// Visible row count at the current epoch (O(heap); tests/stats — scans
  /// stream visibility instead of counting first).
  size_t num_rows() const { return NumVisibleAt(epochs_->current()); }
  size_t NumVisibleAt(uint64_t snapshot) const;

  /// Finds the position of `column` (case-insensitive).
  Result<size_t> ColumnIndex(const std::string& column) const;

  /// Coerces `value` to the declared type of column `col` (also used by
  /// UPDATE/INSERT...SELECT paths).
  Result<Value> CoerceToColumn(size_t col, Value value) const;

  /// Arity check plus per-cell coercion of a full row.
  Result<Row> CoerceRow(Row row) const;

  // -- Convenience write path (auto-commits one epoch per call) ------------

  /// Validates/coerces and appends a row visible from a fresh commit epoch.
  Status Insert(Row row);

  /// Appends rows without per-value validation (trusted bulk load used by
  /// the workload generators); one commit epoch for the whole batch.
  void BulkLoadUnchecked(std::vector<Row> rows);

  // -- MVCC write primitives (engine writer path) ---------------------------
  //
  // The executor allocates `commit = epochs().BeginWrite()`, stamps all of
  // the statement's changes with it, calls SealVersion(commit), and finally
  // epochs().Publish(commit) — readers see all of the statement or none.

  /// Appends one coerced row version with begin = `begin`; returns its slot.
  size_t AppendVersion(Row row, uint64_t begin) {
    return heap_.Append(std::move(row), begin);
  }

  /// End-stamps `slot` (DELETE, or the old version of an UPDATE).
  void MarkDeleted(size_t slot, uint64_t end) { heap_.MarkDead(slot, end); }

  /// Bumps the logical table version and records that `commit_epoch` sealed
  /// it at the current heap size. Call once per mutating statement.
  void SealVersion(uint64_t commit_epoch);

  // -- Snapshot views -------------------------------------------------------

  /// The logical table version visible at `snapshot` (the version sealed by
  /// the last commit epoch <= snapshot). Cache keys on read paths use this
  /// instead of version() so a pinned reader keys the entry its epoch saw.
  uint64_t VersionAt(uint64_t snapshot) const;

  /// The heap size at `snapshot` — the slot-position key space a reader at
  /// that snapshot computes caches over (deterministic per version).
  size_t HeapSizeAt(uint64_t snapshot) const;

  /// Frees payloads of versions invisible to every snapshot >= `horizon`
  /// and trims version history below it. The engine calls this only while
  /// it holds the catalog lock exclusively (no active readers) with
  /// horizon <= the oldest pinned snapshot. Returns payloads freed.
  size_t CollectGarbage(uint64_t horizon);

  /// Monotone counter bumped on every mutation (latest sealed version);
  /// indexes and the engine's cache maintenance compare it for staleness.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Process-unique identity of this table object. Unlike the name, the id
  /// distinguishes a dropped-and-recreated table from its predecessor, so
  /// version-keyed caches can never match entries of a dead incarnation.
  uint64_t id() const { return id_; }

 private:
  static uint64_t NextId();

  struct Seal {
    uint64_t epoch;
    uint64_t version;
    size_t heap_size;
  };

  std::string name_;
  std::vector<ColumnDef> columns_;
  Schema schema_;
  RowHeap heap_;
  std::unique_ptr<EpochManager> owned_epochs_;
  EpochManager* epochs_;
  std::atomic<uint64_t> version_{0};
  uint64_t id_ = NextId();

  // Commit history, ascending by epoch; seeded with {0, 0, 0} so every
  // snapshot resolves. Guarded by seal_mu_ (appends are writer-serialized,
  // but readers binary-search concurrently).
  mutable std::mutex seal_mu_;
  std::vector<Seal> seals_;
};

}  // namespace prefsql
