// Base table storage: a typed heap of rows.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "types/schema.h"
#include "types/value.h"
#include "util/status.h"

namespace prefsql {

/// An in-memory base table: column definitions plus a row heap.
///
/// Values are checked/coerced against the declared column type on insert
/// (INTEGER accepts doubles with integral value, DATE accepts date-formatted
/// TEXT, DOUBLE accepts INTEGER, ...). NULL is allowed in any column.
class Table {
 public:
  Table(std::string name, std::vector<ColumnDef> columns);

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  /// Finds the position of `column` (case-insensitive).
  Result<size_t> ColumnIndex(const std::string& column) const;

  /// Validates/coerces and appends a row. The row must have one value per
  /// column.
  Status Insert(Row row);

  /// Appends rows without per-value validation (trusted bulk load used by
  /// the workload generators).
  void BulkLoadUnchecked(std::vector<Row> rows);

  /// Deletes all rows matching `predicate` (row index based); returns the
  /// number of deleted rows.
  size_t DeleteWhere(const std::vector<bool>& matches);

  /// In-place update of a row cell with type coercion.
  Status UpdateCell(size_t row, size_t col, Value value);

  /// Coerces `value` to the declared type of column `col` (also used by
  /// UPDATE/INSERT...SELECT paths).
  Result<Value> CoerceToColumn(size_t col, Value value) const;

  /// Monotone counter bumped on every mutation; indexes use it to detect
  /// staleness and the engine's key cache embeds it in cache keys.
  uint64_t version() const { return version_; }

  /// Process-unique identity of this table object. Unlike the name, the id
  /// distinguishes a dropped-and-recreated table from its predecessor, so
  /// version-keyed caches can never match entries of a dead incarnation.
  uint64_t id() const { return id_; }

 private:
  static uint64_t NextId();

  std::string name_;
  std::vector<ColumnDef> columns_;
  Schema schema_;
  std::vector<Row> rows_;
  uint64_t version_ = 0;
  uint64_t id_ = NextId();
};

}  // namespace prefsql
