#include "storage/index.h"

#include "storage/row_heap.h"
#include "storage/table.h"

namespace prefsql {

Index::Index(std::string name, const Table* table,
             std::vector<size_t> key_columns)
    : name_(std::move(name)),
      table_(table),
      key_columns_(std::move(key_columns)) {}

void Index::RefreshIfStale() {
  const RowHeap& heap = table_->heap();
  size_t n = heap.size();
  if (built_size_ == n) return;
  entries_.clear();
  for (size_t pos = 0; pos < n; ++pos) {
    if (heap.payload_cleared(pos)) continue;  // GC'd version: key is gone
    const Row& row = heap.row(pos);
    Row key;
    key.reserve(key_columns_.size());
    for (size_t c : key_columns_) key.push_back(row[c]);
    entries_[std::move(key)].push_back(pos);
  }
  built_size_ = n;
}

std::vector<size_t> Index::Lookup(const Row& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  RefreshIfStale();
  auto it = entries_.find(key);
  if (it == entries_.end()) return {};
  return it->second;
}

std::vector<size_t> Index::RangeLookup(const Value& lo, const Value& hi) {
  return RangeLookupBounds(&lo, &hi);
}

std::vector<size_t> Index::RangeLookupBounds(const Value* lo,
                                             const Value* hi) {
  std::lock_guard<std::mutex> lock(mutex_);
  RefreshIfStale();
  std::vector<size_t> out;
  auto begin = lo != nullptr ? entries_.lower_bound(Row{*lo})
                             : entries_.begin();
  for (auto it = begin; it != entries_.end(); ++it) {
    if (hi != nullptr && Value::Compare(it->first[0], *hi) > 0) break;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

size_t Index::NumDistinctKeys() {
  std::lock_guard<std::mutex> lock(mutex_);
  RefreshIfStale();
  return entries_.size();
}

}  // namespace prefsql
