// MVCC epoch machinery: commit-epoch allocation, snapshot pinning, and the
// ambient snapshot scope readers use to agree on a point-in-time view.
//
// Every committed DML statement gets one epoch. Row versions carry
// [begin, end) epoch stamps (see row_heap.h); a reader pins the current
// epoch when its statement (or streaming Cursor) opens and sees exactly the
// versions with begin <= snapshot < end. Writers allocate the next epoch,
// stamp their changes, and publish it once the statement's effects are
// complete — readers either observe the whole statement or none of it.
//
// The pin registry tracks every snapshot still held by an open statement or
// cursor so garbage collection and cache sweeps never destroy state an
// active reader can still see (MinPinnedOr is the GC horizon).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>
#include <utility>

namespace prefsql {

/// `end` stamp of a live (not yet superseded/deleted) row version.
inline constexpr uint64_t kInfiniteEpoch = ~0ULL;

/// Allocates commit epochs and tracks pinned reader snapshots.
///
/// Thread-safety contract: `BeginWrite`/`Publish` are called by one writer
/// at a time (the engine serializes DML under its writer mutex); everything
/// else is safe from any thread.
class EpochManager {
 public:
  /// Latest published commit epoch. An acquire load: a reader that observes
  /// epoch E also observes every row stamp and payload written by the
  /// statement that published E.
  uint64_t current() const { return epoch_.load(std::memory_order_acquire); }

  /// Allocates the commit epoch for the next write statement. Writers are
  /// serialized externally, so current()+1 is collision-free.
  uint64_t BeginWrite() { return current() + 1; }

  /// Publishes `epoch` after all of its row stamps are in place (release
  /// store — pairs with the acquire in current()).
  void Publish(uint64_t epoch) {
    epoch_.store(epoch, std::memory_order_release);
  }

  /// Pins the current epoch as a reader snapshot; returns it. The snapshot
  /// stays protected from GC until the matching Unpin.
  uint64_t Pin() {
    std::lock_guard<std::mutex> g(mu_);
    uint64_t snapshot = current();
    pins_.insert(snapshot);
    return snapshot;
  }

  void Unpin(uint64_t snapshot) {
    std::lock_guard<std::mutex> g(mu_);
    auto it = pins_.find(snapshot);
    if (it != pins_.end()) pins_.erase(it);
  }

  /// Oldest pinned snapshot, or `fallback` when nothing is pinned. Used as
  /// the GC horizon and by the cache sweep's liveness rule.
  uint64_t MinPinnedOr(uint64_t fallback) const {
    std::lock_guard<std::mutex> g(mu_);
    return pins_.empty() ? fallback : *pins_.begin();
  }

  size_t pinned_count() const {
    std::lock_guard<std::mutex> g(mu_);
    return pins_.size();
  }

 private:
  std::atomic<uint64_t> epoch_{0};
  mutable std::mutex mu_;
  std::multiset<uint64_t> pins_;
};

/// Movable RAII handle for a pinned snapshot (held by statements for their
/// duration and by streaming Cursors for their whole lifetime).
class SnapshotPin {
 public:
  SnapshotPin() = default;
  explicit SnapshotPin(EpochManager* epochs)
      : epochs_(epochs), snapshot_(epochs->Pin()) {}
  ~SnapshotPin() { Release(); }

  SnapshotPin(SnapshotPin&& other) noexcept
      : epochs_(std::exchange(other.epochs_, nullptr)),
        snapshot_(other.snapshot_) {}
  SnapshotPin& operator=(SnapshotPin&& other) noexcept {
    if (this != &other) {
      Release();
      epochs_ = std::exchange(other.epochs_, nullptr);
      snapshot_ = other.snapshot_;
    }
    return *this;
  }
  SnapshotPin(const SnapshotPin&) = delete;
  SnapshotPin& operator=(const SnapshotPin&) = delete;

  bool pinned() const { return epochs_ != nullptr; }
  uint64_t snapshot() const { return snapshot_; }

  void Release() {
    if (epochs_ != nullptr) {
      epochs_->Unpin(snapshot_);
      epochs_ = nullptr;
    }
  }

 private:
  EpochManager* epochs_ = nullptr;
  uint64_t snapshot_ = 0;
};

// ---------------------------------------------------------------------------
// Ambient snapshot scope.
//
// Scans and the planner capture their read epoch at construction. Plumbing
// the epoch through every operator/planner constructor would touch dozens of
// signatures for a value that is constant per statement, so the engine
// instead establishes a thread-local scope around each statement execution
// (and Cursor::Next re-establishes the cursor's pinned snapshot each pull,
// covering subplans materialized lazily during streaming). Code that needs
// the read epoch asks AmbientSnapshotOr(fallback); outside any scope it
// falls back to the caller-supplied current epoch.
// ---------------------------------------------------------------------------

namespace epoch_internal {
struct AmbientState {
  uint64_t snapshot = 0;
  bool set = false;
};
inline AmbientState& TlsAmbient() {
  thread_local AmbientState state;
  return state;
}
}  // namespace epoch_internal

/// Establishes `snapshot` as the ambient read epoch for this thread for the
/// scope's lifetime (save/restore, so scopes nest).
class ScopedSnapshot {
 public:
  explicit ScopedSnapshot(uint64_t snapshot)
      : saved_(epoch_internal::TlsAmbient()) {
    epoch_internal::TlsAmbient() = {snapshot, true};
  }
  ~ScopedSnapshot() { epoch_internal::TlsAmbient() = saved_; }
  ScopedSnapshot(const ScopedSnapshot&) = delete;
  ScopedSnapshot& operator=(const ScopedSnapshot&) = delete;

 private:
  epoch_internal::AmbientState saved_;
};

/// The ambient read epoch, or `fallback` when no scope is active (direct
/// single-threaded Database/Executor use, tests).
inline uint64_t AmbientSnapshotOr(uint64_t fallback) {
  const auto& state = epoch_internal::TlsAmbient();
  return state.set ? state.snapshot : fallback;
}

inline bool HasAmbientSnapshot() { return epoch_internal::TlsAmbient().set; }

}  // namespace prefsql
