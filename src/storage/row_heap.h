// RowHeap: an append-only, position-stable multi-version row store.
//
// MVCC turns every DML statement into appends: INSERT appends a version with
// begin = commit epoch, DELETE end-stamps the victim's slot, UPDATE
// end-stamps the old version and appends the new one. Slots are never moved
// or reused, which gives three properties the engine builds on:
//
//   1. Readers never block writers. A concurrent reader at snapshot S only
//      dereferences slots below a size it loaded with acquire semantics
//      (published by the writer with release), and filters by
//      begin <= S < end — end stamps are atomic, so a reader races a
//      DELETE only into one of two correct outcomes.
//   2. Slot positions are durable identifiers. The skyline/key caches key
//      tuples by slot position; because positions never shift, DML
//      maintenance appends/re-stamps instead of remapping position lists.
//   3. Borrowed RowRefs stay valid. Rows live in chunked buckets (geometric
//      doubling, starting at kFirstBucketSize), never reallocated, so a
//      streaming operator can hold `const Row*` across concurrent appends.
//
// Superseded payloads are reclaimed by CollectGarbage(horizon), which the
// engine only runs while it holds the catalog lock exclusively (no active
// readers) with horizon <= the oldest pinned snapshot; the slot header
// survives so positions stay stable, only the cell payload is freed.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>

#include "storage/epoch.h"
#include "types/value.h"

namespace prefsql {

class RowHeap {
 public:
  struct Slot {
    Row row;
    // Plain: written before the size_ release store that publishes the slot.
    uint64_t begin = 0;
    // Atomic: a DELETE/UPDATE stamps it while concurrent readers test
    // visibility.
    std::atomic<uint64_t> end{kInfiniteEpoch};
    // Payload reclaimed by CollectGarbage (row is empty). Only flipped while
    // no readers are active, but atomic so cache-maintenance code on other
    // writer iterations reads it cheaply.
    std::atomic<bool> cleared{false};
  };

  static constexpr size_t kFirstBucketSize = 512;
  static constexpr size_t kNumBuckets = 48;

  RowHeap() = default;
  ~RowHeap() {
    for (auto& b : buckets_) {
      delete[] b.load(std::memory_order_relaxed);
    }
  }
  RowHeap(const RowHeap&) = delete;
  RowHeap& operator=(const RowHeap&) = delete;

  /// Number of published slots. Acquire: all slots below the returned size
  /// are fully initialized for this thread.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Appends one row version (single writer at a time; the engine holds its
  /// writer mutex). Returns the new slot position.
  size_t Append(Row row, uint64_t begin) {
    size_t pos = size_.load(std::memory_order_relaxed);
    Slot& s = SlotForAppend(pos);
    s.row = std::move(row);
    s.begin = begin;
    size_.store(pos + 1, std::memory_order_release);
    return pos;
  }

  /// End-stamps `pos`: the version stops being visible to snapshots >= end.
  void MarkDead(size_t pos, uint64_t end) {
    slot_mut(pos).end.store(end, std::memory_order_release);
  }

  const Row& row(size_t pos) const { return slot(pos).row; }
  uint64_t begin_epoch(size_t pos) const { return slot(pos).begin; }
  uint64_t end_epoch(size_t pos) const {
    return slot(pos).end.load(std::memory_order_acquire);
  }
  bool payload_cleared(size_t pos) const {
    return slot(pos).cleared.load(std::memory_order_acquire);
  }

  bool VisibleAt(size_t pos, uint64_t snapshot) const {
    const Slot& s = slot(pos);
    return s.begin <= snapshot &&
           snapshot < s.end.load(std::memory_order_acquire);
  }

  /// Recovers the slot position of a row borrowed from this heap (the BMO
  /// prefilter hands survivor Row pointers back for position-keyed cache
  /// lookups). Linear in the number of buckets (~log of heap size), O(1)
  /// within the matching bucket. Returns nullopt for foreign pointers.
  std::optional<size_t> PositionOf(const Row* r) const {
    size_t n = size();
    size_t base = 0;
    const char* p = reinterpret_cast<const char*>(r);
    for (size_t b = 0; b < kNumBuckets && base < n; ++b) {
      size_t cap = kFirstBucketSize << b;
      const Slot* bucket = buckets_[b].load(std::memory_order_acquire);
      if (bucket == nullptr) break;
      const char* lo = reinterpret_cast<const char*>(bucket);
      const char* hi = reinterpret_cast<const char*>(bucket + cap);
      if (p >= lo && p < hi) {
        size_t pos = base + static_cast<size_t>(p - lo) / sizeof(Slot);
        if (pos < n && &bucket[pos - base].row == r) return pos;
        return std::nullopt;
      }
      base += cap;
    }
    return std::nullopt;
  }

  /// Frees payloads of versions dead at or before `horizon` (end <= horizon
  /// means no snapshot >= horizon can see them; the caller guarantees no
  /// older snapshot is pinned and no readers are active). Slot headers are
  /// kept so positions remain stable. Returns the number of payloads freed.
  size_t CollectGarbage(uint64_t horizon) {
    size_t n = size();
    size_t freed = 0;
    for (size_t pos = 0; pos < n; ++pos) {
      Slot& s = slot_mut(pos);
      if (s.cleared.load(std::memory_order_relaxed)) continue;
      if (s.end.load(std::memory_order_relaxed) <= horizon) {
        s.row = Row();
        s.cleared.store(true, std::memory_order_release);
        ++freed;
      }
    }
    return freed;
  }

 private:
  // Bucket b holds kFirstBucketSize << b slots; cumulative capacity before
  // bucket b is kFirstBucketSize * (2^b - 1).
  static void Locate(size_t pos, size_t* bucket, size_t* offset) {
    size_t q = pos / kFirstBucketSize + 1;
    size_t b = 0;
    while ((q >> 1) != 0) {
      q >>= 1;
      ++b;
    }
    *bucket = b;
    *offset = pos - kFirstBucketSize * ((size_t{1} << b) - 1);
  }

  const Slot& slot(size_t pos) const {
    size_t b, off;
    Locate(pos, &b, &off);
    return buckets_[b].load(std::memory_order_acquire)[off];
  }
  Slot& slot_mut(size_t pos) {
    size_t b, off;
    Locate(pos, &b, &off);
    return buckets_[b].load(std::memory_order_acquire)[off];
  }

  Slot& SlotForAppend(size_t pos) {
    size_t b, off;
    Locate(pos, &b, &off);
    Slot* bucket = buckets_[b].load(std::memory_order_relaxed);
    if (bucket == nullptr) {
      bucket = new Slot[kFirstBucketSize << b];
      // Release so a reader that later observes the published size also
      // observes the bucket pointer and its initialized slots.
      buckets_[b].store(bucket, std::memory_order_release);
    }
    return bucket[off];
  }

  std::array<std::atomic<Slot*>, kNumBuckets> buckets_{};
  std::atomic<size_t> size_{0};
};

}  // namespace prefsql
