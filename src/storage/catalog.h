// Catalog: name -> table / view / index mapping for one database.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sql/ast.h"
#include "storage/epoch.h"
#include "storage/index.h"
#include "storage/table.h"
#include "util/status.h"

namespace prefsql {

/// Owns all persistent objects of a database instance.
///
/// The name->object maps are internally synchronized (shared_mutex): the
/// engine serializes DDL against statements with its own lock, but the
/// background MVCC reclaimer walks the catalog from its own thread, and
/// embedded users (workload generators, the shell's .demo, benches) create
/// tables through Database directly without ever taking the engine lock.
/// The internal lock only protects map *structure* — returned Table*/Index*
/// stay valid under concurrent DDL-free traffic because the map values are
/// stable unique_ptr targets; object contents are protected by MVCC and
/// the objects' own internal locks.
class Catalog {
 public:
  /// Database-wide MVCC epoch manager: every table created through this
  /// catalog stamps row versions against it, so one snapshot epoch gives a
  /// consistent point-in-time view across all tables.
  EpochManager& epochs() { return epochs_; }
  const EpochManager& epochs() const { return epochs_; }

  Status CreateTable(const std::string& name, std::vector<ColumnDef> columns,
                     bool if_not_exists);
  Status CreateView(const std::string& name,
                    std::shared_ptr<SelectStmt> definition);
  Status CreateIndex(const std::string& name, const std::string& table,
                     const std::vector<std::string>& columns);

  /// Stores a named preference (Preference Definition Language, §2.2). The
  /// definition must already have nested PREFERENCE references expanded.
  Status CreatePreference(const std::string& name, PrefTermPtr definition);
  Result<const PrefTerm*> GetPreference(const std::string& name) const;
  bool HasPreference(const std::string& name) const;

  Status Drop(Statement::DropKind kind, const std::string& name,
              bool if_exists);

  /// Base table lookup (views are not returned here).
  Result<Table*> GetTable(const std::string& name) const;
  /// View definition lookup.
  Result<std::shared_ptr<SelectStmt>> GetView(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  bool HasView(const std::string& name) const;

  /// Indexes defined on `table`.
  std::vector<Index*> IndexesOn(const std::string& table) const;

  /// Finds an index on `table` whose key columns are exactly `columns`
  /// (order-sensitive); nullptr if none.
  Index* FindIndex(const std::string& table,
                   const std::vector<size_t>& columns) const;

  std::vector<std::string> TableNames() const;

  /// Monotone DDL counter: bumped whenever the set of tables, views,
  /// indexes or stored preferences changes. Prepared-plan cache keys embed
  /// it, so any DDL makes older preparations unreachable. Atomic: the
  /// engine reads it for cache keying before taking the statement lock.
  uint64_t version() const { return version_.load(std::memory_order_relaxed); }

  /// Suppresses version bumps while set. The engine uses this around the
  /// transient rewrite Aux views it creates and drops per query — they can
  /// never affect a cached preparation, and bumping for them would flush
  /// the plan cache on every rewrite-mode preference query.
  void set_suppress_version_bumps(bool on) { suppress_version_bumps_ = on; }

 private:
  static std::string Key(const std::string& name);

  // Unlocked internals for reuse from methods already holding mu_.
  Result<Table*> GetTableUnlocked(const std::string& name) const;
  std::vector<Index*> IndexesOnUnlocked(const std::string& table) const;

  void BumpVersion() {
    if (!suppress_version_bumps_.load(std::memory_order_relaxed)) {
      version_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  EpochManager epochs_;
  mutable std::shared_mutex mu_;  // guards the maps below
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, std::shared_ptr<SelectStmt>> views_;
  std::unordered_map<std::string, std::unique_ptr<Index>> indexes_;
  std::unordered_map<std::string, PrefTermPtr> preferences_;
  // index name -> table key, for IndexesOn.
  std::unordered_map<std::string, std::string> index_table_;
  std::atomic<uint64_t> version_{0};
  std::atomic<bool> suppress_version_bumps_{false};
};

}  // namespace prefsql
