// Catalog: name -> table / view / index mapping for one database.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sql/ast.h"
#include "storage/index.h"
#include "storage/table.h"
#include "util/status.h"

namespace prefsql {

/// Owns all persistent objects of a database instance.
class Catalog {
 public:
  Status CreateTable(const std::string& name, std::vector<ColumnDef> columns,
                     bool if_not_exists);
  Status CreateView(const std::string& name,
                    std::shared_ptr<SelectStmt> definition);
  Status CreateIndex(const std::string& name, const std::string& table,
                     const std::vector<std::string>& columns);

  /// Stores a named preference (Preference Definition Language, §2.2). The
  /// definition must already have nested PREFERENCE references expanded.
  Status CreatePreference(const std::string& name, PrefTermPtr definition);
  Result<const PrefTerm*> GetPreference(const std::string& name) const;
  bool HasPreference(const std::string& name) const;

  Status Drop(Statement::DropKind kind, const std::string& name,
              bool if_exists);

  /// Base table lookup (views are not returned here).
  Result<Table*> GetTable(const std::string& name) const;
  /// View definition lookup.
  Result<std::shared_ptr<SelectStmt>> GetView(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  bool HasView(const std::string& name) const;

  /// Indexes defined on `table`.
  std::vector<Index*> IndexesOn(const std::string& table) const;

  /// Finds an index on `table` whose key columns are exactly `columns`
  /// (order-sensitive); nullptr if none.
  Index* FindIndex(const std::string& table,
                   const std::vector<size_t>& columns) const;

  std::vector<std::string> TableNames() const;

 private:
  static std::string Key(const std::string& name);

  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, std::shared_ptr<SelectStmt>> views_;
  std::unordered_map<std::string, std::unique_ptr<Index>> indexes_;
  std::unordered_map<std::string, PrefTermPtr> preferences_;
  // index name -> table key, for IndexesOn.
  std::unordered_map<std::string, std::string> index_table_;
};

}  // namespace prefsql
