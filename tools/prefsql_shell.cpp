// prefsql_shell: an interactive Preference SQL session — the closest thing
// to pointing an ODBC client at the paper's middleware stack.
//
//   $ ./build/tools/prefsql_shell
//   prefsql> .demo cars
//   prefsql> SELECT * FROM Cars PREFERRING Make = 'Audi' AND Diesel = 'yes';
//   prefsql> EXPLAIN SELECT * FROM Cars PREFERRING Make = 'Audi';
//   prefsql> .mode bnl
//   prefsql> .quit
//
// Dot commands: .help, .tables, .mode rewrite|bnl|naive|sfs, .demo <name>,
// .quit. Everything else is (Preference) SQL, terminated by ';'.
//
// The shell drives the driver-style client surface: single SELECT
// statements stream through a Cursor (rows appear as they are produced,
// capped at kMaxRows), and multi-statement scripts run through the
// per-statement ExecuteScript callback so no result is silently dropped.
//
// Ctrl-C cancels the in-flight statement instead of killing the shell:
// the signal handler only raises a flag (async-signal-safe); a watcher
// thread turns it into Session::CancelCurrent(), and the statement
// returns with a Cancelled status. Statement timing is printed after
// every statement, distinguishing completed / timed-out / cancelled
// (set a deadline with `SET statement_timeout_ms = <n>;`).
//
// Remote mode: `prefsql_shell --connect host:port` drives a running
// prefsqld over the wire protocol instead of an embedded engine. The
// statement loop, streaming display, and timing lines are shared; Ctrl-C
// sends the out-of-band CANCEL frame, and `.stats` prints the server's
// counters. Errors arrive with the same numeric status codes the
// embedded engine produces.

#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <atomic>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "core/connection.h"
#include "engine/csv.h"
#include "net/client.h"
#include "util/string_util.h"
#include "workload/generators.h"

namespace {

using prefsql::Connection;
using prefsql::EvaluationMode;

constexpr size_t kMaxRows = 50;

// ---------------------------------------------------------------------------
// Ctrl-C -> cooperative cancel. The handler is restricted to flag-raising;
// CancelCurrent takes a mutex, so the watcher thread issues it instead.
// ---------------------------------------------------------------------------
volatile std::sig_atomic_t g_sigint = 0;
std::atomic<Connection*> g_conn{nullptr};
std::atomic<prefsql::net::Client*> g_remote{nullptr};
std::atomic<bool> g_shutdown{false};

void OnSigint(int) { g_sigint = 1; }

void WatchSigint() {
  while (!g_shutdown.load(std::memory_order_relaxed)) {
    if (g_sigint) {
      g_sigint = 0;
      Connection* conn = g_conn.load(std::memory_order_acquire);
      if (conn != nullptr && conn->session().CancelCurrent()) {
        std::printf("\n^C — cancelling statement\n");
        std::fflush(stdout);
      }
      // Remote mode: the kill switch is the out-of-band CANCEL frame
      // (Client::Cancel is the one thread-safe entry point).
      prefsql::net::Client* remote = g_remote.load(std::memory_order_acquire);
      if (remote != nullptr && remote->Cancel().ok()) {
        std::printf("\n^C — cancelling statement\n");
        std::fflush(stdout);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

double ElapsedMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Statement postmortem: completed, timed out, or cancelled — with timing,
/// so deadline experiments read directly off the prompt.
void PrintOutcome(const prefsql::Status& status, double elapsed_ms) {
  if (status.ok()) {
    std::printf("(%.1f ms)\n", elapsed_ms);
  } else if (status.IsTimeout()) {
    std::printf("timed out after %.1f ms: %s\n", elapsed_ms,
                status.ToString().c_str());
  } else if (status.IsCancelled()) {
    std::printf("cancelled after %.1f ms: %s\n", elapsed_ms,
                status.ToString().c_str());
  } else {
    std::printf("error: %s\n", status.ToString().c_str());
  }
}

/// True iff `sql` holds a single statement (no interior ';').
bool IsSingleStatement(const std::string& sql) {
  bool in_string = false;
  for (size_t i = 0; i + 1 < sql.size(); ++i) {
    char c = sql[i];
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      for (size_t j = i + 1; j + 1 < sql.size(); ++j) {
        if (!std::isspace(static_cast<unsigned char>(sql[j]))) return false;
      }
    }
  }
  return true;
}

void PrintResult(const prefsql::ResultTable& result) {
  if (result.num_columns() > 0) {
    std::printf("%s(%zu rows)\n", result.ToString(kMaxRows).c_str(),
                result.num_rows());
  } else {
    std::printf("ok\n");
  }
}

/// Streams a single SELECT through the Cursor API, printing rows as they
/// arrive (the driver surface the paper's ODBC client would use).
void RunStreaming(Connection& conn, const std::string& sql) {
  const auto t0 = std::chrono::steady_clock::now();
  auto cursor = conn.OpenCursor(sql);
  if (!cursor.ok()) {
    PrintOutcome(cursor.status(), ElapsedMs(t0));
    return;
  }
  std::vector<prefsql::Row> rows;
  size_t total = 0;
  for (;;) {
    auto row = cursor->Next();
    if (!row.ok()) {
      PrintOutcome(row.status(), ElapsedMs(t0));
      return;
    }
    if (!row->has_value()) break;
    ++total;
    if (rows.size() < kMaxRows) {
      rows.push_back(std::move(**row).IntoRow());
    } else {
      // The skyline is larger than the display cap: stop pulling — the
      // early Close releases the engine's statement lock promptly.
      cursor->Close();
      std::printf("... display cap reached after %zu rows\n", kMaxRows);
      break;
    }
  }
  prefsql::ResultTable table(cursor->columns(), std::move(rows));
  std::printf("%s(%zu rows streamed, %.1f ms)\n",
              table.ToString(kMaxRows).c_str(), total, ElapsedMs(t0));
}

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  .help                 this text\n"
      "  .tables               list tables\n"
      "  .mode <m>             evaluation mode: rewrite | bnl | naive | sfs\n"
      "  .demo <name>          load demo data: oldtimer | cars | usedcars |\n"
      "                        products | trips | hotels | programmers\n"
      "  .import <file> <tbl>  import a CSV file into a (new) table\n"
      "  .quit                 exit\n"
      "anything else: SQL / Preference SQL, terminated by ';'\n"
      "  (try: SELECT ... PREFERRING x AROUND 10 AND LOWEST(y);\n"
      "        EXPLAIN SELECT ... PREFERRING ...;)\n");
}

bool HandleDotCommand(Connection& conn, const std::string& line) {
  if (line == ".help") {
    PrintHelp();
    return true;
  }
  if (line == ".tables") {
    for (const auto& name : conn.database().catalog().TableNames()) {
      std::printf("%s\n", name.c_str());
    }
    return true;
  }
  if (line.rfind(".mode", 0) == 0) {
    std::string mode = line.size() > 6 ? line.substr(6) : "";
    if (mode == "rewrite") {
      conn.options().mode = EvaluationMode::kRewrite;
    } else if (mode == "bnl") {
      conn.options().mode = EvaluationMode::kBlockNestedLoop;
    } else if (mode == "naive") {
      conn.options().mode = EvaluationMode::kNaiveNestedLoop;
    } else if (mode == "sfs") {
      conn.options().mode = EvaluationMode::kSortFilterSkyline;
    } else {
      std::printf("unknown mode '%s' (rewrite | bnl | naive | sfs)\n",
                  mode.c_str());
      return true;
    }
    std::printf("evaluation mode: %s\n",
                prefsql::EvaluationModeToString(conn.options().mode));
    return true;
  }
  if (line.rfind(".demo", 0) == 0) {
    std::string name = line.size() > 6 ? line.substr(6) : "";
    prefsql::Status st;
    if (name == "oldtimer") {
      st = prefsql::LoadOldtimer(conn.database());
    } else if (name == "cars") {
      st = prefsql::LoadCarsExample(conn.database());
    } else if (name == "usedcars") {
      st = prefsql::GenerateUsedCars(conn.database(), 2000);
    } else if (name == "products") {
      st = prefsql::GenerateProducts(conn.database(), 1000);
    } else if (name == "trips") {
      st = prefsql::GenerateTrips(conn.database(), 800);
    } else if (name == "hotels") {
      st = prefsql::GenerateHotels(conn.database(), 500);
    } else if (name == "programmers") {
      st = prefsql::GenerateProgrammers(conn.database(), 500);
    } else {
      std::printf("unknown demo '%s'\n", name.c_str());
      return true;
    }
    std::printf("%s\n", st.ok() ? "loaded" : st.ToString().c_str());
    return true;
  }
  if (line.rfind(".import", 0) == 0) {
    std::string rest = line.size() > 8 ? line.substr(8) : "";
    size_t space = rest.find(' ');
    if (space == std::string::npos) {
      std::printf("usage: .import <file> <table>\n");
      return true;
    }
    auto n = prefsql::ImportCsvFile(conn.database(), rest.substr(space + 1),
                                    rest.substr(0, space));
    if (n.ok()) {
      std::printf("imported %zu rows\n", *n);
    } else {
      std::printf("%s\n", n.status().ToString().c_str());
    }
    return true;
  }
  if (line == ".quit" || line == ".exit") return false;
  std::printf("unknown command %s (try .help)\n", line.c_str());
  return true;
}

// ---------------------------------------------------------------------------
// Remote mode (--connect host:port): the same statement loop over the wire.
// ---------------------------------------------------------------------------

/// Streams a single SELECT through the RemoteCursor, mirroring
/// RunStreaming's display (rows appear as pages arrive).
void RunRemoteStreaming(prefsql::net::Client& client, const std::string& sql) {
  const auto t0 = std::chrono::steady_clock::now();
  auto cursor = client.OpenCursor(sql);
  if (!cursor.ok()) {
    PrintOutcome(cursor.status(), ElapsedMs(t0));
    return;
  }
  std::vector<prefsql::Row> rows;
  size_t total = 0;
  for (;;) {
    auto row = cursor->Next();
    if (!row.ok()) {
      PrintOutcome(row.status(), ElapsedMs(t0));
      return;
    }
    if (!row->has_value()) break;
    ++total;
    if (rows.size() < kMaxRows) {
      rows.push_back(std::move(**row));
    } else {
      cursor->Close();  // frees the server-side cursor promptly
      std::printf("... display cap reached after %zu rows\n", kMaxRows);
      break;
    }
  }
  prefsql::ResultTable table(cursor->columns(), std::move(rows));
  std::printf("%s(%zu rows streamed, %.1f ms)\n",
              table.ToString(kMaxRows).c_str(), total, ElapsedMs(t0));
}

bool HandleRemoteDotCommand(prefsql::net::Client& client,
                            const std::string& line) {
  if (line == ".help") {
    std::printf(
        "remote commands:\n"
        "  .help     this text\n"
        "  .stats    server + connection counters (STATS verb)\n"
        "  .quit     exit\n"
        "anything else: SQL / Preference SQL, terminated by ';'\n");
    return true;
  }
  if (line == ".stats") {
    auto stats = client.Stats();
    if (!stats.ok()) {
      std::printf("%s\n", stats.status().ToString().c_str());
      return true;
    }
    for (const auto& [key, value] : *stats) {
      std::printf("  %-22s %lld\n", key.c_str(),
                  static_cast<long long>(value));
    }
    return true;
  }
  if (line == ".quit" || line == ".exit") return false;
  std::printf("unknown remote command %s (try .help)\n", line.c_str());
  return true;
}

int RunRemote(const std::string& host, int port) {
  auto connected = prefsql::net::Client::Connect(host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "connect %s:%d failed: %s\n", host.c_str(), port,
                 connected.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<prefsql::net::Client> client = std::move(*connected);
  g_remote.store(client.get(), std::memory_order_release);
  struct sigaction sa = {};
  sa.sa_handler = OnSigint;
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, nullptr);
  std::thread watcher(WatchSigint);
  std::printf("connected to %s:%d (%s) — .help for commands\n", host.c_str(),
              port, client->banner().c_str());

  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "prefsql> " : "    ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r' ||
                             line.back() == '\t')) {
      line.pop_back();
    }
    if (buffer.empty() && !line.empty() && line[0] == '.') {
      if (!HandleRemoteDotCommand(*client, line)) break;
      continue;
    }
    buffer += line + "\n";
    if (line.empty() || line.back() != ';') continue;
    std::string sql;
    sql.swap(buffer);
    if (IsSingleStatement(sql) && prefsql::FirstSqlWord(sql) == "SELECT") {
      RunRemoteStreaming(*client, sql);
      continue;
    }
    // The wire protocol carries one statement per EXECUTE; a script runs
    // as a single server-side statement only when it is one statement.
    const auto t0 = std::chrono::steady_clock::now();
    auto result = client->Execute(sql);
    if (result.ok()) PrintResult(*result);
    PrintOutcome(result.status(), ElapsedMs(t0));
  }
  g_remote.store(nullptr, std::memory_order_release);
  g_shutdown.store(true, std::memory_order_relaxed);
  watcher.join();
  client->Close();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_spec;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect_spec = argv[++i];
    } else if (arg.rfind("--connect=", 0) == 0) {
      connect_spec = arg.substr(10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--connect host:port]\n"
                   "  (no flags: embedded engine; --connect: remote "
                   "prefsqld)\n",
                   argv[0]);
      return 2;
    }
  }
  if (!connect_spec.empty()) {
    size_t colon = connect_spec.rfind(':');
    int port = colon == std::string::npos
                   ? 0
                   : std::atoi(connect_spec.c_str() + colon + 1);
    if (colon == std::string::npos || port <= 0 || port > 65535) {
      std::fprintf(stderr, "bad --connect '%s' (host:port expected)\n",
                   connect_spec.c_str());
      return 2;
    }
    return RunRemote(connect_spec.substr(0, colon), port);
  }

  Connection conn;
  g_conn.store(&conn, std::memory_order_release);
  struct sigaction sa = {};
  sa.sa_handler = OnSigint;
  sa.sa_flags = SA_RESTART;  // keep getline() reading across a Ctrl-C
  sigaction(SIGINT, &sa, nullptr);
  std::thread watcher(WatchSigint);
  std::printf("Preference SQL shell — .help for commands, .quit to exit\n");
  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "prefsql> " : "    ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Trim trailing whitespace.
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r' ||
                             line.back() == '\t')) {
      line.pop_back();
    }
    if (buffer.empty() && !line.empty() && line[0] == '.') {
      if (!HandleDotCommand(conn, line)) break;
      continue;
    }
    buffer += line + "\n";
    if (line.empty() || line.back() != ';') continue;
    std::string sql;
    sql.swap(buffer);
    if (IsSingleStatement(sql) && prefsql::FirstSqlWord(sql) == "SELECT") {
      RunStreaming(conn, sql);
      continue;
    }
    // Scripts run statement by statement; every result is printed (the old
    // ExecuteScript interface silently dropped all but the last).
    const auto t0 = std::chrono::steady_clock::now();
    auto status = conn.ExecuteScript(
        sql, [](size_t, const prefsql::Statement&,
                prefsql::ResultTable result) {
          PrintResult(result);
          return prefsql::Status::OK();
        });
    PrintOutcome(status, ElapsedMs(t0));
  }
  g_conn.store(nullptr, std::memory_order_release);
  g_shutdown.store(true, std::memory_order_relaxed);
  watcher.join();
  return 0;
}
