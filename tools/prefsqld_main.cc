// prefsqld: the stand-alone Preference SQL server — one shared Engine
// behind the length-prefixed wire protocol (net/protocol.h), serving many
// remote sessions the way the paper's middleware serves many ODBC clients.
//
//   $ ./build/tools/prefsqld --port 5433 --demo cars
//   prefsqld: listening on 127.0.0.1:5433 (max 32 connections)
//
// Signals:
//   SIGUSR1      print the server counters (connections, statements, rows
//                shipped, cancels, protocol errors) without interrupting
//                service;
//   SIGINT/TERM  graceful shutdown — stop accepting, drain in-flight
//                statements, close every connection, print final stats.
//
// Per-connection governance (the PR 8 knobs) is set once here and stamped
// into every accepted connection's Session: --statement-timeout-ms,
// --statement-memory-bytes, --engine-memory-bytes.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/engine.h"
#include "net/server.h"
#include "workload/generators.h"

namespace {

using prefsql::Engine;
using prefsql::net::Server;
using prefsql::net::ServerOptions;

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --host <addr>                 listen address (default 127.0.0.1)\n"
      "  --port <n>                    listen port; 0 picks one (default 0)\n"
      "  --max-connections <n>         concurrent connection cap (default "
      "32)\n"
      "  --max-frame-bytes <n>         wire frame size cap\n"
      "  --statement-timeout-ms <n>    per-statement deadline (0 = none)\n"
      "  --statement-memory-bytes <n>  per-statement memory budget (0 = "
      "none)\n"
      "  --engine-memory-bytes <n>     engine-wide memory budget (0 = none)\n"
      "  --demo <name>                 preload demo data: oldtimer | cars |\n"
      "                                usedcars | products | trips | hotels "
      "|\n"
      "                                programmers\n"
      "  --help                        this text\n",
      argv0);
}

bool ParseU64(const char* s, uint64_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

prefsql::Status LoadDemo(Engine& engine, const std::string& name) {
  auto& db = engine.database();
  if (name == "oldtimer") return prefsql::LoadOldtimer(db);
  if (name == "cars") return prefsql::LoadCarsExample(db);
  if (name == "usedcars") return prefsql::GenerateUsedCars(db, 2000);
  if (name == "products") return prefsql::GenerateProducts(db, 1000);
  if (name == "trips") return prefsql::GenerateTrips(db, 800);
  if (name == "hotels") return prefsql::GenerateHotels(db, 500);
  if (name == "programmers") return prefsql::GenerateProgrammers(db, 500);
  return prefsql::Status::ExecutionError("unknown demo '" + name + "'");
}

void PrintStats(Server& server, const char* heading) {
  std::printf("prefsqld: %s\n", heading);
  for (const auto& [key, value] : server.stats().Snapshot()) {
    std::printf("  %-22s %lld\n", key.c_str(),
                static_cast<long long>(value));
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options;
  std::string demo;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "prefsqld: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    uint64_t n = 0;
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      if (!ParseU64(next(), &n) || n > 65535) {
        std::fprintf(stderr, "prefsqld: bad --port\n");
        return 2;
      }
      options.port = static_cast<uint16_t>(n);
    } else if (arg == "--max-connections") {
      if (!ParseU64(next(), &n) || n == 0) {
        std::fprintf(stderr, "prefsqld: bad --max-connections\n");
        return 2;
      }
      options.max_connections = static_cast<size_t>(n);
    } else if (arg == "--max-frame-bytes") {
      if (!ParseU64(next(), &n) || n == 0) {
        std::fprintf(stderr, "prefsqld: bad --max-frame-bytes\n");
        return 2;
      }
      options.max_frame_bytes = static_cast<uint32_t>(n);
    } else if (arg == "--statement-timeout-ms") {
      if (!ParseU64(next(), &n)) {
        std::fprintf(stderr, "prefsqld: bad --statement-timeout-ms\n");
        return 2;
      }
      options.statement_timeout_ms = n;
    } else if (arg == "--statement-memory-bytes") {
      if (!ParseU64(next(), &n)) {
        std::fprintf(stderr, "prefsqld: bad --statement-memory-bytes\n");
        return 2;
      }
      options.statement_memory_bytes = n;
    } else if (arg == "--engine-memory-bytes") {
      if (!ParseU64(next(), &n)) {
        std::fprintf(stderr, "prefsqld: bad --engine-memory-bytes\n");
        return 2;
      }
      options.engine_memory_bytes = n;
    } else if (arg == "--demo") {
      demo = next();
    } else {
      std::fprintf(stderr, "prefsqld: unknown option '%s'\n", arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }

  // Block the control signals *before* any thread spawns (Engine starts
  // its GC thread in the constructor) so every thread inherits the mask
  // and only the sigwait loop below ever sees them.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGUSR1);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);
  signal(SIGPIPE, SIG_IGN);

  auto engine = std::make_shared<Engine>();
  if (!demo.empty()) {
    auto st = LoadDemo(*engine, demo);
    if (!st.ok()) {
      std::fprintf(stderr, "prefsqld: --demo %s: %s\n", demo.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf("prefsqld: loaded demo '%s'\n", demo.c_str());
  }

  Server server(engine, options);
  if (auto st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "prefsqld: start failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("prefsqld: listening on %s:%d (max %zu connections)\n",
              options.host.c_str(), server.port(), options.max_connections);
  std::fflush(stdout);

  for (;;) {
    int sig = 0;
    if (sigwait(&mask, &sig) != 0) continue;
    if (sig == SIGUSR1) {
      PrintStats(server, "stats");
      continue;
    }
    std::printf("prefsqld: %s — draining and shutting down\n",
                sig == SIGINT ? "SIGINT" : "SIGTERM");
    std::fflush(stdout);
    break;
  }

  server.Shutdown();
  PrintStats(server, "final stats");
  return 0;
}
